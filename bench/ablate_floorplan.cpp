// Ablation B: the Modular Design placement rules (paper §5).
//
//  - Region width sweep: partial-bitstream size, device share and
//    reconfiguration time as the full-height region widens (the paper's
//    "minimal of four slices" rule is the left end).
//  - Bus-macro provisioning: macros (eight 3-state buffers each) needed
//    as the static<->dynamic interface widens, and the TBUF cost charged
//    to every variant.
//  - Device family sweep: the same 5-column module on different
//    Virtex-II parts (frame size grows with device height).
//
// The width and device sweeps run their rows as ScenarioRunner scenarios
// (parallel under --jobs N) writing index-owned row slots; tables render
// in row order afterwards, so output is identical for any --jobs value.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fabric/bus_macro.hpp"
#include "flow/scenario.hpp"
#include "mccdma/case_study.hpp"
#include "rtr/manager.hpp"
#include "synth/flow.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

/// One rendered row of the width/device sweeps, computed inside a
/// scenario body.
struct SweepRow {
  std::uint64_t slices = 0;
  std::uint64_t frame_bytes = 0;
  double fraction = 0;
  std::string partial;
  double cold_ms = 0;
  std::string full;
};

void print_width_sweep(const flow::ObsSinks& io, int jobs) {
  std::puts("=== region width sweep (XC2V2000, case-study memory) ===\n");
  const int widths[] = {2, 3, 4, 5, 6, 8, 12, 16, 24, 32};

  std::vector<SweepRow> slots(std::size(widths));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(widths); ++i) {
    scenarios.push_back(
        {strprintf("width=%d", widths[i]), [&widths, &slots, i](flow::ObsSinks& sinks) {
           synth::ModularDesignFlow flow(fabric::xc2v2000());
           flow.set_observability(&sinks.tracer, &sinks.metrics);
           flow.add_region("D1", {{"mod", "qam16_mapper", {}}}, 0, widths[i]);
           const synth::DesignBundle bundle = flow.run();
           rtr::BitstreamStore store = mccdma::make_case_study_store();
           rtr::NonePrefetch policy;
           rtr::ReconfigManager manager(bundle, rtr::sundance_manager_config(), store, policy);
           SweepRow& row = slots[i];
           row.slices = bundle.floorplan.region_slices("D1");
           row.fraction = bundle.floorplan.region_fraction("D1");
           row.partial = human_bytes(bundle.variant("D1", "mod").bitstream.size());
           row.cold_ms = to_ms(manager.cold_load_latency("mod"));
           return std::string();
         }});
  }
  const flow::SweepResult sweep = flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"width (CLB cols)", "slice budget", "% of device", "partial bitstream",
           "cold reconfig (ms)"});
  for (std::size_t i = 0; i < std::size(widths); ++i) {
    t.row()
        .add(widths[i])
        .add(slots[i].slices)
        .add(100.0 * slots[i].fraction, 1)
        .add(slots[i].partial)
        .add(slots[i].cold_ms, 2);
  }
  t.print();
  std::puts("\n(reconfiguration time scales linearly with region width: partial");
  std::puts(" bitstreams are full-height column sets)\n");
  sweep.write_obs(io.trace_path, io.metrics_path);
}

void print_bus_macro_sweep() {
  std::puts("=== bus-macro provisioning vs. interface width ===\n");
  Table t({"signals crossing", "bus macros", "TBUFs", "% of device TBUFs"});
  const fabric::DeviceModel dev = fabric::xc2v2000();
  for (int signals : {1, 8, 16, 33, 64, 128, 256}) {
    const int macros = fabric::bus_macros_needed(signals);
    const int tbufs = macros * fabric::kBusMacroWidth;
    t.row()
        .add(signals)
        .add(macros)
        .add(tbufs)
        .add(100.0 * tbufs / dev.total_tbufs(), 2);
  }
  t.print();
  std::puts("");
}

void print_device_sweep(int jobs) {
  std::puts("=== device family sweep: same 5-column module on each part ===\n");
  const char* devices[] = {"XC2V1000", "XC2V2000", "XC2V3000", "XC2V6000"};

  std::vector<SweepRow> slots(std::size(devices));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(devices); ++i) {
    scenarios.push_back({devices[i], [&devices, &slots, i](flow::ObsSinks&) {
                           synth::ModularDesignFlow flow(fabric::device_by_name(devices[i]));
                           flow.add_region("D1", {{"mod", "qam16_mapper", {}}}, 0, 5);
                           const synth::DesignBundle bundle = flow.run();
                           rtr::BitstreamStore store = mccdma::make_case_study_store();
                           rtr::NonePrefetch policy;
                           rtr::ReconfigManager manager(bundle, rtr::sundance_manager_config(),
                                                        store, policy);
                           SweepRow& row = slots[i];
                           row.slices = static_cast<std::uint64_t>(bundle.device.total_slices());
                           row.frame_bytes =
                               static_cast<std::uint64_t>(bundle.device.frame_bytes());
                           row.partial = human_bytes(bundle.variant("D1", "mod").bitstream.size());
                           row.cold_ms = to_ms(manager.cold_load_latency("mod"));
                           row.full = human_bytes(bundle.initial_bitstream.size());
                           return std::string();
                         }});
  }
  flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"device", "slices", "frame bytes", "partial bitstream", "cold reconfig (ms)",
           "full bitstream"});
  for (std::size_t i = 0; i < std::size(devices); ++i) {
    t.row()
        .add(devices[i])
        .add(slots[i].slices)
        .add(slots[i].frame_bytes)
        .add(slots[i].partial)
        .add(slots[i].cold_ms, 2)
        .add(slots[i].full);
  }
  t.print();
  std::puts("\n(full-height frames mean taller devices pay more per column — the");
  std::puts(" Modular Design tax the paper's placement rules imply)\n");
}

void BM_PartialBitgen(benchmark::State& state) {
  const fabric::DeviceModel dev = fabric::xc2v2000();
  const fabric::FrameMap map(dev);
  const auto frames = map.frames_for_clb_range(40, 40 + static_cast<int>(state.range(0)) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate_partial_bitstream(dev, frames, 12345));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames.size()) * dev.frame_bytes());
}
BENCHMARK(BM_PartialBitgen)->Arg(2)->Arg(5)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_BitstreamValidate(benchmark::State& state) {
  const fabric::DeviceModel dev = fabric::xc2v2000();
  const fabric::FrameMap map(dev);
  const auto frames = map.frames_for_clb_range(43, 47);
  const auto stream = synth::generate_partial_bitstream(dev, frames, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric::BitstreamReader::validate(dev, stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_BitstreamValidate)->Unit(benchmark::kMicrosecond);

void BM_FloorplanValidation(benchmark::State& state) {
  for (auto _ : state) {
    fabric::Floorplan plan(fabric::xc2v2000());
    plan.add_region("S", 0, 9, false);
    plan.add_region("D1", 40, 44, true, 32, 32);
    plan.add_region("D2", 45, 47, true, 16, 16);
    benchmark::DoNotOptimize(plan.region_frames("D1"));
  }
}
BENCHMARK(BM_FloorplanValidation);

}  // namespace

int main(int argc, char** argv) {
  const flow::ObsSinks io = flow::obs_sinks_from_argv(argc, argv);
  const int jobs = flow::jobs_from_argv(argc, argv, 1);
  print_width_sweep(io, jobs);
  print_bus_macro_sweep();
  print_device_sweep(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
