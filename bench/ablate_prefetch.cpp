// Ablation A: the prefetch policy (the abstract's "prefetching technic to
// minimize reconfiguration latency").
//
// Three policies over the same fading traces:
//   - none:     on-demand reconfiguration (baseline),
//   - schedule: guard-band announcements from the adaptive controller
//               stage the likely next module before the SNR crosses the
//               switching threshold,
//   - history:  a first-order Markov predictor stages the likely next
//               module right after every switch.
// Plus the on-chip bitstream cache as an orthogonal knob.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_obs.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

const mccdma::CaseStudy& case_study() {
  static const mccdma::CaseStudy cs = mccdma::build_case_study();
  return cs;
}

struct Accum {
  Stats stall_ms;        ///< per-trace stall
  double elapsed_ms = 0;
  int switches = 0;
  int hits = 0;
  int inflight = 0;
  int cache_hits = 0;
  int misses = 0;
  int wasted = 0;
};

Accum run_policy(aaa::PrefetchChoice policy, Bytes cache, int seeds,
                 benchutil::ObsSinks* sinks = nullptr) {
  Accum acc;
  for (int seed = 0; seed < seeds; ++seed) {
    mccdma::SystemConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(seed);
    config.prefetch = policy;
    config.manager.cache_capacity = cache;
    config.ber_sample_every = 0;
    if (sinks != nullptr) {
      config.tracer = &sinks->tracer;
      config.metrics = &sinks->metrics;
    }
    mccdma::TransmitterSystem system(case_study(), config);
    const auto r = system.run(30'000);
    acc.stall_ms.add(to_ms(r.stall_total));
    acc.elapsed_ms += to_ms(r.elapsed);
    acc.switches += r.switches;
    acc.hits += r.manager.prefetch_hits;
    acc.inflight += r.manager.prefetch_inflight;
    acc.cache_hits += r.manager.cache_hits;
    acc.misses += r.manager.misses;
    acc.wasted += r.manager.prefetches_wasted;
  }
  return acc;
}

void print_policy_table(benchutil::ObsSinks* sinks) {
  const int seeds = 6;
  std::printf("=== prefetch policy ablation (%d fading traces x 30k symbols) ===\n\n", seeds);
  Table t({"policy", "cache", "switches", "stall (ms)", "stall/switch (ms)", "hits", "in-flight",
           "cache hits", "misses", "wasted"});
  struct Row {
    const char* label;
    aaa::PrefetchChoice policy;
    Bytes cache;
  };
  const Row rows[] = {
      {"none", aaa::PrefetchChoice::None, 0},
      {"schedule (guard band)", aaa::PrefetchChoice::Schedule, 0},
      {"history (markov)", aaa::PrefetchChoice::History, 0},
      {"none + 256 KiB cache", aaa::PrefetchChoice::None, 256_KiB},
      {"schedule + 256 KiB cache", aaa::PrefetchChoice::Schedule, 256_KiB},
  };
  for (const auto& row : rows) {
    const Accum a = run_policy(row.policy, row.cache, seeds, sinks);
    const double total_stall = a.stall_ms.mean() * static_cast<double>(a.stall_ms.count());
    t.row()
        .add(row.label)
        .add(row.cache == 0 ? "off" : "on")
        .add(a.switches)
        .add(strprintf("%.1f (sd %.1f/trace)", total_stall, a.stall_ms.stddev()))
        .add(a.switches > 0 ? total_stall / a.switches : 0.0, 2)
        .add(a.hits)
        .add(a.inflight)
        .add(a.cache_hits)
        .add(a.misses)
        .add(a.wasted);
  }
  t.print();
  std::puts("\n(the guard band warns ~1 decision early, hiding the 4 ms memory fetch;");
  std::puts(" the Markov predictor stages instantly after each switch, so with only");
  std::puts(" two modules it converts every later switch into a staged load; the");
  std::puts(" cache removes the external fetch for modules seen before)\n");
}

void print_guard_sweep() {
  std::puts("=== guard-band width sweep (schedule policy) ===\n");
  Table t({"guard (dB)", "stall (ms)", "hits", "in-flight", "misses", "wasted"});
  for (double guard : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0}) {
    Accum acc;
    for (int seed = 0; seed < 6; ++seed) {
      mccdma::SystemConfig config;
      config.seed = 2000 + static_cast<std::uint64_t>(seed);
      config.adaptive.guard_db = guard;
      config.ber_sample_every = 0;
      mccdma::TransmitterSystem system(case_study(), config);
      const auto r = system.run(30'000);
      acc.stall_ms.add(to_ms(r.stall_total));
      acc.hits += r.manager.prefetch_hits;
      acc.inflight += r.manager.prefetch_inflight;
      acc.misses += r.manager.misses;
      acc.wasted += r.manager.prefetches_wasted;
    }
    t.row()
        .add(guard, 1)
        .add(acc.stall_ms.mean() * static_cast<double>(acc.stall_ms.count()), 2)
        .add(acc.hits)
        .add(acc.inflight)
        .add(acc.misses)
        .add(acc.wasted);
  }
  t.print();
  std::puts("\n(too narrow: announcements come too late; wider guards warn earlier,");
  std::puts(" at the cost of more speculative stagings)\n");
}

void BM_SystemPrefetchOn(benchmark::State& state) {
  mccdma::SystemConfig config;
  config.seed = 9;
  config.ber_sample_every = 0;
  for (auto _ : state) {
    mccdma::TransmitterSystem system(case_study(), config);
    benchmark::DoNotOptimize(system.run(2000));
  }
}
BENCHMARK(BM_SystemPrefetchOn)->Unit(benchmark::kMillisecond);

void BM_SystemPrefetchOff(benchmark::State& state) {
  mccdma::SystemConfig config;
  config.seed = 9;
  config.prefetch = aaa::PrefetchChoice::None;
  config.ber_sample_every = 0;
  for (auto _ : state) {
    mccdma::TransmitterSystem system(case_study(), config);
    benchmark::DoNotOptimize(system.run(2000));
  }
}
BENCHMARK(BM_SystemPrefetchOff)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::ObsSinks sinks = benchutil::parse_obs_flags(argc, argv);
  print_policy_table(&sinks);
  print_guard_sweep();
  sinks.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
