// Ablation A: the prefetch policy (the abstract's "prefetching technic to
// minimize reconfiguration latency").
//
// Three policies over the same fading traces:
//   - none:     on-demand reconfiguration (baseline),
//   - schedule: guard-band announcements from the adaptive controller
//               stage the likely next module before the SNR crosses the
//               switching threshold,
//   - history:  a first-order Markov predictor stages the likely next
//               module right after every switch.
// Plus the on-chip bitstream cache as an orthogonal knob.
//
// Each table row runs as one ScenarioRunner scenario (its seeds serial
// inside the body, rows in parallel under --jobs N); rows write into
// index-owned slots and the tables are rendered in row order afterwards,
// so the printed output is identical for any --jobs value.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "flow/scenario.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

struct Accum {
  Stats stall_ms;        ///< per-trace stall
  double elapsed_ms = 0;
  int switches = 0;
  int hits = 0;
  int inflight = 0;
  int cache_hits = 0;
  int misses = 0;
  int wasted = 0;
};

Accum run_policy(aaa::PrefetchChoice policy, Bytes cache, int seeds, flow::ObsSinks& sinks) {
  Accum acc;
  for (int seed = 0; seed < seeds; ++seed) {
    mccdma::SystemConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(seed);
    config.prefetch = policy;
    config.manager.cache_capacity = cache;
    config.ber_sample_every = 0;
    config.tracer = &sinks.tracer;
    config.metrics = &sinks.metrics;
    mccdma::TransmitterSystem system(mccdma::shared_case_study(), config);
    const auto r = system.run(30'000);
    acc.stall_ms.add(to_ms(r.stall_total));
    acc.elapsed_ms += to_ms(r.elapsed);
    acc.switches += r.switches;
    acc.hits += r.manager.prefetch_hits;
    acc.inflight += r.manager.prefetch_inflight;
    acc.cache_hits += r.manager.cache_hits;
    acc.misses += r.manager.misses;
    acc.wasted += r.manager.prefetches_wasted;
  }
  return acc;
}

void print_policy_table(const flow::ObsSinks& io, int jobs) {
  const int seeds = 6;
  std::printf("=== prefetch policy ablation (%d fading traces x 30k symbols) ===\n\n", seeds);
  struct Row {
    const char* label;
    aaa::PrefetchChoice policy;
    Bytes cache;
  };
  const Row rows[] = {
      {"none", aaa::PrefetchChoice::None, 0},
      {"schedule (guard band)", aaa::PrefetchChoice::Schedule, 0},
      {"history (markov)", aaa::PrefetchChoice::History, 0},
      {"none + 256 KiB cache", aaa::PrefetchChoice::None, 256_KiB},
      {"schedule + 256 KiB cache", aaa::PrefetchChoice::Schedule, 256_KiB},
  };

  std::vector<Accum> slots(std::size(rows));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    scenarios.push_back({rows[i].label, [&rows, &slots, i, seeds](flow::ObsSinks& sinks) {
                           slots[i] = run_policy(rows[i].policy, rows[i].cache, seeds, sinks);
                           return std::string();
                         }});
  }
  const flow::SweepResult sweep = flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"policy", "cache", "switches", "stall (ms)", "stall/switch (ms)", "hits", "in-flight",
           "cache hits", "misses", "wasted"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Accum& a = slots[i];
    const double total_stall = a.stall_ms.mean() * static_cast<double>(a.stall_ms.count());
    t.row()
        .add(rows[i].label)
        .add(rows[i].cache == 0 ? "off" : "on")
        .add(a.switches)
        .add(strprintf("%.1f (sd %.1f/trace)", total_stall, a.stall_ms.stddev()))
        .add(a.switches > 0 ? total_stall / a.switches : 0.0, 2)
        .add(a.hits)
        .add(a.inflight)
        .add(a.cache_hits)
        .add(a.misses)
        .add(a.wasted);
  }
  t.print();
  std::puts("\n(the guard band warns ~1 decision early, hiding the 4 ms memory fetch;");
  std::puts(" the Markov predictor stages instantly after each switch, so with only");
  std::puts(" two modules it converts every later switch into a staged load; the");
  std::puts(" cache removes the external fetch for modules seen before)\n");
  sweep.write_obs(io.trace_path, io.metrics_path);
}

void print_guard_sweep(int jobs) {
  std::puts("=== guard-band width sweep (schedule policy) ===\n");
  const double guards[] = {0.0, 0.5, 1.0, 2.0, 4.0, 6.0};

  std::vector<Accum> slots(std::size(guards));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(guards); ++i) {
    scenarios.push_back(
        {strprintf("guard=%.1f", guards[i]), [&guards, &slots, i](flow::ObsSinks& sinks) {
           Accum acc;
           for (int seed = 0; seed < 6; ++seed) {
             mccdma::SystemConfig config;
             config.seed = 2000 + static_cast<std::uint64_t>(seed);
             config.adaptive.guard_db = guards[i];
             config.ber_sample_every = 0;
             config.tracer = &sinks.tracer;
             config.metrics = &sinks.metrics;
             mccdma::TransmitterSystem system(mccdma::shared_case_study(), config);
             const auto r = system.run(30'000);
             acc.stall_ms.add(to_ms(r.stall_total));
             acc.hits += r.manager.prefetch_hits;
             acc.inflight += r.manager.prefetch_inflight;
             acc.misses += r.manager.misses;
             acc.wasted += r.manager.prefetches_wasted;
           }
           slots[i] = acc;
           return std::string();
         }});
  }
  flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"guard (dB)", "stall (ms)", "hits", "in-flight", "misses", "wasted"});
  for (std::size_t i = 0; i < std::size(guards); ++i) {
    const Accum& acc = slots[i];
    t.row()
        .add(guards[i], 1)
        .add(acc.stall_ms.mean() * static_cast<double>(acc.stall_ms.count()), 2)
        .add(acc.hits)
        .add(acc.inflight)
        .add(acc.misses)
        .add(acc.wasted);
  }
  t.print();
  std::puts("\n(too narrow: announcements come too late; wider guards warn earlier,");
  std::puts(" at the cost of more speculative stagings)\n");
}

void BM_SystemPrefetchOn(benchmark::State& state) {
  mccdma::SystemConfig config;
  config.seed = 9;
  config.ber_sample_every = 0;
  for (auto _ : state) {
    mccdma::TransmitterSystem system(mccdma::shared_case_study(), config);
    benchmark::DoNotOptimize(system.run(2000));
  }
}
BENCHMARK(BM_SystemPrefetchOn)->Unit(benchmark::kMillisecond);

void BM_SystemPrefetchOff(benchmark::State& state) {
  mccdma::SystemConfig config;
  config.seed = 9;
  config.prefetch = aaa::PrefetchChoice::None;
  config.ber_sample_every = 0;
  for (auto _ : state) {
    mccdma::TransmitterSystem system(mccdma::shared_case_study(), config);
    benchmark::DoNotOptimize(system.run(2000));
  }
}
BENCHMARK(BM_SystemPrefetchOff)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const flow::ObsSinks io = flow::obs_sinks_from_argv(argc, argv);
  const int jobs = flow::jobs_from_argv(argc, argv, 1);
  mccdma::shared_case_study();  // warm the bundle before the thread pool
  print_policy_table(io, jobs);
  print_guard_sweep(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
