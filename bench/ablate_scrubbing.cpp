// Ablation C: configuration-memory scrubbing.
//
// Runtime-reconfigurable systems in radio environments must repair
// single-event upsets in configuration memory. The manager's scrub()
// rewrites the resident module through the same fetch/build/load pipeline
// as a reconfiguration, so scrubbing competes with adaptive-modulation
// reconfigurations for the ICAP. This ablation measures:
//   - mean time to repair vs. scrub period, under a Poisson SEU process,
//   - the port-time tax scrubbing levies on the transmitter,
//   - readback-verification cost.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_obs.hpp"
#include "mccdma/case_study.hpp"
#include "rtr/manager.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

const mccdma::CaseStudy& case_study() {
  static const mccdma::CaseStudy cs = mccdma::build_case_study();
  return cs;
}

struct ScrubResult {
  double mean_exposure_ms = 0;  ///< mean time a corrupted frame stays corrupted
  double port_busy_fraction = 0;
  int seus = 0;
  int scrubs = 0;
};

/// Simulates `horizon` of run time with SEUs arriving as a Poisson
/// process (`seu_rate_hz`) and periodic scrubbing every `period` (0 = no
/// scrubbing; exposure then runs to the horizon).
ScrubResult simulate(TimeNs period, double seu_rate_hz, TimeNs horizon, std::uint64_t seed,
                     benchutil::ObsSinks* sinks = nullptr) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  if (sinks != nullptr) manager.set_observability(&sinks->tracer, &sinks->metrics);
  manager.set_resident("D1", "qpsk");
  const auto frames = cs.bundle.floorplan.region_frames("D1");

  Rng rng(seed);
  ScrubResult result;
  TimeNs scrub_busy = 0;
  double exposure_ms = 0;

  // Event-stepped loop: next SEU vs next scrub tick.
  TimeNs now = 0;
  TimeNs next_scrub = period > 0 ? period : horizon + 1;
  // Exponential inter-arrival times.
  auto next_interval = [&]() {
    return static_cast<TimeNs>(-std::log(1.0 - rng.uniform01()) / seu_rate_hz * 1e9);
  };
  TimeNs next_seu = next_interval();
  std::vector<TimeNs> pending_corruptions;  // times of unrepaired SEUs

  while (now < horizon) {
    if (next_seu <= next_scrub) {
      now = next_seu;
      if (now >= horizon) break;
      const auto& addr = frames[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frames.size()) - 1))];
      const_cast<fabric::ConfigMemory&>(manager.memory())
          .flip_bit(addr, static_cast<int>(rng.uniform_int(0, 100)),
                    static_cast<int>(rng.uniform_int(0, 7)));
      pending_corruptions.push_back(now);
      ++result.seus;
      next_seu = now + next_interval();
    } else {
      now = next_scrub;
      if (now >= horizon) break;
      const TimeNs done = manager.scrub("D1", now);
      scrub_busy += done - now;
      for (const TimeNs t : pending_corruptions) exposure_ms += to_ms(done - t);
      pending_corruptions.clear();
      next_scrub = now + period;
    }
  }
  // Unrepaired corruption at the horizon counts as exposed until then.
  for (const TimeNs t : pending_corruptions) exposure_ms += to_ms(horizon - t);

  result.mean_exposure_ms = result.seus > 0 ? exposure_ms / result.seus : 0.0;
  result.port_busy_fraction = static_cast<double>(scrub_busy) / static_cast<double>(horizon);
  result.scrubs = manager.stats().scrubs;
  return result;
}

void print_scrub_table(benchutil::ObsSinks* sinks) {
  std::puts("=== scrub period vs. SEU exposure (Poisson SEUs at 50/s, 2 s run) ===");
  std::puts("(exaggerated upset rate so one run shows the trade-off)\n");
  Table t({"scrub period (ms)", "scrubs", "SEUs", "mean exposure (ms)", "port busy (%)"});
  const TimeNs horizon = 2_s;
  for (TimeNs period : {TimeNs{0}, 500_ms, 200_ms, 100_ms, 50_ms, 20_ms}) {
    const ScrubResult r = simulate(period, 50.0, horizon, 42, sinks);
    t.row()
        .add(period == 0 ? std::string("off") : strprintf("%.0f", to_ms(period)))
        .add(r.scrubs)
        .add(r.seus)
        .add(r.mean_exposure_ms, 1)
        .add(100.0 * r.port_busy_fraction, 2);
  }
  t.print();
  std::puts("\n(faster scrubbing shortens the corruption window but eats the very");
  std::puts(" port the adaptive modulation needs for its reconfigurations)\n");
}

void print_verify_cost() {
  std::puts("=== readback verification ===\n");
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qam16");
  printf("region D1 clean frames check: %d corrupted (expect 0)\n",
         manager.verify_resident("D1"));
  const auto frames = cs.bundle.floorplan.region_frames("D1");
  const_cast<fabric::ConfigMemory&>(manager.memory()).flip_bit(frames[7], 3, 1);
  printf("after one injected SEU:      %d corrupted (expect 1)\n\n",
         manager.verify_resident("D1"));
}

void BM_VerifyResident(benchmark::State& state) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  for (auto _ : state) benchmark::DoNotOptimize(manager.verify_resident("D1"));
}
BENCHMARK(BM_VerifyResident)->Unit(benchmark::kMicrosecond);

void BM_Scrub(benchmark::State& state) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  TimeNs now = 0;
  for (auto _ : state) now = manager.scrub("D1", now);
}
BENCHMARK(BM_Scrub)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::ObsSinks sinks = benchutil::parse_obs_flags(argc, argv);
  print_scrub_table(&sinks);
  print_verify_cost();
  sinks.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
