// Ablation C: configuration-memory scrubbing.
//
// Runtime-reconfigurable systems in radio environments must repair
// single-event upsets in configuration memory. The manager's scrub()
// rewrites the resident module through the same fetch/build/load pipeline
// as a reconfiguration, so scrubbing competes with adaptive-modulation
// reconfigurations for the ICAP. This ablation measures:
//   - mean time to repair vs. scrub period, under a Poisson SEU process,
//   - the port-time tax scrubbing levies on the transmitter,
//   - readback-verification cost.
//
// The sweep runs on the fault-injection framework (src/fault): each row
// is one seeded campaign — same spec + seed = bit-identical results —
// run as a ScenarioRunner scenario into an index-owned slot, so the
// table is identical for any --jobs value.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"
#include "flow/scenario.hpp"
#include "mccdma/case_study.hpp"
#include "rtr/manager.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

/// One scrub-period campaign: Poisson SEUs on D1, no demand traffic, no
/// port/fetch faults — isolates the scrubbing trade-off.
fault::CampaignReport run_scrub_campaign(TimeNs period, double seu_rate_hz, TimeNs horizon,
                                         std::uint64_t seed, flow::ObsSinks& sinks) {
  fault::FaultSpec spec;
  spec.seed = seed;
  spec.horizon = horizon;
  spec.seus.push_back(fault::SeuProcess{"D1", seu_rate_hz});

  fault::CampaignConfig config;
  config.manager = rtr::sundance_manager_config();
  config.recovery = false;   // pure scrub measurement: no retry/fallback/drain
  config.scrub_period = period;
  config.demand_period = 0;  // no adaptive-modulation traffic

  rtr::BitstreamStore store = mccdma::make_case_study_store();
  return fault::run_campaign(mccdma::shared_case_study().bundle, store, spec, config,
                             &sinks.tracer, &sinks.metrics);
}

void print_scrub_table(const flow::ObsSinks& io, int jobs) {
  std::puts("=== scrub period vs. SEU exposure (Poisson SEUs at 50/s, 2 s run) ===");
  std::puts("(exaggerated upset rate so one run shows the trade-off)\n");
  const TimeNs horizon = 2_s;
  const TimeNs periods[] = {TimeNs{0}, 500_ms, 200_ms, 100_ms, 50_ms, 20_ms};

  std::vector<fault::CampaignReport> slots(std::size(periods));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(periods); ++i) {
    scenarios.push_back({strprintf("scrub=%.0fms", to_ms(periods[i])),
                         [&periods, &slots, i, horizon](flow::ObsSinks& sinks) {
                           slots[i] = run_scrub_campaign(periods[i], 50.0, horizon, 42, sinks);
                           return std::string();
                         }});
  }
  const flow::SweepResult sweep = flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"scrub period (ms)", "scrubs", "SEUs", "frames repaired", "mean exposure (ms)",
           "port busy (%)"});
  for (std::size_t i = 0; i < std::size(periods); ++i) {
    const fault::CampaignReport& r = slots[i];
    t.row()
        .add(periods[i] == 0 ? std::string("off") : strprintf("%.0f", to_ms(periods[i])))
        .add(r.scrub.scrubs)
        .add(r.seus_injected)
        .add(r.scrub.frames_repaired)
        .add(r.mean_seu_exposure_ms, 1)
        .add(100.0 * r.port_busy_fraction, 2);
  }
  t.print();
  std::puts("\n(faster scrubbing shortens the corruption window but eats the very");
  std::puts(" port the adaptive modulation needs for its reconfigurations)\n");
  sweep.write_obs(io.trace_path, io.metrics_path);
}

void print_verify_cost() {
  std::puts("=== readback verification ===\n");
  const auto& cs = mccdma::shared_case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qam16");
  printf("region D1 clean frames check: %d corrupted (expect 0)\n",
         manager.verify_resident("D1"));
  const auto frames = cs.bundle.floorplan.region_frames("D1");
  manager.memory().flip_bit(frames[7], 3, 1);
  printf("after one injected SEU:      %d corrupted (expect 1)\n\n",
         manager.verify_resident("D1"));
}

void BM_VerifyResident(benchmark::State& state) {
  const auto& cs = mccdma::shared_case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  for (auto _ : state) benchmark::DoNotOptimize(manager.verify_resident("D1"));
}
BENCHMARK(BM_VerifyResident)->Unit(benchmark::kMicrosecond);

void BM_Scrub(benchmark::State& state) {
  const auto& cs = mccdma::shared_case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  TimeNs now = 0;
  for (auto _ : state) now = manager.scrub("D1", now);
}
BENCHMARK(BM_Scrub)->Unit(benchmark::kMicrosecond);

/// One full fault campaign per iteration — the end-to-end cost of the
/// injection + recovery machinery itself.
void BM_FaultCampaign(benchmark::State& state) {
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.horizon = 100_ms;
  spec.seus.push_back(fault::SeuProcess{"D1", 200.0});
  spec.port_abort_prob = 0.05;
  fault::CampaignConfig config;
  config.manager = rtr::sundance_manager_config();
  const auto& cs = mccdma::shared_case_study();
  for (auto _ : state) {
    rtr::BitstreamStore store = mccdma::make_case_study_store();
    benchmark::DoNotOptimize(fault::run_campaign(cs.bundle, store, spec, config));
  }
}
BENCHMARK(BM_FaultCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const flow::ObsSinks io = flow::obs_sinks_from_argv(argc, argv);
  const int jobs = flow::jobs_from_argv(argc, argv, 1);
  mccdma::shared_case_study();  // warm the bundle before the thread pool
  print_scrub_table(io, jobs);
  print_verify_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
