// Adequation scaling benchmark: the indexed ready-queue engine against
// the retained rescanning reference loop, on synthetic layered DAGs from
// the shared pdr::bench generators (bench_suite measures the same
// workloads into BENCH_adequation.json; this binary is the quick
// pass/fail equivalence gate).
//
// For each graph size the two engines schedule the same project and the
// run asserts the schedules are byte-identical (the ready-queue is an
// index, not a different heuristic) before comparing wall-clock. The
// rescanning loop re-walks every pending operation per placement —
// O(V^2 * deg) selection — where the ready-queue pays O(V log V + E);
// the gap is the point of the table.
//
//   bench_adequation            full sizes (100 / 1000 / 5000 operations)
//   bench_adequation --smoke    CI-sized run (100 / 500), same checks

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "bench/generators.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

double time_run_ms(const aaa::Adequation& adequation, const aaa::AdequationOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const aaa::Schedule s = adequation.run(options);
  const auto t1 = std::chrono::steady_clock::now();
  (void)s;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> sizes = smoke ? std::vector<int>{100, 500}
                                       : std::vector<int>{100, 1000, 5000};

  std::puts("=== adequation engines: indexed ready-queue vs rescanning reference ===\n");
  const aaa::DurationTable durations = bench::bench_durations();
  const aaa::ArchitectureGraph arch = bench::bench_architecture(2, 1);
  Table t({"operations", "heap (ms)", "rescan (ms)", "speedup", "identical"});

  bool all_identical = true;
  double largest_heap_ms = 0;
  double largest_rescan_ms = 0;
  for (const int n : sizes) {
    bench::GeneratorConfig cfg;
    cfg.shape = bench::GraphShape::Layered;
    cfg.n_ops = n;
    cfg.width = 20;
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });

    aaa::AdequationOptions heap_options;
    heap_options.ready_policy = aaa::ReadyPolicy::IndexedHeap;
    aaa::AdequationOptions rescan_options;
    rescan_options.ready_policy = aaa::ReadyPolicy::RescanReference;

    // Equality first (one untimed run each), then a timed second run so
    // the clocked passes see warm allocator state on both sides.
    const std::string heap_csv = adequation.run(heap_options).to_csv();
    const std::string rescan_csv = adequation.run(rescan_options).to_csv();
    const bool identical = heap_csv == rescan_csv;
    all_identical = all_identical && identical;

    const double heap_ms = time_run_ms(adequation, heap_options);
    const double rescan_ms = time_run_ms(adequation, rescan_options);
    largest_heap_ms = heap_ms;
    largest_rescan_ms = rescan_ms;
    t.row()
        .add(n)
        .add(heap_ms, 2)
        .add(rescan_ms, 2)
        .add(heap_ms > 0 ? rescan_ms / heap_ms : 0.0, 2)
        .add(identical ? "yes" : "NO");
  }
  t.print();

  if (!all_identical) {
    std::fputs("\nFAIL: engines disagree on at least one schedule\n", stderr);
    return 1;
  }
  // The acceptance gate: at the largest size the ready-queue must be
  // strictly faster than rescanning. Smoke mode keeps the equality check
  // but skips the timing assert (CI machines are too noisy at 500 ops).
  if (!smoke && largest_heap_ms >= largest_rescan_ms) {
    std::fprintf(stderr,
                 "\nFAIL: ready-queue (%.2f ms) not faster than rescanning (%.2f ms) at %d ops\n",
                 largest_heap_ms, largest_rescan_ms, sizes.back());
    return 1;
  }
  std::puts("\nschedules byte-identical across engines at every size");
  return 0;
}
