// Adequation scaling benchmark: the indexed ready-queue engine against
// the retained rescanning reference loop, on synthetic layered DAGs.
//
// For each graph size the two engines schedule the same project and the
// run asserts the schedules are byte-identical (the ready-queue is an
// index, not a different heuristic) before comparing wall-clock. The
// rescanning loop re-walks every pending operation per placement —
// O(V^2 * deg) selection — where the ready-queue pays O(V log V + E);
// the gap is the point of the table.
//
//   bench_adequation            full sizes (100 / 1000 / 5000 operations)
//   bench_adequation --smoke    CI-sized run (100 / 500), same checks

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/durations.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

aaa::DurationTable bench_durations() {
  aaa::DurationTable t;
  for (const char* kind : {"src", "work"}) {
    t.set(kind, aaa::OperatorKind::Processor, 20'000);
    t.set(kind, aaa::OperatorKind::FpgaStatic, 4'000);
  }
  for (const char* kind : {"alt_a", "alt_b"}) {
    t.set(kind, aaa::OperatorKind::Processor, 40'000);
    t.set(kind, aaa::OperatorKind::FpgaRegion, 4'000);
  }
  return t;
}

/// Random layered DAG: `width` operations per layer, every 5th a
/// conditioned vertex, 1-2 in-edges per non-source operation. Wide layers
/// keep the ready set large, which is exactly where the rescanning loop
/// hurts.
aaa::AlgorithmGraph layered_graph(int n_ops, int width, std::uint64_t seed) {
  Rng rng(seed);
  aaa::AlgorithmGraph g;
  std::vector<std::string> prev_layer;
  std::vector<std::string> layer;
  int made = 0;
  int layer_index = 0;
  while (made < n_ops) {
    layer.clear();
    for (int i = 0; i < width && made < n_ops; ++i, ++made) {
      const std::string name = "op" + std::to_string(made);
      if (layer_index == 0) {
        g.add_operation({name, "src", {}, aaa::OpClass::Sensor, {}});
      } else if (made % 5 == 0) {
        g.add_conditioned(name, {{"filt_a", "alt_a", {}}, {"filt_b", "alt_b", {}}});
      } else {
        g.add_compute(name, "work");
      }
      if (layer_index > 0) {
        const int fan_in = 1 + static_cast<int>(rng.uniform_int(0, 1));
        for (int e = 0; e < fan_in; ++e) {
          const auto& from = prev_layer[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(prev_layer.size()) - 1))];
          g.add_dependency(from, name, 128);
        }
      }
      layer.push_back(name);
    }
    prev_layer = layer;
    ++layer_index;
  }
  return g;
}

double time_run_ms(aaa::Adequation& adequation, const aaa::AdequationOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const aaa::Schedule s = adequation.run(options);
  const auto t1 = std::chrono::steady_clock::now();
  (void)s;
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<int> sizes = smoke ? std::vector<int>{100, 500}
                                       : std::vector<int>{100, 1000, 5000};

  std::puts("=== adequation engines: indexed ready-queue vs rescanning reference ===\n");
  const aaa::DurationTable durations = bench_durations();
  Table t({"operations", "heap (ms)", "rescan (ms)", "speedup", "identical"});

  bool all_identical = true;
  double largest_heap_ms = 0;
  double largest_rescan_ms = 0;
  for (const int n : sizes) {
    aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(2, 200e6);
    arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
    arch.connect("CPU", "IL");
    const aaa::AlgorithmGraph g = layered_graph(n, 20, 17);
    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });

    aaa::AdequationOptions heap_options;
    heap_options.ready_policy = aaa::ReadyPolicy::IndexedHeap;
    aaa::AdequationOptions rescan_options;
    rescan_options.ready_policy = aaa::ReadyPolicy::RescanReference;

    // Equality first (one untimed run each), then a timed second run so
    // the clocked passes see warm allocator state on both sides.
    const std::string heap_csv = adequation.run(heap_options).to_csv();
    const std::string rescan_csv = adequation.run(rescan_options).to_csv();
    const bool identical = heap_csv == rescan_csv;
    all_identical = all_identical && identical;

    const double heap_ms = time_run_ms(adequation, heap_options);
    const double rescan_ms = time_run_ms(adequation, rescan_options);
    largest_heap_ms = heap_ms;
    largest_rescan_ms = rescan_ms;
    t.row()
        .add(n)
        .add(heap_ms, 2)
        .add(rescan_ms, 2)
        .add(heap_ms > 0 ? rescan_ms / heap_ms : 0.0, 2)
        .add(identical ? "yes" : "NO");
  }
  t.print();

  if (!all_identical) {
    std::fputs("\nFAIL: engines disagree on at least one schedule\n", stderr);
    return 1;
  }
  // The acceptance gate: at the largest size the ready-queue must be
  // strictly faster than rescanning. Smoke mode keeps the equality check
  // but skips the timing assert (CI machines are too noisy at 500 ops).
  if (!smoke && largest_heap_ms >= largest_rescan_ms) {
    std::fprintf(stderr,
                 "\nFAIL: ready-queue (%.2f ms) not faster than rescanning (%.2f ms) at %d ops\n",
                 largest_heap_ms, largest_rescan_ms, sizes.back());
    return 1;
  }
  std::puts("\nschedules byte-identical across engines at every size");
  return 0;
}
