// Shared --trace-out/--metrics-out plumbing for the ablation binaries.
//
// The flags are consumed (removed from argv) before
// benchmark::Initialize sees them, since google-benchmark rejects
// unknown flags. With neither flag given the sinks stay inert: the
// ablations still attach them, at the cost of recording into unused
// in-memory buffers.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdr::benchutil {

/// Extracts "--<flag> VALUE" from argv, compacting argv in place.
/// Returns "" when absent.
inline std::string take_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    std::string value = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return value;
  }
  return "";
}

struct ObsSinks {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::string trace_path;
  std::string metrics_path;

  /// Writes whichever outputs were requested on the command line.
  void write() const {
    if (!trace_path.empty()) {
      tracer.write_chrome_json(trace_path);
      std::printf("wrote trace with %zu events to %s\n", tracer.size(), trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      metrics.write_json(metrics_path);
      std::printf("wrote %zu metrics to %s\n", metrics.names().size(), metrics_path.c_str());
    }
  }
};

/// Parses (and strips) --trace-out / --metrics-out.
inline ObsSinks parse_obs_flags(int& argc, char** argv) {
  ObsSinks sinks;
  sinks.trace_path = take_flag(argc, argv, "--trace-out");
  sinks.metrics_path = take_flag(argc, argv, "--metrics-out");
  return sinks;
}

}  // namespace pdr::benchutil
