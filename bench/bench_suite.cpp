// The canonical perf harness: one binary, four BENCH_*.json documents.
//
//   bench_suite                    full tier (1k/10k/100k/1M-op adequation,
//                                  216-point explorer sweep, fault
//                                  campaigns, cold/warm pipeline, fleet
//                                  service at 10/100/1000 devices)
//   bench_suite --smoke            CI tier: same suites, CI-sized inputs
//   bench_suite --out-dir <dir>    where BENCH_*.json land (default ".")
//   bench_suite --repeats <n>      override the per-record repeat count
//
// Each suite writes BENCH_<suite>.json (schema in src/bench/report.hpp:
// git sha, per-record config, warm-up reported separately from the
// Welford mean/stddev/min/max of the timed repeats) and prints the human
// table. Workloads come from the seeded generators in src/bench — every
// record's input is a pure function of its printed config.
//
// The adequation suite doubles as the scheduler acceptance oracle: at
// each equivalence size the indexed ready-queue engine and the retained
// rescanning reference must produce byte-identical schedules (compared
// via Schedule::to_csv), and the binary exits non-zero when they do not.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/explorer.hpp"
#include "aaa/project_io.hpp"
#include "bench/generators.hpp"
#include "bench/report.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"
#include "flow/artifact_store.hpp"
#include "flow/explorer.hpp"
#include "flow/pipeline.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "plan/planner.hpp"
#include "svc/request_log.hpp"
#include "svc/service.hpp"
#include "util/arg_parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace pdr;
using namespace pdr::literals;
using bench::BenchRecord;
using bench::GeneratorConfig;
using bench::GraphShape;

namespace {

struct SuiteOptions {
  bool smoke = false;
  std::string out_dir = ".";
  int repeats = 0;  ///< 0 = tier default
};

int default_repeats(const SuiteOptions& opts) { return opts.repeats > 0 ? opts.repeats : (opts.smoke ? 1 : 3); }
int default_warmup(const SuiteOptions& opts) { return opts.smoke ? 0 : 1; }

void push_generator_config(BenchRecord& rec, const GeneratorConfig& cfg, int regions, int cpus) {
  rec.config.emplace_back("shape", bench::graph_shape_name(cfg.shape));
  rec.config.emplace_back("n_ops", std::to_string(cfg.n_ops));
  rec.config.emplace_back("width", std::to_string(cfg.width));
  rec.config.emplace_back("fanout", std::to_string(cfg.fanout));
  rec.config.emplace_back("seed", std::to_string(cfg.seed));
  rec.config.emplace_back("regions", std::to_string(regions));
  rec.config.emplace_back("cpus", std::to_string(cpus));
}

// --- suite: adequation ----------------------------------------------------

/// Workload sizes per tier. The full tier walks the roadmap ladder
/// (1k/10k/100k/1M); smoke keeps CI under a couple of seconds per record.
std::vector<GeneratorConfig> adequation_configs(bool smoke) {
  std::vector<GeneratorConfig> configs;
  const std::vector<int> layered_sizes =
      smoke ? std::vector<int>{1'000, 5'000}
            : std::vector<int>{1'000, 10'000, 100'000, 1'000'000};
  for (const int n : layered_sizes) {
    GeneratorConfig cfg;
    cfg.shape = GraphShape::Layered;
    cfg.n_ops = n;
    cfg.width = 20;
    configs.push_back(cfg);
  }
  for (const GraphShape shape : {GraphShape::Random, GraphShape::Streaming}) {
    GeneratorConfig cfg;
    cfg.shape = shape;
    cfg.n_ops = smoke ? 1'000 : 10'000;
    cfg.width = shape == GraphShape::Streaming ? 8 : 20;
    configs.push_back(cfg);
  }
  return configs;
}

std::vector<BenchRecord> run_adequation_suite(const SuiteOptions& opts, bool& identical_ok) {
  const int regions = 4;
  const int cpus = 2;
  const aaa::ArchitectureGraph arch = bench::bench_architecture(regions, cpus);
  const aaa::DurationTable durations = bench::bench_durations();
  std::vector<BenchRecord> records;

  for (const GeneratorConfig& cfg : adequation_configs(opts.smoke)) {
    std::printf("  generating %s ...\n", cfg.name().c_str());
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
    const aaa::Adequation adequation(g, arch, durations);
    aaa::AdequationOptions run_opts;
    run_opts.ready_policy = aaa::ReadyPolicy::IndexedHeap;
    aaa::Schedule last;
    BenchRecord rec =
        bench::measure("adequation/" + cfg.name(), default_warmup(opts), default_repeats(opts),
                       [&] { last = adequation.run(run_opts); });
    push_generator_config(rec, cfg, regions, cpus);
    rec.config.emplace_back("ready_policy", "indexed_heap");
    if (const auto mean = rec.wall_ms.opt_mean(); mean && *mean > 0)
      rec.extra.emplace_back("ops_per_sec", cfg.n_ops / (*mean / 1e3));
    rec.extra.emplace_back("schedule_items", static_cast<double>(last.size()));
    rec.extra.emplace_back("makespan_ms", static_cast<double>(last.makespan) / 1e6);
    records.push_back(std::move(rec));
    std::printf("  %-34s mean %.2f ms\n", records.back().name.c_str(),
                records.back().wall_ms.mean());
  }

  // Equivalence oracle: indexed engine vs the rescanning reference, byte
  // for byte, at a small and a large size. The large full-tier point
  // (100k ops) is the acceptance criterion for the hot-path work.
  const std::vector<int> equiv_sizes =
      opts.smoke ? std::vector<int>{1'000, 5'000} : std::vector<int>{1'000, 100'000};
  for (const int n : equiv_sizes) {
    GeneratorConfig cfg;
    cfg.shape = GraphShape::Layered;
    cfg.n_ops = n;
    cfg.width = 20;
    std::printf("  equivalence check at %d ops ...\n", n);
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
    const aaa::Adequation adequation(g, arch, durations);
    aaa::AdequationOptions heap_opts;
    heap_opts.ready_policy = aaa::ReadyPolicy::IndexedHeap;
    aaa::AdequationOptions rescan_opts;
    rescan_opts.ready_policy = aaa::ReadyPolicy::RescanReference;

    std::string heap_csv;
    std::string rescan_csv;
    BenchRecord heap_rec = bench::measure("adequation/equiv-heap/" + cfg.name(), 0, 1,
                                          [&] { heap_csv = adequation.run(heap_opts).to_csv(); });
    BenchRecord rescan_rec =
        bench::measure("adequation/equiv-rescan/" + cfg.name(), 0, 1,
                       [&] { rescan_csv = adequation.run(rescan_opts).to_csv(); });
    const bool identical = heap_csv == rescan_csv;
    identical_ok = identical_ok && identical;

    push_generator_config(heap_rec, cfg, regions, cpus);
    heap_rec.config.emplace_back("ready_policy", "indexed_heap");
    push_generator_config(rescan_rec, cfg, regions, cpus);
    rescan_rec.config.emplace_back("ready_policy", "rescan_reference");
    const double heap_ms = heap_rec.wall_ms.mean();
    const double rescan_ms = rescan_rec.wall_ms.mean();
    heap_rec.extra.emplace_back("identical", identical ? 1.0 : 0.0);
    if (heap_ms > 0) heap_rec.extra.emplace_back("speedup_vs_rescan", rescan_ms / heap_ms);
    rescan_rec.extra.emplace_back("identical", identical ? 1.0 : 0.0);
    records.push_back(std::move(heap_rec));
    records.push_back(std::move(rescan_rec));
    std::printf("  equiv %-28s heap %.2f ms  rescan %.2f ms  %s\n", cfg.name().c_str(), heap_ms,
                rescan_ms, identical ? "identical" : "DIFFERENT");
  }
  return records;
}

// --- suite: explore -------------------------------------------------------

std::vector<BenchRecord> run_explore_suite(const SuiteOptions& opts) {
  const int regions = 2;
  const int cpus = 2;
  GeneratorConfig cfg;
  cfg.shape = GraphShape::Layered;
  cfg.n_ops = opts.smoke ? 100 : 200;
  cfg.width = 10;

  aaa::Project project;
  project.name = "bench-explore";
  project.algorithm = bench::generate_graph(cfg);
  project.architecture = bench::bench_architecture(regions, cpus);
  project.durations = bench::bench_durations();

  // First conditioned vertices of the generated graph, in id order — the
  // selection axis. (ExplorationSpace::from_project would put EVERY
  // conditioned vertex on the axis and the cross product explodes; the
  // bench pins the axis width so the point count is a config constant.)
  std::vector<std::string> conditioned;
  for (const graph::NodeId n : project.algorithm.digraph().node_ids()) {
    if (project.algorithm.op(n).conditioned()) conditioned.push_back(project.algorithm.op(n).name);
    if (conditioned.size() == 2) break;
  }
  PDR_CHECK(conditioned.size() == 2, "bench_suite", "generated graph lacks conditioned vertices");

  aaa::ExplorationSpace space;
  space.strategies = opts.smoke
                         ? std::vector<aaa::MappingStrategy>{aaa::MappingStrategy::SynDExList}
                         : std::vector<aaa::MappingStrategy>{aaa::MappingStrategy::SynDExList,
                                                             aaa::MappingStrategy::RoundRobin,
                                                             aaa::MappingStrategy::FirstFeasible};
  space.prefetch = {true, false};
  space.preloads = {{"D1", {"", "filt_a", "filt_b"}}};
  if (!opts.smoke) space.preloads.push_back({"D2", {"", "filt_a", "filt_b"}});
  space.selections = {{conditioned[0], {"filt_a", "filt_b"}},
                      {conditioned[1], {"filt_a", "filt_b"}}};
  const std::size_t points = space.point_count();

  flow::ExplorerOptions explorer_opts;
  explorer_opts.jobs = 1;  // serial: points/sec per core is the tracked figure
  const flow::DesignSpaceExplorer explorer(project, space, explorer_opts);

  std::size_t pareto = 0;
  std::size_t failed = 0;
  BenchRecord rec = bench::measure(
      strprintf("explore/%s/points%zu", cfg.name().c_str(), points), default_warmup(opts),
      default_repeats(opts), [&] {
        const flow::ExplorationReport report = explorer.run();
        pareto = report.pareto.size();
        failed = report.failed_points();
      });
  push_generator_config(rec, cfg, regions, cpus);
  rec.config.emplace_back("points", std::to_string(points));
  rec.config.emplace_back("jobs", "1");
  if (const auto mean = rec.wall_ms.opt_mean(); mean && *mean > 0)
    rec.extra.emplace_back("points_per_sec", static_cast<double>(points) / (*mean / 1e3));
  rec.extra.emplace_back("pareto_points", static_cast<double>(pareto));
  rec.extra.emplace_back("failed_points", static_cast<double>(failed));
  std::printf("  %-34s mean %.2f ms (%zu points)\n", rec.name.c_str(), rec.wall_ms.mean(), points);
  return {std::move(rec)};
}

// --- suite: floorplan -----------------------------------------------------

// The automatic floorplanner on a generated project: the tracked figure
// is schedules-evaluated-per-second of the co-optimization loop (each
// evaluation is a full adequation run under re-priced reconfig costs).
std::vector<BenchRecord> run_floorplan_suite(const SuiteOptions& opts) {
  const int regions = 2;
  const int cpus = 2;
  GeneratorConfig cfg;
  cfg.shape = GraphShape::Layered;
  cfg.n_ops = opts.smoke ? 100 : 200;
  cfg.width = 10;

  aaa::Project project;
  project.name = "bench-floorplan";
  project.algorithm = bench::generate_graph(cfg);
  project.architecture = bench::bench_architecture(regions, cpus);
  project.durations = bench::bench_durations();

  plan::PlanOptions plan_opts;
  plan_opts.max_rounds = opts.smoke ? 8 : 64;

  plan::PlanResult last;
  BenchRecord rec = bench::measure(
      strprintf("floorplan/%s/regions%d", cfg.name().c_str(), regions), default_warmup(opts),
      default_repeats(opts), [&] { last = plan::plan_floorplan(project, plan_opts); });
  push_generator_config(rec, cfg, regions, cpus);
  rec.config.emplace_back("max_rounds", std::to_string(plan_opts.max_rounds));
  rec.extra.emplace_back("schedules_evaluated", static_cast<double>(last.evaluated));
  if (const auto mean = rec.wall_ms.opt_mean(); mean && *mean > 0)
    rec.extra.emplace_back("evals_per_sec",
                           static_cast<double>(last.evaluated) / (*mean / 1e3));
  rec.extra.emplace_back("makespan_ms", static_cast<double>(last.makespan) / 1e6);
  rec.extra.emplace_back("lint_errors", static_cast<double>(last.lint.errors()));
  rec.extra.emplace_back("certified", last.certified ? 1.0 : 0.0);
  std::printf("  %-34s mean %.2f ms (%d evals)\n", rec.name.c_str(), rec.wall_ms.mean(),
              last.evaluated);
  return {std::move(rec)};
}

// --- suite: flow (pipeline + fault campaigns) -----------------------------

std::vector<BenchRecord> run_flow_suite(const SuiteOptions& opts) {
  std::vector<BenchRecord> records;
  const flow::PipelineOptions pipeline_opts = mccdma::case_study_pipeline().options();
  const auto drive = [](flow::Pipeline& p) {
    p.bundle();
    p.adequation();
    p.codegen();
  };

  // Cold: every repeat starts from an empty artifact store, so each run
  // pays constraints parse + Modular Design flow + adequation + codegen.
  {
    BenchRecord rec =
        bench::measure("flow/pipeline-cold", 0, default_repeats(opts), [&] {
          auto store = std::make_shared<flow::ArtifactStore>();
          flow::Pipeline pipeline(pipeline_opts, store);
          drive(pipeline);
        });
    rec.config.emplace_back("pipeline", "case_study");
    rec.config.emplace_back("store", "cold");
    std::printf("  %-34s mean %.2f ms\n", rec.name.c_str(), rec.wall_ms.mean());
    records.push_back(std::move(rec));
  }

  // Warm: one shared store; the single warm-up run populates it and the
  // timed repeats measure pure cache service.
  {
    auto store = std::make_shared<flow::ArtifactStore>();
    BenchRecord rec = bench::measure("flow/pipeline-warm", 1, default_repeats(opts), [&] {
      flow::Pipeline pipeline(pipeline_opts, store);
      drive(pipeline);
    });
    rec.config.emplace_back("pipeline", "case_study");
    rec.config.emplace_back("store", "warm");
    std::printf("  %-34s mean %.2f ms\n", rec.name.c_str(), rec.wall_ms.mean());
    records.push_back(std::move(rec));
  }

  // Fault campaigns: seeded end-to-end runs on the case-study bundle.
  {
    const int horizon_ms = opts.smoke ? 20 : 100;
    const int campaigns_per_repeat = opts.smoke ? 2 : 4;
    const std::string spec_text = strprintf(
        "seed 7\n"
        "horizon_ms %d\n"
        "seu D1 rate 200\n"
        "port abort_prob 0.05\n"
        "fetch corrupt qam16 prob 0.2\n",
        horizon_ms);
    const fault::FaultSpec spec = fault::parse_fault_spec(spec_text);
    const synth::DesignBundle& bundle = mccdma::shared_case_study().bundle;
    BenchRecord rec = bench::measure(
        strprintf("flow/fault-campaigns/h%dms", horizon_ms), default_warmup(opts),
        default_repeats(opts), [&] {
          for (int s = 0; s < campaigns_per_repeat; ++s) {
            rtr::BitstreamStore store = mccdma::make_case_study_store();
            fault::CampaignConfig config;
            config.seed = static_cast<std::uint64_t>(s + 1);
            (void)fault::run_campaign(bundle, store, spec, config);
          }
        });
    rec.config.emplace_back("horizon_ms", std::to_string(horizon_ms));
    rec.config.emplace_back("campaigns_per_repeat", std::to_string(campaigns_per_repeat));
    rec.config.emplace_back("recovery", "on");
    if (const auto mean = rec.wall_ms.opt_mean(); mean && *mean > 0)
      rec.extra.emplace_back("campaigns_per_sec", campaigns_per_repeat / (*mean / 1e3));
    std::printf("  %-34s mean %.2f ms\n", rec.name.c_str(), rec.wall_ms.mean());
    records.push_back(std::move(rec));
  }
  return records;
}

// --- suite: service (fleet reconfiguration service) -----------------------

std::vector<BenchRecord> run_service_suite(const SuiteOptions& opts) {
  std::vector<BenchRecord> records;
  const synth::DesignBundle& bundle = mccdma::shared_case_study().bundle;
  std::vector<std::pair<std::string, std::vector<std::string>>> catalog;
  for (const auto& [region, variants] : bundle.dynamic_variants)
    catalog.emplace_back(region, bundle.variant_names(region));

  // Fleet sizes ride the roadmap ladder; the tracked figure is request
  // throughput (virtual requests drained per wall-clock second).
  const std::vector<int> fleet_sizes =
      opts.smoke ? std::vector<int>{10, 100} : std::vector<int>{10, 100, 1000};
  for (const int devices : fleet_sizes) {
    svc::TrafficOptions traffic;
    traffic.devices = devices;
    traffic.requests = devices * (opts.smoke ? 5 : 10);
    traffic.seed = 21;
    traffic.horizon = 200_ms;
    traffic.deadline = 50_ms;
    const svc::RequestLog log = svc::generate_request_log(traffic, catalog);

    svc::ServiceReport last;
    BenchRecord rec = bench::measure(
        strprintf("service/fleet%d/req%d", devices, traffic.requests), default_warmup(opts),
        default_repeats(opts), [&] {
          svc::ServiceConfig config;
          config.jobs = 4;
          svc::FleetService service(bundle, config);
          last = service.run(log);
        });
    rec.config.emplace_back("devices", std::to_string(devices));
    rec.config.emplace_back("requests", std::to_string(traffic.requests));
    rec.config.emplace_back("seed", std::to_string(traffic.seed));
    rec.config.emplace_back("jobs", "4");
    if (const auto mean = rec.wall_ms.opt_mean(); mean && *mean > 0)
      rec.extra.emplace_back("requests_per_sec",
                             static_cast<double>(traffic.requests) / (*mean / 1e3));
    rec.extra.emplace_back("completed", static_cast<double>(last.completed));
    rec.extra.emplace_back("rejected_queue_full", static_cast<double>(last.rejected_queue_full));
    rec.extra.emplace_back("cache_fetches", static_cast<double>(last.cache.fetches));
    std::printf("  %-34s mean %.2f ms\n", rec.name.c_str(), rec.wall_ms.mean());
    records.push_back(std::move(rec));
  }
  return records;
}

void write_suite(const SuiteOptions& opts, const std::string& suite,
                 const std::vector<BenchRecord>& records) {
  std::printf("\n%s\n", bench::bench_table(records).c_str());
  bench::write_bench_json(opts.out_dir + "/BENCH_" + suite + ".json", suite, opts.smoke, records);
}

}  // namespace

int main(int argc, char** argv) {
  // Line-buffered even when redirected, so CI logs show per-record
  // progress while the full tier's multi-minute records run.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  try {
    const util::ArgParser args("bench_suite", argc - 1, argv + 1,
                               {{"--smoke", false}, {"--out-dir", true}, {"--repeats", true}}, 0);
    SuiteOptions opts;
    opts.smoke = args.has("--smoke");
    opts.out_dir = args.string_or("--out-dir", ".");
    opts.repeats = static_cast<int>(args.uint_or("--repeats", 0));

    std::printf("=== bench_suite (%s tier, %d repeats, git %s) ===\n",
                opts.smoke ? "smoke" : "full", default_repeats(opts), bench::git_sha().c_str());

    std::printf("\n--- adequation ---\n");
    bool identical_ok = true;
    write_suite(opts, "adequation", run_adequation_suite(opts, identical_ok));

    std::printf("\n--- explore ---\n");
    write_suite(opts, "explore", run_explore_suite(opts));

    std::printf("\n--- floorplan ---\n");
    write_suite(opts, "floorplan", run_floorplan_suite(opts));

    std::printf("\n--- flow ---\n");
    write_suite(opts, "flow", run_flow_suite(opts));

    std::printf("\n--- service ---\n");
    write_suite(opts, "service", run_service_suite(opts));

    if (!identical_ok) {
      std::fputs("\nFAIL: indexed and rescanning engines disagree on a schedule\n", stderr);
      return 1;
    }
    std::puts("\nall schedules byte-identical across engines");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_suite: %s\n", e.what());
    return 1;
  }
}
