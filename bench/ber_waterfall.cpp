// Evaluation: BER waterfall of the transmitter chain.
//
// The case study's adaptive thresholds (switch up at 14 dB, down at
// 10 dB) only make sense if the underlying link behaves: this bench
// regenerates the BER-vs-SNR curves for QPSK and QAM-16 through the full
// MC-CDMA chain (spreading + OFDM), over AWGN and over an equalized
// multipath channel, against the Gray-coding theory curves.
//
// Each Eb/N0 point runs as one ScenarioRunner scenario; --jobs N
// parallelizes the grid without changing the printed tables.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "dsp/convcode.hpp"
#include "flow/scenario.hpp"
#include "mccdma/channel.hpp"
#include "mccdma/modulation.hpp"
#include "mccdma/receiver.hpp"
#include "mccdma/transmitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace pdr;

namespace {

/// Channel Es/N0 (per OFDM sample) that yields the target post-detector
/// Eb/N0. Two conversions stack: Es = Eb * bits/symbol, and despreading
/// a partially-loaded MC-CDMA system (users < SF) collects a processing
/// gain of SF/users that must be pre-subtracted for the detector to see
/// exactly the target Eb/N0.
double esn0_db(double ebn0_db, int bits_per_symbol, const mccdma::McCdmaParams& p) {
  return ebn0_db + 10.0 * std::log10(static_cast<double>(bits_per_symbol)) -
         10.0 * std::log10(static_cast<double>(p.spreading_factor) / p.n_users);
}

double measure_ber(const std::string& modulation, double ebn0_db, bool multipath,
                   std::uint64_t seed, int symbols) {
  mccdma::McCdmaParams p;
  mccdma::Transmitter tx(p);
  mccdma::Receiver rx(p);
  tx.select_modulation(modulation);
  rx.select_modulation(modulation);
  const int bits = mccdma::make_modulator(modulation)->bits_per_symbol();

  mccdma::AwgnChannel awgn{Rng(seed)};
  Rng taps_rng(seed ^ 0x5555);
  mccdma::MultipathChannel fading(
      mccdma::MultipathChannel::exponential_profile(8, 2.0, taps_rng), Rng(seed + 1));
  if (multipath) rx.set_channel_response(fading.frequency_response(p.n_subcarriers));

  mccdma::BerReport report;
  for (int k = 0; k < symbols; ++k) {
    const auto sym = tx.next_symbol();
    const auto noisy = multipath ? fading.apply(sym.samples, esn0_db(ebn0_db, bits, p))
                                 : awgn.apply(sym.samples, esn0_db(ebn0_db, bits, p));
    rx.measure(noisy, sym.user_bits, report);
  }
  return report.ber();
}

void print_waterfall(int jobs) {
  std::puts("=== BER waterfall: MC-CDMA chain vs Gray-coding theory ===");
  std::puts("(AWGN column should track theory; the equalized 8-tap multipath");
  std::puts(" channel pays an SNR penalty on faded subcarriers)\n");
  // One Eb/N0 point per scenario (each seeded measurement is pure), rows
  // rendered in point order afterwards — --jobs N leaves stdout unchanged.
  const double points[] = {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0};
  struct Row {
    std::string qpsk_awgn, qpsk_multi, qam16_awgn, qam16_multi;
  };
  std::vector<Row> slots(std::size(points));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(points); ++i) {
    scenarios.push_back(
        {strprintf("ebn0=%.0f", points[i]), [&points, &slots, i](flow::ObsSinks&) {
           const int symbols = 400;
           const double ebn0 = points[i];
           slots[i] = Row{strprintf("%.1e", measure_ber("qpsk", ebn0, false, 100, symbols)),
                          strprintf("%.1e", measure_ber("qpsk", ebn0, true, 200, symbols)),
                          strprintf("%.1e", measure_ber("qam16", ebn0, false, 300, symbols)),
                          strprintf("%.1e", measure_ber("qam16", ebn0, true, 400, symbols))};
           return std::string();
         }});
  }
  flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"Eb/N0 (dB)", "qpsk theory", "qpsk awgn", "qpsk multipath", "qam16 theory",
           "qam16 awgn", "qam16 multipath"});
  for (std::size_t i = 0; i < std::size(points); ++i) {
    t.row()
        .add(points[i], 0)
        .add(strprintf("%.1e", mccdma::theoretical_ber("qpsk", points[i])))
        .add(slots[i].qpsk_awgn)
        .add(slots[i].qpsk_multi)
        .add(strprintf("%.1e", mccdma::theoretical_ber("qam16", points[i])))
        .add(slots[i].qam16_awgn)
        .add(slots[i].qam16_multi);
  }
  t.print();
  std::puts("\n(the ~4 dB gap between the qpsk and qam16 curves is what the");
  std::puts(" adaptive controller's 10/14 dB hysteresis thresholds straddle)\n");
}

/// Coded BER: K=7 rate-1/2 convolutional code over the full chain. The
/// channel Es/N0 additionally drops by the code rate (each information
/// bit is spread over 2 channel bits).
double measure_coded_ber(const std::string& modulation, double ebn0_db, std::uint64_t seed,
                         int blocks) {
  mccdma::McCdmaParams p;
  mccdma::Transmitter tx(p);
  mccdma::Receiver rx(p);
  tx.select_modulation(modulation);
  rx.select_modulation(modulation);
  const int bits = mccdma::make_modulator(modulation)->bits_per_symbol();
  const dsp::ConvolutionalCode code = dsp::ConvolutionalCode::k7_rate_half();
  const double rate = 1.0 / static_cast<double>(code.rate_denominator());
  const double snr = esn0_db(ebn0_db, bits, p) + 10.0 * std::log10(rate);

  mccdma::AwgnChannel channel{Rng(seed)};
  Rng bitgen(seed + 7);
  const std::size_t bits_per_user = tx.bits_per_user_symbol();
  std::uint64_t errors = 0, total = 0;

  for (int blk = 0; blk < blocks; ++blk) {
    // One information block per user, coded, carried over several symbols.
    const std::size_t info_len = 4 * bits_per_user - 20;  // leaves room for the tail
    std::vector<std::vector<std::uint8_t>> info(p.n_users);
    std::vector<std::vector<std::uint8_t>> coded(p.n_users);
    for (std::size_t u = 0; u < p.n_users; ++u) {
      info[u].resize(info_len);
      for (auto& b : info[u]) b = static_cast<std::uint8_t>(bitgen.uniform_int(0, 1));
      coded[u] = code.encode(info[u]);
      coded[u].resize(8 * bits_per_user, 0);  // pad to a whole symbol count
    }
    std::vector<std::vector<std::uint8_t>> received(p.n_users);
    for (std::size_t sym = 0; sym < 8; ++sym) {
      std::vector<std::vector<std::uint8_t>> chunk(p.n_users);
      for (std::size_t u = 0; u < p.n_users; ++u)
        chunk[u].assign(coded[u].begin() + static_cast<std::ptrdiff_t>(sym * bits_per_user),
                        coded[u].begin() + static_cast<std::ptrdiff_t>((sym + 1) * bits_per_user));
      const auto txsym = tx.make_symbol(chunk);
      const auto rxbits = rx.receive(channel.apply(txsym.samples, snr));
      for (std::size_t u = 0; u < p.n_users; ++u)
        received[u].insert(received[u].end(), rxbits[u].begin(), rxbits[u].end());
    }
    for (std::size_t u = 0; u < p.n_users; ++u) {
      received[u].resize(code.encode(info[u]).size());  // strip the padding
      const auto decoded = code.decode(received[u]);
      for (std::size_t i = 0; i < info_len; ++i)
        if (decoded[i] != info[u][i]) ++errors;
      total += info_len;
    }
  }
  return static_cast<double>(errors) / static_cast<double>(total);
}

void print_coding_gain(int jobs) {
  std::puts("=== coding gain: K=7 rate-1/2 convolutional + Viterbi, QPSK chain ===\n");
  const double points[] = {2.0, 4.0, 6.0, 8.0};
  struct Row {
    std::string uncoded, coded;
  };
  std::vector<Row> slots(std::size(points));
  std::vector<flow::Scenario> scenarios;
  for (std::size_t i = 0; i < std::size(points); ++i) {
    scenarios.push_back(
        {strprintf("coded/ebn0=%.0f", points[i]), [&points, &slots, i](flow::ObsSinks&) {
           slots[i] = Row{strprintf("%.1e", measure_ber("qpsk", points[i], false, 500, 400)),
                          strprintf("%.1e", measure_coded_ber("qpsk", points[i], 600, 12))};
           return std::string();
         }});
  }
  flow::ScenarioRunner(jobs).run(scenarios);

  Table t({"Eb/N0 (dB)", "uncoded", "coded (hard Viterbi)"});
  for (std::size_t i = 0; i < std::size(points); ++i)
    t.row().add(points[i], 0).add(slots[i].uncoded).add(slots[i].coded);
  t.print();
  std::puts("\n(hard-decision Viterbi buys ~3 dB at moderate SNR despite the");
  std::puts(" halved information rate already being charged to Eb/N0)\n");
}

void BM_BerPointQpsk(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_ber("qpsk", 6.0, false, 7, 50));
}
BENCHMARK(BM_BerPointQpsk)->Unit(benchmark::kMillisecond);

void BM_BerPointMultipath(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_ber("qam16", 10.0, true, 9, 50));
}
BENCHMARK(BM_BerPointMultipath)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int jobs = flow::jobs_from_argv(argc, argv, 1);
  print_waterfall(jobs);
  print_coding_gain(jobs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
