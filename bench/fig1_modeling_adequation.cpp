// Paper Figure 1: modeling runtime-reconfigurable parts of an FPGA as
// operators of the architecture graph (D1, D2 next to the fixed part F1,
// joined by the internal link IL).
//
// The figure itself is a model; what we regenerate is its consequence:
// how the adequation behaves when dynamic regions are added to the
// architecture. The series show, for random layered data-flow graphs with
// conditioned vertices,
//   - makespan vs. number of dynamic regions (regions add exploitable
//     parallelism for conditioned operations),
//   - reconfigurations inserted and latency exposed (prefetch on/off),
//   - heuristic runtime vs. graph size (the google-benchmark part).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "aaa/adequation.hpp"
#include "aaa/durations.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

aaa::DurationTable generic_durations() {
  aaa::DurationTable t;
  for (const char* kind : {"src", "work"}) {
    t.set(kind, aaa::OperatorKind::Processor, 20'000);
    t.set(kind, aaa::OperatorKind::FpgaStatic, 4'000);
  }
  // The conditioned alternatives are hardware modules: fast in a dynamic
  // region, an order of magnitude slower in software, with no fixed-part
  // implementation (both alternatives at once would not fit).
  for (const char* kind : {"alt_a", "alt_b"}) {
    t.set(kind, aaa::OperatorKind::Processor, 40'000);
    t.set(kind, aaa::OperatorKind::FpgaRegion, 4'000);
  }
  return t;
}

/// Random layered DAG with `n_ops` operations, every 5th being a
/// conditioned vertex. All conditioned vertices share the same two module
/// alternatives (filt_a / filt_b), so a region that already holds the
/// right module serves later vertices without reloading — the reuse that
/// makes dynamic regions worthwhile.
aaa::AlgorithmGraph random_graph(int n_ops, std::uint64_t seed) {
  Rng rng(seed);
  aaa::AlgorithmGraph g;
  const int width = 5;
  std::vector<std::string> prev_layer;
  std::vector<std::string> layer;
  int made = 0;
  int layer_index = 0;
  while (made < n_ops) {
    layer.clear();
    for (int i = 0; i < width && made < n_ops; ++i, ++made) {
      const std::string name = "op" + std::to_string(made);
      if (layer_index == 0) {
        g.add_operation({name, "src", {}, aaa::OpClass::Sensor, {}});
      } else if (made % 5 == 0) {
        g.add_conditioned(name, {{"filt_a", "alt_a", {}}, {"filt_b", "alt_b", {}}});
      } else {
        g.add_compute(name, "work");
      }
      if (layer_index > 0) {
        const auto& from = prev_layer[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prev_layer.size()) - 1))];
        g.add_dependency(from, name, 128);
      }
      layer.push_back(name);
    }
    prev_layer = layer;
    ++layer_index;
  }
  return g;
}

/// Names of the conditioned vertices of a graph.
std::vector<std::string> conditioned_names(const aaa::AlgorithmGraph& g) {
  std::vector<std::string> out;
  for (auto n : g.digraph().node_ids())
    if (g.op(n).conditioned()) out.push_back(g.op(n).name);
  return out;
}

void print_region_series() {
  std::puts("=== Figure 1 consequence: adequation vs. number of dynamic regions ===");
  std::puts("(random 60-op graph, 12 conditioned vertices, reconfig 1 ms)\n");
  const aaa::DurationTable durations = generic_durations();
  Table t({"regions", "makespan (us)", "reconfigs", "exposed (us)",
           "makespan no-prefetch (us)"});
  for (int regions : {0, 1, 2, 4}) {
    aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(regions, 200e6);
    // Add a processor: the fallback implementation of conditioned vertices
    // when no region exists (regions = 0 row).
    arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
    arch.connect("CPU", "IL");
    const aaa::AlgorithmGraph g = random_graph(60, 7);
    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });

    // The constraints file pins dynamic modules to regions: module
    // filt_a lives in D1, filt_b in D2 (wrapping when fewer regions).
    aaa::AdequationOptions options;
    int idx = 0;
    for (const auto& name : conditioned_names(g)) {
      const bool use_a = (idx % 2) == 0;
      options.selection[name] = use_a ? "filt_a" : "filt_b";
      if (regions > 0)
        adequation.pin(name, "D" + std::to_string(1 + (use_a ? 0 : 1) % regions));
      ++idx;
    }
    const aaa::Schedule with = adequation.run(options);
    aaa::AdequationOptions off = options;
    off.prefetch = false;
    const aaa::Schedule without = adequation.run(off);
    t.row()
        .add(regions)
        .add(to_us(with.makespan), 1)
        .add(with.reconfig_count)
        .add(to_us(with.reconfig_exposed), 1)
        .add(to_us(without.makespan), 1);
  }
  t.print();
  std::puts("\n(regions = 0: software fallback. One region ping-pongs between the");
  std::puts(" two modules, paying a reconfiguration per alternation; with D1 and D2");
  std::puts(" each module keeps its own region — two loads total, as in Figure 1)\n");
}

void print_size_series() {
  std::puts("=== adequation scaling: makespan and placements vs. graph size ===\n");
  const aaa::DurationTable durations = generic_durations();
  Table t({"operations", "makespan (us)", "ops on FPGA", "ops on CPU", "transfers"});
  for (int n : {20, 50, 100, 200}) {
    aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(2, 200e6);
    arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
    arch.connect("CPU", "IL");
    const aaa::AlgorithmGraph g = random_graph(n, 11);
    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });
    const aaa::Schedule s = adequation.run();
    int on_cpu = 0;
    int transfers = 0;
    for (const auto sym : s.placement)
      if (sym != util::kNoSymbol && s.name(sym) == "CPU") ++on_cpu;
    for (std::size_t i = 0; i < s.size(); ++i)
      if (s.kind(i) == aaa::ItemKind::Transfer) ++transfers;
    t.row()
        .add(n)
        .add(to_us(s.makespan), 1)
        .add(static_cast<int>(s.placement_count()) - on_cpu)
        .add(on_cpu)
        .add(transfers);
  }
  t.print();
  std::puts("");
}

void print_strategy_series() {
  std::puts("=== heuristic quality: SynDEx list scheduling vs naive baselines ===\n");
  const aaa::DurationTable durations = generic_durations();
  Table t({"operations", "syndex (us)", "round robin (us)", "first feasible (us)",
           "naive/syndex"});
  for (int n : {20, 50, 100}) {
    aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(2, 200e6);
    arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
    arch.connect("CPU", "IL");
    const aaa::AlgorithmGraph g = random_graph(n, 23);
    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });

    double per_strategy[3] = {0, 0, 0};
    const aaa::MappingStrategy strategies[3] = {aaa::MappingStrategy::SynDExList,
                                                aaa::MappingStrategy::RoundRobin,
                                                aaa::MappingStrategy::FirstFeasible};
    for (int s = 0; s < 3; ++s) {
      aaa::AdequationOptions options;
      options.strategy = strategies[s];
      per_strategy[s] = to_us(adequation.run(options).makespan);
    }
    t.row()
        .add(n)
        .add(per_strategy[0], 1)
        .add(per_strategy[1], 1)
        .add(per_strategy[2], 1)
        .add(per_strategy[1] / per_strategy[0], 2);
  }
  t.print();
  std::puts("\n(the adequation's whole value is this gap: naive mapping pays slow");
  std::puts(" software operators and avoidable transfers)\n");
}

void BM_Adequation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const aaa::DurationTable durations = generic_durations();
  aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(2, 200e6);
  arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  arch.connect("CPU", "IL");
  const aaa::AlgorithmGraph g = random_graph(n, 3);
  aaa::Adequation adequation(g, arch, durations);
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(adequation.run());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Adequation)->Arg(20)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond)->Complexity();

void BM_RandomGraphConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_graph(static_cast<int>(state.range(0)), 5));
  }
}
BENCHMARK(BM_RandomGraphConstruction)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  print_region_series();
  print_size_series();
  print_strategy_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
