// Paper Figure 2: "Different ways to reconfigure dynamic parts of a FPGA".
//
// The labels M (configuration manager) and P (protocol configuration
// builder) move between the FPGA's fixed part and the CPU; "locations of
// these functionalities have a direct impact on the reconfiguration
// latency". We regenerate that as latency tables:
//   - per scenario (a: standalone self-reconfiguration through ICAP,
//     b: processor-hosted through SelectMAP, plus intermediates and JTAG),
//   - per module size (region width sweep), showing how the ranking
//     holds as partial bitstreams grow,
//   - for two bitstream memories (the slow case-study flash and a fast
//     local SRAM), showing when the memory masks the M/P placement.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mccdma/case_study.hpp"
#include "rtr/manager.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

struct Scenario {
  const char* label;
  aaa::Placement manager;
  aaa::Placement builder;
  fabric::PortKind port;
};

const Scenario kScenarios[] = {
    {"a)  M=FPGA P=FPGA ICAP", aaa::Placement::Fpga, aaa::Placement::Fpga, fabric::PortKind::Icap},
    {"a') M=FPGA P=FPGA SelectMAP", aaa::Placement::Fpga, aaa::Placement::Fpga,
     fabric::PortKind::SelectMap},
    {"b)  M=CPU  P=CPU  SelectMAP", aaa::Placement::Cpu, aaa::Placement::Cpu,
     fabric::PortKind::SelectMap},
    {"b') M=CPU  P=FPGA SelectMAP", aaa::Placement::Cpu, aaa::Placement::Fpga,
     fabric::PortKind::SelectMap},
    {"c)  M=CPU  P=CPU  JTAG", aaa::Placement::Cpu, aaa::Placement::Cpu, fabric::PortKind::Jtag},
};

rtr::ManagerConfig config_of(const Scenario& s) {
  rtr::ManagerConfig cfg;
  cfg.manager = s.manager;
  cfg.builder = s.builder;
  cfg.port_kind = s.port;
  return cfg;
}

void print_scenario_table(const mccdma::CaseStudy& cs) {
  for (const bool fast_memory : {false, true}) {
    std::printf("=== Figure 2: cold reconfiguration latency of Op_Dyn (%s) ===\n\n",
                fast_memory ? "fast local SRAM, 200 MB/s" : "case-study memory, 16.7 MB/s");
    Table t({"scenario", "cold (ms)", "staged (ms)", "vs case a (x)"});
    double base = 0;
    for (const auto& s : kScenarios) {
      rtr::BitstreamStore store =
          fast_memory ? rtr::BitstreamStore(200e6, 1000) : mccdma::make_case_study_store();
      rtr::NonePrefetch policy;
      rtr::ReconfigManager manager(cs.bundle, config_of(s), store, policy);
      const double cold = to_ms(manager.cold_load_latency("qam16"));
      const double staged = to_ms(manager.staged_load_latency("qam16"));
      if (base == 0) base = cold;
      t.row().add(s.label).add(cold, 3).add(staged, 3).add(cold / base, 2);
    }
    t.print();
    std::puts("");
  }
}

void print_size_sweep() {
  std::puts("=== latency vs. module size (region width sweep, case-study memory) ===\n");
  Table t({"region cols", "% of device", "bitstream", "a) ICAP (ms)", "b) CPU SelectMAP (ms)",
           "c) JTAG (ms)"});
  for (int width : {2, 4, 5, 8, 12, 16, 24}) {
    synth::ModularDesignFlow flow(fabric::xc2v2000());
    flow.add_region("D1", {{"mod", "qam16_mapper", {}}}, 0, width);
    const synth::DesignBundle bundle = flow.run();
    const Bytes stream = bundle.variant("D1", "mod").bitstream.size();

    double per_port[3] = {0, 0, 0};
    const Scenario picks[3] = {kScenarios[0], kScenarios[2], kScenarios[4]};
    for (int i = 0; i < 3; ++i) {
      rtr::BitstreamStore store = mccdma::make_case_study_store();
      rtr::NonePrefetch policy;
      rtr::ReconfigManager manager(bundle, config_of(picks[i]), store, policy);
      per_port[i] = to_ms(manager.cold_load_latency("mod"));
    }
    t.row()
        .add(width)
        .add(100.0 * bundle.floorplan.region_fraction("D1"), 1)
        .add(human_bytes(stream))
        .add(per_port[0], 2)
        .add(per_port[1], 2)
        .add(per_port[2], 2);
  }
  t.print();
  std::puts("\n(the paper's Op_Dyn is the 5-column row: ~4 ms through case a)\n");
}

void BM_RequestMiss(benchmark::State& state) {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  TimeNs now = 0;
  int flip = 0;
  for (auto _ : state) {
    const auto outcome =
        manager.request("D1", (flip++ % 2) == 0 ? "qam16" : "qpsk", now);
    now = outcome.ready_at;  // keep simulated time monotone
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["sim_ms_per_load"] =
      benchmark::Counter(to_ms(now) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RequestMiss)->Unit(benchmark::kMicrosecond);

void BM_ProtocolBuild(benchmark::State& state) {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  const auto& stream = cs.bundle.variant("D1", "qam16").bitstream;
  rtr::ProtocolBuilder builder(aaa::Placement::Fpga, fabric::PortKind::Icap, 40e6, 1e9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(cs.bundle.device, stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ProtocolBuild)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  print_scenario_table(cs);
  print_size_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
