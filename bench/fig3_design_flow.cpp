// Paper Figure 3: "Complete Design Flow: SynDEx tool and Modular Design".
//
// We regenerate the flow itself (modelisation -> adequation -> VHDL/macro
// code generation -> Modular Design placement + bitstreams) and report
// what each stage costs as the number of dynamic modules grows — the
// figure's promise is that the whole chain is automatic, so its cost IS
// the tool runtime.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "aaa/adequation.hpp"
#include "aaa/codegen_vhdl.hpp"
#include "aaa/macrocode.hpp"
#include "mccdma/case_study.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

/// Flow input with `n_variants` dynamic modules in one region.
synth::ModularDesignFlow make_flow(int n_variants) {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_static("iface", "interface_in_out");
  flow.add_static("cfg", "config_manager");
  flow.add_static("pb", "protocol_builder");
  std::vector<synth::ModuleSpec> variants;
  for (int v = 0; v < n_variants; ++v) {
    variants.push_back(synth::ModuleSpec{
        "var" + std::to_string(v), "custom",
        {{"luts", 100 + 40 * v}, {"ffs", 80 + 20 * v}, {"in_bits", 16}, {"out_bits", 16}}});
  }
  flow.add_region("D1", std::move(variants));
  return flow;
}

void print_flow_stage_table() {
  std::puts("=== Figure 3: automatic flow cost per stage vs. dynamic module count ===\n");
  // Stage costs are wall-clock, so a single cold run would fold allocator
  // and page-cache warm-up into the smallest stages: discard one warm-up
  // run per point, then report the mean of repeated timed runs (the
  // BENCH_*.json harness applies the same warm-up/repeat discipline).
  constexpr int kRepeats = 3;
  Table t({"dyn modules", "elaborate (us)", "map (us)", "place (us)", "bitgen (ms)",
           "bitstreams", "region cols"});
  for (int n : {1, 2, 4, 8, 16}) {
    (void)make_flow(n).run();  // warm-up, untimed
    Stats elaborate_us;
    Stats map_us;
    Stats place_us;
    Stats bitgen_us;
    std::optional<synth::DesignBundle> bundle;
    for (int r = 0; r < kRepeats; ++r) {
      synth::ModularDesignFlow flow = make_flow(n);
      bundle = flow.run();
      elaborate_us.add(bundle->report.elaborate_us);
      map_us.add(bundle->report.map_us);
      place_us.add(bundle->report.place_us);
      bitgen_us.add(bundle->report.bitgen_us);
    }
    t.row()
        .add(n)
        .add(elaborate_us.mean(), 1)
        .add(map_us.mean(), 1)
        .add(place_us.mean(), 1)
        .add(bitgen_us.mean() / 1000.0, 2)
        .add(human_bytes(bundle->report.total_bitstream_bytes))
        .add(bundle->floorplan.region("D1").width_cols());
  }
  t.print();
  std::printf("\n(mean of %d runs after one discarded warm-up run per point;\n", kRepeats);
  std::puts(" bitstream generation dominates, as place & route + bitgen do in the");
  std::puts(" real Xilinx Modular Design back-end)\n");
}

void print_artifact_inventory() {
  std::puts("=== flow artifacts for the case study (what Figure 3's boxes emit) ===\n");
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  adequation.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";
  const aaa::Schedule schedule = adequation.run(options);
  const aaa::Executive executive = aaa::generate_executive(schedule, cs.algorithm, cs.architecture);

  Table t({"artifact", "size"});
  t.row().add("constraints file").add(aaa::write_constraints(cs.constraints).size());
  t.row().add("schedule items").add(std::uint64_t{schedule.size()});
  std::size_t macro_instrs = 0;
  for (const auto& p : executive.programs) macro_instrs += p.body.size();
  t.row().add("macro instructions").add(std::uint64_t{macro_instrs});
  std::size_t vhdl_bytes = aaa::generate_vhdl_package().size();
  for (aaa::NodeId n : cs.architecture.operators()) {
    const aaa::OperatorNode& op = cs.architecture.op(n);
    if (op.kind != aaa::OperatorKind::Processor)
      vhdl_bytes += aaa::generate_vhdl_entity(executive.program(op.name), op).size();
  }
  t.row().add("generated VHDL bytes").add(std::uint64_t{vhdl_bytes});
  t.row().add("partial bitstreams").add(std::uint64_t{cs.bundle.dynamic_variants.at("D1").size()});
  t.row().add("initial full bitstream").add(human_bytes(cs.bundle.initial_bitstream.size()));
  t.print();
  std::puts("");
}

void BM_FlowRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    synth::ModularDesignFlow flow = make_flow(n);
    benchmark::DoNotOptimize(flow.run());
  }
}
BENCHMARK(BM_FlowRun)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_AdequationCaseStudy(benchmark::State& state) {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adequation.run());
  }
}
BENCHMARK(BM_AdequationCaseStudy)->Unit(benchmark::kMicrosecond);

void BM_VhdlGeneration(benchmark::State& state) {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  const aaa::Schedule schedule = adequation.run();
  const aaa::Executive executive = aaa::generate_executive(schedule, cs.algorithm, cs.architecture);
  const aaa::OperatorNode& f1 = cs.architecture.op(cs.architecture.by_name("F1"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aaa::generate_vhdl_entity(executive.program("F1"), f1));
  }
}
BENCHMARK(BM_VhdlGeneration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_flow_stage_table();
  print_artifact_inventory();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
