// Paper Figure 4 + §6: the reconfigurable MC-CDMA transmitter.
//
// Regenerates the case-study numbers:
//   - dynamic region D1 = 8 % of the XC2V2000 (paper: "8% of the FPGA"),
//   - reconfiguration of Op_Dyn ~= 4 ms (paper: "about 4ms"),
//   - a 50k-symbol adaptive-modulation run with the SNR-driven QPSK <->
//     QAM-16 switching, prefetch on vs off,
// plus google-benchmarks of the per-symbol signal processing itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

const mccdma::CaseStudy& case_study() {
  static const mccdma::CaseStudy cs = mccdma::build_case_study();
  return cs;
}

void print_paper_claims() {
  const auto& cs = case_study();
  const auto cost = mccdma::case_study_reconfig_cost(cs.bundle);
  std::puts("=== paper claims vs. model ===\n");
  Table t({"claim", "paper", "measured"});
  t.row()
      .add("dynamic region share of FPGA")
      .add("8%")
      .add(strprintf("%.1f%%", 100.0 * cs.bundle.floorplan.region_fraction("D1")));
  t.row()
      .add("reconfiguration of Op_Dyn")
      .add("about 4 ms")
      .add(strprintf("%.2f ms", to_ms(cost("D1", "qam16"))));
  t.row()
      .add("full XC2V2000 bitstream")
      .add("851,044 B (datasheet)")
      .add(strprintf("%zu B", cs.bundle.initial_bitstream.size()));
  t.print();
  std::puts("");
}

void print_adaptive_run() {
  std::puts("=== 50,000-symbol adaptive run: prefetch on vs off ===\n");
  mccdma::SystemConfig config;
  config.seed = 2006;
  config.ber_sample_every = 16;

  mccdma::TransmitterSystem on(case_study(), config);
  const auto a = on.run(50'000);
  config.prefetch = aaa::PrefetchChoice::None;
  mccdma::TransmitterSystem off(case_study(), config);
  const auto b = off.run(50'000);

  Table t({"metric", "prefetch ON", "prefetch OFF"});
  t.row().add("modulation switches").add(a.switches).add(b.switches);
  t.row().add("elapsed (ms)").add(to_ms(a.elapsed), 2).add(to_ms(b.elapsed), 2);
  t.row().add("reconfig stall (ms)").add(to_ms(a.stall_total), 2).add(to_ms(b.stall_total), 2);
  t.row()
      .add("stall fraction (%)")
      .add(100 * a.stall_fraction(), 2)
      .add(100 * b.stall_fraction(), 2);
  t.row()
      .add("throughput (Mbit/s)")
      .add(a.throughput_bps() / 1e6, 3)
      .add(b.throughput_bps() / 1e6, 3);
  t.row().add("prefetch hits").add(a.manager.prefetch_hits).add(b.manager.prefetch_hits);
  t.row().add("misses").add(a.manager.misses).add(b.manager.misses);
  t.row()
      .add("BER qpsk")
      .add(strprintf("%.2e", a.ber_qpsk.ber()))
      .add(strprintf("%.2e", b.ber_qpsk.ber()));
  t.row()
      .add("BER qam16")
      .add(strprintf("%.2e", a.ber_qam16.ber()))
      .add(strprintf("%.2e", b.ber_qam16.ber()));
  t.print();

  const double hidden = b.stall_total > 0
                            ? 100.0 * static_cast<double>(b.stall_total - a.stall_total) /
                                  static_cast<double>(b.stall_total)
                            : 0.0;
  std::printf("\nprefetch hid %.0f%% of the reconfiguration stall\n\n", hidden);
}

void BM_TxSymbolQpsk(benchmark::State& state) {
  mccdma::Transmitter tx(case_study().params);
  tx.select_modulation("qpsk");
  for (auto _ : state) benchmark::DoNotOptimize(tx.next_symbol());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TxSymbolQpsk);

void BM_TxSymbolQam16(benchmark::State& state) {
  mccdma::Transmitter tx(case_study().params);
  tx.select_modulation("qam16");
  for (auto _ : state) benchmark::DoNotOptimize(tx.next_symbol());
}
BENCHMARK(BM_TxSymbolQam16);

void BM_FullLoopbackSymbol(benchmark::State& state) {
  mccdma::Transmitter tx(case_study().params);
  mccdma::Receiver rx(case_study().params);
  mccdma::AwgnChannel channel(Rng(1));
  mccdma::BerReport report;
  for (auto _ : state) {
    const auto sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 12.0), sym.user_bits, report);
  }
  state.counters["ber"] = benchmark::Counter(report.ber());
}
BENCHMARK(BM_FullLoopbackSymbol);

void BM_SystemRun1k(benchmark::State& state) {
  mccdma::SystemConfig config;
  config.seed = 5;
  config.ber_sample_every = 0;
  for (auto _ : state) {
    mccdma::TransmitterSystem system(case_study(), config);
    benchmark::DoNotOptimize(system.run(1000));
  }
}
BENCHMARK(BM_SystemRun1k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_paper_claims();
  print_adaptive_run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
