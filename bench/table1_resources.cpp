// Paper Table 1: "Fix-Dynamic modulation implementation comparison".
//
// Compares the FPGA resources of the modulation block implemented
//   - fixed, one modulation only (QPSK / QAM-16 columns),
//   - fixed, both modulations side by side with an output multiplexer,
//   - dynamically reconfigurable (Op_Dyn: the generated executive wrapper
//     around one mapper, plus bus macros, plus the shared configuration
//     manager and protocol builder in the static part).
//
// The paper's observations to reproduce:
//   (1) the dynamic scheme uses MORE resources than the fixed ones for
//       two modulations (generic generated structure overhead),
//   (2) "this gap is decreasing with the number of different
//       reconfigurations needed" — the variants sweep shows the fixed
//       area growing linearly while the dynamic area stays flat, with a
//       crossover.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mccdma/case_study.hpp"
#include "netlist/library.hpp"
#include "synth/elaborate.hpp"
#include "synth/flow.hpp"
#include "synth/map.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

synth::ResourceUsage usage_of(const std::string& kind, const synth::Params& params = {}) {
  return synth::map_netlist(synth::elaborate_operator(kind, params));
}

void print_table1() {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  const fabric::DeviceModel& dev = cs.bundle.device;

  const synth::ResourceUsage qpsk_fix = usage_of("qpsk_mapper");
  const synth::ResourceUsage qam16_fix = usage_of("qam16_mapper");
  synth::ResourceUsage both_fix = qpsk_fix + qam16_fix;
  both_fix += synth::map_netlist(netlist::make_mux(32, 2));  // I/Q output select

  // Dynamic scheme: the widest wrapped variant occupies the region; the
  // static side adds the configuration manager + protocol builder.
  const synth::ResourceUsage op_dyn = cs.bundle.variant("D1", "qam16").usage;
  synth::ResourceUsage dyn_total = op_dyn;
  dyn_total += usage_of("config_manager");
  dyn_total += usage_of("protocol_builder");

  const auto cost = mccdma::case_study_reconfig_cost(cs.bundle);

  std::puts("=== Table 1: Fix-Dynamic modulation implementation comparison ===");
  std::puts("(paper: XC2V2000; dynamic column includes generated executive");
  std::puts(" structure, bus macros, configuration manager and protocol builder)\n");
  Table t({"resource", "QPSK fix", "QAM-16 fix", "both fix + mux", "dynamic (Op_Dyn)"});
  t.row().add("slices").add(qpsk_fix.slices).add(qam16_fix.slices).add(both_fix.slices)
      .add(dyn_total.slices);
  t.row().add("4-input LUTs").add(qpsk_fix.luts).add(qam16_fix.luts).add(both_fix.luts)
      .add(dyn_total.luts);
  t.row().add("flip-flops").add(qpsk_fix.ffs).add(qam16_fix.ffs).add(both_fix.ffs)
      .add(dyn_total.ffs);
  t.row().add("BRAM18").add(qpsk_fix.brams).add(qam16_fix.brams).add(both_fix.brams)
      .add(dyn_total.brams);
  t.row().add("TBUF (bus macros)").add(qpsk_fix.tbufs).add(qam16_fix.tbufs).add(both_fix.tbufs)
      .add(dyn_total.tbufs);
  t.row()
      .add("device %")
      .add(synth::utilization_percent(qpsk_fix, dev), 2)
      .add(synth::utilization_percent(qam16_fix, dev), 2)
      .add(synth::utilization_percent(both_fix, dev), 2)
      .add(synth::utilization_percent(dyn_total, dev), 2);
  t.row().add("reconfig time (ms)").add(0).add(0).add(0).add(to_ms(cost("D1", "qam16")), 2);
  // Estimated post-synthesis fmax; the dynamic module pays the bus-macro
  // boundary crossing.
  const auto fmax = [](const std::string& kind, bool dynamic) {
    const netlist::Netlist nl =
        dynamic ? synth::wrap_executive(synth::elaborate_operator(kind))
                : synth::elaborate_operator(kind);
    return synth::estimate_timing(nl, synth::TimingModel{}, dynamic).fmax_mhz;
  };
  t.row()
      .add("est. fmax (MHz)")
      .add(fmax("qpsk_mapper", false), 0)
      .add(fmax("qam16_mapper", false), 0)
      .add(fmax("qam16_mapper", false), 0)
      .add(fmax("qam16_mapper", true), 0);
  t.print();

  std::printf("\npaper check (1): dynamic (%d slices) > fixed both (%d slices): %s\n",
              dyn_total.slices, both_fix.slices, dyn_total.slices > both_fix.slices ? "yes" : "NO");

  // --- variants sweep: "the gap is decreasing with the number of
  // different reconfigurations needed" -----------------------------------
  std::puts("\n=== variants sweep: fixed area grows linearly, dynamic stays flat ===\n");
  const std::vector<std::pair<std::string, std::string>> mods = {
      {"bpsk", "bpsk_mapper"},   {"qpsk", "qpsk_mapper"}, {"qam16", "qam16_mapper"},
      {"qam64", "qam64_mapper"},
  };
  Table sweep({"variants", "fixed total slices", "dynamic total slices", "dynamic/fixed"});
  int crossover = -1;
  for (std::size_t n = 1; n <= mods.size(); ++n) {
    synth::ResourceUsage fixed_total;
    synth::ResourceUsage widest;
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = usage_of(mods[i].second);
      fixed_total += u;
      if (u.slices > widest.slices) widest = u;
    }
    if (n > 1) fixed_total += synth::map_netlist(netlist::make_mux(32, static_cast<int>(n)));

    // Dynamic: region sized by the widest wrapped variant (resources are
    // time-shared), plus the shared manager/builder overhead.
    const auto wrapped =
        synth::map_netlist(synth::wrap_executive(synth::elaborate_operator(
            mods[n - 1].second)));  // variants are ordered by size; last is widest
    synth::ResourceUsage dyn = wrapped;
    dyn.tbufs += 6 * fabric::kBusMacroWidth;
    dyn += usage_of("config_manager");
    dyn += usage_of("protocol_builder");

    sweep.row()
        .add(std::int64_t(n))
        .add(fixed_total.slices)
        .add(dyn.slices)
        .add(static_cast<double>(dyn.slices) / fixed_total.slices, 2);
    if (crossover < 0 && dyn.slices <= fixed_total.slices) crossover = static_cast<int>(n);
  }
  sweep.print();
  if (crossover > 0)
    std::printf("\npaper check (2): gap closes; dynamic wins from %d variants on\n", crossover);
  else
    std::puts("\npaper check (2): gap decreasing (no crossover within 4 variants)");
  std::puts("");
}

void BM_ElaborateAndMapMapper(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(usage_of("qam16_mapper"));
  }
}
BENCHMARK(BM_ElaborateAndMapMapper);

void BM_WrapExecutive(benchmark::State& state) {
  const netlist::Netlist bare = synth::elaborate_operator("qam16_mapper");
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::wrap_executive(bare));
  }
}
BENCHMARK(BM_WrapExecutive);

void BM_CaseStudyFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mccdma::build_case_study());
  }
}
BENCHMARK(BM_CaseStudyFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
