file(REMOVE_RECURSE
  "CMakeFiles/ablate_floorplan.dir/ablate_floorplan.cpp.o"
  "CMakeFiles/ablate_floorplan.dir/ablate_floorplan.cpp.o.d"
  "ablate_floorplan"
  "ablate_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
