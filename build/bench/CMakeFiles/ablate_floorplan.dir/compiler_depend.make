# Empty compiler generated dependencies file for ablate_floorplan.
# This may be replaced when dependencies are built.
