
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_prefetch.cpp" "bench/CMakeFiles/ablate_prefetch.dir/ablate_prefetch.cpp.o" "gcc" "bench/CMakeFiles/ablate_prefetch.dir/ablate_prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mccdma/CMakeFiles/pdr_mccdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtr/CMakeFiles/pdr_rtr.dir/DependInfo.cmake"
  "/root/repo/build/src/aaa/CMakeFiles/pdr_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
