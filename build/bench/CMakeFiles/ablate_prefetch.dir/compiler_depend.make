# Empty compiler generated dependencies file for ablate_prefetch.
# This may be replaced when dependencies are built.
