file(REMOVE_RECURSE
  "CMakeFiles/ablate_scrubbing.dir/ablate_scrubbing.cpp.o"
  "CMakeFiles/ablate_scrubbing.dir/ablate_scrubbing.cpp.o.d"
  "ablate_scrubbing"
  "ablate_scrubbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
