# Empty compiler generated dependencies file for ablate_scrubbing.
# This may be replaced when dependencies are built.
