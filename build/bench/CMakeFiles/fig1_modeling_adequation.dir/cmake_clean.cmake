file(REMOVE_RECURSE
  "CMakeFiles/fig1_modeling_adequation.dir/fig1_modeling_adequation.cpp.o"
  "CMakeFiles/fig1_modeling_adequation.dir/fig1_modeling_adequation.cpp.o.d"
  "fig1_modeling_adequation"
  "fig1_modeling_adequation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_modeling_adequation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
