# Empty dependencies file for fig1_modeling_adequation.
# This may be replaced when dependencies are built.
