file(REMOVE_RECURSE
  "CMakeFiles/fig2_reconfig_architectures.dir/fig2_reconfig_architectures.cpp.o"
  "CMakeFiles/fig2_reconfig_architectures.dir/fig2_reconfig_architectures.cpp.o.d"
  "fig2_reconfig_architectures"
  "fig2_reconfig_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_reconfig_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
