# Empty compiler generated dependencies file for fig2_reconfig_architectures.
# This may be replaced when dependencies are built.
