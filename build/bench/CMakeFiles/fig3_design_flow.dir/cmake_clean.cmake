file(REMOVE_RECURSE
  "CMakeFiles/fig3_design_flow.dir/fig3_design_flow.cpp.o"
  "CMakeFiles/fig3_design_flow.dir/fig3_design_flow.cpp.o.d"
  "fig3_design_flow"
  "fig3_design_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_design_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
