# Empty dependencies file for fig3_design_flow.
# This may be replaced when dependencies are built.
