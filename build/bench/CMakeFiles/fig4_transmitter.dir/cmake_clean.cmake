file(REMOVE_RECURSE
  "CMakeFiles/fig4_transmitter.dir/fig4_transmitter.cpp.o"
  "CMakeFiles/fig4_transmitter.dir/fig4_transmitter.cpp.o.d"
  "fig4_transmitter"
  "fig4_transmitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_transmitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
