# Empty dependencies file for fig4_transmitter.
# This may be replaced when dependencies are built.
