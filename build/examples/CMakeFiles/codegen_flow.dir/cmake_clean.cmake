file(REMOVE_RECURSE
  "CMakeFiles/codegen_flow.dir/codegen_flow.cpp.o"
  "CMakeFiles/codegen_flow.dir/codegen_flow.cpp.o.d"
  "codegen_flow"
  "codegen_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
