# Empty compiler generated dependencies file for codegen_flow.
# This may be replaced when dependencies are built.
