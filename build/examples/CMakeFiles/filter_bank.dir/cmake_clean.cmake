file(REMOVE_RECURSE
  "CMakeFiles/filter_bank.dir/filter_bank.cpp.o"
  "CMakeFiles/filter_bank.dir/filter_bank.cpp.o.d"
  "filter_bank"
  "filter_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
