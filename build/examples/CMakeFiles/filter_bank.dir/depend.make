# Empty dependencies file for filter_bank.
# This may be replaced when dependencies are built.
