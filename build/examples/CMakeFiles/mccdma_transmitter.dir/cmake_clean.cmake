file(REMOVE_RECURSE
  "CMakeFiles/mccdma_transmitter.dir/mccdma_transmitter.cpp.o"
  "CMakeFiles/mccdma_transmitter.dir/mccdma_transmitter.cpp.o.d"
  "mccdma_transmitter"
  "mccdma_transmitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccdma_transmitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
