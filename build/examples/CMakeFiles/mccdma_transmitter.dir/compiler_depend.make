# Empty compiler generated dependencies file for mccdma_transmitter.
# This may be replaced when dependencies are built.
