file(REMOVE_RECURSE
  "CMakeFiles/selfreconfig_vs_processor.dir/selfreconfig_vs_processor.cpp.o"
  "CMakeFiles/selfreconfig_vs_processor.dir/selfreconfig_vs_processor.cpp.o.d"
  "selfreconfig_vs_processor"
  "selfreconfig_vs_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfreconfig_vs_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
