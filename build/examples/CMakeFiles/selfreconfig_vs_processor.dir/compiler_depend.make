# Empty compiler generated dependencies file for selfreconfig_vs_processor.
# This may be replaced when dependencies are built.
