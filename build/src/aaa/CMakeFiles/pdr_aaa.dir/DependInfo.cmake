
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aaa/adequation.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/adequation.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/adequation.cpp.o.d"
  "/root/repo/src/aaa/algorithm_graph.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/algorithm_graph.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/algorithm_graph.cpp.o.d"
  "/root/repo/src/aaa/architecture_graph.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/architecture_graph.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/architecture_graph.cpp.o.d"
  "/root/repo/src/aaa/codegen_c.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_c.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_c.cpp.o.d"
  "/root/repo/src/aaa/codegen_m4.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_m4.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_m4.cpp.o.d"
  "/root/repo/src/aaa/codegen_vhdl.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_vhdl.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/codegen_vhdl.cpp.o.d"
  "/root/repo/src/aaa/constraints.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/constraints.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/constraints.cpp.o.d"
  "/root/repo/src/aaa/durations.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/durations.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/durations.cpp.o.d"
  "/root/repo/src/aaa/macrocode.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/macrocode.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/macrocode.cpp.o.d"
  "/root/repo/src/aaa/project_io.cpp" "src/aaa/CMakeFiles/pdr_aaa.dir/project_io.cpp.o" "gcc" "src/aaa/CMakeFiles/pdr_aaa.dir/project_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
