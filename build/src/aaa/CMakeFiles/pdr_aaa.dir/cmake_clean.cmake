file(REMOVE_RECURSE
  "CMakeFiles/pdr_aaa.dir/adequation.cpp.o"
  "CMakeFiles/pdr_aaa.dir/adequation.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/algorithm_graph.cpp.o"
  "CMakeFiles/pdr_aaa.dir/algorithm_graph.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/architecture_graph.cpp.o"
  "CMakeFiles/pdr_aaa.dir/architecture_graph.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/codegen_c.cpp.o"
  "CMakeFiles/pdr_aaa.dir/codegen_c.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/codegen_m4.cpp.o"
  "CMakeFiles/pdr_aaa.dir/codegen_m4.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/codegen_vhdl.cpp.o"
  "CMakeFiles/pdr_aaa.dir/codegen_vhdl.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/constraints.cpp.o"
  "CMakeFiles/pdr_aaa.dir/constraints.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/durations.cpp.o"
  "CMakeFiles/pdr_aaa.dir/durations.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/macrocode.cpp.o"
  "CMakeFiles/pdr_aaa.dir/macrocode.cpp.o.d"
  "CMakeFiles/pdr_aaa.dir/project_io.cpp.o"
  "CMakeFiles/pdr_aaa.dir/project_io.cpp.o.d"
  "libpdr_aaa.a"
  "libpdr_aaa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_aaa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
