file(REMOVE_RECURSE
  "libpdr_aaa.a"
)
