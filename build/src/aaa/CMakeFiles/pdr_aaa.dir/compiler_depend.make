# Empty compiler generated dependencies file for pdr_aaa.
# This may be replaced when dependencies are built.
