
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/convcode.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/convcode.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/convcode.cpp.o.d"
  "/root/repo/src/dsp/crc.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/crc.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/crc.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/prbs.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/prbs.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/prbs.cpp.o.d"
  "/root/repo/src/dsp/walsh.cpp" "src/dsp/CMakeFiles/pdr_dsp.dir/walsh.cpp.o" "gcc" "src/dsp/CMakeFiles/pdr_dsp.dir/walsh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
