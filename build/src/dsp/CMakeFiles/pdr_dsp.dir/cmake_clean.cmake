file(REMOVE_RECURSE
  "CMakeFiles/pdr_dsp.dir/convcode.cpp.o"
  "CMakeFiles/pdr_dsp.dir/convcode.cpp.o.d"
  "CMakeFiles/pdr_dsp.dir/crc.cpp.o"
  "CMakeFiles/pdr_dsp.dir/crc.cpp.o.d"
  "CMakeFiles/pdr_dsp.dir/fft.cpp.o"
  "CMakeFiles/pdr_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/pdr_dsp.dir/fir.cpp.o"
  "CMakeFiles/pdr_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/pdr_dsp.dir/prbs.cpp.o"
  "CMakeFiles/pdr_dsp.dir/prbs.cpp.o.d"
  "CMakeFiles/pdr_dsp.dir/walsh.cpp.o"
  "CMakeFiles/pdr_dsp.dir/walsh.cpp.o.d"
  "libpdr_dsp.a"
  "libpdr_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
