file(REMOVE_RECURSE
  "libpdr_dsp.a"
)
