# Empty compiler generated dependencies file for pdr_dsp.
# This may be replaced when dependencies are built.
