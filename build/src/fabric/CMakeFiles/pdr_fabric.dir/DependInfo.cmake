
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/bitstream.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/bitstream.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/bitstream.cpp.o.d"
  "/root/repo/src/fabric/bus_macro.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/bus_macro.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/bus_macro.cpp.o.d"
  "/root/repo/src/fabric/config_memory.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/config_memory.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/config_memory.cpp.o.d"
  "/root/repo/src/fabric/config_port.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/config_port.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/config_port.cpp.o.d"
  "/root/repo/src/fabric/context.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/context.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/context.cpp.o.d"
  "/root/repo/src/fabric/device.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/device.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/device.cpp.o.d"
  "/root/repo/src/fabric/floorplan.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/floorplan.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/floorplan.cpp.o.d"
  "/root/repo/src/fabric/frames.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/frames.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/frames.cpp.o.d"
  "/root/repo/src/fabric/relocate.cpp" "src/fabric/CMakeFiles/pdr_fabric.dir/relocate.cpp.o" "gcc" "src/fabric/CMakeFiles/pdr_fabric.dir/relocate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
