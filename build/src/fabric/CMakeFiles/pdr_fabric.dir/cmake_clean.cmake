file(REMOVE_RECURSE
  "CMakeFiles/pdr_fabric.dir/bitstream.cpp.o"
  "CMakeFiles/pdr_fabric.dir/bitstream.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/bus_macro.cpp.o"
  "CMakeFiles/pdr_fabric.dir/bus_macro.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/config_memory.cpp.o"
  "CMakeFiles/pdr_fabric.dir/config_memory.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/config_port.cpp.o"
  "CMakeFiles/pdr_fabric.dir/config_port.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/context.cpp.o"
  "CMakeFiles/pdr_fabric.dir/context.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/device.cpp.o"
  "CMakeFiles/pdr_fabric.dir/device.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/floorplan.cpp.o"
  "CMakeFiles/pdr_fabric.dir/floorplan.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/frames.cpp.o"
  "CMakeFiles/pdr_fabric.dir/frames.cpp.o.d"
  "CMakeFiles/pdr_fabric.dir/relocate.cpp.o"
  "CMakeFiles/pdr_fabric.dir/relocate.cpp.o.d"
  "libpdr_fabric.a"
  "libpdr_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
