file(REMOVE_RECURSE
  "libpdr_fabric.a"
)
