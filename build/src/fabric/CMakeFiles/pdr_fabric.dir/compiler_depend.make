# Empty compiler generated dependencies file for pdr_fabric.
# This may be replaced when dependencies are built.
