file(REMOVE_RECURSE
  "CMakeFiles/pdr_graph.dir/dot.cpp.o"
  "CMakeFiles/pdr_graph.dir/dot.cpp.o.d"
  "libpdr_graph.a"
  "libpdr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
