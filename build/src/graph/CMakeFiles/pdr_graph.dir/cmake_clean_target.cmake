file(REMOVE_RECURSE
  "libpdr_graph.a"
)
