# Empty dependencies file for pdr_graph.
# This may be replaced when dependencies are built.
