
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mccdma/adaptive.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/adaptive.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/adaptive.cpp.o.d"
  "/root/repo/src/mccdma/case_study.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/case_study.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/case_study.cpp.o.d"
  "/root/repo/src/mccdma/channel.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/channel.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/channel.cpp.o.d"
  "/root/repo/src/mccdma/estimator.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/estimator.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/estimator.cpp.o.d"
  "/root/repo/src/mccdma/modulation.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/modulation.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/modulation.cpp.o.d"
  "/root/repo/src/mccdma/ofdm.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/ofdm.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/ofdm.cpp.o.d"
  "/root/repo/src/mccdma/params.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/params.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/params.cpp.o.d"
  "/root/repo/src/mccdma/receiver.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/receiver.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/receiver.cpp.o.d"
  "/root/repo/src/mccdma/spreading.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/spreading.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/spreading.cpp.o.d"
  "/root/repo/src/mccdma/system.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/system.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/system.cpp.o.d"
  "/root/repo/src/mccdma/transmitter.cpp" "src/mccdma/CMakeFiles/pdr_mccdma.dir/transmitter.cpp.o" "gcc" "src/mccdma/CMakeFiles/pdr_mccdma.dir/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/aaa/CMakeFiles/pdr_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/rtr/CMakeFiles/pdr_rtr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
