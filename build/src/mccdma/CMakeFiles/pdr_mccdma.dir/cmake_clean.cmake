file(REMOVE_RECURSE
  "CMakeFiles/pdr_mccdma.dir/adaptive.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/adaptive.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/case_study.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/case_study.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/channel.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/channel.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/estimator.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/estimator.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/modulation.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/modulation.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/ofdm.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/ofdm.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/params.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/params.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/receiver.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/receiver.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/spreading.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/spreading.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/system.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/system.cpp.o.d"
  "CMakeFiles/pdr_mccdma.dir/transmitter.cpp.o"
  "CMakeFiles/pdr_mccdma.dir/transmitter.cpp.o.d"
  "libpdr_mccdma.a"
  "libpdr_mccdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_mccdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
