file(REMOVE_RECURSE
  "libpdr_mccdma.a"
)
