# Empty compiler generated dependencies file for pdr_mccdma.
# This may be replaced when dependencies are built.
