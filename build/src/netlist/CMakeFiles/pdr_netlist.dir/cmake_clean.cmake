file(REMOVE_RECURSE
  "CMakeFiles/pdr_netlist.dir/library.cpp.o"
  "CMakeFiles/pdr_netlist.dir/library.cpp.o.d"
  "CMakeFiles/pdr_netlist.dir/netlist.cpp.o"
  "CMakeFiles/pdr_netlist.dir/netlist.cpp.o.d"
  "libpdr_netlist.a"
  "libpdr_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
