file(REMOVE_RECURSE
  "libpdr_netlist.a"
)
