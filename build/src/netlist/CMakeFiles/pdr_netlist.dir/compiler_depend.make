# Empty compiler generated dependencies file for pdr_netlist.
# This may be replaced when dependencies are built.
