
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtr/arbiter.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/arbiter.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/arbiter.cpp.o.d"
  "/root/repo/src/rtr/bitstream_store.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/bitstream_store.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/bitstream_store.cpp.o.d"
  "/root/repo/src/rtr/cache.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/cache.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/cache.cpp.o.d"
  "/root/repo/src/rtr/manager.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/manager.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/manager.cpp.o.d"
  "/root/repo/src/rtr/prefetch.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/prefetch.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/prefetch.cpp.o.d"
  "/root/repo/src/rtr/protocol_builder.cpp" "src/rtr/CMakeFiles/pdr_rtr.dir/protocol_builder.cpp.o" "gcc" "src/rtr/CMakeFiles/pdr_rtr.dir/protocol_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/aaa/CMakeFiles/pdr_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
