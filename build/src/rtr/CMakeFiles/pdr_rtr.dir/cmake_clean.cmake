file(REMOVE_RECURSE
  "CMakeFiles/pdr_rtr.dir/arbiter.cpp.o"
  "CMakeFiles/pdr_rtr.dir/arbiter.cpp.o.d"
  "CMakeFiles/pdr_rtr.dir/bitstream_store.cpp.o"
  "CMakeFiles/pdr_rtr.dir/bitstream_store.cpp.o.d"
  "CMakeFiles/pdr_rtr.dir/cache.cpp.o"
  "CMakeFiles/pdr_rtr.dir/cache.cpp.o.d"
  "CMakeFiles/pdr_rtr.dir/manager.cpp.o"
  "CMakeFiles/pdr_rtr.dir/manager.cpp.o.d"
  "CMakeFiles/pdr_rtr.dir/prefetch.cpp.o"
  "CMakeFiles/pdr_rtr.dir/prefetch.cpp.o.d"
  "CMakeFiles/pdr_rtr.dir/protocol_builder.cpp.o"
  "CMakeFiles/pdr_rtr.dir/protocol_builder.cpp.o.d"
  "libpdr_rtr.a"
  "libpdr_rtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_rtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
