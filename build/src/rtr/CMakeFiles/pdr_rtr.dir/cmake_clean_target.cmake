file(REMOVE_RECURSE
  "libpdr_rtr.a"
)
