# Empty dependencies file for pdr_rtr.
# This may be replaced when dependencies are built.
