
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/pdr_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/pdr_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/executive_player.cpp" "src/sim/CMakeFiles/pdr_sim.dir/executive_player.cpp.o" "gcc" "src/sim/CMakeFiles/pdr_sim.dir/executive_player.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/pdr_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/pdr_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aaa/CMakeFiles/pdr_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/rtr/CMakeFiles/pdr_rtr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
