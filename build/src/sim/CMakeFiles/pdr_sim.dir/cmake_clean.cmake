file(REMOVE_RECURSE
  "CMakeFiles/pdr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pdr_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pdr_sim.dir/executive_player.cpp.o"
  "CMakeFiles/pdr_sim.dir/executive_player.cpp.o.d"
  "CMakeFiles/pdr_sim.dir/timeline.cpp.o"
  "CMakeFiles/pdr_sim.dir/timeline.cpp.o.d"
  "libpdr_sim.a"
  "libpdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
