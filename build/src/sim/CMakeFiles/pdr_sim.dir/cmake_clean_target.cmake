file(REMOVE_RECURSE
  "libpdr_sim.a"
)
