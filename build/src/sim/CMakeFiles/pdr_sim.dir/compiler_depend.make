# Empty compiler generated dependencies file for pdr_sim.
# This may be replaced when dependencies are built.
