
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bitgen.cpp" "src/synth/CMakeFiles/pdr_synth.dir/bitgen.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/bitgen.cpp.o.d"
  "/root/repo/src/synth/elaborate.cpp" "src/synth/CMakeFiles/pdr_synth.dir/elaborate.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/elaborate.cpp.o.d"
  "/root/repo/src/synth/flow.cpp" "src/synth/CMakeFiles/pdr_synth.dir/flow.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/flow.cpp.o.d"
  "/root/repo/src/synth/map.cpp" "src/synth/CMakeFiles/pdr_synth.dir/map.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/map.cpp.o.d"
  "/root/repo/src/synth/place.cpp" "src/synth/CMakeFiles/pdr_synth.dir/place.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/place.cpp.o.d"
  "/root/repo/src/synth/timing.cpp" "src/synth/CMakeFiles/pdr_synth.dir/timing.cpp.o" "gcc" "src/synth/CMakeFiles/pdr_synth.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/pdr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pdr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/pdr_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
