file(REMOVE_RECURSE
  "CMakeFiles/pdr_synth.dir/bitgen.cpp.o"
  "CMakeFiles/pdr_synth.dir/bitgen.cpp.o.d"
  "CMakeFiles/pdr_synth.dir/elaborate.cpp.o"
  "CMakeFiles/pdr_synth.dir/elaborate.cpp.o.d"
  "CMakeFiles/pdr_synth.dir/flow.cpp.o"
  "CMakeFiles/pdr_synth.dir/flow.cpp.o.d"
  "CMakeFiles/pdr_synth.dir/map.cpp.o"
  "CMakeFiles/pdr_synth.dir/map.cpp.o.d"
  "CMakeFiles/pdr_synth.dir/place.cpp.o"
  "CMakeFiles/pdr_synth.dir/place.cpp.o.d"
  "CMakeFiles/pdr_synth.dir/timing.cpp.o"
  "CMakeFiles/pdr_synth.dir/timing.cpp.o.d"
  "libpdr_synth.a"
  "libpdr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
