file(REMOVE_RECURSE
  "libpdr_synth.a"
)
