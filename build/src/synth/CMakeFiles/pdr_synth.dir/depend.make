# Empty dependencies file for pdr_synth.
# This may be replaced when dependencies are built.
