file(REMOVE_RECURSE
  "CMakeFiles/pdr_util.dir/error.cpp.o"
  "CMakeFiles/pdr_util.dir/error.cpp.o.d"
  "CMakeFiles/pdr_util.dir/log.cpp.o"
  "CMakeFiles/pdr_util.dir/log.cpp.o.d"
  "CMakeFiles/pdr_util.dir/rng.cpp.o"
  "CMakeFiles/pdr_util.dir/rng.cpp.o.d"
  "CMakeFiles/pdr_util.dir/stats.cpp.o"
  "CMakeFiles/pdr_util.dir/stats.cpp.o.d"
  "CMakeFiles/pdr_util.dir/strings.cpp.o"
  "CMakeFiles/pdr_util.dir/strings.cpp.o.d"
  "CMakeFiles/pdr_util.dir/table.cpp.o"
  "CMakeFiles/pdr_util.dir/table.cpp.o.d"
  "libpdr_util.a"
  "libpdr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
