file(REMOVE_RECURSE
  "libpdr_util.a"
)
