# Empty dependencies file for pdr_util.
# This may be replaced when dependencies are built.
