file(REMOVE_RECURSE
  "CMakeFiles/aaa_graph_test.dir/aaa_graph_test.cpp.o"
  "CMakeFiles/aaa_graph_test.dir/aaa_graph_test.cpp.o.d"
  "aaa_graph_test"
  "aaa_graph_test.pdb"
  "aaa_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aaa_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
