# Empty dependencies file for aaa_graph_test.
# This may be replaced when dependencies are built.
