file(REMOVE_RECURSE
  "CMakeFiles/adequation_test.dir/adequation_test.cpp.o"
  "CMakeFiles/adequation_test.dir/adequation_test.cpp.o.d"
  "adequation_test"
  "adequation_test.pdb"
  "adequation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adequation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
