# Empty compiler generated dependencies file for adequation_test.
# This may be replaced when dependencies are built.
