file(REMOVE_RECURSE
  "CMakeFiles/fabric_bitstream_test.dir/fabric_bitstream_test.cpp.o"
  "CMakeFiles/fabric_bitstream_test.dir/fabric_bitstream_test.cpp.o.d"
  "fabric_bitstream_test"
  "fabric_bitstream_test.pdb"
  "fabric_bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
