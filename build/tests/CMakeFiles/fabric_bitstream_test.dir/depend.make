# Empty dependencies file for fabric_bitstream_test.
# This may be replaced when dependencies are built.
