file(REMOVE_RECURSE
  "CMakeFiles/fabric_device_test.dir/fabric_device_test.cpp.o"
  "CMakeFiles/fabric_device_test.dir/fabric_device_test.cpp.o.d"
  "fabric_device_test"
  "fabric_device_test.pdb"
  "fabric_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
