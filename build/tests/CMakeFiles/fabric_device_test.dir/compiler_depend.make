# Empty compiler generated dependencies file for fabric_device_test.
# This may be replaced when dependencies are built.
