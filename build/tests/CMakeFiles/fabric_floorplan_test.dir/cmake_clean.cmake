file(REMOVE_RECURSE
  "CMakeFiles/fabric_floorplan_test.dir/fabric_floorplan_test.cpp.o"
  "CMakeFiles/fabric_floorplan_test.dir/fabric_floorplan_test.cpp.o.d"
  "fabric_floorplan_test"
  "fabric_floorplan_test.pdb"
  "fabric_floorplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_floorplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
