# Empty compiler generated dependencies file for fabric_floorplan_test.
# This may be replaced when dependencies are built.
