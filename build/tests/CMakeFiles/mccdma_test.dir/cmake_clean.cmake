file(REMOVE_RECURSE
  "CMakeFiles/mccdma_test.dir/mccdma_test.cpp.o"
  "CMakeFiles/mccdma_test.dir/mccdma_test.cpp.o.d"
  "mccdma_test"
  "mccdma_test.pdb"
  "mccdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mccdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
