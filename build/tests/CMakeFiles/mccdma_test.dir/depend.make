# Empty dependencies file for mccdma_test.
# This may be replaced when dependencies are built.
