file(REMOVE_RECURSE
  "CMakeFiles/project_io_test.dir/project_io_test.cpp.o"
  "CMakeFiles/project_io_test.dir/project_io_test.cpp.o.d"
  "project_io_test"
  "project_io_test.pdb"
  "project_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
