# Empty dependencies file for project_io_test.
# This may be replaced when dependencies are built.
