# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_device_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_floorplan_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/aaa_graph_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/adequation_test[1]_include.cmake")
include("/root/repo/build/tests/project_io_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/rtr_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mccdma_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
add_test(cli_devices "/root/repo/build/tools/pdrflow" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/pdrflow")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
