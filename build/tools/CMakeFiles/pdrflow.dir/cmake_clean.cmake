file(REMOVE_RECURSE
  "CMakeFiles/pdrflow.dir/pdrflow_cli.cpp.o"
  "CMakeFiles/pdrflow.dir/pdrflow_cli.cpp.o.d"
  "pdrflow"
  "pdrflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdrflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
