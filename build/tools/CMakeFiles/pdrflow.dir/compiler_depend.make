# Empty compiler generated dependencies file for pdrflow.
# This may be replaced when dependencies are built.
