divert(-1)
# D1.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: fpga_region
divert(0)dnl
processor_(D1, fpga_region)dnl
main_
  loop_
  endloop_
endmain_
