divert(-1)
# D1.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: fpga_region
divert(0)dnl
processor_(D1, fpga_region)dnl
main_
  loop_
    recv_(interleave_to_modulation, LIO, 32)
    compute_(modulation_qpsk_, 1000)
    send_(modulation_to_spread, LIO, 64)
  endloop_
endmain_
