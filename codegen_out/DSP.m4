divert(-1)
# DSP.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: processor
divert(0)dnl
processor_(DSP, processor)dnl
main_
  loop_
  endloop_
endmain_
