divert(-1)
# F1.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: fpga_static
divert(0)dnl
processor_(F1, fpga_static)dnl
main_
  loop_
    compute_(data_in, 1000)
    compute_(scramble, 800)
    compute_(conv_code, 1000)
    compute_(interleave, 1000)
    send_(interleave_to_modulation, LIO, 32)
    recv_(modulation_to_spread, LIO, 64)
    compute_(spread, 2000)
    compute_(ifft, 3200)
    compute_(cyclic_prefix, 800)
    compute_(frame, 1000)
    compute_(shb_out, 500)
  endloop_
endmain_
