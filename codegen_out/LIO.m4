divert(-1)
# LIO.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: medium
divert(0)dnl
media_(LIO)dnl
main_
  loop_
  endloop_
endmain_
