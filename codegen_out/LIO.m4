divert(-1)
# LIO.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: medium
divert(0)dnl
media_(LIO)dnl
main_
  loop_
    move_(interleave_to_modulation, 32)
    move_(modulation_to_spread, 64)
  endloop_
endmain_
