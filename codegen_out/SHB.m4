divert(-1)
# SHB.m4 -- synchronized executive (pdrflow, SynDEx-style)
# vertex kind: medium
divert(0)dnl
media_(SHB)dnl
main_
  loop_
  endloop_
endmain_
