divert(-1)
# mccdma_tx.m4 -- application executive index
divert(0)dnl
application_(mccdma_tx)dnl
declare_processor_(DSP, processor)dnl
declare_processor_(F1, fpga_static)dnl
declare_processor_(D1, fpga_region)dnl
declare_media_(SHB, 200000000)dnl
declare_media_(LIO, 400000000)dnl
include_(DSP.m4)dnl
include_(F1.m4)dnl
include_(D1.m4)dnl
include_(SHB.m4)dnl
include_(LIO.m4)dnl
end_application_dnl
