// The complete top-down design flow (paper Figure 3): modelisation ->
// adequation -> constraints file + VHDL generation -> Modular Design
// (placement, bitstreams). Writes every artifact into ./codegen_out/ the
// way SynDEx + the Xilinx flow would populate a project directory.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "aaa/adequation.hpp"
#include "aaa/codegen_c.hpp"
#include "aaa/codegen_m4.hpp"
#include "aaa/codegen_vhdl.hpp"
#include "aaa/macrocode.hpp"
#include "mccdma/case_study.hpp"
#include "sim/executive_player.hpp"
#include "util/strings.hpp"

using namespace pdr;

namespace {

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  printf("  wrote %-42s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main() {
  const std::filesystem::path out_dir = "codegen_out";
  std::filesystem::create_directories(out_dir);

  std::puts("[1/5] modelisation: algorithm + architecture graphs");
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  write_file(out_dir / "algorithm.dot", cs.algorithm.to_dot());
  write_file(out_dir / "architecture.dot", cs.architecture.to_dot());

  std::puts("[2/5] constraints file (dynamic modules, exclusions, relations)");
  write_file(out_dir / "design.constraints", aaa::write_constraints(cs.constraints));

  std::puts("[3/5] adequation: mapping + scheduling");
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";  // 'load startup' constraint of module qpsk
  const aaa::Schedule schedule = adequation.run(options);
  aaa::validate_schedule(schedule, cs.algorithm, cs.architecture);
  write_file(out_dir / "schedule.txt", schedule.to_string() + "\n" + schedule.gantt());

  std::puts("[4/5] macro-code translation: VHDL for FPGA parts, C for the DSP");
  const aaa::Executive executive = aaa::generate_executive(schedule, cs.algorithm, cs.architecture);
  write_file(out_dir / "executive.txt", executive.to_string());
  write_file(out_dir / "pdr_executive_pkg.vhd", aaa::generate_vhdl_package());
  for (aaa::NodeId n : cs.architecture.operators()) {
    const aaa::OperatorNode& op = cs.architecture.op(n);
    const aaa::MacroProgram& program = executive.program(op.name);
    if (op.kind == aaa::OperatorKind::Processor) {
      write_file(out_dir / (identifier(op.name) + "_executive.c"),
                 aaa::generate_c_executive(program, op, cs.constraints));
    } else {
      aaa::VhdlOptions vhdl;
      vhdl.embed_reconfig_manager = op.kind == aaa::OperatorKind::FpgaStatic &&
                                    cs.constraints.manager == aaa::Placement::Fpga;
      if (op.kind == aaa::OperatorKind::FpgaRegion)
        vhdl.bus_macro_count =
            static_cast<int>(cs.bundle.floorplan.region(op.region).bus_macros.size());
      write_file(out_dir / (identifier(op.name) + ".vhd"),
                 aaa::generate_vhdl_entity(program, op, vhdl));
    }
  }
  write_file(out_dir / "design_top.vhd",
             aaa::generate_vhdl_top(executive, cs.architecture, cs.constraints));
  // SynDEx's native macro-code form: one m4 file per vertex + the index.
  for (const auto& program : executive.programs)
    write_file(out_dir / (identifier(program.resource) + ".m4"),
               aaa::generate_m4_macrocode(program, cs.architecture));
  write_file(out_dir / "application.m4",
             aaa::generate_m4_application(executive, cs.architecture, "mccdma_tx"));

  // Execute the generated executive and render its timeline as SVG.
  {
    sim::ExecutivePlayer player(executive, cs.architecture);
    player.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));
    const sim::PlayResult played = player.run(8);
    write_file(out_dir / "executive_timeline.svg", played.timeline.to_svg());
  }

  std::puts("[5/5] Modular Design back-end: floorplan + partial bitstreams");
  write_file(out_dir / "floorplan.txt", cs.bundle.floorplan.render());
  for (const auto& name : cs.bundle.variant_names("D1")) {
    const auto& variant = cs.bundle.variant("D1", name);
    std::string blob(variant.bitstream.begin(), variant.bitstream.end());
    write_file(out_dir / (name + "_partial.bit"), blob);
  }
  std::string full(cs.bundle.initial_bitstream.begin(), cs.bundle.initial_bitstream.end());
  write_file(out_dir / "initial_full.bit", full);

  printf("\nflow timings: elaborate %.0f us, map %.0f us, place %.0f us, bitgen %.0f us\n",
         cs.bundle.report.elaborate_us, cs.bundle.report.map_us, cs.bundle.report.place_us,
         cs.bundle.report.bitgen_us);
  printf("done; %d modules, %s of bitstreams in %s/\n", cs.bundle.report.modules,
         human_bytes(cs.bundle.report.total_bitstream_bytes).c_str(), out_dir.c_str());
  return 0;
}
