// The complete top-down design flow (paper Figure 3): modelisation ->
// adequation -> constraints file + VHDL generation -> Modular Design
// (placement, bitstreams). Writes every artifact into ./codegen_out/ the
// way SynDEx + the Xilinx flow would populate a project directory.
//
// All of it runs through the mccdma::case_study_pipeline() preset: the
// adequation, codegen and Modular Design stages are cached artifacts, so
// a second run of this example (in the same process) would rebuild
// nothing.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "flow/pipeline.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "sim/executive_player.hpp"
#include "util/strings.hpp"

using namespace pdr;

namespace {

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  printf("  wrote %-42s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main() {
  const std::filesystem::path out_dir = "codegen_out";
  std::filesystem::create_directories(out_dir);

  flow::Pipeline pipeline = mccdma::case_study_pipeline();
  const mccdma::CaseStudy& cs = mccdma::shared_case_study();

  std::puts("[1/5] modelisation: algorithm + architecture graphs");
  write_file(out_dir / "algorithm.dot", cs.algorithm.to_dot());
  write_file(out_dir / "architecture.dot", cs.architecture.to_dot());

  std::puts("[2/5] constraints file (dynamic modules, exclusions, relations)");
  write_file(out_dir / "design.constraints", pipeline.options().constraints_text);

  std::puts("[3/5] adequation: mapping + scheduling");
  const std::shared_ptr<const flow::AdequationArtifacts> adeq = pipeline.adequation();
  write_file(out_dir / "schedule.txt",
             adeq->schedule.to_string() + "\n" + adeq->schedule.gantt());

  std::puts("[4/5] macro-code translation: VHDL for FPGA parts, C for the DSP");
  write_file(out_dir / "executive.txt", adeq->executive.to_string());
  const std::shared_ptr<const flow::CodegenArtifacts> gen = pipeline.codegen();
  for (const auto& [name, content] : gen->files) write_file(out_dir / name, content);

  // Execute the generated executive and render its timeline as SVG.
  {
    sim::ExecutivePlayer player(adeq->executive, cs.architecture);
    player.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));
    const sim::PlayResult played = player.run(8);
    write_file(out_dir / "executive_timeline.svg", played.timeline.to_svg());
  }

  std::puts("[5/5] Modular Design back-end: floorplan + partial bitstreams");
  const std::shared_ptr<const synth::DesignBundle> bundle = pipeline.bundle();
  write_file(out_dir / "floorplan.txt", bundle->floorplan.render());
  for (const auto& name : bundle->variant_names("D1")) {
    const auto& variant = bundle->variant("D1", name);
    std::string blob(variant.bitstream.begin(), variant.bitstream.end());
    write_file(out_dir / (name + "_partial.bit"), blob);
  }
  std::string full(bundle->initial_bitstream.begin(), bundle->initial_bitstream.end());
  write_file(out_dir / "initial_full.bit", full);

  printf("\nflow timings: elaborate %.0f us, map %.0f us, place %.0f us, bitgen %.0f us\n",
         bundle->report.elaborate_us, bundle->report.map_us, bundle->report.place_us,
         bundle->report.bitgen_us);
  printf("done; %d modules, %s of bitstreams in %s/\n", bundle->report.modules,
         human_bytes(bundle->report.total_bitstream_bytes).c_str(), out_dir.c_str());
  return 0;
}
