// Adaptive filter bank: the library applied beyond the paper's case study.
//
// A sensor stream alternates between low-band and high-band activity. A
// dynamic region holds ONE of two FIR modules (low-pass / high-pass); a
// spectrum monitor in the static part detects which band is active and
// requests the matching filter — the same detect -> announce -> request
// pattern as the MC-CDMA transmitter's adaptive modulation, with real
// filtering arithmetic throughout.

#include <cmath>
#include <cstdio>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "flow/pipeline.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "rtr/manager.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

const char* kConstraints = R"(
device XC2V2000
port icap
manager fpga
builder fpga
prefetch history

region D1 { width 4 }

# Distributed-arithmetic FIR (LUT-based, no MULT18 columns needed — the
# right implementation for an edge region on Virtex-II).
dynamic lowpass  { region D1  kind custom  param luts 900  param ffs 500  load startup }
dynamic highpass { region D1  kind custom  param luts 900  param ffs 500 }

exclude lowpass highpass
relation lowpass then highpass
relation highpass then lowpass
)";

/// Energy fraction above half-Nyquist, from a 256-point FFT.
double high_band_fraction(std::span<const double> block) {
  std::vector<dsp::Cplx> x(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) x[i] = {block[i], 0.0};
  dsp::fft(x);
  double low = 0, high = 0;
  for (std::size_t k = 1; k < x.size() / 2; ++k) {
    (k < x.size() / 8 ? low : high) += std::norm(x[k]);
  }
  return high / (low + high + 1e-30);
}

}  // namespace

int main() {
  const aaa::ConstraintSet constraints = aaa::parse_constraints(kConstraints);
  // Parse + lint + Modular Design through the flow pipeline preset.
  flow::Pipeline pipeline =
      mccdma::constraints_pipeline(kConstraints, {{"spectrum_monitor", "ifft", {{"n", 256}}},
                                                  {"iface", "interface_in_out", {}},
                                                  {"cfg", "config_manager", {}},
                                                  {"pb", "protocol_builder", {}}});
  const std::shared_ptr<const synth::DesignBundle> bundle_ptr = pipeline.bundle();
  const synth::DesignBundle& bundle = *bundle_ptr;
  std::fputs(bundle.floorplan.render().c_str(), stdout);

  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::HistoryPredictor policy(constraints);
  rtr::ReconfigManager manager(bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "lowpass");

  // The two filter modules' arithmetic.
  const auto lp = dsp::lowpass_taps(63, 0.08);
  const auto hp = dsp::highpass_taps(63, 0.30);
  std::string active = "lowpass";

  // Input: blocks alternating between a low tone and a high tone + noise.
  Rng rng(99);
  const std::size_t block_len = 256;
  // 200 kHz sensor stream: a block lasts 1.28 ms, so the history
  // prefetcher's staging (~3 ms) completes well inside a 6-block phase.
  const double fs_block_t_ns = static_cast<double>(block_len) * 5000.0;
  TimeNs now = 0;
  TimeNs stall = 0;
  int switches = 0;
  double out_power_kept = 0, out_power_total = 0;

  Table t({"block", "band", "high-band frac", "filter", "action", "stall (ms)"});
  for (int blk = 0; blk < 24; ++blk) {
    const bool high_phase = (blk / 6) % 2 == 1;  // 6 blocks per phase
    const double f0 = high_phase ? 0.35 : 0.03;  // normalized tone
    std::vector<double> block(block_len);
    for (std::size_t i = 0; i < block_len; ++i)
      block[i] = std::sin(2.0 * 3.14159265358979 * f0 * static_cast<double>(i)) +
                 0.1 * rng.normal();

    const double frac = high_band_fraction(block);
    const std::string wanted = frac > 0.5 ? "highpass" : "lowpass";
    std::string action = "keep";
    if (wanted != active) {
      const auto outcome = manager.request("D1", wanted, now);
      stall += outcome.stall;
      now = outcome.ready_at;
      active = wanted;
      ++switches;
      action = rtr::request_kind_name(outcome.kind);
      manager.auto_prefetch("D1", now);  // history: stage the way back
    }

    // The resident module filters the block (the actual arithmetic the
    // region performs).
    const auto filtered = dsp::fir_filter(block, active == "lowpass" ? lp : hp);
    double in_e = 0, out_e = 0;
    for (std::size_t i = 0; i < block_len; ++i) {
      in_e += block[i] * block[i];
      out_e += filtered[i] * filtered[i];
    }
    out_power_kept += out_e;
    out_power_total += in_e;

    if (blk % 3 == 0 || action != "keep") {
      t.row()
          .add(blk)
          .add(high_phase ? "high" : "low")
          .add(frac, 2)
          .add(active)
          .add(action)
          .add(to_ms(stall), 2);
    }
    now += static_cast<TimeNs>(fs_block_t_ns);
  }
  t.print();

  printf("\n%d filter switches, %.2f ms total reconfiguration stall\n", switches, to_ms(stall));
  printf("matched filter kept %.0f%% of input power (it passes the active tone)\n",
         100.0 * out_power_kept / out_power_total);
  printf("history prefetch: %d staged hits of %d requests\n",
         manager.stats().prefetch_hits + manager.stats().prefetch_inflight,
         manager.stats().requests);
  return 0;
}
