// The paper's case study end to end (paper §6, Figure 4): the
// runtime-reconfigurable MC-CDMA transmitter on the simulated Sundance
// board (TI C6201 DSP + Xilinx XC2V2000).
//
// Builds the design through the Modular Design flow, then transmits
// 20,000 OFDM symbols over a fading channel. The DSP's SNR measurements
// drive QPSK <-> QAM-16 switches of region D1; each switch is a partial
// reconfiguration of about 4 ms, partially hidden by guard-band
// prefetching.

#include <cstdio>

#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

int main() {
  std::puts("building the case-study design (Modular Design flow)...");
  const mccdma::CaseStudy cs = mccdma::build_case_study();

  std::fputs(cs.bundle.floorplan.render().c_str(), stdout);
  printf("dynamic region D1: %.1f%% of the device's configuration frames\n",
         100.0 * cs.bundle.floorplan.region_fraction("D1"));
  for (const auto& name : cs.bundle.variant_names("D1")) {
    const auto& v = cs.bundle.variant("D1", name);
    printf("  variant %-6s: %s, partial bitstream %s\n", name.c_str(),
           v.usage.to_string().c_str(), human_bytes(v.bitstream.size()).c_str());
  }

  const auto cost = mccdma::case_study_reconfig_cost(cs.bundle);
  printf("cold reconfiguration of Op_Dyn: %.2f ms (paper: \"about 4ms\")\n\n",
         to_ms(cost("D1", "qam16")));

  mccdma::SystemConfig config;
  config.seed = 2006;

  std::puts("=== run A: prefetch ON (guard-band announcements) ===");
  mccdma::TransmitterSystem with_prefetch(cs, config);
  const auto a = with_prefetch.run(20'000);

  config.prefetch = aaa::PrefetchChoice::None;
  std::puts("=== run B: prefetch OFF (on-demand reconfiguration) ===");
  mccdma::TransmitterSystem without_prefetch(cs, config);
  const auto b = without_prefetch.run(20'000);

  Table table({"metric", "prefetch ON", "prefetch OFF"});
  table.row().add("OFDM symbols").add(std::uint64_t{a.symbols}).add(std::uint64_t{b.symbols});
  table.row().add("modulation switches").add(a.switches).add(b.switches);
  table.row().add("elapsed (ms)").add(to_ms(a.elapsed)).add(to_ms(b.elapsed));
  table.row().add("reconfig stall (ms)").add(to_ms(a.stall_total)).add(to_ms(b.stall_total));
  table.row().add("stall fraction (%)").add(100 * a.stall_fraction()).add(100 * b.stall_fraction());
  table.row().add("throughput (Mbit/s)").add(a.throughput_bps() / 1e6).add(b.throughput_bps() / 1e6);
  table.row().add("prefetch hits").add(a.manager.prefetch_hits).add(b.manager.prefetch_hits);
  table.row().add("misses").add(a.manager.misses).add(b.manager.misses);
  table.row()
      .add("BER qpsk (measured)")
      .add(strprintf("%.2e", a.ber_qpsk.ber()))
      .add(strprintf("%.2e", b.ber_qpsk.ber()));
  table.row()
      .add("BER qam16 (measured)")
      .add(strprintf("%.2e", a.ber_qam16.ber()))
      .add(strprintf("%.2e", b.ber_qam16.ber()));
  table.print();

  printf("\nprefetch hid %.2f ms of reconfiguration latency (%.0f%% of the no-prefetch stall)\n",
         to_ms(b.stall_total - a.stall_total),
         b.stall_total > 0
             ? 100.0 * static_cast<double>(b.stall_total - a.stall_total) /
                   static_cast<double>(b.stall_total)
             : 0.0);
  return 0;
}
