// Multiple dynamic parts (paper §7: "complex design and architecture can
// support more than one dynamic part").
//
// Extends the case study with a second reconfigurable region: D1 keeps
// the adaptive modulation (qpsk / qam16), D2 hosts the channel coder
// (rate-1/2 vs punctured rate-3/4 convolutional encoder variants). Both
// regions share the single ICAP, so simultaneous reconfigurations
// serialize on the configuration port — exactly the resource conflict the
// adequation and the runtime manager must handle.

#include <cstdio>

#include "aaa/adequation.hpp"
#include "flow/pipeline.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "rtr/manager.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

namespace {

const char* kConstraints = R"(
device XC2V2000
port icap
manager fpga
builder fpga
prefetch history

region D1 { width 5 }
region D2 { width 3 }

dynamic qpsk   { region D1  kind qpsk_mapper   load startup }
dynamic qam16  { region D1  kind qam16_mapper }
dynamic rate12 { region D2  kind conv_encoder  param k 7  load startup }
dynamic rate34 { region D2  kind conv_encoder  param k 9 }

exclude qpsk qam16
exclude rate12 rate34
relation qpsk then qam16
relation qam16 then qpsk
relation rate12 then rate34
relation rate34 then rate12
)";

}  // namespace

int main() {
  const aaa::ConstraintSet constraints = aaa::parse_constraints(kConstraints);
  // The Synth stage through the flow pipeline: parsed + linted + built
  // once, then served from the process-wide artifact cache.
  flow::Pipeline pipeline =
      mccdma::constraints_pipeline(kConstraints, {{"ifft", "ifft", {{"n", 64}}},
                                                  {"iface", "interface_in_out", {}},
                                                  {"cfg", "config_manager", {}},
                                                  {"pb", "protocol_builder", {}}});
  const std::shared_ptr<const synth::DesignBundle> bundle_ptr = pipeline.bundle();
  const synth::DesignBundle& bundle = *bundle_ptr;

  std::puts("=== floorplan with two dynamic parts ===");
  std::fputs(bundle.floorplan.render().c_str(), stdout);
  printf("D1: %.1f%% of device, D2: %.1f%%\n\n",
         100.0 * bundle.floorplan.region_fraction("D1"),
         100.0 * bundle.floorplan.region_fraction("D2"));

  // --- adequation with two regions -------------------------------------
  aaa::AlgorithmGraph algo;
  algo.add_sensor("src");
  algo.add_conditioned("coder", {{"rate12", "conv_encoder", {{"k", 7}}},
                                 {"rate34", "conv_encoder", {{"k", 9}}}});
  algo.add_conditioned("modulation",
                       {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  algo.add_compute("ifft", "ifft", {{"n", 64}});
  algo.add_actuator("out");
  algo.add_dependency("src", "coder", 16);
  algo.add_dependency("coder", "modulation", 32);
  algo.add_dependency("modulation", "ifft", 64);
  algo.add_dependency("ifft", "out", 256);

  aaa::ArchitectureGraph arch = aaa::make_sundance_architecture();
  arch.add_operator(aaa::OperatorNode{"D2", aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D2"});
  arch.connect("D2", "LIO");

  const aaa::DurationTable durations = aaa::mccdma_durations();
  aaa::Adequation adequation(algo, arch, durations);
  adequation.apply_constraints(constraints);  // pins coder->D2, modulation->D1
  rtr::BitstreamStore cost_store = mccdma::make_case_study_store();
  adequation.set_reconfig_cost([&bundle](const std::string& region, const std::string& module) {
    return mccdma::kCaseStudyStoreLatency +
           transfer_time_ns(bundle.variant(region, module).bitstream.size(),
                            mccdma::kCaseStudyStoreBandwidth);
  });
  const aaa::Schedule schedule = adequation.run();
  aaa::validate_schedule(schedule, algo, arch);
  std::puts("=== adequation with D1 + D2 (reconfigurations serialize on ICAP) ===");
  std::fputs(schedule.to_string().c_str(), stdout);
  std::fputs(schedule.gantt().c_str(), stdout);

  // --- runtime: two regions contending for one port ----------------------
  std::puts("\n=== runtime manager: simultaneous demands on D1 and D2 ===");
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::HistoryPredictor policy(constraints);
  rtr::ReconfigManager manager(bundle, rtr::sundance_manager_config(), store, policy);
  manager.set_resident("D1", "qpsk");    // load startup
  manager.set_resident("D2", "rate12");  // load startup

  const auto d1 = manager.request("D1", "qam16", 0);
  const auto d2 = manager.request("D2", "rate34", 0);
  Table t({"region", "module", "kind", "ready at (ms)", "stall (ms)"});
  t.row().add("D1").add("qam16").add(rtr::request_kind_name(d1.kind)).add(to_ms(d1.ready_at), 2)
      .add(to_ms(d1.stall), 2);
  t.row().add("D2").add("rate34").add(rtr::request_kind_name(d2.kind)).add(to_ms(d2.ready_at), 2)
      .add(to_ms(d2.stall), 2);
  t.print();
  std::puts("(D2 waits for D1's load: one ICAP, serialized configuration)");

  // History prefetch now predicts the way back.
  manager.auto_prefetch("D1", d2.ready_at);
  manager.auto_prefetch("D2", d2.ready_at);
  const auto back1 = manager.request("D1", "qpsk", d2.ready_at + 10_ms);
  const auto back2 = manager.request("D2", "rate12", d2.ready_at + 20_ms);
  printf("\nafter history prefetch: D1 back to qpsk = %s (stall %.2f ms), "
         "D2 back to rate12 = %s (stall %.2f ms)\n",
         rtr::request_kind_name(back1.kind), to_ms(back1.stall),
         rtr::request_kind_name(back2.kind), to_ms(back2.stall));
  return 0;
}
