// Quickstart: model a small application and platform, run the adequation,
// and inspect the schedule and generated macro-code.
//
// The application is a 4-stage pipeline whose "filter" stage has two
// runtime-selectable implementations (the paper's conditioned vertex);
// the platform is an FPGA with a fixed part and one reconfigurable
// region, plus a processor, as in paper Figure 1.

#include <cstdio>
#include <iostream>

#include "aaa/adequation.hpp"
#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/durations.hpp"
#include "aaa/macrocode.hpp"
#include "util/units.hpp"

using namespace pdr;
using namespace pdr::literals;

int main() {
  // --- 1. Algorithm graph: source -> filter(a|b) -> fft -> sink ---------
  aaa::AlgorithmGraph algo;
  algo.add_sensor("source", "bit_source");
  algo.add_conditioned("filter", {{"fir_short", "fir", {{"taps", 8}}},
                                  {"fir_long", "fir", {{"taps", 32}}}});
  algo.add_compute("transform", "ifft", {{"n", 64}});
  algo.add_actuator("sink", "interface_in_out");
  algo.add_dependency("source", "filter", 256);
  algo.add_dependency("filter", "transform", 256);
  algo.add_dependency("transform", "sink", 512);

  // --- 2. Architecture graph: DSP + FPGA(F1, D1) over two media ---------
  aaa::ArchitectureGraph arch = aaa::make_sundance_architecture();

  // --- 3. Durations + reconfiguration cost ------------------------------
  aaa::DurationTable durations = aaa::mccdma_durations();

  aaa::Adequation adequation(algo, arch, durations);
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 2_ms; });
  // The filter's alternatives are dynamic modules sharing region D1 (what
  // the constraints file expresses for real designs).
  adequation.pin("filter", "D1");

  // --- 4. Run the adequation and show the result -------------------------
  std::puts("=== schedule (prefetch on, region initially empty) ===");
  aaa::AdequationOptions options;
  options.selection["filter"] = "fir_long";
  const aaa::Schedule schedule = adequation.run(options);
  std::fputs(schedule.to_string().c_str(), stdout);
  std::puts("");
  std::fputs(schedule.gantt().c_str(), stdout);

  aaa::validate_schedule(schedule, algo, arch);
  std::puts("schedule invariants: OK");

  // --- 5. Macro-code (the synchronized executive) -----------------------
  std::puts("\n=== synchronized executive (macro-code) ===");
  const aaa::Executive executive = aaa::generate_executive(schedule, algo, arch);
  std::fputs(executive.to_string().c_str(), stdout);

  // --- 6. DOT exports for the two graphs ---------------------------------
  std::puts("=== graphviz (paste into dot -Tpng) ===");
  std::fputs(algo.to_dot().c_str(), stdout);
  std::fputs(arch.to_dot().c_str(), stdout);
  return 0;
}
