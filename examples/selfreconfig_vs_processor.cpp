// Paper Figure 2: different ways to reconfigure the dynamic parts of an
// FPGA. The placement of the configuration manager (M) and the protocol
// configuration builder (P) — on the FPGA's fixed part or on the CPU —
// plus the port choice (ICAP vs SelectMAP vs JTAG) determine the
// reconfiguration latency.
//
//  case a) standalone self-reconfiguration: M and P in the fixed part,
//          loading through ICAP;
//  case b) processor-hosted: the FPGA raises an interrupt, the CPU's
//          manager and software builder feed SelectMAP.

#include <cstdio>

#include "mccdma/case_study.hpp"
#include "rtr/manager.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

rtr::ManagerConfig configure(aaa::Placement m, aaa::Placement p, fabric::PortKind port) {
  rtr::ManagerConfig cfg;
  cfg.manager = m;
  cfg.builder = p;
  cfg.port_kind = port;
  return cfg;
}

}  // namespace

int main() {
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  const Bytes stream = cs.bundle.variant("D1", "qam16").bitstream.size();
  printf("partial bitstream of Op_Dyn: %llu bytes\n\n",
         static_cast<unsigned long long>(stream));

  struct Scenario {
    const char* label;
    rtr::ManagerConfig cfg;
  };
  const Scenario scenarios[] = {
      {"a) self-reconfig: M=FPGA P=FPGA ICAP",
       configure(aaa::Placement::Fpga, aaa::Placement::Fpga, fabric::PortKind::Icap)},
      {"a') self-reconfig: M=FPGA P=FPGA SelectMAP",
       configure(aaa::Placement::Fpga, aaa::Placement::Fpga, fabric::PortKind::SelectMap)},
      {"b) processor: M=CPU P=CPU SelectMAP",
       configure(aaa::Placement::Cpu, aaa::Placement::Cpu, fabric::PortKind::SelectMap)},
      {"b') processor: M=CPU P=FPGA SelectMAP",
       configure(aaa::Placement::Cpu, aaa::Placement::Fpga, fabric::PortKind::SelectMap)},
      {"c) JTAG fallback: M=CPU P=CPU JTAG",
       configure(aaa::Placement::Cpu, aaa::Placement::Cpu, fabric::PortKind::Jtag)},
  };

  // Two memories: the case-study board memory (slow, dominates latency)
  // and a fast local SRAM that exposes the M/P placement differences.
  for (const bool fast_memory : {false, true}) {
    printf("--- bitstream memory: %s ---\n",
           fast_memory ? "fast local SRAM (200 MB/s)" : "case-study memory (16.7 MB/s)");
    Table table({"scenario", "cold load (ms)", "port-only (ms)", "overhead vs a) (x)"});
    double base = 0;
    for (const auto& s : scenarios) {
      rtr::BitstreamStore store =
          fast_memory ? rtr::BitstreamStore(200e6, 1000) : mccdma::make_case_study_store();
      rtr::NonePrefetch policy;
      rtr::ReconfigManager manager(cs.bundle, s.cfg, store, policy);
      const double cold = to_ms(manager.cold_load_latency("qam16"));
      const double port_only = to_ms(manager.port().transfer_time(stream));
      if (base == 0) base = cold;
      table.row().add(s.label).add(cold).add(port_only).add(cold / base);
    }
    table.print();
    puts("");
  }

  std::puts("\nthe paper's board uses case a): the fixed part addresses external");
  std::puts("memory and drives ICAP; its ~4 ms is dominated by the memory stream.");
  return 0;
}
