#include "aaa/adequation.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <string_view>
#include <unordered_map>

#include "graph/ready.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

using namespace pdr::literals;

const char* mapping_strategy_name(MappingStrategy strategy) {
  switch (strategy) {
    case MappingStrategy::SynDExList: return "syndex_list";
    case MappingStrategy::RoundRobin: return "round_robin";
    case MappingStrategy::FirstFeasible: return "first_feasible";
  }
  return "?";
}

void validate_schedule(const Schedule& schedule, const AlgorithmGraph& algorithm,
                       const ArchitectureGraph& architecture) {
  // 1. No overlap per resource. Resources are visited in name order (as
  //    the old string-keyed map iterated), so which violation fires first
  //    is unchanged.
  std::map<std::string_view, std::vector<std::size_t>> per_resource;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    PDR_CHECK(schedule.end(i) >= schedule.start(i), "validate_schedule",
              "item '" + schedule.label(i) + "' ends before it starts");
    per_resource[schedule.resource(i)].push_back(i);
  }
  for (auto& [res, list] : per_resource) {
    std::stable_sort(list.begin(), list.end(),
                     [&](std::size_t a, std::size_t b) { return schedule.start(a) < schedule.start(b); });
    for (std::size_t i = 1; i < list.size(); ++i) {
      PDR_CHECK(schedule.start(list[i]) >= schedule.end(list[i - 1]), "validate_schedule",
                "items '" + schedule.label(list[i - 1]) + "' and '" + schedule.label(list[i]) +
                    "' overlap on resource '" + std::string(res) + "'");
    }
  }

  // 2. Dependencies respected. Transfers are matched by edge identity —
  //    two parallel edges between the same producer/consumer pair must
  //    each have their own transfer chain; a (src,dst) name match alone
  //    would let them validate against each other's items. The per-edge
  //    chains are grouped once up front instead of rescanning every
  //    transfer item per algorithm edge.
  const auto& g = algorithm.digraph();
  const auto edge_ids = g.edge_ids();
  const std::size_t edge_cap = edge_ids.empty() ? 0 : edge_ids.back() + 1;
  constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);
  std::vector<std::size_t> compute_of(g.node_capacity(), kNoItem);
  std::vector<std::vector<std::size_t>> chain_of_edge(edge_cap);
  std::vector<std::size_t> untagged_transfers;  // hand-built items without edge ids
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (schedule.kind(i) == ItemKind::Compute) {
      const graph::NodeId n = schedule.op(i);
      if (n < compute_of.size()) compute_of[n] = i;
    } else if (schedule.kind(i) == ItemKind::Transfer) {
      const graph::EdgeId e = schedule.edge(i);
      if (e != graph::kNoEdge && e < edge_cap)
        chain_of_edge[e].push_back(i);
      else
        untagged_transfers.push_back(i);
    }
  }
  std::vector<char> consumed(schedule.size(), 0);
  for (graph::EdgeId e : edge_ids) {
    const graph::NodeId p = g.edge_from(e);
    const graph::NodeId c = g.edge_to(e);
    const std::size_t ip = p < compute_of.size() ? compute_of[p] : kNoItem;
    const std::size_t ic = c < compute_of.size() ? compute_of[c] : kNoItem;
    PDR_CHECK(ip != kNoItem && ic != kNoItem, "validate_schedule",
              "an operation was never scheduled");
    PDR_CHECK(schedule.start(ic) >= schedule.end(ip), "validate_schedule",
              "operation '" + g[c].name + "' starts before its input '" + g[p].name + "' finishes");
    if (schedule.resource_sym(ip) != schedule.resource_sym(ic) && g.edge(e).bytes > 0) {
      // Prefer exact edge identity. Hand-built schedules without edge ids
      // fall back to an unconsumed (src,dst,bytes) match — consumption
      // keeps a single item from standing in for two distinct edges.
      std::vector<std::size_t> chain = chain_of_edge[e];
      if (chain.empty()) {
        // One chain = at most one item per medium (the earliest unconsumed
        // match), so parallel edges each claim their own items.
        std::map<std::string_view, std::size_t> per_medium;
        for (const std::size_t i : untagged_transfers)
          if (consumed[i] == 0 && schedule.src(i) == g[p].name && schedule.dst(i) == g[c].name &&
              schedule.bytes(i) == g.edge(e).bytes) {
            const auto [slot, inserted] = per_medium.emplace(schedule.resource(i), i);
            if (!inserted && schedule.start(i) < schedule.start(slot->second)) slot->second = i;
          }
        for (const auto& [medium, i] : per_medium) chain.push_back(i);
      }
      PDR_CHECK(!chain.empty(), "validate_schedule",
                "missing transfer for dependency '" + g[p].name + "' -> '" + g[c].name + "'");
      for (const std::size_t i : chain) {
        consumed[i] = 1;
        PDR_CHECK(schedule.bytes(i) == g.edge(e).bytes, "validate_schedule",
                  "transfer '" + schedule.label(i) + "' carries the wrong payload for its edge");
        PDR_CHECK(schedule.start(i) >= schedule.end(ip) && schedule.end(i) <= schedule.start(ic),
                  "validate_schedule",
                  "transfer '" + schedule.label(i) + "' not between producer and consumer");
      }
    }
  }

  // 3. Regions hold the right module when computing.
  for (NodeId w : architecture.operators_of_kind(OperatorKind::FpgaRegion)) {
    const std::string& rname = architecture.op(w).name;
    const auto it = per_resource.find(std::string_view(rname));
    if (it == per_resource.end()) continue;
    util::SymbolId loaded = util::kEmptySymbol;  // unknown until first reconfig
    bool any_reconfig = false;
    // variant computes may use before any reconfig
    util::SymbolId preloaded_variant = util::kEmptySymbol;
    for (const std::size_t i : it->second) {
      if (schedule.kind(i) == ItemKind::Reconfig) {
        loaded = schedule.module_sym(i);
        any_reconfig = true;
      } else if (schedule.kind(i) == ItemKind::Compute &&
                 schedule.variant_sym(i) != util::kEmptySymbol) {
        if (!any_reconfig) {
          if (preloaded_variant == util::kEmptySymbol) preloaded_variant = schedule.variant_sym(i);
          PDR_CHECK(schedule.variant_sym(i) == preloaded_variant, "validate_schedule",
                    "region '" + rname + "' computes two variants with no reconfiguration between");
        } else {
          PDR_CHECK(schedule.variant_sym(i) == loaded, "validate_schedule",
                    "region '" + rname + "' computes variant '" + std::string(schedule.variant(i)) +
                        "' while module '" + std::string(schedule.name(loaded)) + "' is loaded");
        }
      }
    }
  }

  // 4. Reconfigurations serialize on the single configuration port.
  std::vector<std::size_t> reconfigs;
  for (std::size_t i = 0; i < schedule.size(); ++i)
    if (schedule.kind(i) == ItemKind::Reconfig) reconfigs.push_back(i);
  std::stable_sort(reconfigs.begin(), reconfigs.end(),
                   [&](std::size_t a, std::size_t b) { return schedule.start(a) < schedule.start(b); });
  for (std::size_t i = 1; i < reconfigs.size(); ++i)
    PDR_CHECK(schedule.start(reconfigs[i]) >= schedule.end(reconfigs[i - 1]), "validate_schedule",
              "two reconfigurations overlap on the configuration port");
}

Adequation::Adequation(const AlgorithmGraph& algorithm, const ArchitectureGraph& architecture,
                       const DurationTable& durations)
    : algorithm_(algorithm), architecture_(architecture), durations_(durations) {
  reconfig_cost_ = [](const std::string&, const std::string&) { return 4_ms; };
}

void Adequation::set_reconfig_cost(ReconfigCost cost) { reconfig_cost_ = std::move(cost); }

void Adequation::pin(const std::string& op_name, const std::string& operator_name) {
  algorithm_.by_name(op_name);        // throws if unknown
  architecture_.by_name(operator_name);
  pins_[op_name] = operator_name;
}

void Adequation::apply_constraints(const ConstraintSet& constraints) {
  const auto& g = algorithm_.digraph();
  for (graph::NodeId n : g.node_ids()) {
    const Operation& op = g[n];
    if (!op.conditioned()) continue;
    std::string region;
    for (const auto& alt : op.alternatives) {
      const ModuleConstraint* m = constraints.find_module(alt.name);
      if (m == nullptr) continue;
      PDR_CHECK(region.empty() || region == m->region, "Adequation::apply_constraints",
                "alternatives of '" + op.name + "' are declared in two regions");
      region = m->region;
    }
    if (region.empty()) continue;
    // Pin to the architecture operator representing that region.
    for (NodeId w : architecture_.operators_of_kind(OperatorKind::FpgaRegion)) {
      if (architecture_.op(w).region == region) {
        pins_[op.name] = architecture_.op(w).name;
        break;
      }
    }
  }
}

namespace {

/// Mutable scheduling state: written only by commit(). Everything is
/// index-keyed — architecture NodeId for operators/media/regions,
/// algorithm NodeId for finish/placement, SymbolId for loaded modules —
/// resolved once per run instead of the string-keyed maps the hot path
/// used to hash on every access.
struct State {
  std::vector<TimeNs> operator_free;            ///< by architecture NodeId
  std::vector<TimeNs> medium_free;              ///< by architecture NodeId
  std::vector<util::SymbolId> region_loaded;    ///< by architecture NodeId
  TimeNs port_free = 0;
  std::vector<TimeNs> finish;    ///< by algorithm NodeId
  std::vector<NodeId> placed_on; ///< algorithm NodeId -> architecture operator node
};

/// A fully evaluated placement plan: plain-old-data scalars plus a row
/// range [plan_begin, plan_end) into the run's shared TransferPlan arena.
/// evaluate() builds it against a read-only State — reserving shared
/// media in a local scratch view across the operation's own in-edges —
/// and commit() splices the range into the schedule verbatim. One code
/// path produces all the numbers, so a non-commit estimate and the
/// committed schedule cannot diverge; and since the plan rows live in the
/// arena, selecting between candidates is a POD swap, never a copy of
/// per-item strings.
struct Candidate {
  NodeId target = graph::kNoNode;
  util::SymbolId target_sym = util::kNoSymbol;
  TimeNs data_avail = 0;
  bool needs_reconfig = false;
  TimeNs reconfig_start = 0;
  TimeNs reconfig_end = 0;
  TimeNs reconfig_duration = 0;
  TimeNs exposed_stall = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  std::size_t plan_begin = 0;  ///< first TransferPlan row of this plan
  std::size_t plan_end = 0;    ///< one past the last row
};

}  // namespace

Schedule Adequation::run(const AdequationOptions& options) const {
  algorithm_.validate();
  architecture_.validate();

  const auto& g = algorithm_.digraph();

  // Invalidate the cross-run scaffolding cache against the version
  // counters. Everything in it restates the algorithm graph (the
  // priorities additionally bake in durations), so matching versions mean
  // the cached structures are exactly what this run would rebuild.
  if (cache_.algo_version != algorithm_.version()) {
    cache_.algo_version = algorithm_.version();
    cache_.tracker.reset();
    cache_.in_off.clear();
    cache_.in_rows.clear();
    cache_.has_remainder = false;
  }
  if (cache_.durations_version != durations_.version()) {
    cache_.durations_version = durations_.version();
    cache_.has_remainder = false;
  }

  // --- per-run index tables, resolved once --------------------------------
  const std::size_t algo_cap = g.node_capacity();
  const std::vector<NodeId> all_operators = architecture_.operators();
  const std::vector<NodeId> all_media = architecture_.media();
  std::size_t arch_cap = 0;
  for (NodeId w : all_operators) arch_cap = std::max<std::size_t>(arch_cap, w + 1);
  for (NodeId m : all_media) arch_cap = std::max<std::size_t>(arch_cap, m + 1);

  // Seed the schedule's interner with the architecture's resources in
  // declaration order: resource symbols become dense array indices, so
  // resource_busy and the renderers index straight into vectors.
  Schedule schedule;
  std::vector<util::SymbolId> arch_sym(arch_cap, util::kNoSymbol);
  for (NodeId w : all_operators) arch_sym[w] = schedule.intern(architecture_.op(w).name);
  for (NodeId m : all_media) arch_sym[m] = schedule.intern(architecture_.medium(m).name);
  schedule.placement.assign(algo_cap, util::kNoSymbol);
  // One compute per operation plus its transfers: reserving 2x the node
  // count absorbs the common case without repeated 13-column regrowth.
  schedule.reserve(algo_cap * 2);

  // Operation-name symbols, appended on first use (a committed
  // producer's symbol is already resolved by the time a consumer's
  // transfers name it). append() skips the interner's hash index: the
  // graph validates operation names as duplicate-free and nothing looks
  // them up by text, so indexing a million unique labels would be pure
  // rehash cost.
  std::vector<util::SymbolId> algo_sym(algo_cap, util::kNoSymbol);
  const auto op_sym = [&](graph::NodeId x) {
    util::SymbolId& sym = algo_sym[x];
    if (sym == util::kNoSymbol) sym = schedule.symbols.append(g[x].name);
    return sym;
  };
  // Same, for call sites that already hold the operation — skips the
  // bounds-checked graph access on the append path.
  const auto op_sym_known = [&](graph::NodeId x, const Operation& op) {
    util::SymbolId& sym = algo_sym[x];
    if (sym == util::kNoSymbol) sym = schedule.symbols.append(op.name);
    return sym;
  };

  State st;
  st.operator_free.assign(arch_cap, 0);
  st.medium_free.assign(arch_cap, 0);
  st.region_loaded.assign(arch_cap, util::kEmptySymbol);
  st.finish.assign(algo_cap, 0);
  st.placed_on.assign(algo_cap, graph::kNoNode);
  for (NodeId w : all_operators) {
    if (architecture_.op(w).kind == OperatorKind::FpgaRegion) {
      const auto it = options.preloaded.find(architecture_.op(w).name);
      if (it != options.preloaded.end()) st.region_loaded[w] = schedule.intern(it->second);
    }
  }

  // Pins resolved to ids once (names were validated when the pin was set).
  std::vector<NodeId> pinned(algo_cap, graph::kNoNode);
  for (const auto& [op_name, operator_name] : pins_)
    pinned[algorithm_.by_name(op_name)] = architecture_.by_name(operator_name);

  // Media routes between operator pairs, memoized: route() re-runs a BFS
  // per call, and evaluate() needs a route per in-edge per candidate.
  std::vector<std::vector<NodeId>> route_cache(arch_cap * arch_cap);
  std::vector<char> route_known(arch_cap * arch_cap, 0);
  const auto route_between = [&](NodeId from, NodeId to) -> const std::vector<NodeId>& {
    const std::size_t slot = from * arch_cap + to;
    if (!route_known[slot]) {
      route_cache[slot] = architecture_.route(from, to);
      route_known[slot] = 1;
    }
    return route_cache[slot];
  };

  // Operator nodes resolved to plain pointers once, so per-candidate
  // reads skip the is-operator discrimination check.
  std::vector<const OperatorNode*> op_ptr(arch_cap, nullptr);
  for (NodeId w : all_operators) op_ptr[w] = &architecture_.op(w);

  // Algorithm operations resolved to plain pointers once via a sequential
  // node scan, so the per-placement lookup skips the bounds/liveness check
  // a million operator[] calls would repeat.
  std::vector<const Operation*> algo_op(algo_cap, nullptr);
  g.for_each_live_node([&](graph::NodeId an, const Operation& aop) { algo_op[an] = &aop; });

  // Per-kind tables, built once per distinct kind: durations on every
  // operator (kUnsupported marks operators the kind cannot execute on)
  // and the feasible-operator lists for unpinned operations. The lists
  // keep all_operators' declaration order, so evaluation order — and
  // therefore every tie-break — is exactly what the per-node filtering
  // loop produced. Keys are views into the graph's stable kind strings.
  constexpr TimeNs kUnsupported = -1;
  struct KindTable {
    std::vector<TimeNs> durations;
    std::vector<NodeId> plain;        ///< feasible targets, regions excluded
    std::vector<NodeId> conditioned;  ///< feasible targets incl. regions
    double mean = 0;                  ///< operator-agnostic mean duration
  };
  // Consecutive operations overwhelmingly share a kind, so a one-entry
  // memo in front of the map turns the per-placement lookup into a short
  // string compare. Map values are node-stable, so the cached pointer
  // survives later insertions.
  std::unordered_map<std::string_view, KindTable> kind_cache;
  std::string_view last_kind;
  const KindTable* last_tbl = nullptr;
  const auto kind_table = [&](std::string_view kind) -> const KindTable& {
    if (last_tbl != nullptr && kind == last_kind) return *last_tbl;
    const auto it = kind_cache.find(kind);
    if (it != kind_cache.end()) {
      last_kind = kind;
      last_tbl = &it->second;
      return it->second;
    }
    const std::string kind_str(kind);
    KindTable tbl;
    tbl.durations.assign(arch_cap, kUnsupported);
    for (NodeId w : all_operators) {
      const OperatorNode& target = *op_ptr[w];
      if (!durations_.supports(kind_str, target)) continue;
      tbl.durations[w] = durations_.lookup(kind_str, target);
      // Regions host only conditioned vertices (dynamic modules).
      if (target.kind != OperatorKind::FpgaRegion) tbl.plain.push_back(w);
      tbl.conditioned.push_back(w);
    }
    tbl.mean = durations_.mean(kind_str);
    const KindTable& slot = kind_cache.emplace(kind, std::move(tbl)).first->second;
    last_kind = kind;
    last_tbl = &slot;
    return slot;
  };

  // Critical-path priority weight: operator-agnostic mean duration of the
  // kind (worst alternative for conditioned vertices). Served from the
  // kind tables, so a million-node graph pays one duration-table walk per
  // distinct kind, not one map probe per node.
  const auto op_weight = [&](graph::NodeId n) {
    const Operation& op = *algo_op[n];
    if (!op.conditioned()) return kind_table(op.kind).mean;
    double worst = 0;
    for (const auto& alt : op.alternatives) worst = std::max(worst, kind_table(alt.kind).mean);
    return worst;
  };

  // Scratch medium reservations for evaluate(), generation-stamped so
  // clearing between evaluations is O(1) instead of allocating a map.
  std::vector<TimeNs> scratch_reserved(arch_cap, 0);
  std::vector<std::uint32_t> scratch_generation(arch_cap, 0);
  std::uint32_t generation = 0;

  // Media resolved to plain pointers once, so the transfer inner loop
  // skips the operator/medium discrimination check per hop.
  std::vector<const MediumNode*> media_ptr(arch_cap, nullptr);
  for (NodeId m : all_media) media_ptr[m] = &architecture_.medium(m);

  // In-edge CSR over the whole graph (cached across runs), built from two
  // sequential edge scans: each consumer's dependency rows sit in one
  // contiguous block, so place() never chases a per-node edge list. Row
  // order within a block is edge-id order — the same order
  // for_each_in_edge produces.
  if (cache_.in_off.empty()) {
    cache_.in_off.assign(algo_cap + 1, 0);
    g.for_each_live_edge(
        [&](graph::EdgeId, graph::NodeId, graph::NodeId to) { ++cache_.in_off[to + 1]; });
    for (std::size_t i = 0; i < algo_cap; ++i) cache_.in_off[i + 1] += cache_.in_off[i];
    cache_.in_rows.resize(cache_.in_off[algo_cap]);
    std::vector<std::size_t> cursor(cache_.in_off.begin(), cache_.in_off.end() - 1);
    g.for_each_live_edge([&](graph::EdgeId e, graph::NodeId from, graph::NodeId to) {
      cache_.in_rows[cursor[to]++] = {from, g.edge(e).bytes, e};
    });
  }
  const std::vector<std::size_t>& in_off = cache_.in_off;
  const std::vector<InEdgeRow>& in_rows = cache_.in_rows;

  // The operation's in-edges, gathered once per placement round: every
  // candidate operator re-prices the same dependencies, so the
  // predecessor state loads and symbol resolution are hoisted out of
  // evaluate() into place().
  struct InEdge {
    TimeNs finish;         ///< producer's committed finish time
    NodeId src_w;          ///< operator the producer landed on
    Bytes bytes;
    graph::EdgeId e;
    util::SymbolId psym;   ///< producer's (already resolved) name symbol
  };
  std::vector<InEdge> in_buf;

  // The per-run plan arena all candidates append into; cleared once per
  // pick. Rejected candidates simply abandon their rows.
  TransferPlan plan;

  // Resolves which alternative/kind a vertex executes: the selected
  // alternative for conditioned vertices (first one when unselected), the
  // operation's own kind otherwise. Resolved once per use so feasibility
  // and evaluation always agree on the kind.
  // Views into the operation's own strings — no per-placement copies.
  auto resolve = [&](const Operation& op) -> std::pair<std::string_view, std::string_view> {
    if (!op.conditioned()) return {{}, op.kind};
    const auto sel = options.selection.find(op.name);
    if (sel == options.selection.end())
      return {op.alternatives.front().name, op.alternatives.front().kind};
    for (const auto& a : op.alternatives)
      if (a.name == sel->second) return {a.name, a.kind};
    throw Error("Adequation: selection '" + sel->second + "' is not an alternative of '" +
                op.name + "'");
  };

  // Prices this operation's incoming transfers (pre-gathered into in_buf
  // by place(), in edge order) onto candidate `w`: returns the time all
  // inputs are available on `w`. Rows land in the plan arena only when
  // `record` is set — pricing runs once per candidate, recording once for
  // the winner at commit, so the 4-5 rejected candidates per operation
  // never touch the arena. `st` is unchanged between the two runs, so the
  // recorded rows are exactly the priced ones.
  const auto price_transfers = [&](NodeId w, util::SymbolId nsym, bool record) -> TimeNs {
    ++generation;
    TimeNs data_avail = 0;
    for (const InEdge& in : in_buf) {
      TimeNs t = in.finish;
      if (in.src_w != w && in.bytes > 0) {
        for (NodeId m : route_between(in.src_w, w)) {
          const TimeNs free =
              scratch_generation[m] == generation ? scratch_reserved[m] : st.medium_free[m];
          const TimeNs tstart = std::max(t, free);
          const TimeNs tend = tstart + media_ptr[m]->transfer_time(in.bytes);
          scratch_generation[m] = generation;
          scratch_reserved[m] = tend;
          // label derived at render time — plans never carry one
          if (record) plan.push(tstart, tend, arch_sym[m], m, in.psym, nsym, in.bytes, in.e);
          t = tend;
        }
      }
      data_avail = std::max(data_avail, t);
    }
    return data_avail;
  };

  // Evaluates placing `n` on operator `w` against `st`, without mutating
  // it, into the pooled `cand`. Media this operation's own transfers
  // occupy are reserved in a scratch view, so two in-edges sharing a
  // medium serialize in the estimate exactly as they will in the committed
  // schedule. `duration` is the precomputed lookup of the resolved kind on
  // `w`; `nsym`/`variant`/`variant_sym` are resolved once per pick.
  auto evaluate = [&](graph::NodeId n, NodeId w, util::SymbolId nsym, std::string_view variant,
                      util::SymbolId variant_sym, TimeNs duration, Candidate& cand) {
    const OperatorNode& target = *op_ptr[w];
    cand = Candidate{};
    cand.target = w;
    cand.target_sym = arch_sym[w];
    const TimeNs data_avail = price_transfers(w, nsym, /*record=*/false);
    cand.data_avail = data_avail;

    // Reconfiguration, when targeting a region holding a different module.
    const TimeNs free_before = st.operator_free[w];
    TimeNs region_ready = free_before;
    if (target.kind == OperatorKind::FpgaRegion && variant_sym != util::kEmptySymbol &&
        st.region_loaded[w] != variant_sym) {
      cand.needs_reconfig = true;
      cand.reconfig_duration = reconfig_cost_(target.name, std::string(variant));
      const TimeNs earliest = std::max(st.port_free, free_before);
      cand.reconfig_start = options.prefetch ? earliest : std::max(earliest, data_avail);
      cand.reconfig_end = cand.reconfig_start + cand.reconfig_duration;
      region_ready = cand.reconfig_end;
      // Exposure: how much later the compute starts because of this
      // reconfiguration, vs. a region already holding the module.
      const TimeNs would_start = std::max(data_avail, free_before);
      const TimeNs with_reconfig = std::max(data_avail, cand.reconfig_end);
      cand.exposed_stall = std::max<TimeNs>(0, with_reconfig - would_start);
    }

    cand.start = std::max(data_avail, region_ready);
    cand.end = cand.start + duration;
    if (options.eval_log != nullptr)
      options.eval_log->push_back({n, target.name, cand.end, false});
  };

  // Applies a candidate: splices its plan rows into the schedule and
  // replays its state writes into `st`. No number is recomputed and no
  // string is copied here — the plan's symbol columns move wholesale.
  auto commit = [&](graph::NodeId n, const Operation& op, Candidate& cand,
                    std::string_view variant, util::SymbolId variant_sym) {
    // Record the winner's transfer rows: a second pricing run over the
    // same (still unmutated) state, this time appending to the arena.
    // Sources have no in-edges and same-operator dependencies price no
    // hops, so the arena and the splice call are skipped when there is
    // nothing to record.
    cand.plan_begin = 0;
    cand.plan_end = 0;
    if (!in_buf.empty()) {
      plan.clear();
      price_transfers(cand.target, op_sym_known(n, op), /*record=*/true);
      cand.plan_end = plan.size();
    }
    for (std::size_t r = cand.plan_begin; r < cand.plan_end; ++r) {
      // per medium, transfers are planned in time order
      st.medium_free[plan.medium[r]] = plan.end[r];
    }
    if (cand.plan_end != 0) schedule.splice_transfers(plan, cand.plan_begin, cand.plan_end);
    if (cand.needs_reconfig) {
      st.port_free = cand.reconfig_end;
      st.region_loaded[cand.target] = variant_sym;
      schedule.push_reconfig(cand.target_sym, cand.reconfig_start, cand.reconfig_end, variant_sym,
                             cand.exposed_stall);
      schedule.reconfig_exposed += cand.exposed_stall;
      schedule.reconfig_total += cand.reconfig_duration;
      ++schedule.reconfig_count;
    }
    st.operator_free[cand.target] = cand.end;
    st.finish[n] = cand.end;
    st.placed_on[n] = cand.target;
    // An unconditioned compute's label is exactly the operation name (one
    // shared symbol); conditioned vertices render "name(variant)". Each
    // operation commits exactly once and operation names are unique, so
    // composite labels are fresh strings — appended index-free like the
    // plain labels.
    util::SymbolId label_sym = op_sym(n);
    if (variant_sym != util::kEmptySymbol) {
      std::string composite;
      composite.reserve(op.name.size() + variant.size() + 2);
      composite += op.name;
      composite += '(';
      composite += variant;
      composite += ')';
      label_sym = schedule.symbols.append(composite);
    }
    schedule.push_compute(cand.target_sym, cand.start, cand.end, n, label_sym, variant_sym);
    schedule.placement[n] = cand.target_sym;
    if (options.eval_log != nullptr)
      options.eval_log->push_back({n, architecture_.op(cand.target).name, cand.end, true});
  };

  // Candidate operators for an operation. Unpinned operations share the
  // per-kind feasibility lists; a pinned one filters into a pooled
  // buffer exactly as the old per-node loop did. Feasibility is checked
  // against the kind of the *resolved* variant, so a selected
  // alternative the target cannot execute is filtered out here instead
  // of throwing from the duration lookup mid-schedule.
  std::vector<NodeId> cand_buf;
  auto candidates = [&](graph::NodeId n, const Operation& op,
                        const KindTable& tbl) -> const std::vector<NodeId>& {
    const NodeId pin = pinned[n];
    if (pin == graph::kNoNode) {
      const auto& list = op.conditioned() ? tbl.conditioned : tbl.plain;
      PDR_CHECK(!list.empty(), "Adequation",
                "operation '" + op.name + "' has no feasible operator");
      return list;
    }
    cand_buf.clear();
    // Regions host only conditioned vertices (dynamic modules).
    if ((op_ptr[pin]->kind != OperatorKind::FpgaRegion || op.conditioned()) &&
        tbl.durations[pin] != kUnsupported)
      cand_buf.push_back(pin);
    PDR_CHECK(!cand_buf.empty(), "Adequation",
              "operation '" + op.name + "' has no feasible operator (pinned to '" +
                  op_ptr[pin]->name + "')");
    return cand_buf;
  };

  // Picks the operator for `n` per the mapping strategy, evaluates it into
  // `best`, and commits it. `scratch` is the second pooled candidate the
  // strategies evaluate rejected plans into; selecting between the two is
  // a POD swap (the plan rows stay put in the arena).
  std::size_t round_robin_cursor = 0;
  Candidate best, scratch;
  auto place = [&](graph::NodeId n) {
    const Operation& op = *algo_op[n];
    const auto [variant, exec_kind] = resolve(op);
    const util::SymbolId nsym = op_sym_known(n, op);
    const util::SymbolId variant_sym =
        variant.empty() ? util::kEmptySymbol : schedule.intern(variant);
    const KindTable& tbl = kind_table(exec_kind);
    const std::vector<TimeNs>& durations = tbl.durations;
    const auto& cands = candidates(n, op, tbl);
    in_buf.clear();
    for (std::size_t i = in_off[n]; i < in_off[n + 1]; ++i) {
      const InEdgeRow& r = in_rows[i];
      // a committed producer's symbol is already resolved — pure read
      in_buf.push_back({st.finish[r.src], st.placed_on[r.src], r.bytes, r.e, op_sym(r.src)});
    }
    switch (options.strategy) {
      case MappingStrategy::RoundRobin: {
        const NodeId w = cands[round_robin_cursor++ % cands.size()];
        evaluate(n, w, nsym, variant, variant_sym, durations[w], best);
        commit(n, op, best, variant, variant_sym);
        return;
      }
      case MappingStrategy::FirstFeasible:
        evaluate(n, cands.front(), nsym, variant, variant_sym, durations[cands.front()], best);
        commit(n, op, best, variant, variant_sym);
        return;
      case MappingStrategy::SynDExList:
        break;
    }
    // Lower-bound prune: a candidate cannot finish before its operator
    // frees up and its inputs are all produced, and transfers/reconfig
    // only add delay on top — so once a best exists, any candidate whose
    // bound misses `best.end` loses (selection needs a strict improvement)
    // and its evaluation is skipped without changing the outcome. Disabled
    // when an eval log is attached so the log stays complete.
    TimeNs max_pred_finish = 0;
    for (const InEdge& in : in_buf) max_pred_finish = std::max(max_pred_finish, in.finish);
    const bool prune = options.eval_log == nullptr;
    bool have = false;
    for (NodeId w : cands) {
      if (have && prune &&
          std::max(st.operator_free[w], max_pred_finish) + durations[w] >= best.end)
        continue;
      evaluate(n, w, nsym, variant, variant_sym, durations[w], scratch);
      if (!have || scratch.end < best.end) {
        std::swap(best, scratch);
        have = true;
      }
    }
    commit(n, op, best, variant, variant_sym);
  };

  if (options.ready_policy == ReadyPolicy::IndexedHeap) {
    // Indexed ready-queue: indegree counters surface operations the
    // instant their last predecessor commits; a heap orders them by
    // critical-path remainder (SynDEx) or node id (the naive baselines'
    // "first ready in id order"). Ties break on node id either way, so
    // the result is deterministic and identical to the rescanning loop.
    // Heap entries carry their priority inline — comparisons stay in the
    // heap's own cache lines instead of chasing remainder[] at random
    // node ids. The naive strategies store 0.0 for every entry, so the
    // tie-break on node id reproduces their "first ready in id order".
    const bool by_priority = options.strategy == MappingStrategy::SynDExList;
    using ReadyEntry = std::pair<double, graph::NodeId>;
    const auto after = [](const ReadyEntry& a, const ReadyEntry& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    };
    std::vector<ReadyEntry> heap_storage;
    heap_storage.reserve(algo_cap);
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, decltype(after)> ready(
        after, std::move(heap_storage));
    // The pristine tracker snapshot and the critical-path priorities are
    // cached across runs (copying the snapshot is a few memcpys; building
    // it is two full edge scans). Priorities only exist for the SynDEx
    // strategy; the tracker's CSR serves the remainder walk, so the naive
    // strategies skip the whole critical-path computation.
    if (!cache_.tracker.has_value()) cache_.tracker.emplace(g);
    if (by_priority && !cache_.has_remainder) {
      cache_.remainder = cache_.tracker->critical_path_remainder(op_weight);
      cache_.has_remainder = true;
    }
    graph::ReadyTracker tracker(*cache_.tracker);
    const std::vector<double>& remainder = cache_.remainder;
    const auto priority_of = [&](graph::NodeId n) { return by_priority ? remainder[n] : 0.0; };
    for (graph::NodeId n : tracker.initial()) ready.emplace(priority_of(n), n);
    std::vector<graph::NodeId> newly_ready;
    while (!ready.empty()) {
      const graph::NodeId n = ready.top().second;
      ready.pop();
      place(n);
      newly_ready.clear();
      tracker.complete(n, newly_ready);
      for (graph::NodeId s : newly_ready) ready.emplace(priority_of(s), s);
    }
    PDR_CHECK(tracker.done(), "Adequation", "no ready operation (cycle?)");
  } else {
    // Reference engine: rescan all pending operations every round. Kept
    // as the equivalence oracle; the bitmap `done` and callback-based
    // predecessor walk only change constants, never selection order. Its
    // remainder comes straight from the digraph — same values as the
    // tracker-CSR walk (max over identical successor sets), different
    // code path, which is exactly what an oracle should exercise.
    const std::vector<double> remainder = options.strategy == MappingStrategy::SynDExList
                                              ? g.critical_path_remainder(op_weight)
                                              : std::vector<double>{};
    std::vector<char> done(algo_cap, 0);
    std::vector<graph::NodeId> pending = g.node_ids();
    while (!pending.empty()) {
      graph::NodeId best_op = graph::kNoNode;
      double best_prio = -1;
      for (graph::NodeId n : pending) {
        bool is_ready = true;
        g.for_each_predecessor(n, [&](graph::NodeId p) {
          if (!done[p]) is_ready = false;
        });
        if (!is_ready) continue;
        if (options.strategy != MappingStrategy::SynDExList) {
          best_op = n;
          break;
        }
        if (remainder[n] > best_prio) {
          best_prio = remainder[n];
          best_op = n;
        }
      }
      PDR_CHECK(best_op != graph::kNoNode, "Adequation", "no ready operation (cycle?)");
      place(best_op);
      done[best_op] = 1;
      pending.erase(std::remove(pending.begin(), pending.end(), best_op), pending.end());
    }
  }

  // Finalize: canonical (start, resource name) order, then totals.
  schedule.sort_items();
  schedule.recompute_totals();
  return schedule;
}

}  // namespace pdr::aaa
