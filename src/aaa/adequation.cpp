#include "aaa/adequation.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "graph/ready.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

using namespace pdr::literals;

const char* mapping_strategy_name(MappingStrategy strategy) {
  switch (strategy) {
    case MappingStrategy::SynDExList: return "syndex_list";
    case MappingStrategy::RoundRobin: return "round_robin";
    case MappingStrategy::FirstFeasible: return "first_feasible";
  }
  return "?";
}

const char* item_kind_name(ItemKind kind) {
  switch (kind) {
    case ItemKind::Compute: return "compute";
    case ItemKind::Transfer: return "transfer";
    case ItemKind::Reconfig: return "reconfig";
  }
  return "?";
}

std::vector<const ScheduledItem*> Schedule::on_resource(const std::string& resource) const {
  std::vector<const ScheduledItem*> out;
  for (const auto& item : items)
    if (item.resource == resource) out.push_back(&item);
  return out;
}

double Schedule::utilization(const std::string& resource) const {
  if (makespan <= 0) return 0.0;
  const auto it = resource_busy.find(resource);
  if (it == resource_busy.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(makespan);
}

TimeNs Schedule::period_lower_bound() const {
  TimeNs bound = 0;
  for (const auto& [resource, busy] : resource_busy) bound = std::max(bound, busy);
  return bound;
}

std::string Schedule::to_string() const {
  std::string out = strprintf("schedule: makespan %.3f us, %d reconfigs (%.3f us exposed)\n",
                              to_us(makespan), reconfig_count, to_us(reconfig_exposed));
  for (const auto& item : items) {
    out += strprintf("  %9.3f..%9.3f us  %-8s %-10s %s\n", to_us(item.start), to_us(item.end),
                     item_kind_name(item.kind), item.resource.c_str(), item.label.c_str());
  }
  return out;
}

std::string Schedule::to_csv() const {
  std::string out = "kind,label,resource,start_ns,end_ns,variant,module\n";
  for (const auto& item : items)
    out += strprintf("%s,%s,%s,%lld,%lld,%s,%s\n", item_kind_name(item.kind), item.label.c_str(),
                     item.resource.c_str(), static_cast<long long>(item.start),
                     static_cast<long long>(item.end), item.variant.c_str(), item.module.c_str());
  return out;
}

std::string Schedule::gantt(int width) const {
  if (items.empty() || makespan == 0) return "(empty schedule)\n";
  std::vector<std::string> resources;
  for (const auto& item : items)
    if (std::find(resources.begin(), resources.end(), item.resource) == resources.end())
      resources.push_back(item.resource);

  std::string out;
  for (const auto& res : resources) {
    std::string bar(static_cast<std::size_t>(width), '.');
    for (const auto& item : items) {
      if (item.resource != res) continue;
      auto pos = [&](TimeNs t) {
        return std::min<std::size_t>(static_cast<std::size_t>(width) - 1,
                                     static_cast<std::size_t>(t * width / makespan));
      };
      const char mark = item.kind == ItemKind::Compute   ? '#'
                        : item.kind == ItemKind::Transfer ? '='
                                                          : 'R';
      // Zero-duration items still get one mark cell so they stay visible.
      const std::size_t lo = pos(item.start);
      const std::size_t hi = std::max(lo, item.end > item.start ? pos(item.end - 1) : lo);
      for (std::size_t i = lo; i <= hi; ++i) bar[i] = mark;
    }
    out += strprintf("%-10s |%s|\n", res.c_str(), bar.c_str());
  }
  out += strprintf("%-10s  0%*s%.1f us   (#=compute ==transfer R=reconfig)\n", "", width - 8, "",
                   to_us(makespan));
  return out;
}

void export_schedule(const Schedule& schedule, obs::Tracer& tracer) {
  for (const auto& item : schedule.items) {
    std::vector<obs::TraceArg> args;
    if (!item.variant.empty()) args.push_back({"variant", item.variant});
    if (!item.module.empty()) args.push_back({"module", item.module});
    if (item.bytes > 0) args.push_back({"bytes", std::to_string(item.bytes)});
    if (item.kind == ItemKind::Reconfig && item.exposed_stall > 0)
      args.push_back({"exposed_stall_ns", std::to_string(item.exposed_stall)});
    tracer.span(item.resource, item.label, std::string("sched_") + item_kind_name(item.kind),
                item.start, item.end, std::move(args));
  }
}

void validate_schedule(const Schedule& schedule, const AlgorithmGraph& algorithm,
                       const ArchitectureGraph& architecture) {
  // 1. No overlap per resource.
  std::map<std::string, std::vector<const ScheduledItem*>> per_resource;
  for (const auto& item : schedule.items) {
    PDR_CHECK(item.end >= item.start, "validate_schedule", "item '" + item.label + "' ends before it starts");
    per_resource[item.resource].push_back(&item);
  }
  for (auto& [res, list] : per_resource) {
    std::sort(list.begin(), list.end(),
              [](const ScheduledItem* a, const ScheduledItem* b) { return a->start < b->start; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      PDR_CHECK(list[i]->start >= list[i - 1]->end, "validate_schedule",
                "items '" + list[i - 1]->label + "' and '" + list[i]->label +
                    "' overlap on resource '" + res + "'");
    }
  }

  // 2. Dependencies respected. Transfers are matched by edge identity —
  //    two parallel edges between the same producer/consumer pair must
  //    each have their own transfer chain; a (src,dst) name match alone
  //    would let them validate against each other's items.
  std::map<graph::NodeId, const ScheduledItem*> compute_of;
  for (const auto& item : schedule.items)
    if (item.kind == ItemKind::Compute) compute_of[item.op] = &item;
  std::vector<const ScheduledItem*> transfer_items;
  for (const auto& item : schedule.items)
    if (item.kind == ItemKind::Transfer) transfer_items.push_back(&item);
  std::set<const ScheduledItem*> consumed;
  const auto& g = algorithm.digraph();
  for (graph::EdgeId e : g.edge_ids()) {
    const graph::NodeId p = g.edge_from(e);
    const graph::NodeId c = g.edge_to(e);
    const auto ip = compute_of.find(p);
    const auto ic = compute_of.find(c);
    PDR_CHECK(ip != compute_of.end() && ic != compute_of.end(), "validate_schedule",
              "an operation was never scheduled");
    PDR_CHECK(ic->second->start >= ip->second->end, "validate_schedule",
              "operation '" + g[c].name + "' starts before its input '" + g[p].name + "' finishes");
    if (ip->second->resource != ic->second->resource && g.edge(e).bytes > 0) {
      // Prefer exact edge identity. Hand-built schedules without edge ids
      // fall back to an unconsumed (src,dst,bytes) match — consumption
      // keeps a single item from standing in for two distinct edges.
      std::vector<const ScheduledItem*> chain;
      for (const ScheduledItem* item : transfer_items)
        if (item->edge == e) chain.push_back(item);
      if (chain.empty()) {
        // One chain = at most one item per medium (the earliest unconsumed
        // match), so parallel edges each claim their own items.
        std::map<std::string, const ScheduledItem*> per_medium;
        for (const ScheduledItem* item : transfer_items)
          if (item->edge == graph::kNoEdge && consumed.count(item) == 0 &&
              item->src == g[p].name && item->dst == g[c].name &&
              item->bytes == g.edge(e).bytes) {
            const ScheduledItem*& slot = per_medium[item->resource];
            if (slot == nullptr || item->start < slot->start) slot = item;
          }
        for (const auto& [medium, item] : per_medium) chain.push_back(item);
      }
      PDR_CHECK(!chain.empty(), "validate_schedule",
                "missing transfer for dependency '" + g[p].name + "' -> '" + g[c].name + "'");
      for (const ScheduledItem* item : chain) {
        consumed.insert(item);
        PDR_CHECK(item->bytes == g.edge(e).bytes, "validate_schedule",
                  "transfer '" + item->label + "' carries the wrong payload for its edge");
        PDR_CHECK(item->start >= ip->second->end && item->end <= ic->second->start,
                  "validate_schedule",
                  "transfer '" + item->label + "' not between producer and consumer");
      }
    }
  }

  // 3. Regions hold the right module when computing.
  for (NodeId w : architecture.operators_of_kind(OperatorKind::FpgaRegion)) {
    const std::string& rname = architecture.op(w).name;
    auto it = per_resource.find(rname);
    if (it == per_resource.end()) continue;
    std::string loaded;  // unknown until first reconfig
    bool any_reconfig = false;
    std::string preloaded_variant;  // variant computes may use before any reconfig
    for (const ScheduledItem* item : it->second) {
      if (item->kind == ItemKind::Reconfig) {
        loaded = item->module;
        any_reconfig = true;
      } else if (item->kind == ItemKind::Compute && !item->variant.empty()) {
        if (!any_reconfig) {
          if (preloaded_variant.empty()) preloaded_variant = item->variant;
          PDR_CHECK(item->variant == preloaded_variant, "validate_schedule",
                    "region '" + rname + "' computes two variants with no reconfiguration between");
        } else {
          PDR_CHECK(item->variant == loaded, "validate_schedule",
                    "region '" + rname + "' computes variant '" + item->variant +
                        "' while module '" + loaded + "' is loaded");
        }
      }
    }
  }

  // 4. Reconfigurations serialize on the single configuration port.
  std::vector<const ScheduledItem*> reconfigs;
  for (const auto& item : schedule.items)
    if (item.kind == ItemKind::Reconfig) reconfigs.push_back(&item);
  std::sort(reconfigs.begin(), reconfigs.end(),
            [](const ScheduledItem* a, const ScheduledItem* b) { return a->start < b->start; });
  for (std::size_t i = 1; i < reconfigs.size(); ++i)
    PDR_CHECK(reconfigs[i]->start >= reconfigs[i - 1]->end, "validate_schedule",
              "two reconfigurations overlap on the configuration port");
}

Adequation::Adequation(const AlgorithmGraph& algorithm, const ArchitectureGraph& architecture,
                       const DurationTable& durations)
    : algorithm_(algorithm), architecture_(architecture), durations_(durations) {
  reconfig_cost_ = [](const std::string&, const std::string&) { return 4_ms; };
}

void Adequation::set_reconfig_cost(ReconfigCost cost) { reconfig_cost_ = std::move(cost); }

void Adequation::pin(const std::string& op_name, const std::string& operator_name) {
  algorithm_.by_name(op_name);        // throws if unknown
  architecture_.by_name(operator_name);
  pins_[op_name] = operator_name;
}

void Adequation::apply_constraints(const ConstraintSet& constraints) {
  const auto& g = algorithm_.digraph();
  for (graph::NodeId n : g.node_ids()) {
    const Operation& op = g[n];
    if (!op.conditioned()) continue;
    std::string region;
    for (const auto& alt : op.alternatives) {
      const ModuleConstraint* m = constraints.find_module(alt.name);
      if (m == nullptr) continue;
      PDR_CHECK(region.empty() || region == m->region, "Adequation::apply_constraints",
                "alternatives of '" + op.name + "' are declared in two regions");
      region = m->region;
    }
    if (region.empty()) continue;
    // Pin to the architecture operator representing that region.
    for (NodeId w : architecture_.operators_of_kind(OperatorKind::FpgaRegion)) {
      if (architecture_.op(w).region == region) {
        pins_[op.name] = architecture_.op(w).name;
        break;
      }
    }
  }
}

namespace {

/// Mutable scheduling state: written only by commit(). Everything is
/// index-keyed — architecture NodeId for operators/media/regions,
/// algorithm NodeId for finish/placement — resolved once per run instead
/// of the string-keyed maps the hot path used to hash on every access.
struct State {
  std::vector<TimeNs> operator_free;       ///< by architecture NodeId
  std::vector<TimeNs> medium_free;         ///< by architecture NodeId
  std::vector<std::string> region_loaded;  ///< by architecture NodeId
  TimeNs port_free = 0;
  std::vector<TimeNs> finish;    ///< by algorithm NodeId
  std::vector<NodeId> placed_on; ///< algorithm NodeId -> architecture operator node
};

/// A fully evaluated placement plan: every schedule item it would emit and
/// every state write commit() would perform. evaluate() builds it against a
/// read-only State — reserving shared media in a local scratch view across
/// the operation's own in-edges — and commit() replays it verbatim. One
/// code path produces all the numbers, so a non-commit estimate and the
/// committed schedule cannot diverge.
///
/// Candidates are pooled: the scheduler reuses two instances for the whole
/// run, and reset() clears the plan while keeping the transfer vectors'
/// capacity, so candidate evaluation stays allocation-free once warm.
struct Candidate {
  NodeId target = graph::kNoNode;
  std::string target_name;
  TimeNs data_avail = 0;
  bool needs_reconfig = false;
  TimeNs reconfig_start = 0;
  TimeNs reconfig_end = 0;
  TimeNs reconfig_duration = 0;
  TimeNs exposed_stall = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  std::string variant;
  std::string exec_kind;
  std::vector<ScheduledItem> transfers;   ///< fully timed, in emit order
  std::vector<NodeId> transfer_media;     ///< medium node per transfer

  void reset() {
    target = graph::kNoNode;
    target_name.clear();
    data_avail = 0;
    needs_reconfig = false;
    reconfig_start = reconfig_end = reconfig_duration = exposed_stall = 0;
    start = end = 0;
    variant.clear();
    exec_kind.clear();
    transfers.clear();
    transfer_media.clear();
  }
};

}  // namespace

Schedule Adequation::run(const AdequationOptions& options) const {
  algorithm_.validate();
  architecture_.validate();

  const auto& g = algorithm_.digraph();

  // Critical-path priorities from operator-agnostic mean durations.
  const auto remainder = g.critical_path_remainder([&](graph::NodeId n) {
    const Operation& op = g[n];
    if (!op.conditioned()) return durations_.mean(op.kind);
    double worst = 0;
    for (const auto& alt : op.alternatives) worst = std::max(worst, durations_.mean(alt.kind));
    return worst;
  });

  // --- per-run index tables, resolved once --------------------------------
  const std::size_t algo_cap = g.node_capacity();
  const std::vector<NodeId> all_operators = architecture_.operators();
  const std::vector<NodeId> all_media = architecture_.media();
  std::size_t arch_cap = 0;
  for (NodeId w : all_operators) arch_cap = std::max<std::size_t>(arch_cap, w + 1);
  for (NodeId m : all_media) arch_cap = std::max<std::size_t>(arch_cap, m + 1);

  State st;
  st.operator_free.assign(arch_cap, 0);
  st.medium_free.assign(arch_cap, 0);
  st.region_loaded.assign(arch_cap, "");
  st.finish.assign(algo_cap, 0);
  st.placed_on.assign(algo_cap, graph::kNoNode);
  for (NodeId w : all_operators) {
    if (architecture_.op(w).kind == OperatorKind::FpgaRegion) {
      const auto it = options.preloaded.find(architecture_.op(w).name);
      if (it != options.preloaded.end()) st.region_loaded[w] = it->second;
    }
  }

  // Pins resolved to ids once (names were validated when the pin was set).
  std::vector<NodeId> pinned(algo_cap, graph::kNoNode);
  for (const auto& [op_name, operator_name] : pins_)
    pinned[algorithm_.by_name(op_name)] = architecture_.by_name(operator_name);

  // Media routes between operator pairs, memoized: route() re-runs a BFS
  // per call, and evaluate() needs a route per in-edge per candidate.
  std::vector<std::vector<NodeId>> route_cache(arch_cap * arch_cap);
  std::vector<char> route_known(arch_cap * arch_cap, 0);
  const auto route_between = [&](NodeId from, NodeId to) -> const std::vector<NodeId>& {
    const std::size_t slot = from * arch_cap + to;
    if (!route_known[slot]) {
      route_cache[slot] = architecture_.route(from, to);
      route_known[slot] = 1;
    }
    return route_cache[slot];
  };

  // Durations per (operation kind, operator), looked up once per kind:
  // kUnsupported marks operators the kind cannot execute on.
  constexpr TimeNs kUnsupported = -1;
  std::map<std::string, std::vector<TimeNs>> duration_cache;
  const auto durations_for = [&](const std::string& kind) -> const std::vector<TimeNs>& {
    const auto it = duration_cache.find(kind);
    if (it != duration_cache.end()) return it->second;
    std::vector<TimeNs> per_operator(arch_cap, kUnsupported);
    for (NodeId w : all_operators) {
      const OperatorNode& target = architecture_.op(w);
      if (durations_.supports(kind, target)) per_operator[w] = durations_.lookup(kind, target);
    }
    return duration_cache.emplace(kind, std::move(per_operator)).first->second;
  };

  // Scratch medium reservations for evaluate(), generation-stamped so
  // clearing between evaluations is O(1) instead of allocating a map.
  std::vector<TimeNs> scratch_reserved(arch_cap, 0);
  std::vector<std::uint32_t> scratch_generation(arch_cap, 0);
  std::uint32_t generation = 0;

  // Resolves which alternative/kind a vertex executes: the selected
  // alternative for conditioned vertices (first one when unselected), the
  // operation's own kind otherwise. Resolved once per use so feasibility
  // and evaluation always agree on the kind.
  auto resolve = [&](const Operation& op) -> std::pair<std::string, std::string> {
    if (!op.conditioned()) return {"", op.kind};
    const auto sel = options.selection.find(op.name);
    if (sel == options.selection.end())
      return {op.alternatives.front().name, op.alternatives.front().kind};
    for (const auto& a : op.alternatives)
      if (a.name == sel->second) return {a.name, a.kind};
    throw Error("Adequation: selection '" + sel->second + "' is not an alternative of '" +
                op.name + "'");
  };

  // Evaluates placing `n` on operator `w` against `st`, without mutating
  // it, into the pooled `cand`. Media this operation's own transfers
  // occupy are reserved in a scratch view, so two in-edges sharing a
  // medium serialize in the estimate exactly as they will in the committed
  // schedule. `duration` is the precomputed lookup of `exec_kind` on `w`.
  auto evaluate = [&](graph::NodeId n, NodeId w, const std::string& variant,
                      const std::string& exec_kind, TimeNs duration, Candidate& cand) {
    const Operation& op = g[n];
    const OperatorNode& target = architecture_.op(w);
    cand.reset();
    cand.target = w;
    cand.target_name = target.name;
    cand.variant = variant;
    cand.exec_kind = exec_kind;

    // Data availability: route each incoming dependency.
    ++generation;
    TimeNs data_avail = 0;
    g.for_each_in_edge(n, [&](graph::EdgeId e) {
      const graph::NodeId p = g.edge_from(e);
      const Bytes bytes = g.edge(e).bytes;
      TimeNs t = st.finish[p];
      const NodeId src_w = st.placed_on[p];
      if (src_w != w && bytes > 0) {
        for (NodeId m : route_between(src_w, w)) {
          const MediumNode& medium = architecture_.medium(m);
          const TimeNs free =
              scratch_generation[m] == generation ? scratch_reserved[m] : st.medium_free[m];
          const TimeNs tstart = std::max(t, free);
          const TimeNs tend = tstart + medium.transfer_time(bytes);
          scratch_generation[m] = generation;
          scratch_reserved[m] = tend;
          ScheduledItem item;
          item.kind = ItemKind::Transfer;
          // label built at commit time — uncommitted plans never need it
          item.resource = medium.name;
          item.start = tstart;
          item.end = tend;
          item.src = g[p].name;
          item.dst = op.name;
          item.bytes = bytes;
          item.edge = e;
          cand.transfers.push_back(std::move(item));
          cand.transfer_media.push_back(m);
          t = tend;
        }
      }
      data_avail = std::max(data_avail, t);
    });
    cand.data_avail = data_avail;

    // Reconfiguration, when targeting a region holding a different module.
    const TimeNs free_before = st.operator_free[w];
    TimeNs region_ready = free_before;
    if (target.kind == OperatorKind::FpgaRegion && !cand.variant.empty() &&
        st.region_loaded[w] != cand.variant) {
      cand.needs_reconfig = true;
      cand.reconfig_duration = reconfig_cost_(target.name, cand.variant);
      const TimeNs earliest = std::max(st.port_free, free_before);
      cand.reconfig_start = options.prefetch ? earliest : std::max(earliest, data_avail);
      cand.reconfig_end = cand.reconfig_start + cand.reconfig_duration;
      region_ready = cand.reconfig_end;
      // Exposure: how much later the compute starts because of this
      // reconfiguration, vs. a region already holding the module.
      const TimeNs would_start = std::max(data_avail, free_before);
      const TimeNs with_reconfig = std::max(data_avail, cand.reconfig_end);
      cand.exposed_stall = std::max<TimeNs>(0, with_reconfig - would_start);
    }

    cand.start = std::max(data_avail, region_ready);
    cand.end = cand.start + duration;
    if (options.eval_log != nullptr)
      options.eval_log->push_back({n, target.name, cand.end, false});
  };

  // Applies a candidate: replays its planned items into the schedule and
  // its state writes into `st`. No number is recomputed here. The
  // candidate is consumed — its items move into the schedule.
  Schedule schedule;
  schedule.items.reserve(g.node_count() + g.edge_count() + g.node_count() / 4);
  auto commit = [&](graph::NodeId n, Candidate& cand) {
    const Operation& op = g[n];
    for (std::size_t i = 0; i < cand.transfers.size(); ++i) {
      ScheduledItem& t = cand.transfers[i];
      // per medium, transfers are planned in time order
      st.medium_free[cand.transfer_media[i]] = t.end;
      t.label = t.src + "->" + t.dst;
      schedule.items.push_back(std::move(t));
    }
    if (cand.needs_reconfig) {
      st.port_free = cand.reconfig_end;
      st.region_loaded[cand.target] = cand.variant;
      ScheduledItem item;
      item.kind = ItemKind::Reconfig;
      item.label = "load " + cand.variant;
      item.resource = cand.target_name;
      item.start = cand.reconfig_start;
      item.end = cand.reconfig_end;
      item.module = cand.variant;
      item.exposed_stall = cand.exposed_stall;
      schedule.reconfig_exposed += cand.exposed_stall;
      schedule.reconfig_total += cand.reconfig_duration;
      ++schedule.reconfig_count;
      schedule.items.push_back(std::move(item));
    }
    st.operator_free[cand.target] = cand.end;
    st.finish[n] = cand.end;
    st.placed_on[n] = cand.target;
    ScheduledItem item;
    item.kind = ItemKind::Compute;
    item.label = op.name + (cand.variant.empty() ? "" : "(" + cand.variant + ")");
    item.resource = cand.target_name;
    item.start = cand.start;
    item.end = cand.end;
    item.op = n;
    item.variant = cand.variant;
    schedule.items.push_back(std::move(item));
    schedule.placement[n] = cand.target_name;
    if (options.eval_log != nullptr)
      options.eval_log->push_back({n, cand.target_name, cand.end, true});
  };

  // Candidate operators for an operation, into a pooled buffer.
  // Feasibility is checked against the kind of the *resolved* variant, so
  // a selected alternative the target cannot execute is filtered out here
  // instead of throwing from the duration lookup mid-schedule.
  std::vector<NodeId> cand_buf;
  auto candidates = [&](graph::NodeId n, const std::vector<TimeNs>& durations)
      -> const std::vector<NodeId>& {
    const Operation& op = g[n];
    cand_buf.clear();
    const NodeId pin = pinned[n];
    for (NodeId w : all_operators) {
      if (pin != graph::kNoNode && w != pin) continue;
      // Regions host only conditioned vertices (dynamic modules).
      if (architecture_.op(w).kind == OperatorKind::FpgaRegion && !op.conditioned()) continue;
      if (durations[w] == kUnsupported) continue;
      cand_buf.push_back(w);
    }
    PDR_CHECK(!cand_buf.empty(), "Adequation",
              "operation '" + op.name + "' has no feasible operator" +
                  (pin != graph::kNoNode
                       ? " (pinned to '" + architecture_.op(pin).name + "')"
                       : ""));
    return cand_buf;
  };

  // Picks the operator for `n` per the mapping strategy, leaving the
  // evaluated candidate to commit in `best`. `scratch` is the second
  // pooled candidate the strategies evaluate rejected plans into.
  std::size_t round_robin_cursor = 0;
  auto pick = [&](graph::NodeId n, Candidate& best, Candidate& scratch) {
    const Operation& op = g[n];
    const auto [variant, exec_kind] = resolve(op);
    const std::vector<TimeNs>& durations = durations_for(exec_kind);
    const auto& cands = candidates(n, durations);
    switch (options.strategy) {
      case MappingStrategy::RoundRobin: {
        const NodeId w = cands[round_robin_cursor++ % cands.size()];
        evaluate(n, w, variant, exec_kind, durations[w], best);
        return;
      }
      case MappingStrategy::FirstFeasible:
        evaluate(n, cands.front(), variant, exec_kind, durations[cands.front()], best);
        return;
      case MappingStrategy::SynDExList:
        break;
    }
    bool have = false;
    for (NodeId w : cands) {
      evaluate(n, w, variant, exec_kind, durations[w], scratch);
      if (!have || scratch.end < best.end) {
        std::swap(best, scratch);
        have = true;
      }
    }
  };

  Candidate best, scratch;
  if (options.ready_policy == ReadyPolicy::IndexedHeap) {
    // Indexed ready-queue: indegree counters surface operations the
    // instant their last predecessor commits; a heap orders them by
    // critical-path remainder (SynDEx) or node id (the naive baselines'
    // "first ready in id order"). Ties break on node id either way, so
    // the result is deterministic and identical to the rescanning loop.
    const bool by_priority = options.strategy == MappingStrategy::SynDExList;
    const auto after = [&](graph::NodeId a, graph::NodeId b) {
      if (by_priority && remainder[a] != remainder[b]) return remainder[a] < remainder[b];
      return a > b;
    };
    std::vector<graph::NodeId> heap_storage;
    heap_storage.reserve(algo_cap);
    std::priority_queue<graph::NodeId, std::vector<graph::NodeId>, decltype(after)> ready(
        after, std::move(heap_storage));
    graph::ReadyTracker tracker(g);
    for (graph::NodeId n : tracker.initial()) ready.push(n);
    std::vector<graph::NodeId> newly_ready;
    while (!ready.empty()) {
      const graph::NodeId n = ready.top();
      ready.pop();
      pick(n, best, scratch);
      commit(n, best);
      newly_ready.clear();
      tracker.complete(n, newly_ready);
      for (graph::NodeId s : newly_ready) ready.push(s);
    }
    PDR_CHECK(tracker.done(), "Adequation", "no ready operation (cycle?)");
  } else {
    // Reference engine: rescan all pending operations every round. Kept
    // as the equivalence oracle; the bitmap `done` and callback-based
    // predecessor walk only change constants, never selection order.
    std::vector<char> done(algo_cap, 0);
    std::vector<graph::NodeId> pending = g.node_ids();
    while (!pending.empty()) {
      graph::NodeId best_op = graph::kNoNode;
      double best_prio = -1;
      for (graph::NodeId n : pending) {
        bool is_ready = true;
        g.for_each_predecessor(n, [&](graph::NodeId p) {
          if (!done[p]) is_ready = false;
        });
        if (!is_ready) continue;
        if (options.strategy != MappingStrategy::SynDExList) {
          best_op = n;
          break;
        }
        if (remainder[n] > best_prio) {
          best_prio = remainder[n];
          best_op = n;
        }
      }
      PDR_CHECK(best_op != graph::kNoNode, "Adequation", "no ready operation (cycle?)");
      pick(best_op, best, scratch);
      commit(best_op, best);
      done[best_op] = 1;
      pending.erase(std::remove(pending.begin(), pending.end(), best_op), pending.end());
    }
  }

  // Finalize.
  std::sort(schedule.items.begin(), schedule.items.end(),
            [](const ScheduledItem& a, const ScheduledItem& b) {
              return a.start != b.start ? a.start < b.start : a.resource < b.resource;
            });
  for (const auto& item : schedule.items) {
    schedule.makespan = std::max(schedule.makespan, item.end);
    schedule.resource_busy[item.resource] += item.end - item.start;
  }
  return schedule;
}

}  // namespace pdr::aaa
