// Adequation: mapping + scheduling of the algorithm graph onto the
// architecture graph (§3), extended for runtime-reconfigurable operators
// (§4).
//
// The heuristic is SynDEx-style greedy list scheduling: at each step the
// ready operation with the largest critical-path remainder is placed on
// the operator minimizing its finish time, accounting for
//   - computation durations (DurationTable),
//   - inter-operator communications routed hop-by-hop over media, each
//     medium being an exclusive resource,
//   - reconfiguration: placing a conditioned-vertex variant on an
//     FpgaRegion operator whose currently-loaded module differs inserts a
//     Reconfig item occupying both the region and the configuration port.
//
// With `prefetch` enabled the Reconfig item is hoisted to the earliest
// instant the region and the configuration port are simultaneously free
// ("configuration prefetching", §1/§6); without it, reconfiguration starts
// only when the operation's inputs are ready (on-demand), exposing the
// full loading latency.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "aaa/durations.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace pdr::aaa {

enum class ItemKind : std::uint8_t { Compute, Transfer, Reconfig };

const char* item_kind_name(ItemKind kind);

/// One scheduled activity on one resource.
struct ScheduledItem {
  ItemKind kind = ItemKind::Compute;
  std::string label;
  std::string resource;  ///< operator name (Compute/Reconfig target region) or medium name
  TimeNs start = 0;
  TimeNs end = 0;

  // Compute items.
  graph::NodeId op = graph::kNoNode;
  std::string variant;  ///< alternative chosen for conditioned vertices

  // Transfer items.
  std::string src;
  std::string dst;
  Bytes bytes = 0;
  graph::EdgeId edge = graph::kNoEdge;  ///< algorithm-graph edge this transfer carries

  // Reconfig items.
  std::string module;       ///< module loaded into `resource` (a region)
  TimeNs exposed_stall = 0; ///< part of this reconfiguration not hidden by prefetch
};

/// Result of one adequation run.
struct Schedule {
  std::vector<ScheduledItem> items;  ///< sorted by (start, resource)
  TimeNs makespan = 0;
  std::map<std::string, TimeNs> resource_busy;
  std::map<graph::NodeId, std::string> placement;  ///< operation -> operator name
  int reconfig_count = 0;
  TimeNs reconfig_total = 0;    ///< summed reconfiguration durations
  TimeNs reconfig_exposed = 0;  ///< summed latency NOT hidden by prefetch

  /// Items on one resource, in time order.
  std::vector<const ScheduledItem*> on_resource(const std::string& resource) const;

  /// Fraction of the makespan `resource` is busy.
  double utilization(const std::string& resource) const;

  /// Lower bound on the steady-state iteration period of the pipelined
  /// executive: the busiest single resource (no schedule can repeat
  /// faster than its bottleneck). The executive player's measured
  /// iteration_period always lies in [period_lower_bound, makespan].
  TimeNs period_lower_bound() const;

  /// Multi-line textual timeline (one line per item).
  std::string to_string() const;

  /// ASCII Gantt chart (one row per resource).
  std::string gantt(int width = 72) const;

  /// CSV export: kind,label,resource,start_ns,end_ns,variant,module — for
  /// external tooling (spreadsheets, Gantt viewers).
  std::string to_csv() const;
};

/// Replays a schedule into a tracer: one span per item, track = resource,
/// category = "sched_<kind>" ("sched_compute" / "sched_transfer" /
/// "sched_reconfig"), with variant/module/bytes attached as span args.
/// Lets `pdrflow adequation --trace-out` render the Gantt in
/// chrome://tracing / Perfetto alongside simulator tracks.
void export_schedule(const Schedule& schedule, obs::Tracer& tracer);

/// Checks schedule invariants; throws pdr::Error on the first violation:
///  - no two items overlap on the same resource,
///  - every data dependency's consumer starts after its producer ends
///    (plus transfers when placed on different operators),
///  - every compute on a region is preceded by a reconfiguration loading
///    its variant (or the region already held it),
///  - reconfigurations on the same configuration port do not overlap.
void validate_schedule(const Schedule& schedule, const AlgorithmGraph& algorithm,
                       const ArchitectureGraph& architecture);

/// Mapping strategy: the SynDEx-style heuristic, or deliberately naive
/// baselines used to quantify how much the heuristic buys.
enum class MappingStrategy : std::uint8_t {
  SynDExList,    ///< critical-path priority + earliest-finish operator (default)
  RoundRobin,    ///< topological order, operators assigned cyclically
  FirstFeasible, ///< topological order, always the first feasible operator
};

const char* mapping_strategy_name(MappingStrategy strategy);

/// Ready-operation selection engine. IndexedHeap is the production path:
/// per-node indegree counters feed a priority heap, so each round pops the
/// next operation in O(log V) instead of rescanning every pending
/// operation (O(V) per round, O(V^2 * deg) per schedule). RescanReference
/// keeps the old loop alive purely as a benchmark/equivalence baseline —
/// both engines share the same candidate evaluation and commit code and
/// produce byte-identical schedules.
enum class ReadyPolicy : std::uint8_t { IndexedHeap, RescanReference };

/// One candidate evaluation the heuristic performed, for tests and
/// tooling: `predicted_end` is the non-commit estimate; when `committed`
/// is set this exact candidate was applied, and the resulting compute
/// item's end equals `predicted_end` (estimates are transactional — they
/// run the same code commit replays).
struct CandidateEval {
  graph::NodeId op = graph::kNoNode;
  std::string operator_name;
  TimeNs predicted_end = 0;
  bool committed = false;
};

struct AdequationOptions {
  MappingStrategy strategy = MappingStrategy::SynDExList;
  ReadyPolicy ready_policy = ReadyPolicy::IndexedHeap;
  /// When non-null, every candidate evaluation is appended here.
  std::vector<CandidateEval>* eval_log = nullptr;
  /// Hoist reconfiguration ahead of data availability (paper's prefetch).
  bool prefetch = true;
  /// Chosen alternative per conditioned vertex name; missing entries use
  /// the first alternative.
  std::map<std::string, std::string> selection;
  /// Modules assumed pre-loaded per region at t=0 ("" = region empty).
  std::map<std::string, std::string> preloaded;
  /// Name of the configuration-port pseudo resource.
  std::string config_port_name = "CFGPORT";
};

class Adequation {
 public:
  /// Cost of loading `module` into `region` (e.g. partial bitstream bytes
  /// over the configuration port).
  using ReconfigCost = std::function<TimeNs(const std::string& region, const std::string& module)>;

  Adequation(const AlgorithmGraph& algorithm, const ArchitectureGraph& architecture,
             const DurationTable& durations);

  /// Sets the reconfiguration cost model (default: 4 ms flat, the paper's
  /// measured Op_Dyn figure).
  void set_reconfig_cost(ReconfigCost cost);

  /// Pins an operation onto a named operator (a SynDEx "absolute
  /// constraint").
  void pin(const std::string& op_name, const std::string& operator_name);

  /// Applies the constraints file: every conditioned vertex whose
  /// alternatives are declared as dynamic modules of a region is pinned to
  /// that region's operator (the paper's "runtime reconfigurable parts of
  /// an component must be considered as vertices in the architecture
  /// graph", §4). Throws if alternatives of one vertex span two regions.
  void apply_constraints(const ConstraintSet& constraints);

  /// Runs the heuristic. Throws pdr::Error if some operation has no
  /// feasible operator.
  Schedule run(const AdequationOptions& options = {}) const;

 private:
  const AlgorithmGraph& algorithm_;
  const ArchitectureGraph& architecture_;
  const DurationTable& durations_;
  ReconfigCost reconfig_cost_;
  std::map<std::string, std::string> pins_;
};

}  // namespace pdr::aaa
