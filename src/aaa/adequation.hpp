// Adequation: mapping + scheduling of the algorithm graph onto the
// architecture graph (§3), extended for runtime-reconfigurable operators
// (§4).
//
// The heuristic is SynDEx-style greedy list scheduling: at each step the
// ready operation with the largest critical-path remainder is placed on
// the operator minimizing its finish time, accounting for
//   - computation durations (DurationTable),
//   - inter-operator communications routed hop-by-hop over media, each
//     medium being an exclusive resource,
//   - reconfiguration: placing a conditioned-vertex variant on an
//     FpgaRegion operator whose currently-loaded module differs inserts a
//     Reconfig item occupying both the region and the configuration port.
//
// With `prefetch` enabled the Reconfig item is hoisted to the earliest
// instant the region and the configuration port are simultaneously free
// ("configuration prefetching", §1/§6); without it, reconfiguration starts
// only when the operation's inputs are ready (on-demand), exposing the
// full loading latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "aaa/durations.hpp"
#include "aaa/schedule.hpp"
#include "graph/ready.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace pdr::aaa {

/// Checks schedule invariants; throws pdr::Error on the first violation:
///  - no two items overlap on the same resource,
///  - every data dependency's consumer starts after its producer ends
///    (plus transfers when placed on different operators),
///  - every compute on a region is preceded by a reconfiguration loading
///    its variant (or the region already held it),
///  - reconfigurations on the same configuration port do not overlap.
void validate_schedule(const Schedule& schedule, const AlgorithmGraph& algorithm,
                       const ArchitectureGraph& architecture);

/// Mapping strategy: the SynDEx-style heuristic, or deliberately naive
/// baselines used to quantify how much the heuristic buys.
enum class MappingStrategy : std::uint8_t {
  SynDExList,    ///< critical-path priority + earliest-finish operator (default)
  RoundRobin,    ///< topological order, operators assigned cyclically
  FirstFeasible, ///< topological order, always the first feasible operator
};

const char* mapping_strategy_name(MappingStrategy strategy);

/// Ready-operation selection engine. IndexedHeap is the production path:
/// per-node indegree counters feed a priority heap, so each round pops the
/// next operation in O(log V) instead of rescanning every pending
/// operation (O(V) per round, O(V^2 * deg) per schedule). RescanReference
/// keeps the old loop alive purely as a benchmark/equivalence baseline —
/// both engines share the same candidate evaluation and commit code and
/// produce byte-identical schedules.
enum class ReadyPolicy : std::uint8_t { IndexedHeap, RescanReference };

/// One candidate evaluation the heuristic performed, for tests and
/// tooling: `predicted_end` is the non-commit estimate; when `committed`
/// is set this exact candidate was applied, and the resulting compute
/// item's end equals `predicted_end` (estimates are transactional — they
/// run the same code commit replays).
struct CandidateEval {
  graph::NodeId op = graph::kNoNode;
  std::string operator_name;
  TimeNs predicted_end = 0;
  bool committed = false;
};

struct AdequationOptions {
  MappingStrategy strategy = MappingStrategy::SynDExList;
  ReadyPolicy ready_policy = ReadyPolicy::IndexedHeap;
  /// When non-null, every candidate evaluation is appended here.
  std::vector<CandidateEval>* eval_log = nullptr;
  /// Hoist reconfiguration ahead of data availability (paper's prefetch).
  bool prefetch = true;
  /// Chosen alternative per conditioned vertex name; missing entries use
  /// the first alternative.
  std::map<std::string, std::string> selection;
  /// Modules assumed pre-loaded per region at t=0 ("" = region empty).
  std::map<std::string, std::string> preloaded;
  /// Name of the configuration-port pseudo resource.
  std::string config_port_name = "CFGPORT";
};

class Adequation {
 public:
  /// Cost of loading `module` into `region` (e.g. partial bitstream bytes
  /// over the configuration port).
  using ReconfigCost = std::function<TimeNs(const std::string& region, const std::string& module)>;

  Adequation(const AlgorithmGraph& algorithm, const ArchitectureGraph& architecture,
             const DurationTable& durations);

  /// Sets the reconfiguration cost model (default: 4 ms flat, the paper's
  /// measured Op_Dyn figure).
  void set_reconfig_cost(ReconfigCost cost);

  /// Pins an operation onto a named operator (a SynDEx "absolute
  /// constraint").
  void pin(const std::string& op_name, const std::string& operator_name);

  /// Applies the constraints file: every conditioned vertex whose
  /// alternatives are declared as dynamic modules of a region is pinned to
  /// that region's operator (the paper's "runtime reconfigurable parts of
  /// an component must be considered as vertices in the architecture
  /// graph", §4). Throws if alternatives of one vertex span two regions.
  void apply_constraints(const ConstraintSet& constraints);

  /// Runs the heuristic. Throws pdr::Error if some operation has no
  /// feasible operator. Graph-shaped scaffolding (ready tracker snapshot,
  /// dependency CSR, critical-path priorities) is cached across calls and
  /// invalidated via the graph/duration-table version counters, so
  /// repeated runs over an unchanged problem (the explorer, bench
  /// repeats) pay for it once. The cache makes run() non-reentrant:
  /// concurrent calls on one Adequation instance are not supported.
  Schedule run(const AdequationOptions& options = {}) const;

 private:
  /// One dependency row of the cached in-edge CSR: producer node, payload
  /// and edge id of a `src -> consumer` data dependency.
  struct InEdgeRow {
    graph::NodeId src;
    Bytes bytes = 0;
    graph::EdgeId e = graph::kNoEdge;
  };

  /// Per-instance scaffolding reused across run() calls; every entry is a
  /// pure restatement of the algorithm graph (plus durations, for the
  /// priorities), so version counters are the only invalidation needed.
  struct RunCache {
    std::uint64_t algo_version = static_cast<std::uint64_t>(-1);
    std::uint64_t durations_version = static_cast<std::uint64_t>(-1);
    std::optional<graph::ReadyTracker> tracker;  ///< pristine snapshot
    std::vector<std::size_t> in_off;             ///< CSR offsets, node -> rows
    std::vector<InEdgeRow> in_rows;              ///< CSR rows, edge-id order
    bool has_remainder = false;
    std::vector<double> remainder;  ///< critical-path priorities (SynDExList)
  };

  const AlgorithmGraph& algorithm_;
  const ArchitectureGraph& architecture_;
  const DurationTable& durations_;
  ReconfigCost reconfig_cost_;
  std::map<std::string, std::string> pins_;
  mutable RunCache cache_;
};

}  // namespace pdr::aaa
