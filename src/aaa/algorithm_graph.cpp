#include "aaa/algorithm_graph.hpp"

#include <set>

#include "util/error.hpp"

namespace pdr::aaa {

NodeId AlgorithmGraph::add_operation(Operation op) {
  PDR_CHECK(!op.name.empty(), "AlgorithmGraph", "operation name must not be empty");
  PDR_CHECK(!find(op.name).has_value(), "AlgorithmGraph",
            "duplicate operation name '" + op.name + "'");
  std::string name = op.name;
  const NodeId n = g_.add_node(std::move(op));
  index_.emplace(std::move(name), n);
  validated_.clear();
  ++version_;
  return n;
}

NodeId AlgorithmGraph::add_compute(const std::string& name, const std::string& kind,
                                   const synth::Params& params) {
  return add_operation(Operation{name, kind, params, OpClass::Compute, {}});
}

NodeId AlgorithmGraph::add_sensor(const std::string& name, const std::string& kind) {
  return add_operation(Operation{name, kind, {}, OpClass::Sensor, {}});
}

NodeId AlgorithmGraph::add_actuator(const std::string& name, const std::string& kind) {
  return add_operation(Operation{name, kind, {}, OpClass::Actuator, {}});
}

NodeId AlgorithmGraph::add_conditioned(const std::string& name,
                                       std::vector<Alternative> alternatives) {
  PDR_CHECK(alternatives.size() >= 2, "AlgorithmGraph::add_conditioned",
            "conditioned vertex '" + name + "' needs at least 2 alternatives");
  Operation op;
  op.name = name;
  op.kind = alternatives.front().kind;
  op.cls = OpClass::Compute;
  op.alternatives = std::move(alternatives);
  return add_operation(std::move(op));
}

void AlgorithmGraph::add_dependency(NodeId from, NodeId to, Bytes bytes) {
  PDR_CHECK(from != to, "AlgorithmGraph::add_dependency", "self dependency");
  g_.add_edge(from, to, DataDep{bytes});
  validated_.clear();
  ++version_;
}

void AlgorithmGraph::add_dependency(const std::string& from, const std::string& to, Bytes bytes) {
  add_dependency(by_name(from), by_name(to), bytes);
}

std::vector<std::string> AlgorithmGraph::expand_repetition(const std::string& name, int count) {
  PDR_CHECK(count >= 2, "AlgorithmGraph::expand_repetition", "repetition count must be >= 2");
  const NodeId n = by_name(name);
  const Operation op = g_[n];  // copy before removal
  PDR_CHECK(op.cls == OpClass::Compute && !op.conditioned(),
            "AlgorithmGraph::expand_repetition",
            "only plain compute vertices can be repeated");

  struct Link {
    NodeId peer;
    Bytes bytes;
  };
  std::vector<Link> inputs;
  std::vector<Link> outputs;
  for (graph::EdgeId e : g_.in_edges(n)) inputs.push_back({g_.edge_from(e), g_.edge(e).bytes});
  for (graph::EdgeId e : g_.out_edges(n)) outputs.push_back({g_.edge_to(e), g_.edge(e).bytes});
  g_.remove_node(n);
  index_.erase(name);
  validated_.clear();
  ++version_;

  std::vector<std::string> names;
  const auto split = [count](Bytes b) {
    return (b + static_cast<Bytes>(count) - 1) / static_cast<Bytes>(count);
  };
  for (int i = 0; i < count; ++i) {
    Operation instance = op;
    instance.name = name + "#" + std::to_string(i);
    const NodeId id = add_operation(std::move(instance));
    for (const Link& in : inputs) g_.add_edge(in.peer, id, DataDep{split(in.bytes)});
    for (const Link& out : outputs) g_.add_edge(id, out.peer, DataDep{split(out.bytes)});
    names.push_back(name + "#" + std::to_string(i));
  }
  return names;
}

NodeId AlgorithmGraph::by_name(const std::string& name) const {
  const auto n = find(name);
  PDR_CHECK(n.has_value(), "AlgorithmGraph::by_name", "no operation named '" + name + "'");
  return *n;
}

std::optional<NodeId> AlgorithmGraph::find(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void AlgorithmGraph::validate() const {
  if (validated_.test()) return;
  PDR_CHECK(g_.node_count() > 0, "AlgorithmGraph::validate", "graph is empty");
  PDR_CHECK(g_.is_acyclic(), "AlgorithmGraph::validate", "data-flow graph has a cycle");
  for (NodeId n : g_.node_ids()) {
    const Operation& op = g_[n];
    if (op.cls == OpClass::Sensor)
      PDR_CHECK(g_.in_edges(n).empty(), "AlgorithmGraph::validate",
                "sensor '" + op.name + "' has incoming dependencies");
    if (op.cls == OpClass::Actuator)
      PDR_CHECK(g_.out_edges(n).empty(), "AlgorithmGraph::validate",
                "actuator '" + op.name + "' has outgoing dependencies");
    if (op.conditioned()) {
      PDR_CHECK(op.alternatives.size() >= 2, "AlgorithmGraph::validate",
                "conditioned vertex '" + op.name + "' has fewer than 2 alternatives");
      std::set<std::string> names;
      for (const auto& alt : op.alternatives) {
        PDR_CHECK(names.insert(alt.name).second, "AlgorithmGraph::validate",
                  "conditioned vertex '" + op.name + "' repeats alternative '" + alt.name + "'");
      }
    }
  }
  validated_.set();
}

std::string AlgorithmGraph::to_dot() const {
  std::vector<graph::DotNode> nodes;
  std::vector<graph::DotEdge> edges;
  for (NodeId n : g_.node_ids()) {
    const Operation& op = g_[n];
    graph::DotNode dn;
    dn.id = op.name;
    dn.label = op.name + "\\n[" + op.kind + "]";
    if (op.conditioned()) {
      dn.shape = "doubleoctagon";
      dn.label = op.name;
      for (const auto& alt : op.alternatives) dn.label += "\\n" + alt.name;
    } else if (op.cls == OpClass::Sensor) {
      dn.shape = "invtriangle";
    } else if (op.cls == OpClass::Actuator) {
      dn.shape = "triangle";
    }
    nodes.push_back(std::move(dn));
  }
  for (graph::EdgeId e : g_.edge_ids()) {
    graph::DotEdge de;
    de.from = g_[g_.edge_from(e)].name;
    de.to = g_[g_.edge_to(e)].name;
    de.label = std::to_string(g_.edge(e).bytes) + "B";
    edges.push_back(std::move(de));
  }
  return graph::to_dot("algorithm", nodes, edges);
}

}  // namespace pdr::aaa
