// The AAA algorithm graph.
//
// "Application algorithm is represented by a data flow graph to exhibit
// the potential parallelism between operations. An operation is executed
// as soon as its input are available, and is infinitely repeated." (§3)
//
// Operations carry the operator kind used for synthesis and duration
// lookup. A vertex may be *conditioned*: it owns several exclusive
// implementation alternatives, one of which is selected at run time by a
// control input (the paper's `Select` entry choosing QPSK vs QAM-16 per
// OFDM symbol). Conditioned vertices are what dynamic regions implement.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "synth/elaborate.hpp"
#include "util/units.hpp"
#include "util/validated_flag.hpp"

namespace pdr::aaa {

using graph::NodeId;

enum class OpClass : std::uint8_t {
  Sensor,    ///< produces input data (no predecessors)
  Compute,   ///< regular operation
  Actuator,  ///< consumes output data (no successors)
};

/// One runtime-selectable implementation of a conditioned vertex.
struct Alternative {
  std::string name;    ///< e.g. "qpsk"
  std::string kind;    ///< operator kind, e.g. "qpsk_mapper"
  synth::Params params;
};

/// One data-flow operation.
struct Operation {
  std::string name;
  std::string kind;  ///< operator kind (ignored when alternatives exist)
  synth::Params params;
  OpClass cls = OpClass::Compute;
  std::vector<Alternative> alternatives;  ///< non-empty => conditioned vertex

  bool conditioned() const { return !alternatives.empty(); }
};

/// A data dependency carrying `bytes` per graph iteration.
struct DataDep {
  Bytes bytes = 0;
};

class AlgorithmGraph {
 public:
  /// Adds an operation; names must be unique.
  NodeId add_operation(Operation op);

  /// Convenience for plain compute vertices.
  NodeId add_compute(const std::string& name, const std::string& kind,
                     const synth::Params& params = {});
  NodeId add_sensor(const std::string& name, const std::string& kind = "bit_source");
  NodeId add_actuator(const std::string& name, const std::string& kind = "interface_in_out");

  /// Adds a conditioned vertex with runtime-selected alternatives.
  NodeId add_conditioned(const std::string& name, std::vector<Alternative> alternatives);

  /// Adds a data dependency `from -> to` of `bytes` per iteration.
  void add_dependency(NodeId from, NodeId to, Bytes bytes);
  void add_dependency(const std::string& from, const std::string& to, Bytes bytes);

  /// SynDEx-style repeated vertex: replaces plain compute `name` by
  /// `count` data-parallel instances "name#0".."name#<count-1>", rewiring
  /// every dependency to each instance with the payload split evenly
  /// (scatter on inputs, gather on outputs). The adequation can then
  /// spread the instances across operators. Returns the instance names.
  std::vector<std::string> expand_repetition(const std::string& name, int count);

  const Operation& op(NodeId n) const { return g_[n]; }
  NodeId by_name(const std::string& name) const;
  std::optional<NodeId> find(const std::string& name) const;

  const graph::Digraph<Operation, DataDep>& digraph() const { return g_; }
  std::size_t size() const { return g_.node_count(); }

  /// Monotone mutation counter: bumped by every mutator. Callers caching
  /// graph-shaped derived structures (ready trackers, dependency CSRs,
  /// critical-path priorities) compare versions to invalidate — the same
  /// idea as the validate() verdict cache, but usable from outside.
  std::uint64_t version() const { return version_; }

  /// Checks structural invariants: acyclic, sensors have no inputs,
  /// actuators no outputs, conditioned vertices have >= 2 alternatives
  /// with unique names. Throws pdr::Error describing the first violation.
  /// The verdict is cached until the next mutation, so repeated runs
  /// over the same graph (the explorer, bench repeats) validate once.
  void validate() const;

  /// Graphviz rendering (conditioned vertices drawn as double octagons).
  std::string to_dot() const;

 private:
  graph::Digraph<Operation, DataDep> g_;
  /// Name -> node index. Kept in lockstep with g_ so find()/by_name()
  /// (and hence every name-based add_dependency during graph
  /// construction) is O(1) instead of a full node scan — the difference
  /// between seconds and hours when generators build million-op graphs.
  std::unordered_map<std::string, NodeId> index_;
  util::ValidatedFlag validated_;  ///< cleared by every mutator
  std::uint64_t version_ = 0;      ///< bumped by every mutator
};

}  // namespace pdr::aaa
