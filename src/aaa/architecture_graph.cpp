#include "aaa/architecture_graph.hpp"

#include <deque>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

const char* operator_kind_name(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::Processor: return "processor";
    case OperatorKind::FpgaStatic: return "fpga_static";
    case OperatorKind::FpgaRegion: return "fpga_region";
  }
  return "?";
}

OperatorKind operator_kind_from_name(const std::string& keyword) {
  if (keyword == "processor") return OperatorKind::Processor;
  if (keyword == "fpga_static") return OperatorKind::FpgaStatic;
  if (keyword == "fpga_region") return OperatorKind::FpgaRegion;
  raise("operator_kind_from_name", "unknown operator kind '" + keyword + "'");
}

NodeId ArchitectureGraph::add_operator(OperatorNode op) {
  PDR_CHECK(!op.name.empty(), "ArchitectureGraph", "operator name must not be empty");
  PDR_CHECK(!find(op.name).has_value(), "ArchitectureGraph", "duplicate name '" + op.name + "'");
  if (op.kind == OperatorKind::FpgaRegion)
    PDR_CHECK(!op.region.empty(), "ArchitectureGraph",
              "FpgaRegion operator '" + op.name + "' must name its floorplan region");
  ArchVertex v;
  v.op = std::move(op);
  validated_.clear();
  return g_.add_node(std::move(v));
}

NodeId ArchitectureGraph::add_medium(MediumNode medium) {
  PDR_CHECK(!medium.name.empty(), "ArchitectureGraph", "medium name must not be empty");
  PDR_CHECK(!find(medium.name).has_value(), "ArchitectureGraph",
            "duplicate name '" + medium.name + "'");
  PDR_CHECK(medium.bandwidth_bytes_per_s > 0, "ArchitectureGraph",
            "medium '" + medium.name + "' must have positive bandwidth");
  ArchVertex v;
  v.medium = std::move(medium);
  validated_.clear();
  return g_.add_node(std::move(v));
}

void ArchitectureGraph::connect(NodeId op, NodeId medium) {
  PDR_CHECK(g_[op].is_operator() && !g_[medium].is_operator(), "ArchitectureGraph::connect",
            "connections join an operator to a medium");
  g_.add_edge(op, medium, ArchLink{});
  g_.add_edge(medium, op, ArchLink{});
  validated_.clear();
}

void ArchitectureGraph::connect(const std::string& op, const std::string& medium) {
  connect(by_name(op), by_name(medium));
}

NodeId ArchitectureGraph::by_name(const std::string& name) const {
  const auto n = find(name);
  PDR_CHECK(n.has_value(), "ArchitectureGraph::by_name", "no vertex named '" + name + "'");
  return *n;
}

std::optional<NodeId> ArchitectureGraph::find(const std::string& name) const {
  for (NodeId n : g_.node_ids())
    if (g_[n].name() == name) return n;
  return std::nullopt;
}

const OperatorNode& ArchitectureGraph::op(NodeId n) const {
  PDR_CHECK(g_[n].is_operator(), "ArchitectureGraph::op", "vertex is not an operator");
  return *g_[n].op;
}

const MediumNode& ArchitectureGraph::medium(NodeId n) const {
  PDR_CHECK(!g_[n].is_operator(), "ArchitectureGraph::medium", "vertex is not a medium");
  return *g_[n].medium;
}

std::vector<NodeId> ArchitectureGraph::operators() const {
  std::vector<NodeId> out;
  for (NodeId n : g_.node_ids())
    if (g_[n].is_operator()) out.push_back(n);
  return out;
}

std::vector<NodeId> ArchitectureGraph::media() const {
  std::vector<NodeId> out;
  for (NodeId n : g_.node_ids())
    if (!g_[n].is_operator()) out.push_back(n);
  return out;
}

std::vector<NodeId> ArchitectureGraph::attached_media(NodeId op) const {
  PDR_CHECK(g_[op].is_operator(), "ArchitectureGraph::attached_media", "vertex is not an operator");
  std::vector<NodeId> out;
  for (NodeId s : g_.successors(op))
    if (!g_[s].is_operator()) out.push_back(s);
  return out;
}

std::vector<NodeId> ArchitectureGraph::operators_of_kind(OperatorKind kind) const {
  std::vector<NodeId> out;
  for (NodeId n : operators())
    if (op(n).kind == kind) out.push_back(n);
  return out;
}

std::vector<NodeId> ArchitectureGraph::route(NodeId from_op, NodeId to_op) const {
  PDR_CHECK(g_[from_op].is_operator() && g_[to_op].is_operator(), "ArchitectureGraph::route",
            "route endpoints must be operators");
  if (from_op == to_op) return {};

  // BFS over the bipartite operator/medium graph.
  std::vector<NodeId> parent(g_.node_ids().size() + 64, graph::kNoNode);
  std::vector<bool> seen(parent.size(), false);
  std::deque<NodeId> queue{from_op};
  seen[from_op] = true;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    if (cur == to_op) break;
    for (NodeId next : g_.successors(cur)) {
      if (!seen[next]) {
        seen[next] = true;
        parent[next] = cur;
        queue.push_back(next);
      }
    }
  }
  PDR_CHECK(seen[to_op], "ArchitectureGraph::route",
            "no route from '" + g_[from_op].name() + "' to '" + g_[to_op].name() + "'");

  // Walk back, keeping only media.
  std::vector<NodeId> media_path;
  for (NodeId n = to_op; n != from_op; n = parent[n])
    if (!g_[n].is_operator()) media_path.push_back(n);
  return {media_path.rbegin(), media_path.rend()};
}

void ArchitectureGraph::validate() const {
  if (validated_.test()) return;
  const auto ops = operators();
  PDR_CHECK(!ops.empty(), "ArchitectureGraph::validate", "no operators");
  for (graph::EdgeId e : g_.edge_ids()) {
    const bool mixed = g_[g_.edge_from(e)].is_operator() != g_[g_.edge_to(e)].is_operator();
    PDR_CHECK(mixed, "ArchitectureGraph::validate",
              "edges must join an operator and a medium");
  }
  for (NodeId a : ops)
    for (NodeId b : ops)
      if (a != b) route(a, b);  // throws when disconnected
  validated_.set();
}

std::string ArchitectureGraph::to_dot() const {
  std::vector<graph::DotNode> nodes;
  std::vector<graph::DotEdge> edges;
  for (NodeId n : g_.node_ids()) {
    graph::DotNode dn;
    dn.id = g_[n].name();
    if (g_[n].is_operator()) {
      const OperatorNode& o = op(n);
      dn.label = o.name + "\\n[" + operator_kind_name(o.kind) + "]";
      dn.shape = o.kind == OperatorKind::FpgaRegion ? "box3d" : "box";
      if (o.kind == OperatorKind::FpgaRegion) dn.color = "lightblue";
    } else {
      const MediumNode& m = medium(n);
      dn.label = m.name + strprintf("\\n%.0f MB/s", m.bandwidth_bytes_per_s / 1e6);
      dn.shape = "ellipse";
    }
    nodes.push_back(std::move(dn));
  }
  for (graph::EdgeId e : g_.edge_ids()) {
    // Draw each operator<->medium pair once.
    if (g_[g_.edge_from(e)].is_operator())
      edges.push_back(graph::DotEdge{g_[g_.edge_from(e)].name(), g_[g_.edge_to(e)].name(), "", false});
  }
  return graph::to_dot("architecture", nodes, edges);
}

ArchitectureGraph make_figure1_architecture(int dynamic_regions, double il_bandwidth_bytes_per_s) {
  PDR_CHECK(dynamic_regions >= 0, "make_figure1_architecture", "negative region count");
  ArchitectureGraph arch;
  arch.add_operator(OperatorNode{"F1", OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  const NodeId il = arch.add_medium(MediumNode{"IL", il_bandwidth_bytes_per_s, 100});
  arch.connect(arch.by_name("F1"), il);
  for (int i = 1; i <= dynamic_regions; ++i) {
    const std::string name = "D" + std::to_string(i);
    arch.add_operator(OperatorNode{name, OperatorKind::FpgaRegion, 1.0, "XC2V2000", name});
    arch.connect(arch.by_name(name), il);
  }
  return arch;
}

ArchitectureGraph make_sundance_architecture() {
  ArchitectureGraph arch;
  // TI C6201 DSP @ 200 MHz: the software operator. Its speed factor is
  // relative to FPGA implementations of the same operations (see
  // aaa/durations.cpp for the per-kind duration table).
  arch.add_operator(OperatorNode{"DSP", OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(OperatorNode{"F1", OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  arch.add_operator(OperatorNode{"D1", OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D1"});

  // SHB: the Sundance High-speed Bus between DSP and FPGA (32 bit @ 50 MHz).
  arch.add_medium(MediumNode{"SHB", 200e6, 2000});
  // LIO: the on-chip link between fixed part and dynamic region, crossing
  // the bus macros (paper Figure 4).
  arch.add_medium(MediumNode{"LIO", 400e6, 50});

  arch.connect("DSP", "SHB");
  arch.connect("F1", "SHB");
  arch.connect("F1", "LIO");
  arch.connect("D1", "LIO");
  return arch;
}

}  // namespace pdr::aaa
