// The AAA architecture graph.
//
// "Architecture is also modeled by a graph where the vertices are
// operators (e.g processors, DSP, FPGA) or media and edges are
// connections between them." (§3)
//
// Following the paper's Figure 1, runtime-reconfigurable parts of an
// FPGA (D1, D2) and its fixed part (F1) are distinct operators; an
// internal medium (IL) connects them; the configuration port is itself a
// resource operators contend for.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fabric/config_port.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "util/units.hpp"
#include "util/validated_flag.hpp"

namespace pdr::aaa {

using graph::NodeId;

enum class OperatorKind : std::uint8_t {
  Processor,   ///< DSP / CPU: sequential, can host M and P functionalities
  FpgaStatic,  ///< fixed part of an FPGA (F1)
  FpgaRegion,  ///< runtime-reconfigurable part of an FPGA (D1, D2)
};

const char* operator_kind_name(OperatorKind kind);

/// Inverse of operator_kind_name; throws on unknown keywords.
OperatorKind operator_kind_from_name(const std::string& keyword);

/// An operator vertex (computation resource, no internal parallelism, §3).
struct OperatorNode {
  std::string name;
  OperatorKind kind = OperatorKind::Processor;
  double speed_factor = 1.0;  ///< duration divisor (2.0 = twice as fast)
  std::string device;         ///< FPGA device name, for FPGA operators
  std::string region;         ///< floorplan region, for FpgaRegion operators
};

/// A communication medium vertex (bus or internal link).
struct MediumNode {
  std::string name;
  double bandwidth_bytes_per_s = 0.0;
  TimeNs latency = 0;  ///< fixed per-transfer latency

  /// Duration of one `bytes`-sized transfer over this medium.
  TimeNs transfer_time(Bytes bytes) const {
    return latency + transfer_time_ns(bytes, bandwidth_bytes_per_s);
  }
};

/// Architecture vertices are operators or media.
struct ArchVertex {
  std::optional<OperatorNode> op;
  std::optional<MediumNode> medium;

  const std::string& name() const { return op ? op->name : medium->name; }
  bool is_operator() const { return op.has_value(); }
};

/// Edges carry no payload: a connection means the operator can reach the
/// medium (architecture graphs are undirected in SynDEx; we add both arcs).
struct ArchLink {};

class ArchitectureGraph {
 public:
  NodeId add_operator(OperatorNode op);
  NodeId add_medium(MediumNode medium);

  /// Connects an operator to a medium (bidirectional reachability).
  void connect(NodeId op, NodeId medium);
  void connect(const std::string& op, const std::string& medium);

  NodeId by_name(const std::string& name) const;
  std::optional<NodeId> find(const std::string& name) const;

  bool is_operator(NodeId n) const { return g_[n].is_operator(); }
  const OperatorNode& op(NodeId n) const;
  const MediumNode& medium(NodeId n) const;

  std::vector<NodeId> operators() const;
  std::vector<NodeId> media() const;

  /// Media directly attached to an operator.
  std::vector<NodeId> attached_media(NodeId op) const;
  /// Operators of one kind.
  std::vector<NodeId> operators_of_kind(OperatorKind kind) const;

  /// A communication route between two operators: the sequence of media to
  /// traverse (shortest hop count; empty if src == dst). Throws if the
  /// operators are not connected.
  std::vector<NodeId> route(NodeId from_op, NodeId to_op) const;

  /// Checks invariants: operators only connect to media, names unique,
  /// every operator reaches every other (a connected platform).
  void validate() const;

  std::string to_dot() const;

  std::size_t size() const { return g_.node_count(); }

 private:
  graph::Digraph<ArchVertex, ArchLink> g_;
  util::ValidatedFlag validated_;  ///< cleared by every mutator
};

/// Builds the paper's Figure-1 model: fixed part F1, dynamic parts D1..Dn,
/// internal link IL of `il_bandwidth` connecting them all.
ArchitectureGraph make_figure1_architecture(int dynamic_regions, double il_bandwidth_bytes_per_s);

/// Builds the case-study platform (paper §6): one DSP (TI C6201-like)
/// and one XC2V2000 FPGA split into fixed part F1 and dynamic region D1,
/// joined by the SHB bus; F1 and D1 joined by the internal link LIO.
ArchitectureGraph make_sundance_architecture();

}  // namespace pdr::aaa
