// C executive generation for processor operators.
//
// The paper's flow "target[s] as well as software components as hardware
// components" (§7): processor vertices get a C executive implementing the
// same macro program, including — when the configuration manager is
// placed on the CPU (paper Figure 2 case b) — the interrupt service
// routine that receives reconfiguration requests from the FPGA and drives
// SelectMAP.
#pragma once

#include <string>

#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"

namespace pdr::aaa {

/// C source for one processor operator's executive.
std::string generate_c_executive(const MacroProgram& program, const OperatorNode& op,
                                 const ConstraintSet& constraints);

}  // namespace pdr::aaa
