#include "aaa/codegen_m4.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {
namespace {

std::string vertex_kind(const ArchitectureGraph& architecture, const std::string& name) {
  const auto node = architecture.find(name);
  PDR_CHECK(node.has_value(), "generate_m4", "program resource '" + name + "' not in architecture");
  if (!architecture.is_operator(*node)) return "medium";
  return operator_kind_name(architecture.op(*node).kind);
}

}  // namespace

std::string generate_m4_macrocode(const MacroProgram& program,
                                  const ArchitectureGraph& architecture) {
  const std::string id = identifier(program.resource);
  std::string out;
  out += "divert(-1)\n";
  out += "# " + program.resource + ".m4 -- synchronized executive (pdrflow, SynDEx-style)\n";
  out += "# vertex kind: " + vertex_kind(architecture, program.resource) + "\n";
  out += "divert(0)dnl\n";
  if (program.is_medium) {
    out += "media_(" + id + ")dnl\n";
  } else {
    out += "processor_(" + id + ", " + vertex_kind(architecture, program.resource) + ")dnl\n";
  }
  out += "main_\n  loop_\n";
  for (const auto& instr : program.body) {
    switch (instr.op) {
      case MacroOp::Recv:
        out += strprintf("    recv_(%s, %s, %llu)\n", identifier(instr.what).c_str(),
                         identifier(instr.with).c_str(),
                         static_cast<unsigned long long>(instr.bytes));
        break;
      case MacroOp::Send:
        out += strprintf("    send_(%s, %s, %llu)\n", identifier(instr.what).c_str(),
                         identifier(instr.with).c_str(),
                         static_cast<unsigned long long>(instr.bytes));
        break;
      case MacroOp::Compute:
        out += strprintf("    compute_(%s, %lld)\n", identifier(instr.what).c_str(),
                         static_cast<long long>(instr.duration));
        break;
      case MacroOp::Reconfig:
        out += strprintf("    reconf_(%s)\n", identifier(instr.what).c_str());
        break;
      case MacroOp::Move:
        out += strprintf("    move_(%s, %llu)\n", identifier(instr.what).c_str(),
                         static_cast<unsigned long long>(instr.bytes));
        break;
    }
  }
  out += "  endloop_\nendmain_\n";
  return out;
}

std::string generate_m4_application(const Executive& executive,
                                    const ArchitectureGraph& architecture,
                                    const std::string& application_name) {
  std::string out;
  out += "divert(-1)\n# " + application_name + ".m4 -- application executive index\ndivert(0)dnl\n";
  out += "application_(" + identifier(application_name) + ")dnl\n";
  for (NodeId n : architecture.operators())
    out += "declare_processor_(" + identifier(architecture.op(n).name) + ", " +
           operator_kind_name(architecture.op(n).kind) + ")dnl\n";
  for (NodeId n : architecture.media()) {
    const MediumNode& m = architecture.medium(n);
    out += strprintf("declare_media_(%s, %.0f)dnl\n", identifier(m.name).c_str(),
                     m.bandwidth_bytes_per_s);
  }
  for (const auto& p : executive.programs)
    out += "include_(" + identifier(p.resource) + ".m4)dnl\n";
  out += "end_application_dnl\n";
  return out;
}

}  // namespace pdr::aaa
