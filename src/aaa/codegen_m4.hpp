// m4 macro-code emission.
//
// The real SynDEx tool materializes the synchronized executive as m4
// macro files, one per architecture vertex, which per-target macro
// libraries then expand into C or VHDL. We emit the same shape: a
// `<vertex>.m4` body of `loop_`/`endloop_` delimited executive macros
// (recv_, send_, compute_, reconf_) plus the processor/media declaration
// header, so the artifacts of paper Figure 3's "VHDL generation" box have
// their historically accurate sibling.
#pragma once

#include <string>

#include "aaa/architecture_graph.hpp"
#include "aaa/macrocode.hpp"

namespace pdr::aaa {

/// m4 macro file for one operator or medium program.
std::string generate_m4_macrocode(const MacroProgram& program, const ArchitectureGraph& architecture);

/// The application-level m4 file tying all vertices together (SynDEx's
/// `<application>.m4`): declares every operator/medium and includes the
/// per-vertex files.
std::string generate_m4_application(const Executive& executive,
                                    const ArchitectureGraph& architecture,
                                    const std::string& application_name);

}  // namespace pdr::aaa
