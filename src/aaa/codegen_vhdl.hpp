// VHDL generation for FPGA operators.
//
// "The translation generates the VHDL code, both for the static and
// dynamic parts of a FPGA. The final FPGA design is based on several
// dedicated processes to control: communication sequencings, computation
// sequencings, operator behaviour, activation of reading and writing
// phases of buffers." (§5)
//
// generate_vhdl_entity() emits exactly those four processes around the
// operator's macro program. Dynamic regions additionally get the
// `in_reconf` lock-up signal and bus-macro instantiations at the region
// boundary; the static part optionally embeds the configuration manager
// and protocol builder entities (paper Figure 2 case a).
#pragma once

#include <string>

#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"

namespace pdr::aaa {

struct VhdlOptions {
  /// Emit the configuration manager + protocol builder components inside
  /// this entity (static part, self-reconfiguration case).
  bool embed_reconfig_manager = false;
  /// Bus macros to instantiate (dynamic regions).
  int bus_macro_count = 0;
  std::string clock_name = "clk";
  std::string reset_name = "rst";
};

/// Shared package: buffer types, handshake records.
std::string generate_vhdl_package();

/// One operator's entity + architecture.
std::string generate_vhdl_entity(const MacroProgram& program, const OperatorNode& op,
                                 const VhdlOptions& options = {});

/// Top-level structural wrapper connecting every FPGA operator entity of
/// the executive through its media signals.
std::string generate_vhdl_top(const Executive& executive, const ArchitectureGraph& architecture,
                              const ConstraintSet& constraints);

}  // namespace pdr::aaa
