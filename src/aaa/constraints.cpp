#include "aaa/constraints.hpp"

#include "fabric/floorplan.hpp"
#include "lint/constraint_rules.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

const char* to_keyword(PortChoice v) {
  switch (v) {
    case PortChoice::Icap: return "icap";
    case PortChoice::SelectMap: return "selectmap";
    case PortChoice::Jtag: return "jtag";
  }
  return "?";
}

const char* to_keyword(Placement v) { return v == Placement::Fpga ? "fpga" : "cpu"; }

const char* to_keyword(PrefetchChoice v) {
  switch (v) {
    case PrefetchChoice::None: return "none";
    case PrefetchChoice::Schedule: return "schedule";
    case PrefetchChoice::History: return "history";
  }
  return "?";
}

const char* to_keyword(LoadPolicy v) { return v == LoadPolicy::Startup ? "startup" : "on_demand"; }

const char* to_keyword(UnloadPolicy v) { return v == UnloadPolicy::Lazy ? "lazy" : "eager"; }

const RegionConstraint* ConstraintSet::find_region(const std::string& name) const {
  for (const auto& r : regions)
    if (r.name == name) return &r;
  return nullptr;
}

const ModuleConstraint* ConstraintSet::find_module(const std::string& name) const {
  for (const auto& m : modules)
    if (m.name == name) return &m;
  return nullptr;
}

std::vector<const ModuleConstraint*> ConstraintSet::modules_of(const std::string& region) const {
  std::vector<const ModuleConstraint*> out;
  for (const auto& m : modules)
    if (m.region == region) out.push_back(&m);
  return out;
}

void ConstraintSet::validate() const {
  // One rule engine for validate() and `pdrflow check`: collect every
  // error-severity violation, then throw once listing them all.
  std::string violations;
  std::size_t count = 0;
  lint::visit_constraint_violations(
      *this, [&violations, &count](lint::Rule rule, lint::Severity severity,
                                   const std::string& /*where*/, const std::string& message,
                                   const std::string& /*hint*/) {
        if (severity != lint::Severity::Error) return;
        if (count > 0) violations += "\n  ";
        violations += std::string(lint::rule_id(rule)) + ": " + message;
        ++count;
      });
  if (count == 1) raise("ConstraintSet", violations);
  if (count > 1)
    raise("ConstraintSet",
          std::to_string(count) + " constraint violations:\n  " + violations);
}

namespace {

/// Token-stream parser: comments stripped per line, braces split into
/// their own tokens, so `region D1 { width 2 }` and the multi-line form
/// parse identically. Errors carry the token's source line.
class Parser {
 public:
  explicit Parser(const std::string& text) { tokenize(text); }

  ConstraintSet parse(bool validate) {
    while (!at_end()) {
      const std::string head = next("directive");
      if (head == "device") {
        set_.device = next("device <name>");
      } else if (head == "port") {
        set_.port = parse_port(next("port icap|selectmap|jtag"));
      } else if (head == "manager") {
        set_.manager = parse_placement(next("manager fpga|cpu"));
      } else if (head == "builder") {
        set_.builder = parse_placement(next("builder fpga|cpu"));
      } else if (head == "prefetch") {
        set_.prefetch = parse_prefetch(next("prefetch none|schedule|history"));
      } else if (head == "region") {
        parse_region();
      } else if (head == "dynamic") {
        parse_module();
      } else if (head == "exclude") {
        const std::string a = next("exclude <a> <b>");
        set_.exclusions.emplace_back(a, next("exclude <a> <b>"));
      } else if (head == "relation") {
        const std::string a = next("relation <a> then <b>");
        fail_unless(next("relation <a> then <b>") == "then", "expected 'then' in relation");
        set_.relations.emplace_back(a, next("relation <a> then <b>"));
      } else {
        fail("unknown directive '" + head + "'");
      }
    }
    if (validate) set_.validate();
    return std::move(set_);
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };

  void tokenize(const std::string& text) {
    const auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string raw = lines[i];
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      for (const std::string& word : split_ws(raw)) {
        // Split leading/trailing braces off words like "{width" or "2}".
        std::size_t start = 0;
        for (std::size_t c = 0; c <= word.size(); ++c) {
          if (c == word.size() || word[c] == '{' || word[c] == '}') {
            if (c > start) tokens_.push_back(Token{word.substr(start, c - start), i + 1});
            if (c < word.size()) tokens_.push_back(Token{std::string(1, word[c]), i + 1});
            start = c + 1;
          }
        }
      }
    }
  }

  bool at_end() const { return pos_ >= tokens_.size(); }

  [[noreturn]] void fail(const std::string& msg) const {
    const std::size_t line = pos_ < tokens_.size() ? tokens_[pos_ > 0 ? pos_ - 1 : 0].line
                                                   : (tokens_.empty() ? 0 : tokens_.back().line);
    raise("constraints", "line " + std::to_string(line) + ": " + msg);
  }
  void fail_unless(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  std::string next(const std::string& usage) {
    if (at_end()) fail("missing token; usage: " + usage);
    return tokens_[pos_++].text;
  }

  std::string peek() const { return at_end() ? std::string() : tokens_[pos_].text; }

  void expect_open_brace() { fail_unless(next("'{'") == "{", "expected '{' to open a block"); }

  PortChoice parse_port(const std::string& s) const {
    if (s == "icap") return PortChoice::Icap;
    if (s == "selectmap") return PortChoice::SelectMap;
    if (s == "jtag") return PortChoice::Jtag;
    fail("unknown port '" + s + "'");
  }
  Placement parse_placement(const std::string& s) const {
    if (s == "fpga") return Placement::Fpga;
    if (s == "cpu") return Placement::Cpu;
    fail("unknown placement '" + s + "'");
  }
  PrefetchChoice parse_prefetch(const std::string& s) const {
    if (s == "none") return PrefetchChoice::None;
    if (s == "schedule") return PrefetchChoice::Schedule;
    if (s == "history") return PrefetchChoice::History;
    fail("unknown prefetch policy '" + s + "'");
  }
  int parse_int(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const int v = std::stoi(s, &idx);
      if (idx != s.size()) fail("trailing characters in integer '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected an integer, got '" + s + "'");
    }
  }

  void parse_region() {
    RegionConstraint r;
    r.name = next("region <name> { ... }");
    expect_open_brace();
    while (peek() != "}") {
      fail_unless(!at_end(), "unterminated block (missing '}')");
      const std::string key = next("region attribute");
      if (key == "width") {
        const std::string v = next("width auto|<clb-cols>|<slice-cols>sc");
        if (v == "auto") {
          r.width = -1;
        } else if (v.size() > 2 && v.compare(v.size() - 2, 2, "sc") == 0) {
          // Slice-column form: remember the authored count (lint checks it
          // against the four-slice-column rule) and round up to whole CLB
          // columns for every downstream consumer.
          r.width_slice_cols = parse_int(v.substr(0, v.size() - 2));
          r.width = (r.width_slice_cols + fabric::kSliceColsPerClbCol - 1) /
                    fabric::kSliceColsPerClbCol;
        } else {
          r.width = parse_int(v);
        }
      } else if (key == "margin") {
        r.margin = parse_int(next("margin <cols>"));
      } else if (key == "seu_budget") {
        r.seu_budget_ms = parse_int(next("seu_budget <ms>"));
        fail_unless(r.seu_budget_ms > 0, "seu_budget must be positive");
      } else {
        fail("unknown region attribute '" + key + "'");
      }
    }
    next("'}'");  // consume closing brace
    set_.regions.push_back(std::move(r));
  }

  void parse_module() {
    ModuleConstraint m;
    m.name = next("dynamic <name> { ... }");
    expect_open_brace();
    while (peek() != "}") {
      fail_unless(!at_end(), "unterminated block (missing '}')");
      const std::string key = next("dynamic-module attribute");
      if (key == "region") {
        m.region = next("region <name>");
      } else if (key == "kind") {
        m.kind = next("kind <operator-kind>");
      } else if (key == "param") {
        const std::string pkey = next("param <key> <int>");
        m.params[pkey] = parse_int(next("param <key> <int>"));
      } else if (key == "load") {
        const std::string v = next("load startup|on_demand");
        if (v == "startup")
          m.load = LoadPolicy::Startup;
        else if (v == "on_demand")
          m.load = LoadPolicy::OnDemand;
        else
          fail("unknown load policy '" + v + "'");
      } else if (key == "unload") {
        const std::string v = next("unload lazy|eager");
        if (v == "lazy")
          m.unload = UnloadPolicy::Lazy;
        else if (v == "eager")
          m.unload = UnloadPolicy::Eager;
        else
          fail("unknown unload policy '" + v + "'");
      } else {
        fail("unknown dynamic-module attribute '" + key + "'");
      }
    }
    next("'}'");
    set_.modules.push_back(std::move(m));
  }

  ConstraintSet set_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ConstraintSet parse_constraints(const std::string& text, bool validate) {
  return Parser(text).parse(validate);
}

std::string write_constraints(const ConstraintSet& set) {
  std::string out;
  out += "device " + set.device + "\n";
  out += std::string("port ") + to_keyword(set.port) + "\n";
  out += std::string("manager ") + to_keyword(set.manager) + "\n";
  out += std::string("builder ") + to_keyword(set.builder) + "\n";
  out += std::string("prefetch ") + to_keyword(set.prefetch) + "\n";
  for (const auto& r : set.regions) {
    out += "\nregion " + r.name + " {\n";
    if (r.width_slice_cols >= 0)
      out += "  width " + std::to_string(r.width_slice_cols) + "sc\n";
    else
      out += "  width " + (r.width == -1 ? std::string("auto") : std::to_string(r.width)) + "\n";
    if (r.margin != 0) out += "  margin " + std::to_string(r.margin) + "\n";
    if (r.seu_budget_ms >= 0) out += "  seu_budget " + std::to_string(r.seu_budget_ms) + "\n";
    out += "}\n";
  }
  for (const auto& m : set.modules) {
    out += "\ndynamic " + m.name + " {\n";
    out += "  region " + m.region + "\n";
    out += "  kind " + m.kind + "\n";
    for (const auto& [k, v] : m.params) out += "  param " + k + " " + std::to_string(v) + "\n";
    out += std::string("  load ") + to_keyword(m.load) + "\n";
    out += std::string("  unload ") + to_keyword(m.unload) + "\n";
    out += "}\n";
  }
  if (!set.exclusions.empty()) out += "\n";
  for (const auto& [a, b] : set.exclusions) out += "exclude " + a + " " + b + "\n";
  for (const auto& [a, b] : set.relations) out += "relation " + a + " then " + b + "\n";
  return out;
}

}  // namespace pdr::aaa
