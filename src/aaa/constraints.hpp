// The dynamic-constraints file.
//
// "A constraints file will contain the definition of each dynamic module
// and the associated constraints (loading, unloading, sharing area,
// dynamic relations, exclusion)." (§4)
//
// This module defines the in-memory ConstraintSet, a line-oriented DSL
// parser with precise error positions, and a writer that round-trips it.
// Example:
//
//   device XC2V2000
//   port icap            # icap | selectmap | jtag
//   manager fpga         # paper Fig.2 'M' placement: fpga | cpu
//   builder fpga         # paper Fig.2 'P' placement: fpga | cpu
//   prefetch schedule    # none | schedule | history
//
//   region D1 {
//     width auto         # CLB columns, or 'auto' (sized from variants)
//     margin 1
//   }
//
//   dynamic qpsk {
//     region D1
//     kind qpsk_mapper
//     load startup       # startup | on_demand
//     unload lazy        # lazy | eager
//   }
//
//   exclude qpsk qam16           # area sharing / mutual exclusion
//   relation qpsk then qam16     # dynamic relation: qam16 often follows
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "synth/elaborate.hpp"

namespace pdr::aaa {

enum class PortChoice : std::uint8_t { Icap, SelectMap, Jtag };
enum class Placement : std::uint8_t { Fpga, Cpu };
enum class PrefetchChoice : std::uint8_t { None, Schedule, History };
enum class LoadPolicy : std::uint8_t { Startup, OnDemand };
enum class UnloadPolicy : std::uint8_t { Lazy, Eager };

const char* to_keyword(PortChoice v);
const char* to_keyword(Placement v);
const char* to_keyword(PrefetchChoice v);
const char* to_keyword(LoadPolicy v);
const char* to_keyword(UnloadPolicy v);

/// Declaration of one reconfigurable region.
struct RegionConstraint {
  std::string name;
  int width = -1;  ///< CLB columns; -1 = auto (sized from widest variant)
  /// Width as authored, when the file used the slice-column form
  /// (`width Nsc`); -1 = authored in CLB columns or auto. When >= 0,
  /// `width` holds the CLB-column equivalent (rounded up); lint rule
  /// PDR021 rejects counts that are odd or below the paper's minimum of
  /// four before any flow consumes the rounded value.
  int width_slice_cols = -1;
  int margin = 0;  ///< extra CLB columns beyond the widest variant
  /// SEU-exposure budget in ms: the longest the region may go without a
  /// rewrite (scrub or reconfiguration) in its radiation environment;
  /// -1 = no budget. Checked against schedules by lint rule PDR048.
  int seu_budget_ms = -1;
};

/// Declaration of one dynamic module (a region variant).
struct ModuleConstraint {
  std::string name;
  std::string region;
  std::string kind;  ///< operator kind for elaboration
  synth::Params params;
  LoadPolicy load = LoadPolicy::OnDemand;
  UnloadPolicy unload = UnloadPolicy::Lazy;
};

struct ConstraintSet {
  std::string device = "XC2V2000";
  PortChoice port = PortChoice::Icap;
  Placement manager = Placement::Fpga;   ///< 'M' placement (paper Fig. 2)
  Placement builder = Placement::Fpga;   ///< 'P' placement (paper Fig. 2)
  PrefetchChoice prefetch = PrefetchChoice::Schedule;
  std::vector<RegionConstraint> regions;
  std::vector<ModuleConstraint> modules;
  /// Mutually exclusive module pairs (may not be resident simultaneously
  /// in different regions).
  std::vector<std::pair<std::string, std::string>> exclusions;
  /// Dynamic relations "a then b": after loading a, b is the likely next
  /// request (seeds the history predictor).
  std::vector<std::pair<std::string, std::string>> relations;

  const RegionConstraint* find_region(const std::string& name) const;
  const ModuleConstraint* find_module(const std::string& name) const;
  /// Modules declared for one region.
  std::vector<const ModuleConstraint*> modules_of(const std::string& region) const;

  /// Checks referential integrity (modules name declared regions,
  /// exclusions/relations name declared modules, names unique, at least
  /// one module per region, known device). Runs the lint constraint-rule
  /// engine (lint/constraint_rules.hpp — one implementation shared with
  /// `pdrflow check`) and throws a single pdr::Error listing EVERY
  /// error-severity violation; warnings are ignored here.
  void validate() const;
};

/// Parses the DSL; error messages carry "line N:" positions. With
/// `validate` false the set is returned unchecked — used by the linter,
/// which wants every rule violation as a diagnostic rather than a throw.
ConstraintSet parse_constraints(const std::string& text, bool validate = true);

/// Writes a ConstraintSet back to DSL text (parse(write(x)) == x).
std::string write_constraints(const ConstraintSet& set);

}  // namespace pdr::aaa
