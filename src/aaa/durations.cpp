#include "aaa/durations.hpp"

#include "util/error.hpp"

namespace pdr::aaa {

void DurationTable::set(const std::string& op_kind, OperatorKind target, TimeNs duration) {
  PDR_CHECK(duration > 0, "DurationTable::set", "durations must be positive");
  by_kind_[{op_kind, target}] = duration;
  ++version_;
}

void DurationTable::set_for(const std::string& op_kind, const std::string& operator_name,
                            TimeNs duration) {
  PDR_CHECK(duration > 0, "DurationTable::set_for", "durations must be positive");
  by_name_[{op_kind, operator_name}] = duration;
  ++version_;
}

bool DurationTable::supports(const std::string& op_kind, const OperatorNode& target) const {
  return by_name_.count({op_kind, target.name}) > 0 || by_kind_.count({op_kind, target.kind}) > 0;
}

TimeNs DurationTable::lookup(const std::string& op_kind, const OperatorNode& target) const {
  TimeNs base = 0;
  if (const auto it = by_name_.find({op_kind, target.name}); it != by_name_.end()) {
    base = it->second;
  } else if (const auto it2 = by_kind_.find({op_kind, target.kind}); it2 != by_kind_.end()) {
    base = it2->second;
  } else {
    raise("DurationTable::lookup",
          "operation kind '" + op_kind + "' has no duration on operator '" + target.name + "'");
  }
  PDR_CHECK(target.speed_factor > 0, "DurationTable::lookup", "non-positive speed factor");
  const auto scaled = static_cast<TimeNs>(static_cast<double>(base) / target.speed_factor);
  return scaled > 0 ? scaled : 1;
}

double DurationTable::mean(const std::string& op_kind) const {
  double sum = 0;
  int n = 0;
  for (const auto& [key, d] : by_kind_)
    if (key.first == op_kind) {
      sum += static_cast<double>(d);
      ++n;
    }
  for (const auto& [key, d] : by_name_)
    if (key.first == op_kind) {
      sum += static_cast<double>(d);
      ++n;
    }
  PDR_CHECK(n > 0, "DurationTable::mean", "no duration entry for kind '" + op_kind + "'");
  return sum / n;
}

std::vector<DurationTable::Entry> DurationTable::entries() const {
  std::vector<Entry> out;
  for (const auto& [key, d] : by_kind_)
    out.push_back(Entry{key.first, false, operator_kind_name(key.second), d});
  for (const auto& [key, d] : by_name_) out.push_back(Entry{key.first, true, key.second, d});
  return out;
}

DurationTable mccdma_durations() {
  using K = OperatorKind;
  DurationTable t;
  // Durations are per OFDM symbol (64 subcarriers, 16-sample cyclic
  // prefix), in nanoseconds.
  auto both = [&t](const std::string& kind, TimeNs fpga, TimeNs dsp) {
    t.set(kind, K::FpgaStatic, fpga);
    t.set(kind, K::FpgaRegion, fpga);
    t.set(kind, K::Processor, dsp);
  };
  both("bit_source", 1000, 2000);
  both("scrambler", 800, 5000);
  both("conv_encoder", 1000, 20000);
  both("interleaver", 1000, 8000);
  both("bpsk_mapper", 900, 10000);
  both("qpsk_mapper", 1000, 15000);
  both("qam16_mapper", 1200, 22000);
  both("qam64_mapper", 1500, 30000);
  both("walsh_spreader", 2000, 40000);
  both("ifft", 3200, 60000);
  both("cyclic_prefix", 800, 4000);
  both("frame_builder", 1000, 6000);
  both("interface_in_out", 500, 500);
  both("fir", 2000, 30000);
  both("custom", 1000, 10000);
  return t;
}

}  // namespace pdr::aaa
