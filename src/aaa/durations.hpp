// Operation duration characterization.
//
// The adequation heuristic "takes into account durations of computations
// and inter-component communications" (§3). Durations are looked up by
// (operation kind, target): first an exact per-operator-name entry, then a
// per-operator-kind entry, scaled by the operator's speed factor. An
// operation with no entry for a target cannot be mapped there — this is
// how software-only or hardware-only operations are expressed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "util/units.hpp"

namespace pdr::aaa {

class DurationTable {
 public:
  /// Duration of `op_kind` on any operator of `target` kind.
  void set(const std::string& op_kind, OperatorKind target, TimeNs duration);

  /// Duration of `op_kind` on the specific operator `operator_name`
  /// (overrides the kind-level entry).
  void set_for(const std::string& op_kind, const std::string& operator_name, TimeNs duration);

  /// True if `op_kind` can execute on `target`.
  bool supports(const std::string& op_kind, const OperatorNode& target) const;

  /// Duration of `op_kind` on `target` (speed factor applied). Throws if
  /// unsupported.
  TimeNs lookup(const std::string& op_kind, const OperatorNode& target) const;

  /// Mean duration of `op_kind` across all entries — the operator-agnostic
  /// weight used for critical-path priorities. Throws if no entry exists.
  double mean(const std::string& op_kind) const;

  /// One characterization entry, for serialization.
  struct Entry {
    std::string op_kind;
    bool per_operator_name = false;  ///< true: `target` is an operator name
    std::string target;              ///< operator-kind keyword or operator name
    TimeNs duration = 0;
  };

  /// All entries (kind-level first, then name-level), in map order.
  std::vector<Entry> entries() const;

  /// Monotone mutation counter: bumped by every set()/set_for(), so
  /// callers can cache duration-derived values (e.g. critical-path
  /// priorities) and invalidate by comparing versions.
  std::uint64_t version() const { return version_; }

 private:
  std::map<std::pair<std::string, OperatorKind>, TimeNs> by_kind_;
  std::map<std::pair<std::string, std::string>, TimeNs> by_name_;
  std::uint64_t version_ = 0;  ///< bumped by every mutator
};

/// Per-OFDM-symbol durations of every MC-CDMA operator on the case-study
/// platform (TI C6201 DSP vs Virtex-II fabric). FPGA datapaths are
/// pipelined and fast; the DSP serializes the same work 5-20x slower —
/// the asymmetry that pushes the transmitter chain into hardware during
/// adequation, exactly as in the paper's implementation.
DurationTable mccdma_durations();

}  // namespace pdr::aaa
