#include "aaa/explorer.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace pdr::aaa {

AdequationOptions DesignPoint::to_options() const {
  AdequationOptions options;
  options.strategy = strategy;
  options.prefetch = prefetch;
  options.selection = selection;
  for (const auto& [region, module] : preloaded)
    if (!module.empty()) options.preloaded[region] = module;
  return options;
}

std::string DesignPoint::name() const {
  std::string out = mapping_strategy_name(strategy);
  out += prefetch ? "/prefetch=on" : "/prefetch=off";
  for (const auto& [region, module] : preloaded)
    out += "/preload[" + region + "=" + (module.empty() ? "-" : module) + "]";
  for (const auto& [op, alt] : selection) out += "/sel[" + op + "=" + alt + "]";
  if (!floorplan.name.empty()) out += "/fp[" + floorplan.name + "]";
  return out;
}

ExplorationSpace ExplorationSpace::from_project(const Project& project) {
  ExplorationSpace space;
  space.strategies = {MappingStrategy::SynDExList, MappingStrategy::RoundRobin,
                      MappingStrategy::FirstFeasible};
  space.prefetch = {true, false};

  const auto& g = project.algorithm.digraph();
  for (graph::NodeId n : g.node_ids()) {
    const Operation& op = g[n];
    if (!op.conditioned()) continue;
    std::vector<std::string> alts;
    for (const auto& a : op.alternatives) alts.push_back(a.name);
    space.selections.emplace_back(op.name, std::move(alts));
  }

  for (NodeId w : project.architecture.operators_of_kind(OperatorKind::FpgaRegion)) {
    const OperatorNode& region = project.architecture.op(w);
    // Seed choices: empty, plus every alternative whose kind the region's
    // duration entries can execute (names deduped across vertices).
    std::vector<std::string> choices{""};
    std::set<std::string> seen;
    for (graph::NodeId n : g.node_ids()) {
      for (const auto& a : g[n].alternatives) {
        if (!project.durations.supports(a.kind, region)) continue;
        if (seen.insert(a.name).second) choices.push_back(a.name);
      }
    }
    space.preloads.emplace_back(region.name, std::move(choices));
  }
  return space;
}

std::size_t ExplorationSpace::point_count() const {
  std::size_t count = std::max<std::size_t>(strategies.size(), 1) *
                      std::max<std::size_t>(prefetch.size(), 1);
  for (const auto& [name, values] : preloads) count *= std::max<std::size_t>(values.size(), 1);
  for (const auto& [name, values] : selections) count *= std::max<std::size_t>(values.size(), 1);
  count *= std::max<std::size_t>(floorplans.size(), 1);
  return count;
}

std::vector<DesignPoint> ExplorationSpace::enumerate() const {
  std::vector<DesignPoint> points;
  points.reserve(point_count());
  const std::vector<MappingStrategy> strats =
      strategies.empty() ? std::vector<MappingStrategy>{MappingStrategy::SynDExList} : strategies;
  const std::vector<bool> pf = prefetch.empty() ? std::vector<bool>{true} : prefetch;

  // Odometer over the preload/selection axes (empty product = one point).
  const auto cross = [](const std::vector<std::pair<std::string, std::vector<std::string>>>& axes) {
    std::vector<std::map<std::string, std::string>> out{{}};
    for (const auto& [name, values] : axes) {
      if (values.empty()) continue;
      std::vector<std::map<std::string, std::string>> next;
      next.reserve(out.size() * values.size());
      for (const auto& base : out)
        for (const std::string& value : values) {
          auto assignment = base;
          assignment[name] = value;
          next.push_back(std::move(assignment));
        }
      out = std::move(next);
    }
    return out;
  };
  const auto preload_choices = cross(preloads);
  const auto selection_choices = cross(selections);
  // An empty floorplan axis enumerates one off-choice (empty name), so the
  // existing four-axis order is unchanged when the axis is unused.
  const std::vector<FloorplanChoice> fps =
      floorplans.empty() ? std::vector<FloorplanChoice>{FloorplanChoice{}} : floorplans;

  for (const MappingStrategy strategy : strats)
    for (const bool prefetch_on : pf)
      for (const auto& preloaded : preload_choices)
        for (const auto& selection : selection_choices)
          for (const auto& floorplan : fps) {
            DesignPoint point;
            point.strategy = strategy;
            point.prefetch = prefetch_on;
            point.preloaded = preloaded;
            point.selection = selection;
            point.floorplan = floorplan;
            points.push_back(std::move(point));
          }
  return points;
}

std::string ExplorationSpace::describe() const {
  std::string out = strprintf("%zu strategies x %zu prefetch", strategies.size(), prefetch.size());
  for (const auto& [name, values] : preloads)
    out += strprintf(" x %zu preloads[%s]", values.size(), name.c_str());
  for (const auto& [name, values] : selections)
    out += strprintf(" x %zu selections[%s]", values.size(), name.c_str());
  if (!floorplans.empty()) out += strprintf(" x %zu floorplans", floorplans.size());
  return out;
}

ExplorationOutcome run_design_point(const Project& project, const DesignPoint& point,
                                    const Adequation::ReconfigCost& reconfig_cost,
                                    const ScheduleVerifier& verifier) {
  ExplorationOutcome outcome;
  try {
    Adequation adequation(project.algorithm, project.architecture, project.durations);
    if (!point.floorplan.region_load_ns.empty()) {
      // The point's floorplan prices reconfiguration per region; regions it
      // does not place fall back to the base cost model (or the 4 ms paper
      // default when none was given).
      const std::map<std::string, TimeNs> table = point.floorplan.region_load_ns;
      const Adequation::ReconfigCost base = reconfig_cost;
      adequation.set_reconfig_cost(
          [table, base](const std::string& region, const std::string& module) -> TimeNs {
            const auto it = table.find(region);
            if (it != table.end()) return it->second;
            return base ? base(region, module) : TimeNs{4'000'000};
          });
    } else if (reconfig_cost) {
      adequation.set_reconfig_cost(reconfig_cost);
    }
    const Schedule schedule = adequation.run(point.to_options());
    if (verifier) {
      std::string rejection = verifier(schedule, point);
      if (!rejection.empty()) {
        outcome.rejected = true;
        outcome.error = std::move(rejection);
        return outcome;
      }
    }
    validate_schedule(schedule, project.algorithm, project.architecture);
    outcome.makespan = schedule.makespan;
    outcome.reconfig_exposed = schedule.reconfig_exposed;
    outcome.reconfig_count = schedule.reconfig_count;
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

std::vector<std::size_t> pareto_front(const std::vector<ExplorationOutcome>& outcomes) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < outcomes.size() && !dominated; ++j) {
      if (j == i || !outcomes[j].ok) continue;
      const bool no_worse = outcomes[j].makespan <= outcomes[i].makespan &&
                            outcomes[j].reconfig_exposed <= outcomes[i].reconfig_exposed;
      const bool better = outcomes[j].makespan < outcomes[i].makespan ||
                          outcomes[j].reconfig_exposed < outcomes[i].reconfig_exposed;
      // Of two identical outcomes the earlier enumeration index survives.
      const bool earlier_twin = outcomes[j].makespan == outcomes[i].makespan &&
                                outcomes[j].reconfig_exposed == outcomes[i].reconfig_exposed &&
                                j < i;
      dominated = (no_worse && better) || earlier_twin;
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    if (outcomes[a].makespan != outcomes[b].makespan)
      return outcomes[a].makespan < outcomes[b].makespan;
    if (outcomes[a].reconfig_exposed != outcomes[b].reconfig_exposed)
      return outcomes[a].reconfig_exposed < outcomes[b].reconfig_exposed;
    return a < b;
  });
  return front;
}

}  // namespace pdr::aaa
