// Design-space enumeration for the adequation: the scheduling axes the
// explorer sweeps and the scoring/Pareto machinery.
//
// Related PDR work treats scheduling + placement as a search over many
// candidate solutions rather than a single heuristic run (Chen et al.,
// arXiv:1803.03748; Ding et al., arXiv:2212.05397). This header owns the
// pure, serial parts of that search: a DesignPoint is one complete
// AdequationOptions assignment, an ExplorationSpace enumerates the cross
// product of the axes, and pareto_front() keeps the outcomes no other
// point beats on both makespan and reconfiguration exposure. The parallel
// runner lives in flow::DesignSpaceExplorer, one layer up.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/project_io.hpp"

namespace pdr::aaa {

/// One candidate placement of the dynamic regions, produced by the
/// pdr::plan floorplanner and swept by the explorer as its own axis. The
/// axis carries plain priced data (per-region reconfiguration durations),
/// not fabric geometry — aaa sits below plan in the link order, and the
/// schedule only ever consumes the price.
struct FloorplanChoice {
  /// Stable display name, e.g. "plan" or "plan+1c".
  std::string name;
  /// Reconfiguration duration per FpgaRegion operator name, derived from
  /// the placement's width -> frames -> load-time chain. Regions absent
  /// from the table fall back to the explorer's base cost model.
  std::map<std::string, TimeNs> region_load_ns;
};

/// One point of the schedule design space: a complete assignment of the
/// explorer's axes (mapping strategy x prefetch x preloaded modules x
/// variant selections x floorplan).
struct DesignPoint {
  MappingStrategy strategy = MappingStrategy::SynDExList;
  bool prefetch = true;
  /// Module assumed resident per region at t=0 ("" = region empty).
  std::map<std::string, std::string> preloaded;
  /// Chosen alternative per conditioned vertex.
  std::map<std::string, std::string> selection;
  /// Candidate floorplan pricing the reconfigurations; empty name = the
  /// axis is off and the base cost model applies everywhere.
  FloorplanChoice floorplan;

  /// The AdequationOptions this point schedules with.
  AdequationOptions to_options() const;

  /// Stable display name, e.g.
  /// "syndex_list/prefetch=on/preload[D1=qpsk]/sel[mod=qam16]/fp[plan]".
  std::string name() const;
};

/// The enumerable axes of the design space.
struct ExplorationSpace {
  std::vector<MappingStrategy> strategies;
  std::vector<bool> prefetch;
  /// Per FpgaRegion operator name: candidate preloaded modules. "" means
  /// the region starts empty.
  std::vector<std::pair<std::string, std::vector<std::string>>> preloads;
  /// Per conditioned vertex name: selectable alternative names.
  std::vector<std::pair<std::string, std::vector<std::string>>> selections;
  /// Candidate floorplans (empty = axis off; from_project leaves it empty,
  /// plan::floorplan_axis populates it).
  std::vector<FloorplanChoice> floorplans;

  /// Derives the full space from a project: all three strategies, both
  /// prefetch settings, per region every alternative the region's duration
  /// entries support (plus empty), per conditioned vertex every
  /// alternative.
  static ExplorationSpace from_project(const Project& project);

  /// Cross product of all axes, in a stable enumeration order.
  std::vector<DesignPoint> enumerate() const;

  /// Size of the cross product without materializing it.
  std::size_t point_count() const;

  /// One-line axis summary, e.g.
  /// "3 strategies x 2 prefetch x 3 preloads[D1] x 2 selections[mod]".
  std::string describe() const;
};

/// Scheduling result of one design point.
struct ExplorationOutcome {
  TimeNs makespan = 0;
  TimeNs reconfig_exposed = 0;
  int reconfig_count = 0;
  bool ok = false;
  bool rejected = false;  ///< the static verifier refused to certify the schedule
  std::string error;      ///< non-empty when scheduling this point failed
};

/// Static feasibility oracle consulted on a point's schedule before it is
/// accepted (and before anything simulates it): return "" to certify, or
/// a rejection message to mark the point `rejected`. The production
/// oracle is pdr::verify's interval analyzer, injected one layer up by
/// flow::DesignSpaceExplorer — aaa sits below verify in the link order
/// and cannot name it directly.
using ScheduleVerifier = std::function<std::string(const Schedule& schedule,
                                                   const DesignPoint& point)>;

/// Schedules one point, runs the verifier (when given) and validates the
/// result. Never throws: infeasible points (e.g. a selected variant no
/// operator supports) come back with ok = false and the error message;
/// uncertified points additionally carry rejected = true.
ExplorationOutcome run_design_point(const Project& project, const DesignPoint& point,
                                    const Adequation::ReconfigCost& reconfig_cost,
                                    const ScheduleVerifier& verifier = {});

/// Indices of the Pareto-optimal outcomes, minimizing
/// (makespan, reconfig_exposed): a point survives iff no other successful
/// point is at least as good on both axes and strictly better on one.
/// Sorted by makespan, then exposure, then index. Failed outcomes never
/// appear.
std::vector<std::size_t> pareto_front(const std::vector<ExplorationOutcome>& outcomes);

}  // namespace pdr::aaa
