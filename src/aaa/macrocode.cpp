#include "aaa/macrocode.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

const char* macro_op_name(MacroOp op) {
  switch (op) {
    case MacroOp::Recv: return "recv";
    case MacroOp::Send: return "send";
    case MacroOp::Compute: return "compute";
    case MacroOp::Reconfig: return "reconfig";
    case MacroOp::Move: return "move";
  }
  return "?";
}

std::string MacroInstr::to_string() const {
  switch (op) {
    case MacroOp::Recv:
      return strprintf("recv    %-24s from %-8s (%llu B)", what.c_str(), with.c_str(),
                       static_cast<unsigned long long>(bytes));
    case MacroOp::Send:
      return strprintf("send    %-24s to   %-8s (%llu B)", what.c_str(), with.c_str(),
                       static_cast<unsigned long long>(bytes));
    case MacroOp::Compute:
      return strprintf("compute %-24s (%.3f us)", what.c_str(), to_us(duration));
    case MacroOp::Reconfig:
      return strprintf("reconf  %-24s (%.3f us)", what.c_str(), to_us(duration));
    case MacroOp::Move:
      return strprintf("move    %-24s (%llu B)", what.c_str(),
                       static_cast<unsigned long long>(bytes));
  }
  return "?";
}

std::string MacroProgram::to_string() const {
  std::string out = (is_medium ? "medium " : "operator ") + resource + ":\n  loop:\n";
  for (const auto& instr : body) out += "    " + instr.to_string() + "\n";
  if (body.empty()) out += "    (idle)\n";
  return out;
}

const MacroProgram& Executive::program(const std::string& resource) const {
  for (const auto& p : programs)
    if (p.resource == resource) return p;
  raise("Executive::program", "no program for resource '" + resource + "'");
}

std::string Executive::to_string() const {
  std::string out;
  for (const auto& p : programs) out += p.to_string() + "\n";
  return out;
}

Executive generate_executive(const Schedule& schedule, const AlgorithmGraph& algorithm,
                             const ArchitectureGraph& architecture) {
  // Event = (time, order-class, instruction). Order classes break ties at
  // equal timestamps: receives (0) before computes/reconfigs (1) before
  // sends (2).
  struct Event {
    TimeNs at;
    int cls;
    std::string resource;
    MacroInstr instr;
  };
  std::vector<Event> events;

  // Operator name of each scheduled operation, resolved through the
  // SymbolId-indexed placement column.
  auto operator_of = [&](std::string_view op_name) -> std::string {
    const graph::NodeId n = algorithm.by_name(std::string(op_name));
    const std::string_view placed = schedule.placement_name(n);
    PDR_CHECK(!placed.empty(), "generate_executive",
              "operation '" + std::string(op_name) + "' was not placed");
    return std::string(placed);
  };

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const TimeNs start = schedule.start(i);
    const TimeNs end = schedule.end(i);
    const std::string resource(schedule.resource(i));
    switch (schedule.kind(i)) {
      case ItemKind::Compute: {
        MacroInstr mi;
        mi.op = MacroOp::Compute;
        mi.what = schedule.label(i);
        mi.duration = end - start;
        mi.at = start;
        events.push_back(Event{start, 1, resource, std::move(mi)});
        break;
      }
      case ItemKind::Reconfig: {
        MacroInstr mi;
        mi.op = MacroOp::Reconfig;
        mi.what = std::string(schedule.module_name(i));
        mi.duration = end - start;
        mi.at = start;
        events.push_back(Event{start, 1, resource, std::move(mi)});
        break;
      }
      case ItemKind::Transfer: {
        std::string buffer(schedule.src(i));
        buffer += "_to_";
        buffer += schedule.dst(i);
        const Bytes bytes = schedule.bytes(i);
        // The medium carries the buffer.
        MacroInstr move;
        move.op = MacroOp::Move;
        move.what = buffer;
        move.bytes = bytes;
        move.at = start;
        events.push_back(Event{start, 1, resource, std::move(move)});
        // Producer side sends when the transfer begins...
        MacroInstr send;
        send.op = MacroOp::Send;
        send.what = buffer;
        send.with = resource;
        send.bytes = bytes;
        send.at = start;
        events.push_back(Event{start, 2, operator_of(schedule.src(i)), std::move(send)});
        // ...consumer side receives when it completes.
        MacroInstr recv;
        recv.op = MacroOp::Recv;
        recv.what = buffer;
        recv.with = resource;
        recv.bytes = bytes;
        recv.at = end;
        events.push_back(Event{end, 0, operator_of(schedule.dst(i)), std::move(recv)});
        break;
      }
    }
  }

  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.cls < b.cls;
  });

  Executive exec;
  // Emit programs in architecture declaration order (operators then media).
  for (NodeId n : architecture.operators()) {
    MacroProgram p;
    p.resource = architecture.op(n).name;
    p.is_medium = false;
    exec.programs.push_back(std::move(p));
  }
  for (NodeId n : architecture.media()) {
    MacroProgram p;
    p.resource = architecture.medium(n).name;
    p.is_medium = true;
    exec.programs.push_back(std::move(p));
  }
  for (auto& ev : events) {
    for (auto& p : exec.programs)
      if (p.resource == ev.resource) {
        p.body.push_back(std::move(ev.instr));
        break;
      }
  }
  return exec;
}

}  // namespace pdr::aaa
