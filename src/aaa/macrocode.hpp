// Macro-code generation: the synchronized executive.
//
// "The result is a synchronized executive represented by a macro-code for
// each vertices of the architecture." (§3) Each operator and medium gets
// a loop body of macro instructions (Recv / Send / Compute / Reconfig /
// Move) derived from one iteration's schedule; this is the intermediate
// form both code generators (VHDL for FPGA parts, C for processors)
// translate.
#pragma once

#include <string>
#include <vector>

#include "aaa/adequation.hpp"

namespace pdr::aaa {

enum class MacroOp : std::uint8_t {
  Recv,      ///< operator: receive a buffer from a medium
  Send,      ///< operator: send a buffer to a medium
  Compute,   ///< operator: run one operation
  Reconfig,  ///< region: reconfigure to a module / manager: issue request
  Move,      ///< medium: carry a buffer between operators
};

const char* macro_op_name(MacroOp op);

struct MacroInstr {
  MacroOp op = MacroOp::Compute;
  std::string what;    ///< operation, buffer or module name
  std::string with;    ///< medium (Recv/Send), peer operator (Move)
  Bytes bytes = 0;
  TimeNs duration = 0;
  TimeNs at = 0;  ///< schedule time, for traceability

  std::string to_string() const;
};

/// The infinite loop body of one architecture vertex.
struct MacroProgram {
  std::string resource;
  bool is_medium = false;
  std::vector<MacroInstr> body;

  std::string to_string() const;
};

/// The whole synchronized executive.
struct Executive {
  std::vector<MacroProgram> programs;

  const MacroProgram& program(const std::string& resource) const;
  std::string to_string() const;
};

/// Builds per-vertex macro programs from a schedule. Instructions appear
/// in schedule-time order; on one operator a Recv precedes the Compute it
/// feeds and Sends follow the Compute that produced the buffer.
Executive generate_executive(const Schedule& schedule, const AlgorithmGraph& algorithm,
                             const ArchitectureGraph& architecture);

}  // namespace pdr::aaa
