#include "aaa/project_io.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {
namespace {

/// Token-stream parser sharing the constraints DSL's conventions:
/// `#` comments, whitespace tokens, braces split off words, errors with
/// line numbers.
class Parser {
 public:
  explicit Parser(const std::string& text) { tokenize(text); }

  Project parse() {
    Project project;
    bool saw_algorithm = false;
    bool saw_architecture = false;
    while (!at_end()) {
      const std::string head = next("section");
      if (head == "project") {
        project.name = next("project <name>");
      } else if (head == "algorithm") {
        parse_algorithm(project.algorithm);
        saw_algorithm = true;
      } else if (head == "architecture") {
        parse_architecture(project.architecture);
        saw_architecture = true;
      } else if (head == "durations") {
        parse_durations(project.durations);
      } else {
        fail("unknown section '" + head + "'");
      }
    }
    fail_unless(saw_algorithm, "project has no algorithm section");
    fail_unless(saw_architecture, "project has no architecture section");
    project.algorithm.validate();
    project.architecture.validate();
    return project;
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };

  void tokenize(const std::string& text) {
    const auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string raw = lines[i];
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      for (const std::string& word : split_ws(raw)) {
        std::size_t start = 0;
        for (std::size_t c = 0; c <= word.size(); ++c) {
          if (c == word.size() || word[c] == '{' || word[c] == '}') {
            if (c > start) tokens_.push_back(Token{word.substr(start, c - start), i + 1});
            if (c < word.size()) tokens_.push_back(Token{std::string(1, word[c]), i + 1});
            start = c + 1;
          }
        }
      }
    }
  }

  bool at_end() const { return pos_ >= tokens_.size(); }

  [[noreturn]] void fail(const std::string& msg) const {
    const std::size_t line =
        tokens_.empty() ? 0 : tokens_[pos_ > 0 ? pos_ - 1 : 0].line;
    raise("project", "line " + std::to_string(line) + ": " + msg);
  }
  void fail_unless(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  std::string next(const std::string& usage) {
    if (at_end()) fail("missing token; usage: " + usage);
    return tokens_[pos_++].text;
  }
  std::string peek() const { return at_end() ? std::string() : tokens_[pos_].text; }
  void expect(const std::string& token) {
    fail_unless(next("'" + token + "'") == token, "expected '" + token + "'");
  }

  int parse_int(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const int v = std::stoi(s, &idx);
      fail_unless(idx == s.size(), "trailing characters in integer '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected an integer, got '" + s + "'");
    }
  }
  double parse_double(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const double v = std::stod(s, &idx);
      fail_unless(idx == s.size(), "trailing characters in number '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected a number, got '" + s + "'");
    }
  }
  TimeNs parse_time(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const long long v = std::stoll(s, &idx);
      fail_unless(idx == s.size() && v > 0, "expected a positive integer time, got '" + s + "'");
      return static_cast<TimeNs>(v);
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected a time in ns, got '" + s + "'");
    }
  }

  /// `param <key> <int>` repetitions.
  synth::Params parse_params() {
    synth::Params params;
    while (peek() == "param") {
      next("param");
      const std::string key = next("param <key> <int>");
      params[key] = parse_int(next("param <key> <int>"));
    }
    return params;
  }

  void parse_algorithm(AlgorithmGraph& g) {
    expect("{");
    while (peek() != "}") {
      fail_unless(!at_end(), "unterminated algorithm section");
      const std::string stmt = next("algorithm statement");
      if (stmt == "sensor" || stmt == "compute" || stmt == "actuator") {
        Operation op;
        op.name = next(stmt + " <name> kind <kind>");
        expect("kind");
        op.kind = next("kind <operator-kind>");
        op.params = parse_params();
        op.cls = stmt == "sensor"     ? OpClass::Sensor
                 : stmt == "actuator" ? OpClass::Actuator
                                      : OpClass::Compute;
        g.add_operation(std::move(op));
      } else if (stmt == "conditioned") {
        const std::string name = next("conditioned <name> { alt ... }");
        expect("{");
        std::vector<Alternative> alternatives;
        while (peek() != "}") {
          expect("alt");
          Alternative alt;
          alt.name = next("alt <name> kind <kind>");
          expect("kind");
          alt.kind = next("kind <operator-kind>");
          alt.params = parse_params();
          alternatives.push_back(std::move(alt));
        }
        next("'}'");
        g.add_conditioned(name, std::move(alternatives));
      } else if (stmt == "dep") {
        const std::string from = next("dep <from> -> <to> bytes <n>");
        expect("->");
        const std::string to = next("dep <from> -> <to> bytes <n>");
        expect("bytes");
        g.add_dependency(from, to, static_cast<Bytes>(parse_int(next("bytes <n>"))));
      } else {
        fail("unknown algorithm statement '" + stmt + "'");
      }
    }
    next("'}'");
  }

  void parse_architecture(ArchitectureGraph& arch) {
    expect("{");
    while (peek() != "}") {
      fail_unless(!at_end(), "unterminated architecture section");
      const std::string stmt = next("architecture statement");
      if (stmt == "processor" || stmt == "fpga_static" || stmt == "fpga_region") {
        OperatorNode op;
        op.kind = operator_kind_from_name(stmt);
        op.name = next(stmt + " <name>");
        while (peek() == "speed" || peek() == "device" || peek() == "region") {
          const std::string attr = next("attribute");
          if (attr == "speed")
            op.speed_factor = parse_double(next("speed <factor>"));
          else if (attr == "device")
            op.device = next("device <name>");
          else
            op.region = next("region <name>");
        }
        arch.add_operator(std::move(op));
      } else if (stmt == "medium") {
        MediumNode m;
        m.name = next("medium <name> bandwidth <B/s> [latency <ns>]");
        expect("bandwidth");
        m.bandwidth_bytes_per_s = parse_double(next("bandwidth <B/s>"));
        if (peek() == "latency") {
          next("latency");
          m.latency = parse_time(next("latency <ns>"));
        }
        arch.add_medium(std::move(m));
      } else if (stmt == "connect") {
        const std::string op = next("connect <operator> <medium>");
        arch.connect(op, next("connect <operator> <medium>"));
      } else {
        fail("unknown architecture statement '" + stmt + "'");
      }
    }
    next("'}'");
  }

  void parse_durations(DurationTable& t) {
    expect("{");
    while (peek() != "}") {
      fail_unless(!at_end(), "unterminated durations section");
      const std::string stmt = next("durations statement");
      if (stmt == "set") {
        const std::string kind = next("set <op-kind> <operator-kind> <ns>");
        const OperatorKind target = operator_kind_from_name(next("set <op-kind> <operator-kind> <ns>"));
        t.set(kind, target, parse_time(next("set <op-kind> <operator-kind> <ns>")));
      } else if (stmt == "set_for") {
        const std::string kind = next("set_for <op-kind> <operator-name> <ns>");
        const std::string target = next("set_for <op-kind> <operator-name> <ns>");
        t.set_for(kind, target, parse_time(next("set_for <op-kind> <operator-name> <ns>")));
      } else {
        fail("unknown durations statement '" + stmt + "'");
      }
    }
    next("'}'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

std::string params_text(const synth::Params& params) {
  std::string out;
  for (const auto& [key, value] : params) out += "  param " + key + " " + std::to_string(value);
  return out;
}

}  // namespace

Project parse_project(const std::string& text) { return Parser(text).parse(); }

std::string write_project(const Project& project) {
  std::string out = "project " + project.name + "\n\nalgorithm {\n";
  const auto& g = project.algorithm.digraph();
  for (graph::NodeId n : g.node_ids()) {
    const Operation& op = g[n];
    if (op.conditioned()) {
      out += "  conditioned " + op.name + " {\n";
      for (const auto& alt : op.alternatives)
        out += "    alt " + alt.name + " kind " + alt.kind + params_text(alt.params) + "\n";
      out += "  }\n";
    } else {
      const char* cls = op.cls == OpClass::Sensor     ? "sensor"
                        : op.cls == OpClass::Actuator ? "actuator"
                                                      : "compute";
      out += strprintf("  %-8s %s kind %s%s\n", cls, op.name.c_str(), op.kind.c_str(),
                       params_text(op.params).c_str());
    }
  }
  for (graph::EdgeId e : g.edge_ids())
    out += strprintf("  dep %s -> %s bytes %llu\n", g[g.edge_from(e)].name.c_str(),
                     g[g.edge_to(e)].name.c_str(),
                     static_cast<unsigned long long>(g.edge(e).bytes));
  out += "}\n\narchitecture {\n";

  const auto& arch = project.architecture;
  for (NodeId n : arch.operators()) {
    const OperatorNode& op = arch.op(n);
    out += strprintf("  %s %s speed %g", operator_kind_name(op.kind), op.name.c_str(),
                     op.speed_factor);
    if (!op.device.empty()) out += " device " + op.device;
    if (!op.region.empty()) out += " region " + op.region;
    out += "\n";
  }
  for (NodeId n : arch.media()) {
    const MediumNode& m = arch.medium(n);
    out += strprintf("  medium %s bandwidth %.0f latency %lld\n", m.name.c_str(),
                     m.bandwidth_bytes_per_s, static_cast<long long>(m.latency));
  }
  for (NodeId n : arch.operators())
    for (NodeId m : arch.attached_media(n))
      out += "  connect " + arch.op(n).name + " " + arch.medium(m).name + "\n";
  out += "}\n";

  out += "\ndurations {\n";
  for (const auto& e : project.durations.entries())
    out += strprintf("  %s %s %s %lld\n", e.per_operator_name ? "set_for" : "set",
                     e.op_kind.c_str(), e.target.c_str(), static_cast<long long>(e.duration));
  out += "}\n";
  return out;
}

}  // namespace pdr::aaa
