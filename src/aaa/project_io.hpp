// Project file I/O: the SynDEx-style textual project.
//
// SynDEx designs live in a project file holding the algorithm graph, the
// architecture graph and the characterization (durations). We provide the
// same round-trippable artifact so designs can be authored, versioned and
// fed to the `pdrflow` CLI without writing C++:
//
//   project mccdma_tx
//
//   algorithm {
//     sensor   data_in   kind bit_source
//     compute  scramble  kind scrambler
//     compute  fft       kind ifft  param n 64  param width 16
//     conditioned modulation {
//       alt qpsk  kind qpsk_mapper
//       alt qam16 kind qam16_mapper
//     }
//     actuator shb_out   kind interface_in_out
//     dep data_in -> scramble bytes 16
//     dep scramble -> modulation bytes 16
//   }
//
//   architecture {
//     processor   DSP  speed 1.0
//     fpga_static F1   device XC2V2000
//     fpga_region D1   device XC2V2000 region D1
//     medium SHB bandwidth 200000000 latency 2000
//     connect DSP SHB
//     connect F1  SHB
//   }
//
//   durations {
//     set bit_source processor 2000
//     set bit_source fpga_static 1000
//     set_for ifft F1 3200
//   }
#pragma once

#include <string>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/durations.hpp"

namespace pdr::aaa {

struct Project {
  std::string name = "project";
  AlgorithmGraph algorithm;
  ArchitectureGraph architecture;
  DurationTable durations;
};

/// Parses the project DSL. Errors carry "line N:" positions; the
/// resulting graphs are validated.
Project parse_project(const std::string& text);

/// Serializes a project; parse_project(write_project(p)) reproduces the
/// same graphs and durations.
std::string write_project(const Project& project);

}  // namespace pdr::aaa
