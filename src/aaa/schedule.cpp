#include "aaa/schedule.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::aaa {

using namespace pdr::literals;

const char* item_kind_name(ItemKind kind) {
  switch (kind) {
    case ItemKind::Compute: return "compute";
    case ItemKind::Transfer: return "transfer";
    case ItemKind::Reconfig: return "reconfig";
  }
  return "?";
}

void TransferPlan::clear() {
  start.clear();
  end.clear();
  resource.clear();
  medium.clear();
  src.clear();
  dst.clear();
  bytes.clear();
  edge.clear();
}

void TransferPlan::push(TimeNs tstart, TimeNs tend, util::SymbolId resource_sym,
                        graph::NodeId medium_node, util::SymbolId src_sym, util::SymbolId dst_sym,
                        Bytes nbytes, graph::EdgeId e) {
  start.push_back(tstart);
  end.push_back(tend);
  resource.push_back(resource_sym);
  medium.push_back(medium_node);
  src.push_back(src_sym);
  dst.push_back(dst_sym);
  bytes.push_back(nbytes);
  edge.push_back(e);
}

std::string_view Schedule::name(util::SymbolId sym) const {
  if (sym == util::kNoSymbol) return {};
  return symbols.name(sym);
}

std::string Schedule::label(std::size_t i) const {
  const util::SymbolId sym = label_[i];
  if (sym != util::kNoSymbol) return std::string(symbols.name(sym));
  switch (kind_[i]) {
    case ItemKind::Transfer: {
      std::string out(name(src_[i]));
      out += "->";
      out += name(dst_[i]);
      return out;
    }
    case ItemKind::Reconfig: {
      std::string out("load ");
      out += name(module_[i]);
      return out;
    }
    case ItemKind::Compute: break;
  }
  return {};
}

std::string_view Schedule::placement_name(graph::NodeId n) const {
  if (n >= placement.size()) return {};
  return name(placement[n]);
}

std::size_t Schedule::placement_count() const {
  std::size_t count = 0;
  for (const util::SymbolId sym : placement)
    if (sym != util::kNoSymbol) ++count;
  return count;
}

void Schedule::reserve(std::size_t n) {
  kind_.reserve(n);
  start_.reserve(n);
  end_.reserve(n);
  resource_.reserve(n);
  op_.reserve(n);
  label_.reserve(n);
  variant_.reserve(n);
  src_.reserve(n);
  dst_.reserve(n);
  bytes_.reserve(n);
  edge_.reserve(n);
  module_.reserve(n);
  exposed_stall_.reserve(n);
}

std::size_t Schedule::push_row(ItemKind k, util::SymbolId resource_sym, TimeNs tstart,
                               TimeNs tend) {
  const std::size_t i = kind_.size();
  kind_.push_back(k);
  start_.push_back(tstart);
  end_.push_back(tend);
  resource_.push_back(resource_sym);
  op_.push_back(graph::kNoNode);
  label_.push_back(util::kNoSymbol);
  variant_.push_back(util::kEmptySymbol);
  src_.push_back(util::kEmptySymbol);
  dst_.push_back(util::kEmptySymbol);
  bytes_.push_back(0);
  edge_.push_back(graph::kNoEdge);
  module_.push_back(util::kEmptySymbol);
  exposed_stall_.push_back(0);
  return i;
}

std::size_t Schedule::push_compute(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                                   graph::NodeId node, util::SymbolId label_sym,
                                   util::SymbolId variant_sym) {
  const std::size_t i = push_row(ItemKind::Compute, resource_sym, tstart, tend);
  op_[i] = node;
  label_[i] = label_sym;
  variant_[i] = variant_sym;
  return i;
}

std::size_t Schedule::push_transfer(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                                    util::SymbolId src_sym, util::SymbolId dst_sym, Bytes nbytes,
                                    graph::EdgeId e) {
  const std::size_t i = push_row(ItemKind::Transfer, resource_sym, tstart, tend);
  src_[i] = src_sym;
  dst_[i] = dst_sym;
  bytes_[i] = nbytes;
  edge_[i] = e;
  return i;
}

std::size_t Schedule::push_reconfig(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                                    util::SymbolId module_sym, TimeNs stall) {
  const std::size_t i = push_row(ItemKind::Reconfig, resource_sym, tstart, tend);
  module_[i] = module_sym;
  exposed_stall_[i] = stall;
  return i;
}

void Schedule::splice_transfers(const TransferPlan& plan, std::size_t begin, std::size_t end) {
  PDR_CHECK(begin <= end && end <= plan.size(), "Schedule::splice_transfers",
            "plan range out of bounds");
  const std::size_t n = end - begin;
  const std::size_t base = kind_.size();
  kind_.insert(kind_.end(), n, ItemKind::Transfer);
  start_.insert(start_.end(), plan.start.begin() + begin, plan.start.begin() + end);
  end_.insert(end_.end(), plan.end.begin() + begin, plan.end.begin() + end);
  resource_.insert(resource_.end(), plan.resource.begin() + begin, plan.resource.begin() + end);
  op_.insert(op_.end(), n, graph::kNoNode);
  label_.insert(label_.end(), n, util::kNoSymbol);
  variant_.insert(variant_.end(), n, util::kEmptySymbol);
  src_.insert(src_.end(), plan.src.begin() + begin, plan.src.begin() + end);
  dst_.insert(dst_.end(), plan.dst.begin() + begin, plan.dst.begin() + end);
  bytes_.insert(bytes_.end(), plan.bytes.begin() + begin, plan.bytes.begin() + end);
  edge_.insert(edge_.end(), plan.edge.begin() + begin, plan.edge.begin() + end);
  module_.insert(module_.end(), n, util::kEmptySymbol);
  exposed_stall_.insert(exposed_stall_.end(), n, 0);
  (void)base;
}

void Schedule::push_item(const ScheduledItem& item) {
  const std::size_t i = push_row(item.kind, intern(item.resource), item.start, item.end);
  op_[i] = item.op;
  label_[i] = intern(item.label);
  variant_[i] = intern(item.variant);
  src_[i] = intern(item.src);
  dst_[i] = intern(item.dst);
  bytes_[i] = item.bytes;
  edge_[i] = item.edge;
  module_[i] = intern(item.module);
  exposed_stall_[i] = item.exposed_stall;
}

ScheduledItem Schedule::item(std::size_t i) const {
  PDR_CHECK(i < kind_.size(), "Schedule::item", "index out of bounds");
  ScheduledItem out;
  out.kind = kind_[i];
  out.label = label(i);
  out.resource = std::string(resource(i));
  out.start = start_[i];
  out.end = end_[i];
  out.op = op_[i];
  out.variant = std::string(variant(i));
  out.src = std::string(src(i));
  out.dst = std::string(dst(i));
  out.bytes = bytes_[i];
  out.edge = edge_[i];
  out.module = std::string(module_name(i));
  out.exposed_stall = exposed_stall_[i];
  return out;
}

std::vector<ScheduledItem> Schedule::items() const {
  std::vector<ScheduledItem> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(item(i));
  return out;
}

template <typename Pred>
void Schedule::erase_rows(Pred&& keep) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < kind_.size(); ++i) {
    if (!keep(i)) continue;
    if (w != i) {
      kind_[w] = kind_[i];
      start_[w] = start_[i];
      end_[w] = end_[i];
      resource_[w] = resource_[i];
      op_[w] = op_[i];
      label_[w] = label_[i];
      variant_[w] = variant_[i];
      src_[w] = src_[i];
      dst_[w] = dst_[i];
      bytes_[w] = bytes_[i];
      edge_[w] = edge_[i];
      module_[w] = module_[i];
      exposed_stall_[w] = exposed_stall_[i];
    }
    ++w;
  }
  kind_.resize(w);
  start_.resize(w);
  end_.resize(w);
  resource_.resize(w);
  op_.resize(w);
  label_.resize(w);
  variant_.resize(w);
  src_.resize(w);
  dst_.resize(w);
  bytes_.resize(w);
  edge_.resize(w);
  module_.resize(w);
  exposed_stall_.resize(w);
}

void Schedule::erase_item(std::size_t i) {
  PDR_CHECK(i < kind_.size(), "Schedule::erase_item", "index out of bounds");
  erase_rows([&](std::size_t row) { return row != i; });
}

void Schedule::erase_items_if(const std::function<bool(const ScheduledItem&)>& pred) {
  erase_rows([&](std::size_t row) { return !pred(item(row)); });
}

void Schedule::sort_items() {
  // Resource ties break on the *name*, not the symbol id: symbols are
  // assigned in first-intern order, so sorting by id would depend on
  // scheduling history instead of giving the canonical (start, resource
  // name) order the string-keyed representation had.
  std::vector<util::SymbolId> rank(symbols.size(), 0);
  std::size_t rank_count = 0;
  {
    std::vector<util::SymbolId> present;
    std::vector<char> seen(symbols.size(), 0);
    for (const util::SymbolId sym : resource_) {
      if (seen[sym]) continue;
      seen[sym] = 1;
      present.push_back(sym);
    }
    std::sort(present.begin(), present.end(), [&](util::SymbolId a, util::SymbolId b) {
      return symbols.name(a) < symbols.name(b);
    });
    for (std::size_t r = 0; r < present.size(); ++r)
      rank[present[r]] = static_cast<util::SymbolId>(r);
    rank_count = present.size();
  }

  PDR_CHECK(kind_.size() <= std::numeric_limits<std::uint32_t>::max(), "Schedule::sort_items",
            "schedule too large");
  const std::size_t n = kind_.size();
  const auto apply_order = [&](const auto& order, const auto& index_of) {
    const auto apply = [&](auto& column) {
      using Column = std::decay_t<decltype(column)>;
      Column next;
      next.reserve(column.size());
      for (const auto& k : order) next.push_back(column[index_of(k)]);
      column = std::move(next);
    };
    apply(kind_);
    apply(start_);
    apply(end_);
    apply(resource_);
    apply(op_);
    apply(label_);
    apply(variant_);
    apply(src_);
    apply(dst_);
    apply(bytes_);
    apply(edge_);
    apply(module_);
    apply(exposed_stall_);
  };

  // Fast path: when (start, rank, index) fit in 35 + 8 + 21 bits — starts
  // under ~34 s, at most 256 resources, at most 2M items — pack the whole
  // key into one u64 so the sort compares machine words instead of
  // three-field structs. Both paths produce the identical lexicographic
  // (start, resource-name rank, emit index) order.
  constexpr unsigned kIndexBits = 21;
  constexpr unsigned kRankBits = 8;
  constexpr TimeNs kMaxPackedStart = TimeNs{1} << (64 - kIndexBits - kRankBits);
  TimeNs lo = 0;
  TimeNs hi = 0;
  for (const TimeNs s : start_) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (lo >= 0 && hi < kMaxPackedStart && rank_count <= (std::size_t{1} << kRankBits) &&
      n <= (std::size_t{1} << kIndexBits)) {
    std::vector<std::uint64_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
      order[i] = (static_cast<std::uint64_t>(start_[i]) << (kIndexBits + kRankBits)) |
                 (static_cast<std::uint64_t>(rank[resource_[i]]) << kIndexBits) |
                 static_cast<std::uint64_t>(i);
    std::sort(order.begin(), order.end());
    apply_order(order, [](std::uint64_t k) {
      return static_cast<std::size_t>(k & ((std::uint64_t{1} << kIndexBits) - 1));
    });
    return;
  }

  // General path: keys carry (start, rank, index) inline so comparisons
  // read contiguous 16-byte structs instead of gathering from columns.
  struct SortKey {
    TimeNs start;
    util::SymbolId rank;
    std::uint32_t index;
  };
  std::vector<SortKey> order(n);
  for (std::size_t i = 0; i < n; ++i)
    order[i] = {start_[i], rank[resource_[i]], static_cast<std::uint32_t>(i)};
  std::sort(order.begin(), order.end(), [](const SortKey& a, const SortKey& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;  // deterministic: ties keep emit order
  });
  apply_order(order, [](const SortKey& k) { return static_cast<std::size_t>(k.index); });
}

void Schedule::recompute_totals() {
  makespan = 0;
  resource_busy.assign(symbols.size(), 0);
  for (std::size_t i = 0; i < kind_.size(); ++i) {
    makespan = std::max(makespan, end_[i]);
    resource_busy[resource_[i]] += end_[i] - start_[i];
  }
}

std::vector<std::size_t> Schedule::on_resource(std::string_view resource) const {
  std::vector<std::size_t> out;
  const util::SymbolId sym = symbols.find(resource);
  if (sym == util::kNoSymbol) return out;
  for (std::size_t i = 0; i < resource_.size(); ++i)
    if (resource_[i] == sym) out.push_back(i);
  return out;
}

double Schedule::utilization(std::string_view resource) const {
  if (makespan <= 0) return 0.0;
  const util::SymbolId sym = symbols.find(resource);
  if (sym == util::kNoSymbol || sym >= resource_busy.size()) return 0.0;
  return static_cast<double>(resource_busy[sym]) / static_cast<double>(makespan);
}

TimeNs Schedule::period_lower_bound() const {
  TimeNs bound = 0;
  for (const TimeNs busy : resource_busy) bound = std::max(bound, busy);
  return bound;
}

std::string Schedule::to_string() const {
  std::string out = strprintf("schedule: makespan %.3f us, %d reconfigs (%.3f us exposed)\n",
                              to_us(makespan), reconfig_count, to_us(reconfig_exposed));
  for (std::size_t i = 0; i < size(); ++i) {
    out += strprintf("  %9.3f..%9.3f us  %-8s %-10s %s\n", to_us(start_[i]), to_us(end_[i]),
                     item_kind_name(kind_[i]), std::string(resource(i)).c_str(),
                     label(i).c_str());
  }
  return out;
}

std::string Schedule::to_csv() const {
  std::string out = "kind,label,resource,start_ns,end_ns,variant,module\n";
  for (std::size_t i = 0; i < size(); ++i)
    out += strprintf("%s,%s,%s,%lld,%lld,%s,%s\n", item_kind_name(kind_[i]), label(i).c_str(),
                     std::string(resource(i)).c_str(), static_cast<long long>(start_[i]),
                     static_cast<long long>(end_[i]), std::string(variant(i)).c_str(),
                     std::string(module_name(i)).c_str());
  return out;
}

std::string Schedule::gantt(int width) const {
  if (empty() || makespan == 0) return "(empty schedule)\n";
  // Rows appear in first-appearance order of the items, as before.
  std::vector<util::SymbolId> resources;
  {
    std::vector<char> seen(symbols.size(), 0);
    for (const util::SymbolId sym : resource_) {
      if (seen[sym]) continue;
      seen[sym] = 1;
      resources.push_back(sym);
    }
  }

  std::string out;
  for (const util::SymbolId res : resources) {
    std::string bar(static_cast<std::size_t>(width), '.');
    for (std::size_t i = 0; i < size(); ++i) {
      if (resource_[i] != res) continue;
      auto pos = [&](TimeNs t) {
        return std::min<std::size_t>(static_cast<std::size_t>(width) - 1,
                                     static_cast<std::size_t>(t * width / makespan));
      };
      const char mark = kind_[i] == ItemKind::Compute    ? '#'
                        : kind_[i] == ItemKind::Transfer ? '='
                                                         : 'R';
      // Zero-duration items still get one mark cell so they stay visible.
      const std::size_t lo = pos(start_[i]);
      const std::size_t hi = std::max(lo, end_[i] > start_[i] ? pos(end_[i] - 1) : lo);
      for (std::size_t j = lo; j <= hi; ++j) bar[j] = mark;
    }
    out += strprintf("%-10s |%s|\n", std::string(symbols.name(res)).c_str(), bar.c_str());
  }
  out += strprintf("%-10s  0%*s%.1f us   (#=compute ==transfer R=reconfig)\n", "", width - 8, "",
                   to_us(makespan));
  return out;
}

void export_schedule(const Schedule& schedule, obs::Tracer& tracer) {
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::vector<obs::TraceArg> args;
    const std::string variant(schedule.variant(i));
    const std::string module(schedule.module_name(i));
    if (!variant.empty()) args.push_back({"variant", variant});
    if (!module.empty()) args.push_back({"module", module});
    if (schedule.bytes(i) > 0) args.push_back({"bytes", std::to_string(schedule.bytes(i))});
    if (schedule.kind(i) == ItemKind::Reconfig && schedule.exposed_stall(i) > 0)
      args.push_back({"exposed_stall_ns", std::to_string(schedule.exposed_stall(i))});
    tracer.span(std::string(schedule.resource(i)), schedule.label(i),
                std::string("sched_") + item_kind_name(schedule.kind(i)), schedule.start(i),
                schedule.end(i), std::move(args));
  }
}

}  // namespace pdr::aaa
