// The schedule core: intern-keyed struct-of-arrays storage.
//
// A Schedule is the result of one adequation run — potentially millions
// of scheduled activities. It is stored as parallel columns (one vector
// per field) with every name — resource, variant, module, label,
// transfer endpoints — held as a util::SymbolId into the schedule's own
// Interner, seeded from the architecture graph so resource ids are dense
// array indices. Consequences:
//
//  - the scheduler hot path never builds or hashes a std::string: state
//    is SymbolId/NodeId-indexed vectors, and committing a candidate plan
//    splices plain-old-data columns (see TransferPlan);
//  - `resource_busy` and `placement` are SymbolId-indexed vectors, not
//    string-keyed maps;
//  - names are resolved to text only at the rendering boundary:
//    to_string()/gantt()/to_csv(), export_schedule(), the executive
//    generator, lint's schedule rules and pdr::verify all read the ID
//    accessors and call name() when they emit text.
//
// The string-faced API survives as thin resolution shims: ScheduledItem
// is the materialized per-item view (item()/items()/push_item()), kept
// so hand-built schedules in tests and witness reporting keep working —
// exporter output is byte-identical to the pre-interning representation.
//
// Label storage rule: the scheduler never stores transfer/reconfig
// labels — label_sym() == util::kNoSymbol means "derive from the item's
// other columns" ("src->dst" for transfers, "load <module>" for
// reconfigs). Compute labels (operation name, plus "(variant)" for
// conditioned vertices) and any label pushed through push_item() are
// interned verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.hpp"
#include "obs/trace.hpp"
#include "util/interner.hpp"
#include "util/units.hpp"

namespace pdr::aaa {

enum class ItemKind : std::uint8_t { Compute, Transfer, Reconfig };

const char* item_kind_name(ItemKind kind);

/// One scheduled activity on one resource — the *materialized* view the
/// string-faced shims trade in. The schedule itself stores columns of
/// ids; this struct exists for hand-built schedules (tests), violation
/// witnesses and other boundary consumers.
struct ScheduledItem {
  ItemKind kind = ItemKind::Compute;
  std::string label;
  std::string resource;  ///< operator name (Compute/Reconfig target region) or medium name
  TimeNs start = 0;
  TimeNs end = 0;

  // Compute items.
  graph::NodeId op = graph::kNoNode;
  std::string variant;  ///< alternative chosen for conditioned vertices

  // Transfer items.
  std::string src;
  std::string dst;
  Bytes bytes = 0;
  graph::EdgeId edge = graph::kNoEdge;  ///< algorithm-graph edge this transfer carries

  // Reconfig items.
  std::string module;       ///< module loaded into `resource` (a region)
  TimeNs exposed_stall = 0; ///< part of this reconfiguration not hidden by prefetch
};

/// Arena-backed scratch span for candidate transfer plans: the same SoA
/// columns a Schedule stores transfers in, plus the architecture node of
/// each medium (the state write commit() performs). evaluate() appends
/// rows here; commit() splices the winning [begin..end) range into the
/// schedule column-by-column — no per-field string copies, ever. One
/// arena serves a whole run: clear() keeps capacity, so candidate
/// evaluation is allocation-free once warm.
struct TransferPlan {
  std::vector<TimeNs> start;
  std::vector<TimeNs> end;
  std::vector<util::SymbolId> resource;  ///< medium name symbol
  std::vector<graph::NodeId> medium;     ///< architecture node of the medium
  std::vector<util::SymbolId> src;
  std::vector<util::SymbolId> dst;
  std::vector<Bytes> bytes;
  std::vector<graph::EdgeId> edge;

  std::size_t size() const { return start.size(); }
  void clear();
  void push(TimeNs tstart, TimeNs tend, util::SymbolId resource_sym, graph::NodeId medium_node,
            util::SymbolId src_sym, util::SymbolId dst_sym, Bytes nbytes, graph::EdgeId e);
};

/// Result of one adequation run. Items are sorted by (start, resource
/// name) once the run finalizes.
class Schedule {
 public:
  /// Symbol table: resource/label/variant/module names. Seeded by the
  /// scheduler with the architecture's operators and media in
  /// declaration order, so resource symbols are dense array indices.
  util::Interner symbols;

  TimeNs makespan = 0;
  int reconfig_count = 0;
  TimeNs reconfig_total = 0;    ///< summed reconfiguration durations
  TimeNs reconfig_exposed = 0;  ///< summed latency NOT hidden by prefetch

  /// Busy time per resource, indexed by resource SymbolId (filled by the
  /// scheduler's finalize; empty for hand-built schedules).
  std::vector<TimeNs> resource_busy;
  /// Operation -> operator name symbol, indexed by algorithm NodeId;
  /// util::kNoSymbol = not placed.
  std::vector<util::SymbolId> placement;

  // --- ID-based accessors (the hot-path API) -----------------------------
  std::size_t size() const { return kind_.size(); }
  bool empty() const { return kind_.empty(); }
  ItemKind kind(std::size_t i) const { return kind_[i]; }
  TimeNs start(std::size_t i) const { return start_[i]; }
  TimeNs end(std::size_t i) const { return end_[i]; }
  graph::NodeId op(std::size_t i) const { return op_[i]; }
  graph::EdgeId edge(std::size_t i) const { return edge_[i]; }
  Bytes bytes(std::size_t i) const { return bytes_[i]; }
  TimeNs exposed_stall(std::size_t i) const { return exposed_stall_[i]; }
  util::SymbolId resource_sym(std::size_t i) const { return resource_[i]; }
  util::SymbolId label_sym(std::size_t i) const { return label_[i]; }
  util::SymbolId variant_sym(std::size_t i) const { return variant_[i]; }
  util::SymbolId module_sym(std::size_t i) const { return module_[i]; }
  util::SymbolId src_sym(std::size_t i) const { return src_[i]; }
  util::SymbolId dst_sym(std::size_t i) const { return dst_[i]; }

  /// Name behind a symbol ("" for util::kNoSymbol).
  std::string_view name(util::SymbolId sym) const;

  std::string_view resource(std::size_t i) const { return name(resource_[i]); }
  std::string_view variant(std::size_t i) const { return name(variant_[i]); }
  std::string_view module_name(std::size_t i) const { return name(module_[i]); }
  std::string_view src(std::size_t i) const { return name(src_[i]); }
  std::string_view dst(std::size_t i) const { return name(dst_[i]); }

  /// Rendered label: the interned label verbatim when one was stored,
  /// otherwise derived — "src->dst" (transfer), "load <module>"
  /// (reconfig), operation name (compute).
  std::string label(std::size_t i) const;

  /// Placement shims over the SymbolId-indexed vector.
  std::string_view placement_name(graph::NodeId n) const;
  std::size_t placement_count() const;

  // --- mutation (scheduler + shims) --------------------------------------
  util::SymbolId intern(std::string_view s) { return symbols.intern(s); }

  /// Pre-allocates every column for `n` items (capacity only, size
  /// unchanged) so a large schedule grows without repeated reallocation.
  void reserve(std::size_t n);

  std::size_t push_compute(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                           graph::NodeId node, util::SymbolId label_sym,
                           util::SymbolId variant_sym);
  std::size_t push_transfer(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                            util::SymbolId src_sym, util::SymbolId dst_sym, Bytes nbytes,
                            graph::EdgeId e);
  std::size_t push_reconfig(util::SymbolId resource_sym, TimeNs tstart, TimeNs tend,
                            util::SymbolId module_sym, TimeNs stall);
  /// Splices plan rows [begin..end) into the schedule, column by column.
  void splice_transfers(const TransferPlan& plan, std::size_t begin, std::size_t end);

  /// String-faced shim: interns the item's names and appends one row.
  /// The label is stored verbatim (see the label storage rule above).
  void push_item(const ScheduledItem& item);
  /// Materializes row `i` back into the string-faced view.
  ScheduledItem item(std::size_t i) const;
  /// Materializes every row (tests / tooling; O(n) strings — not a hot path).
  std::vector<ScheduledItem> items() const;

  /// Targeted mutation for schedule-surgery tests (hazard corpora).
  void set_start(std::size_t i, TimeNs t) { start_[i] = t; }
  void set_end(std::size_t i, TimeNs t) { end_[i] = t; }
  void set_resource(std::size_t i, std::string_view r) { resource_[i] = intern(r); }
  void set_variant(std::size_t i, std::string_view v) { variant_[i] = intern(v); }
  void set_module(std::size_t i, std::string_view m) { module_[i] = intern(m); }
  void set_label(std::size_t i, std::string_view l) { label_[i] = intern(l); }
  void set_edge(std::size_t i, graph::EdgeId e) { edge_[i] = e; }
  void erase_item(std::size_t i);
  /// Removes every row whose materialized view satisfies `pred`.
  void erase_items_if(const std::function<bool(const ScheduledItem&)>& pred);

  /// Canonical order: (start, resource name); ties keep emit order.
  void sort_items();
  /// Recomputes makespan and the resource_busy column from the rows.
  void recompute_totals();

  // --- queries / rendering -----------------------------------------------
  /// Indices of the items on one resource, in current row order. Indices
  /// (not pointers): rows move when columns grow or re-sort, so pointers
  /// into the SoA storage would dangle.
  std::vector<std::size_t> on_resource(std::string_view resource) const;

  /// Fraction of the makespan `resource` is busy.
  double utilization(std::string_view resource) const;

  /// Lower bound on the steady-state iteration period of the pipelined
  /// executive: the busiest single resource (no schedule can repeat
  /// faster than its bottleneck). The executive player's measured
  /// iteration_period always lies in [period_lower_bound, makespan].
  TimeNs period_lower_bound() const;

  /// Multi-line textual timeline (one line per item).
  std::string to_string() const;

  /// ASCII Gantt chart (one row per resource).
  std::string gantt(int width = 72) const;

  /// CSV export: kind,label,resource,start_ns,end_ns,variant,module — for
  /// external tooling (spreadsheets, Gantt viewers).
  std::string to_csv() const;

 private:
  std::vector<ItemKind> kind_;
  std::vector<TimeNs> start_;
  std::vector<TimeNs> end_;
  std::vector<util::SymbolId> resource_;
  std::vector<graph::NodeId> op_;
  std::vector<util::SymbolId> label_;
  std::vector<util::SymbolId> variant_;
  std::vector<util::SymbolId> src_;
  std::vector<util::SymbolId> dst_;
  std::vector<Bytes> bytes_;
  std::vector<graph::EdgeId> edge_;
  std::vector<util::SymbolId> module_;
  std::vector<TimeNs> exposed_stall_;

  std::size_t push_row(ItemKind k, util::SymbolId resource_sym, TimeNs tstart, TimeNs tend);
  template <typename Pred>
  void erase_rows(Pred&& keep);
};

/// Replays a schedule into a tracer: one span per item, track = resource,
/// category = "sched_<kind>" ("sched_compute" / "sched_transfer" /
/// "sched_reconfig"), with variant/module/bytes attached as span args.
/// Lets `pdrflow adequation --trace-out` render the Gantt in
/// chrome://tracing / Perfetto alongside simulator tracks.
void export_schedule(const Schedule& schedule, obs::Tracer& tracer);

}  // namespace pdr::aaa
