#include "bench/generators.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pdr::bench {

const char* graph_shape_name(GraphShape shape) {
  switch (shape) {
    case GraphShape::Layered: return "layered";
    case GraphShape::Random: return "random";
    case GraphShape::Streaming: return "streaming";
  }
  return "?";
}

GraphShape graph_shape_from_name(const std::string& name) {
  if (name == "layered") return GraphShape::Layered;
  if (name == "random") return GraphShape::Random;
  if (name == "streaming") return GraphShape::Streaming;
  throw Error("bench: unknown graph shape '" + name + "'");
}

std::string GeneratorConfig::name() const {
  return strprintf("%s/%d/w%d/f%d", graph_shape_name(shape), n_ops, width, fanout);
}

namespace {

/// The two-alternative conditioned vertex every generator emits: the
/// adequation maps it onto a dynamic region (or falls back to software).
std::vector<aaa::Alternative> make_alternatives() {
  return {{"filt_a", "alt_a", {}}, {"filt_b", "alt_b", {}}};
}

bool conditioned_slot(const GeneratorConfig& config, int index) {
  return config.conditioned_every > 0 && index % config.conditioned_every == 0 && index > 0;
}

/// Layered DAG: `width` operations per layer, in-edges drawn from the
/// previous layer only.
aaa::AlgorithmGraph generate_layered(const GeneratorConfig& config) {
  Rng rng(config.seed);
  aaa::AlgorithmGraph g;
  std::vector<std::string> prev_layer;
  std::vector<std::string> layer;
  int made = 0;
  int layer_index = 0;
  while (made < config.n_ops) {
    layer.clear();
    for (int i = 0; i < config.width && made < config.n_ops; ++i, ++made) {
      const std::string name = "op" + std::to_string(made);
      if (layer_index == 0) {
        g.add_operation({name, "src", {}, aaa::OpClass::Sensor, {}});
      } else if (conditioned_slot(config, made)) {
        g.add_conditioned(name, make_alternatives());
      } else {
        g.add_compute(name, "work");
      }
      if (layer_index > 0) {
        const int fan_in =
            1 + static_cast<int>(rng.uniform_int(0, std::max(0, config.fanout - 1)));
        for (int e = 0; e < fan_in; ++e) {
          const auto& from = prev_layer[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(prev_layer.size()) - 1))];
          g.add_dependency(from, name, config.payload);
        }
      }
      layer.push_back(name);
    }
    prev_layer = layer;
    ++layer_index;
  }
  return g;
}

/// Random DAG: one source, each later operation draws predecessors from
/// the whole prefix, childless operations gathered by one sink.
aaa::AlgorithmGraph generate_random(const GeneratorConfig& config) {
  PDR_CHECK(config.n_ops >= 3, "bench::generate_random", "need at least source + op + sink");
  Rng rng(config.seed);
  aaa::AlgorithmGraph g;
  const int body = config.n_ops - 1;  // all but the sink
  std::vector<char> has_successor(static_cast<std::size_t>(config.n_ops), 0);
  std::vector<std::int64_t> picks;
  g.add_operation({"op0", "src", {}, aaa::OpClass::Sensor, {}});
  for (int i = 1; i < body; ++i) {
    const std::string name = "op" + std::to_string(i);
    if (conditioned_slot(config, i)) {
      g.add_conditioned(name, make_alternatives());
    } else {
      g.add_compute(name, "work");
    }
    const int fan_in = 1 + static_cast<int>(rng.uniform_int(0, std::max(0, config.fanout - 1)));
    picks.clear();
    for (int e = 0; e < fan_in; ++e) {
      const std::int64_t p = rng.uniform_int(0, i - 1);
      if (std::find(picks.begin(), picks.end(), p) != picks.end()) continue;  // no parallel edges
      picks.push_back(p);
      has_successor[static_cast<std::size_t>(p)] = 1;
      g.add_dependency("op" + std::to_string(p), name, config.payload);
    }
  }
  // Sink: gathers every childless operation, so the graph has exactly one
  // sink and every operation lies on a source-to-sink path.
  const std::string sink = "op" + std::to_string(body);
  g.add_operation({sink, "sink", {}, aaa::OpClass::Actuator, {}});
  for (int i = 0; i < body; ++i)
    if (!has_successor[static_cast<std::size_t>(i)])
      g.add_dependency("op" + std::to_string(i), sink, config.payload);
  return g;
}

/// Streaming DAG: one source scattering to `width` pipelines of chained
/// stages, a cross-lane mixing edge every `fanout` stages, one sink.
aaa::AlgorithmGraph generate_streaming(const GeneratorConfig& config) {
  PDR_CHECK(config.n_ops >= config.width + 2, "bench::generate_streaming",
            "need source + one stage per lane + sink");
  aaa::AlgorithmGraph g;
  g.add_operation({"op0", "src", {}, aaa::OpClass::Sensor, {}});
  const int stages_total = config.n_ops - 2;
  // lane_tail[l]: name of the lane's most recent stage.
  std::vector<std::string> lane_tail(static_cast<std::size_t>(config.width));
  int made = 0;
  for (int s = 0; made < stages_total; ++s) {
    // Remember the previous stage row before this row overwrites it, so
    // mixing edges always reach backward (the graph stays acyclic).
    const std::vector<std::string> prev_row = lane_tail;
    for (int l = 0; l < config.width && made < stages_total; ++l, ++made) {
      const std::string name = "op" + std::to_string(made + 1);
      if (conditioned_slot(config, made + 1)) {
        g.add_conditioned(name, make_alternatives());
      } else {
        g.add_compute(name, "work");
      }
      if (s == 0) {
        g.add_dependency("op0", name, config.payload);
      } else {
        g.add_dependency(prev_row[static_cast<std::size_t>(l)], name, config.payload);
        const int period = std::max(1, config.fanout);
        if (s % period == 0) {
          const auto& mix = prev_row[static_cast<std::size_t>((l + 1) % config.width)];
          if (mix != prev_row[static_cast<std::size_t>(l)])
            g.add_dependency(mix, name, config.payload);
        }
      }
      lane_tail[static_cast<std::size_t>(l)] = name;
    }
  }
  const std::string sink = "op" + std::to_string(config.n_ops - 1);
  g.add_operation({sink, "sink", {}, aaa::OpClass::Actuator, {}});
  for (int l = 0; l < config.width; ++l)
    if (!lane_tail[static_cast<std::size_t>(l)].empty())
      g.add_dependency(lane_tail[static_cast<std::size_t>(l)], sink, config.payload);
  return g;
}

}  // namespace

aaa::AlgorithmGraph generate_graph(const GeneratorConfig& config) {
  PDR_CHECK(config.n_ops > 0, "bench::generate_graph", "n_ops must be positive");
  PDR_CHECK(config.width > 0, "bench::generate_graph", "width must be positive");
  PDR_CHECK(config.fanout > 0, "bench::generate_graph", "fanout must be positive");
  switch (config.shape) {
    case GraphShape::Layered: return generate_layered(config);
    case GraphShape::Random: return generate_random(config);
    case GraphShape::Streaming: return generate_streaming(config);
  }
  throw Error("bench::generate_graph: unknown shape");
}

std::uint64_t graph_fingerprint(const aaa::AlgorithmGraph& graph) {
  const std::string canonical = graph.to_dot();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

aaa::ArchitectureGraph bench_architecture(int regions, int cpus,
                                          double il_bandwidth_bytes_per_s) {
  PDR_CHECK(cpus >= 1, "bench::bench_architecture", "need at least one processor");
  aaa::ArchitectureGraph arch = aaa::make_figure1_architecture(regions, il_bandwidth_bytes_per_s);
  for (int i = 0; i < cpus; ++i) {
    const std::string name = "CPU" + std::to_string(i);
    arch.add_operator(aaa::OperatorNode{name, aaa::OperatorKind::Processor, 1.0, "", ""});
    arch.connect(name, "IL");
  }
  if (cpus >= 2) {
    // A second, slower bus shared by the CPUs and the fixed part: routes
    // between operators now traverse mixed media.
    arch.add_medium(aaa::MediumNode{"BUS", il_bandwidth_bytes_per_s / 4, 500});
    arch.connect("F1", "BUS");
    for (int i = 0; i < cpus; ++i) arch.connect("CPU" + std::to_string(i), "BUS");
  }
  return arch;
}

aaa::DurationTable bench_durations() {
  aaa::DurationTable t;
  for (const char* kind : {"src", "work", "sink"}) {
    t.set(kind, aaa::OperatorKind::Processor, 20'000);
    t.set(kind, aaa::OperatorKind::FpgaStatic, 4'000);
  }
  for (const char* kind : {"alt_a", "alt_b"}) {
    t.set(kind, aaa::OperatorKind::Processor, 40'000);
    t.set(kind, aaa::OperatorKind::FpgaRegion, 4'000);
  }
  return t;
}

}  // namespace pdr::bench
