// Seeded, deterministic workload generators for the perf harness.
//
// The paper's case study is hand-sized (a dozen operations); everything on
// the perf roadmap — million-op adequation, explorer sweeps, integrated
// partition/schedule/floorplan optimizers running the scheduler as an
// inner loop — needs synthetic algorithm graphs whose size and shape are
// dials. Three DAG families cover the scheduler's distinct stress axes:
//
//  - Layered: `width` operations per layer, 1..fanout in-edges from the
//    previous layer. Wide ready sets — the selection-policy stressor.
//  - Random:  each operation draws 1..fanout predecessors uniformly from
//    all earlier operations; one source, one gathering sink. Long-range
//    edges — the dependency-tracking / transfer-routing stressor.
//  - Streaming: `width` parallel pipelines of chained stages with
//    periodic cross-lane mixing edges, one scatter source and one gather
//    sink — the MC-CDMA-transmitter-like shape, media-contention heavy.
//
// Every graph is a pure function of its GeneratorConfig: the same config
// produces a byte-identical graph (pinned by tests via fingerprints) on
// every run, platform, and thread count.
#pragma once

#include <cstdint>
#include <string>

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/durations.hpp"

namespace pdr::bench {

enum class GraphShape : std::uint8_t { Layered, Random, Streaming };

const char* graph_shape_name(GraphShape shape);

/// Inverse of graph_shape_name; throws on unknown names.
GraphShape graph_shape_from_name(const std::string& name);

struct GeneratorConfig {
  GraphShape shape = GraphShape::Layered;
  int n_ops = 1000;  ///< total operation count, sources and sinks included
  /// Layered: operations per layer. Streaming: parallel lanes.
  int width = 20;
  /// Layered/Random: max in-edges per operation. Streaming: a cross-lane
  /// mixing edge every `fanout` stages.
  int fanout = 2;
  /// Every k-th eligible operation is a conditioned vertex with two
  /// alternatives (alt_a / alt_b) — the dynamic-reconfiguration mix.
  /// 0 disables conditioned vertices entirely.
  int conditioned_every = 5;
  /// Payload carried per data dependency.
  Bytes payload = 128;
  std::uint64_t seed = 17;

  /// Stable display / record name, e.g. "layered/10000/w20/f2".
  std::string name() const;
};

/// Generates the configured DAG. The result validates (acyclic, sensors
/// source-only, actuators sink-only) and is deterministic in the config.
aaa::AlgorithmGraph generate_graph(const GeneratorConfig& config);

/// FNV-1a 64-bit over the graph's canonical rendering — the identity used
/// by determinism tests ("same seed, same graph, byte for byte").
std::uint64_t graph_fingerprint(const aaa::AlgorithmGraph& graph);

/// Benchmark platform: the paper's Figure-1 FPGA (fixed part F1 +
/// `regions` dynamic regions on internal link IL at `il_bandwidth`), plus
/// `cpus` processors. The CPUs sit on IL; with two or more CPUs they also
/// share a second bus with F1, so inter-operator routes traverse mixed
/// media. Deterministic in its arguments.
aaa::ArchitectureGraph bench_architecture(int regions, int cpus,
                                          double il_bandwidth_bytes_per_s = 200e6);

/// Durations for the generator kinds (src/work/sink on processors and the
/// fixed part, alt_a/alt_b on processors and dynamic regions) — the same
/// hardware-beats-software asymmetry the case study has.
aaa::DurationTable bench_durations();

}  // namespace pdr::bench
