#include "bench/report.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pdr::bench {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from) {
  const auto d = std::chrono::steady_clock::now() - from;
  return std::chrono::duration<double, std::milli>(d).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number: finite, '.'-decimal, round-trippable double precision.
std::string json_number(double v) {
  PDR_CHECK(std::isfinite(v), "bench_json", "non-finite number in benchmark record");
  std::string s = strprintf("%.17g", v);
  // %g never emits locale decimal commas here because we format with the C
  // locale snprintf; keep integers recognizable as numbers ("3" is valid JSON).
  return s;
}

void append_stats(std::string& out, const Stats& s) {
  out += "{\"count\": " + std::to_string(s.count());
  // Count-gated: an empty accumulator must not serialize a fake 0.0 sample.
  if (const auto mean = s.opt_mean()) out += ", \"mean\": " + json_number(*mean);
  if (const auto sd = s.opt_stddev()) out += ", \"stddev\": " + json_number(*sd);
  if (const auto mn = s.opt_min()) out += ", \"min\": " + json_number(*mn);
  if (const auto mx = s.opt_max()) out += ", \"max\": " + json_number(*mx);
  out += "}";
}

}  // namespace

BenchRecord measure(std::string name, int warmup_runs, int repeats,
                    const std::function<void()>& fn) {
  BenchRecord rec;
  rec.name = std::move(name);
  rec.repeats = repeats;
  rec.warmup_runs = warmup_runs;
  const auto warm_start = std::chrono::steady_clock::now();
  for (int i = 0; i < warmup_runs; ++i) fn();
  rec.warmup_ms = warmup_runs > 0 ? elapsed_ms(warm_start) : 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    rec.wall_ms.add(elapsed_ms(start));
  }
  return rec;
}

std::string git_sha() {
  FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

std::string bench_json(const std::string& suite, bool smoke,
                       const std::vector<BenchRecord>& records) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"suite\": \"" + json_escape(suite) + "\",\n";
  out += "  \"git_sha\": \"" + json_escape(git_sha()) + "\",\n";
  out += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  out += "  \"records\": [";
  for (std::size_t r = 0; r < records.size(); ++r) {
    const BenchRecord& rec = records[r];
    out += r == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"name\": \"" + json_escape(rec.name) + "\",\n";
    out += "      \"config\": {";
    for (std::size_t i = 0; i < rec.config.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + json_escape(rec.config[i].first) + "\": \"" +
             json_escape(rec.config[i].second) + "\"";
    }
    out += "},\n";
    out += "      \"repeats\": " + std::to_string(rec.repeats) + ",\n";
    out += "      \"warmup\": {\"runs\": " + std::to_string(rec.warmup_runs) +
           ", \"ms\": " + json_number(rec.warmup_ms) + "},\n";
    out += "      \"wall_ms\": ";
    append_stats(out, rec.wall_ms);
    out += ",\n";
    out += "      \"extra\": {";
    for (std::size_t i = 0; i < rec.extra.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + json_escape(rec.extra[i].first) + "\": " + json_number(rec.extra[i].second);
    }
    out += "}\n";
    out += "    }";
  }
  out += records.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void write_bench_json(const std::string& path, const std::string& suite, bool smoke,
                      const std::vector<BenchRecord>& records) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream f(path, std::ios::binary);
  PDR_CHECK(f.good(), "write_bench_json", "cannot open " + path);
  f << bench_json(suite, smoke, records);
  PDR_CHECK(f.good(), "write_bench_json", "short write to " + path);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

std::string bench_table(const std::vector<BenchRecord>& records) {
  Table t({"benchmark", "reps", "warmup ms", "mean ms", "min ms", "max ms", "extra"});
  for (const BenchRecord& rec : records) {
    std::string extra;
    for (std::size_t i = 0; i < rec.extra.size(); ++i) {
      if (i > 0) extra += "  ";
      extra += rec.extra[i].first + "=" + strprintf("%.4g", rec.extra[i].second);
    }
    t.row()
        .add(rec.name)
        .add(rec.repeats)
        .add(rec.warmup_ms, 2)
        .add(rec.wall_ms.empty() ? std::string("-") : strprintf("%.2f", rec.wall_ms.mean()))
        .add(rec.wall_ms.empty() ? std::string("-") : strprintf("%.2f", rec.wall_ms.min()))
        .add(rec.wall_ms.empty() ? std::string("-") : strprintf("%.2f", rec.wall_ms.max()))
        .add(extra);
  }
  return t.to_markdown();
}

}  // namespace pdr::bench
