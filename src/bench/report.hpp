// The canonical BENCH_*.json schema and its emitter.
//
// Perf only counts when it is tracked: every suite in `bench_suite` emits
// one BENCH_<suite>.json so CI can archive per-commit numbers and a later
// PR's regression is a diff, not an anecdote. Schema (version 1):
//
//   {
//     "schema_version": 1,
//     "suite": "adequation",
//     "git_sha": "abc123def456",          // "unknown" outside a git repo
//     "smoke": false,
//     "records": [
//       {
//         "name": "adequation/layered/10000/w20/f2",
//         "config": {"shape": "layered", "n_ops": "10000", ...},
//         "repeats": 3,
//         "warmup": {"runs": 1, "ms": 12.5},   // cold runs, reported
//                                              // separately — never folded
//                                              // into the sample stats
//         "wall_ms": {"count": 3, "mean": ..., "stddev": ...,
//                     "min": ..., "max": ...},
//         "extra": {"ops_per_sec": ...}        // derived scalars
//       }
//     ]
//   }
//
// An empty accumulator emits only {"count": 0} — mean/stddev/min/max are
// count-gated so a zero-sample record can never masquerade as a measured
// 0.0 (see util/stats.hpp). stddev is additionally gated on count >= 2.
// All numbers are finite by construction; the CI validator
// (tools/check_bench_json.py) re-checks key presence and finiteness.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace pdr::bench {

/// One benchmark measurement: a named config, cold warm-up runs, and the
/// Welford-accumulated warm samples.
struct BenchRecord {
  std::string name;
  /// Ordered key/value config pairs, serialized as the "config" object.
  std::vector<std::pair<std::string, std::string>> config;
  int repeats = 0;       ///< warm repeats requested
  int warmup_runs = 0;   ///< cold runs executed before sampling
  double warmup_ms = 0;  ///< total wall-clock of the warm-up runs
  Stats wall_ms;         ///< warm samples only
  /// Derived scalar metrics (ops_per_sec, points_per_sec, speedup, ...).
  std::vector<std::pair<std::string, double>> extra;
};

/// Runs `fn` `warmup_runs` times untimed-into-warmup, then `repeats`
/// timed repetitions, and returns the filled record.
BenchRecord measure(std::string name, int warmup_runs, int repeats,
                    const std::function<void()>& fn);

/// Current commit, short form, via `git rev-parse`; "unknown" when not in
/// a git repository (or git is unavailable).
std::string git_sha();

/// Serializes one suite document (schema above). Deterministic field
/// order, '.'-decimal doubles, LF line endings.
std::string bench_json(const std::string& suite, bool smoke,
                       const std::vector<BenchRecord>& records);

/// Writes bench_json() to `path` and logs one line.
void write_bench_json(const std::string& path, const std::string& suite, bool smoke,
                      const std::vector<BenchRecord>& records);

/// Human-readable companion table: name, repeats, mean/min/max, extras.
std::string bench_table(const std::vector<BenchRecord>& records);

}  // namespace pdr::bench
