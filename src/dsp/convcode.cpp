#include "dsp/convcode.hpp"

#include <bit>
#include <limits>

#include "util/error.hpp"

namespace pdr::dsp {

ConvolutionalCode::ConvolutionalCode(int constraint_length, std::vector<std::uint32_t> generators)
    : k_(constraint_length), generators_(std::move(generators)) {
  PDR_CHECK(k_ >= 2 && k_ <= 16, "ConvolutionalCode", "constraint length must be in [2, 16]");
  PDR_CHECK(!generators_.empty(), "ConvolutionalCode", "need at least one generator");
  const auto mask = (1u << k_) - 1;
  for (const auto g : generators_)
    PDR_CHECK(g != 0 && (g & ~mask) == 0, "ConvolutionalCode",
              "generator does not fit the constraint length");
}

ConvolutionalCode ConvolutionalCode::k7_rate_half() {
  // (133, 171) octal = 0b1011011, 0b1111001.
  return ConvolutionalCode(7, {0133, 0171});
}

std::uint32_t ConvolutionalCode::branch_output(int state, int bit) const {
  // Shift register contents: [input bit | state bits], input is LSB-first
  // in time: register = bit << (k-1) | state ... use the common
  // convention register = (bit, s_{k-2}, ..., s_0) with generators tapping
  // from the newest bit down.
  const std::uint32_t reg =
      (static_cast<std::uint32_t>(bit) << (k_ - 1)) | static_cast<std::uint32_t>(state);
  std::uint32_t out = 0;
  for (const auto g : generators_) {
    out = (out << 1) | (static_cast<std::uint32_t>(std::popcount(reg & g)) & 1u);
  }
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::encode(std::span<const std::uint8_t> bits) const {
  std::vector<std::uint8_t> out;
  out.reserve((bits.size() + static_cast<std::size_t>(k_ - 1)) * generators_.size());
  int state = 0;
  auto push = [&](int bit) {
    const std::uint32_t branch = branch_output(state, bit);
    for (std::size_t g = generators_.size(); g-- > 0;)
      out.push_back(static_cast<std::uint8_t>((branch >> g) & 1u));
    state = ((bit << (k_ - 1)) | state) >> 1;
  };
  for (const auto b : bits) push(b & 1);
  for (int i = 0; i < k_ - 1; ++i) push(0);  // trellis termination
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::decode(std::span<const std::uint8_t> coded) const {
  const std::size_t branch_bits = generators_.size();
  PDR_CHECK(coded.size() % branch_bits == 0, "ConvolutionalCode::decode",
            "codeword is not a whole number of branches");
  const std::size_t branches = coded.size() / branch_bits;
  PDR_CHECK(branches >= static_cast<std::size_t>(k_ - 1), "ConvolutionalCode::decode",
            "codeword shorter than the flush tail");

  const int n_states = states();
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 2;
  std::vector<std::uint32_t> metric(static_cast<std::size_t>(n_states), kInf);
  metric[0] = 0;  // encoder starts in state 0
  std::vector<std::uint32_t> next_metric(static_cast<std::size_t>(n_states));
  // survivors[t][state] = input bit 0/1 plus predecessor encoded together.
  std::vector<std::vector<std::uint16_t>> survivors(
      branches, std::vector<std::uint16_t>(static_cast<std::size_t>(n_states), 0));

  for (std::size_t t = 0; t < branches; ++t) {
    std::uint32_t received = 0;
    for (std::size_t g = 0; g < branch_bits; ++g)
      received = (received << 1) | (coded[t * branch_bits + g] & 1u);

    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (int state = 0; state < n_states; ++state) {
      if (metric[static_cast<std::size_t>(state)] >= kInf) continue;
      for (int bit = 0; bit <= 1; ++bit) {
        const std::uint32_t expect = branch_output(state, bit);
        const auto cost = static_cast<std::uint32_t>(std::popcount(expect ^ received));
        const int next = ((bit << (k_ - 1)) | state) >> 1;
        const std::uint32_t cand = metric[static_cast<std::size_t>(state)] + cost;
        if (cand < next_metric[static_cast<std::size_t>(next)]) {
          next_metric[static_cast<std::size_t>(next)] = cand;
          survivors[t][static_cast<std::size_t>(next)] =
              static_cast<std::uint16_t>((bit << 15) | state);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Terminated trellis: trace back from state 0.
  std::vector<std::uint8_t> decoded(branches);
  int state = 0;
  for (std::size_t t = branches; t-- > 0;) {
    const std::uint16_t s = survivors[t][static_cast<std::size_t>(state)];
    decoded[t] = static_cast<std::uint8_t>((s >> 15) & 1);
    state = s & 0x7fff;
  }
  decoded.resize(branches - static_cast<std::size_t>(k_ - 1));  // strip flush bits
  return decoded;
}

std::vector<std::uint8_t> ConvolutionalCode::decode_soft(std::span<const double> llrs) const {
  const std::size_t branch_bits = generators_.size();
  PDR_CHECK(llrs.size() % branch_bits == 0, "ConvolutionalCode::decode_soft",
            "LLR count is not a whole number of branches");
  const std::size_t branches = llrs.size() / branch_bits;
  PDR_CHECK(branches >= static_cast<std::size_t>(k_ - 1), "ConvolutionalCode::decode_soft",
            "codeword shorter than the flush tail");

  const int n_states = states();
  constexpr double kInf = 1e300;
  std::vector<double> metric(static_cast<std::size_t>(n_states), kInf);
  metric[0] = 0;
  std::vector<double> next_metric(static_cast<std::size_t>(n_states));
  std::vector<std::vector<std::uint16_t>> survivors(
      branches, std::vector<std::uint16_t>(static_cast<std::size_t>(n_states), 0));

  for (std::size_t t = 0; t < branches; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (int state = 0; state < n_states; ++state) {
      if (metric[static_cast<std::size_t>(state)] >= kInf) continue;
      for (int bit = 0; bit <= 1; ++bit) {
        const std::uint32_t expect = branch_output(state, bit);
        // Cost: positive LLR favours bit 0, so expecting a 1 against a
        // positive LLR costs +llr (and vice versa).
        double cost = 0;
        for (std::size_t g = 0; g < branch_bits; ++g) {
          const double llr = llrs[t * branch_bits + g];
          const int expected_bit = static_cast<int>((expect >> (branch_bits - 1 - g)) & 1u);
          cost += expected_bit ? llr : -llr;
        }
        const int next = ((bit << (k_ - 1)) | state) >> 1;
        const double cand = metric[static_cast<std::size_t>(state)] + cost;
        if (cand < next_metric[static_cast<std::size_t>(next)]) {
          next_metric[static_cast<std::size_t>(next)] = cand;
          survivors[t][static_cast<std::size_t>(next)] =
              static_cast<std::uint16_t>((bit << 15) | state);
        }
      }
    }
    metric.swap(next_metric);
  }

  std::vector<std::uint8_t> decoded(branches);
  int state = 0;
  for (std::size_t t = branches; t-- > 0;) {
    const std::uint16_t s = survivors[t][static_cast<std::size_t>(state)];
    decoded[t] = static_cast<std::uint8_t>((s >> 15) & 1);
    state = s & 0x7fff;
  }
  decoded.resize(branches - static_cast<std::size_t>(k_ - 1));
  return decoded;
}

std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   std::span<const bool> pattern) {
  PDR_CHECK(!pattern.empty(), "puncture", "empty pattern");
  std::vector<std::uint8_t> out;
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    if (pattern[i % pattern.size()]) out.push_back(coded[i]);
  return out;
}

std::vector<double> depuncture(std::span<const double> llrs, std::span<const bool> pattern,
                               std::size_t coded_length) {
  PDR_CHECK(!pattern.empty(), "depuncture", "empty pattern");
  std::vector<double> out;
  out.reserve(coded_length);
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < coded_length; ++i) {
    if (pattern[i % pattern.size()]) {
      PDR_CHECK(consumed < llrs.size(), "depuncture", "too few LLRs for the pattern");
      out.push_back(llrs[consumed++]);
    } else {
      out.push_back(0.0);  // erasure
    }
  }
  PDR_CHECK(consumed == llrs.size(), "depuncture", "too many LLRs for the pattern");
  return out;
}

}  // namespace pdr::dsp
