// Convolutional coding: encoder + hard-decision Viterbi decoder.
//
// The case study's transmit chain carries a convolutional encoder block
// (paper Figure 4); the receive side of an SDR needs the matching
// decoder. Default code: the ubiquitous K=7, rate-1/2 code with
// generators (133, 171) octal — the one the cited MC-CDMA prototype [3]
// uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pdr::dsp {

class ConvolutionalCode {
 public:
  /// `constraint_length` K (memory = K-1), generator polynomials in
  /// binary (lowest bit = current input). Rate = 1 / generators.size().
  ConvolutionalCode(int constraint_length, std::vector<std::uint32_t> generators);

  /// The standard K=7 rate-1/2 (133, 171) code.
  static ConvolutionalCode k7_rate_half();

  int constraint_length() const { return k_; }
  std::size_t rate_denominator() const { return generators_.size(); }
  int states() const { return 1 << (k_ - 1); }

  /// Encodes `bits`, appending K-1 flush zeros so the trellis terminates
  /// in state 0. Output length = (bits.size() + K - 1) * generators.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> bits) const;

  /// Hard-decision Viterbi decode of a terminated codeword; returns the
  /// information bits (flush bits stripped). Throws if the codeword
  /// length is not a whole number of branches or too short.
  std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded) const;

  /// Soft-decision Viterbi decode from log-likelihood ratios, one per
  /// coded bit, with the convention llr > 0 <=> bit 0 more likely. A zero
  /// LLR is an erasure (used for punctured positions). Same framing rules
  /// as decode().
  std::vector<std::uint8_t> decode_soft(std::span<const double> llrs) const;

 private:
  /// Output bits of a branch from `state` with input `bit`.
  std::uint32_t branch_output(int state, int bit) const;

  int k_;
  std::vector<std::uint32_t> generators_;
};

/// Puncturing: raises the rate of a mother code by deleting coded bits in
/// a repeating pattern (true = transmit). E.g. the standard rate-3/4
/// pattern over a rate-1/2 mother code is {1,1,0,1,1,0}.
std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                   std::span<const bool> pattern);

/// Inverse for the soft path: re-inserts erasures (LLR 0) at punctured
/// positions so decode_soft() sees the mother code's framing.
/// `coded_length` is the unpunctured length.
std::vector<double> depuncture(std::span<const double> llrs, std::span<const bool> pattern,
                               std::size_t coded_length);

/// The standard rate-3/4 pattern for a rate-1/2 mother code.
inline const bool kRate34Pattern[6] = {true, true, false, true, true, false};

}  // namespace pdr::dsp
