#include "dsp/crc.hpp"

#include <array>

namespace pdr::dsp {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update_byte(std::uint8_t byte) {
  state_ = kTable[(state_ ^ byte) & 0xffu] ^ (state_ >> 8);
}

void Crc32::update(std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) update_byte(b);
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace pdr::dsp
