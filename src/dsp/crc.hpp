// CRC-32 (IEEE 802.3 polynomial), used to seal configuration bitstreams
// exactly like the devices' configuration logic checks frame data.
#pragma once

#include <cstdint>
#include <span>

namespace pdr::dsp {

/// One-shot CRC-32 of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update_byte(std::uint8_t byte);
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace pdr::dsp
