#include "dsp/fft.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pdr::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846264338327950288;

void bit_reverse_permute(std::vector<Cplx>& a) {
  const std::size_t n = a.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

void transform(std::vector<Cplx>& a, bool inverse) {
  PDR_CHECK(is_pow2(a.size()), "dsp::fft", "size must be a power of two");
  bit_reverse_permute(a);
  const std::size_t n = a.size();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Cplx wl(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

}  // namespace

void fft(std::vector<Cplx>& data) { transform(data, /*inverse=*/false); }

void ifft(std::vector<Cplx>& data) { transform(data, /*inverse=*/true); }

std::vector<Cplx> fft_copy(std::vector<Cplx> data) {
  fft(data);
  return data;
}

std::vector<Cplx> ifft_copy(std::vector<Cplx> data) {
  ifft(data);
  return data;
}

namespace {

void bit_reverse_permute_q15(std::vector<CQ15>& a) {
  const std::size_t n = a.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// Rounded arithmetic shift right by one with saturation to int16.
std::int16_t half_sat(std::int32_t v) {
  v = (v + 1) >> 1;
  if (v > 32767) v = 32767;
  if (v < -32768) v = -32768;
  return static_cast<std::int16_t>(v);
}

}  // namespace

void fft_q15(std::vector<CQ15>& data, bool inverse) {
  PDR_CHECK(is_pow2(data.size()), "dsp::fft_q15", "size must be a power of two");
  bit_reverse_permute_q15(data);
  const std::size_t n = data.size();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        // Twiddle in Q15 (recomputed per butterfly: an FPGA would ROM it).
        const double ph = angle * static_cast<double>(k);
        const std::int32_t wr = Q15::from_double(std::cos(ph)).raw();
        const std::int32_t wi = Q15::from_double(std::sin(ph)).raw();
        CQ15& pa = data[i + k];
        CQ15& pb = data[i + k + len / 2];
        const std::int32_t ar = pa.re.raw(), ai = pa.im.raw();
        const std::int32_t br = pb.re.raw(), bi = pb.im.raw();
        // w * b in Q15 with rounding.
        const std::int32_t tr = static_cast<std::int32_t>((wr * br - wi * bi + (1 << 14)) >> 15);
        const std::int32_t ti = static_cast<std::int32_t>((wr * bi + wi * br + (1 << 14)) >> 15);
        // Butterfly with unconditional 1/2 scaling.
        pa.re = Q15::from_raw(half_sat(ar + tr));
        pa.im = Q15::from_raw(half_sat(ai + ti));
        pb.re = Q15::from_raw(half_sat(ar - tr));
        pb.im = Q15::from_raw(half_sat(ai - ti));
      }
    }
  }
}

std::vector<CQ15> to_q15(const std::vector<Cplx>& x) {
  std::vector<CQ15> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = CQ15{Q15::from_double(x[i].real()), Q15::from_double(x[i].imag())};
  return out;
}

std::vector<Cplx> from_q15(const std::vector<CQ15>& x) {
  std::vector<Cplx> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i].re.to_double(), x[i].im.to_double()};
  return out;
}

}  // namespace pdr::dsp
