// Radix-2 decimation-in-time FFT/IFFT.
//
// This is the OFDM engine of the MC-CDMA transmitter (paper Figure 4's
// IFFT block). Sizes must be powers of two.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "dsp/fixed.hpp"

namespace pdr::dsp {

using Cplx = std::complex<double>;

/// In-place forward FFT. `data.size()` must be a power of two >= 1.
void fft(std::vector<Cplx>& data);

/// In-place inverse FFT including the 1/N normalization.
void ifft(std::vector<Cplx>& data);

/// Out-of-place convenience wrappers.
std::vector<Cplx> fft_copy(std::vector<Cplx> data);
std::vector<Cplx> ifft_copy(std::vector<Cplx> data);

/// In-place fixed-point radix-2 transform over Q15 samples — the
/// arithmetic an FPGA datapath actually performs. Every butterfly stage
/// scales by 1/2 (unconditional block scaling), so overflow is
/// impossible and the overall scaling is 1/N in both directions:
///   forward:  output = FFT(x) / N
///   inverse:  output = IFFT(x) (the standard 1/N convention, exactly
///             comparable to ifft()).
void fft_q15(std::vector<CQ15>& data, bool inverse);

/// Conversions between double-precision and Q15 complex vectors
/// (saturating on the way in).
std::vector<CQ15> to_q15(const std::vector<Cplx>& x);
std::vector<Cplx> from_q15(const std::vector<CQ15>& x);

/// True if n is a nonzero power of two.
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::size_t n) {
  unsigned l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace pdr::dsp
