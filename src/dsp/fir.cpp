#include "dsp/fir.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pdr::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846264338327950288;

double sinc(double x) { return x == 0.0 ? 1.0 : std::sin(kPi * x) / (kPi * x); }

}  // namespace

std::vector<double> lowpass_taps(std::size_t n_taps, double cutoff) {
  PDR_CHECK(n_taps >= 3 && n_taps % 2 == 1, "lowpass_taps", "need an odd tap count >= 3");
  PDR_CHECK(cutoff > 0.0 && cutoff < 0.5, "lowpass_taps", "cutoff must be in (0, 0.5)");
  std::vector<double> taps(n_taps);
  const double mid = static_cast<double>(n_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n_taps; ++i) {
    const double n = static_cast<double>(i) - mid;
    const double window =
        0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / static_cast<double>(n_taps - 1));
    taps[i] = 2.0 * cutoff * sinc(2.0 * cutoff * n) * window;
    sum += taps[i];
  }
  for (auto& t : taps) t /= sum;  // unit DC gain
  return taps;
}

std::vector<double> highpass_taps(std::size_t n_taps, double cutoff) {
  std::vector<double> taps = lowpass_taps(n_taps, cutoff);
  // Spectral inversion: negate and add an impulse at the center.
  for (auto& t : taps) t = -t;
  taps[(n_taps - 1) / 2] += 1.0;
  return taps;
}

std::vector<double> fir_filter(std::span<const double> x, std::span<const double> taps) {
  PDR_CHECK(!taps.empty(), "fir_filter", "empty tap set");
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(taps.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) acc += taps[k] * x[n - k];
    y[n] = acc;
  }
  return y;
}

std::vector<double> magnitude_response(std::span<const double> taps, std::size_t n_points) {
  PDR_CHECK(n_points >= 2, "magnitude_response", "need at least 2 points");
  std::vector<double> mag(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    const double f = 0.5 * static_cast<double>(p) / static_cast<double>(n_points - 1);
    std::complex<double> h{0.0, 0.0};
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const double ph = -2.0 * kPi * f * static_cast<double>(k);
      h += taps[k] * std::complex<double>{std::cos(ph), std::sin(ph)};
    }
    mag[p] = std::abs(h);
  }
  return mag;
}

}  // namespace pdr::dsp
