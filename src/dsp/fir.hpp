// FIR filter design (windowed sinc) and filtering.
//
// Used by the adaptive filter-bank example: dynamic regions swap FIR
// modules (low-pass vs high-pass) at run time; this is the signal
// processing those modules perform.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace pdr::dsp {

/// Hamming-windowed sinc low-pass taps; `cutoff` is the normalized cutoff
/// in (0, 0.5) (fraction of the sample rate), `n_taps` odd for a
/// symmetric linear-phase filter. Taps are normalized to unit DC gain.
std::vector<double> lowpass_taps(std::size_t n_taps, double cutoff);

/// High-pass by spectral inversion of the low-pass design (unit gain at
/// Nyquist).
std::vector<double> highpass_taps(std::size_t n_taps, double cutoff);

/// Direct-form FIR filtering (zero initial state, output length equals
/// input length; group delay (n_taps-1)/2 samples).
std::vector<double> fir_filter(std::span<const double> x, std::span<const double> taps);

/// Complex magnitude response of a tap set at `n_points` frequencies in
/// [0, 0.5] (normalized).
std::vector<double> magnitude_response(std::span<const double> taps, std::size_t n_points);

}  // namespace pdr::dsp
