// Q15 fixed-point arithmetic.
//
// The MC-CDMA hardware blocks the paper targets compute in fixed point on
// the FPGA; the transmitter chain here mirrors that with a saturating Q15
// type (1 sign bit, 15 fractional bits, range [-1, 1)).
#pragma once

#include <cstdint>
#include <limits>

namespace pdr::dsp {

/// Saturating Q15 fixed-point number.
class Q15 {
 public:
  constexpr Q15() = default;

  /// From raw two's-complement Q15 storage.
  static constexpr Q15 from_raw(std::int16_t raw) {
    Q15 q;
    q.raw_ = raw;
    return q;
  }

  /// From a real value, saturating to [-1, 1 - 2^-15].
  static constexpr Q15 from_double(double v) {
    constexpr double kScale = 32768.0;
    double scaled = v * kScale;
    if (scaled >= 32767.0) return from_raw(32767);
    if (scaled <= -32768.0) return from_raw(-32768);
    // Round to nearest, ties away from zero.
    const auto r = static_cast<std::int32_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
    return from_raw(static_cast<std::int16_t>(r));
  }

  constexpr std::int16_t raw() const { return raw_; }
  constexpr double to_double() const { return static_cast<double>(raw_) / 32768.0; }

  friend constexpr Q15 operator+(Q15 a, Q15 b) {
    return saturate(static_cast<std::int32_t>(a.raw_) + b.raw_);
  }
  friend constexpr Q15 operator-(Q15 a, Q15 b) {
    return saturate(static_cast<std::int32_t>(a.raw_) - b.raw_);
  }
  friend constexpr Q15 operator*(Q15 a, Q15 b) {
    // Q15 * Q15 = Q30; shift back with rounding.
    const std::int32_t p = static_cast<std::int32_t>(a.raw_) * b.raw_;
    return saturate((p + (1 << 14)) >> 15);
  }
  friend constexpr Q15 operator-(Q15 a) { return saturate(-static_cast<std::int32_t>(a.raw_)); }

  friend constexpr bool operator==(Q15 a, Q15 b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Q15 a, Q15 b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Q15 a, Q15 b) { return a.raw_ < b.raw_; }

 private:
  static constexpr Q15 saturate(std::int32_t v) {
    if (v > 32767) v = 32767;
    if (v < -32768) v = -32768;
    return from_raw(static_cast<std::int16_t>(v));
  }

  std::int16_t raw_ = 0;
};

/// Complex Q15 sample, as produced by the fixed-point mappers.
struct CQ15 {
  Q15 re;
  Q15 im;

  friend constexpr CQ15 operator+(CQ15 a, CQ15 b) { return {a.re + b.re, a.im + b.im}; }
  friend constexpr CQ15 operator-(CQ15 a, CQ15 b) { return {a.re - b.re, a.im - b.im}; }
  friend constexpr CQ15 operator*(CQ15 a, CQ15 b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend constexpr bool operator==(CQ15 a, CQ15 b) { return a.re == b.re && a.im == b.im; }
};

}  // namespace pdr::dsp
