// Gray code conversion used by the QPSK / QAM-16 constellation mappers.
#pragma once

#include <cstdint>

namespace pdr::dsp {

/// Binary -> Gray.
constexpr std::uint32_t gray_encode(std::uint32_t b) { return b ^ (b >> 1); }

/// Gray -> binary.
constexpr std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t b = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) b ^= b >> shift;
  return b;
}

}  // namespace pdr::dsp
