#include "dsp/prbs.hpp"

#include "util/error.hpp"

namespace pdr::dsp {

Prbs::Prbs(Kind kind, std::uint32_t seed) {
  switch (kind) {
    case Kind::Prbs7:
      degree_ = 7;
      tap_ = 6;
      break;
    case Kind::Prbs15:
      degree_ = 15;
      tap_ = 14;
      break;
    case Kind::Prbs23:
      degree_ = 23;
      tap_ = 18;
      break;
    default:
      raise("Prbs", "unknown kind");
  }
  state_ = seed & ((1u << degree_) - 1);
  PDR_CHECK(state_ != 0, "Prbs", "seed must be nonzero within register width");
}

int Prbs::next_bit() {
  // Fibonacci form, e.g. PRBS7: new = s[6] ^ s[5]; s = (s << 1) | new.
  const unsigned fb = ((state_ >> (degree_ - 1)) ^ (state_ >> (tap_ - 1))) & 1u;
  state_ = ((state_ << 1) | fb) & ((1u << degree_) - 1);
  return static_cast<int>(fb);
}

std::vector<std::uint8_t> Prbs::bits(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_bit());
  return out;
}

}  // namespace pdr::dsp
