// LFSR pseudo-random binary sequences (PRBS) used as bit sources.
#pragma once

#include <cstdint>
#include <vector>

namespace pdr::dsp {

/// Fibonacci LFSR emitting standard PRBS sequences.
class Prbs {
 public:
  /// Standard generator polynomials.
  enum class Kind {
    Prbs7,   // x^7 + x^6 + 1
    Prbs15,  // x^15 + x^14 + 1
    Prbs23,  // x^23 + x^18 + 1
  };

  explicit Prbs(Kind kind, std::uint32_t seed = 1);

  /// Next bit (0/1).
  int next_bit();

  /// Next `n` bits.
  std::vector<std::uint8_t> bits(std::size_t n);

  /// Sequence period for this kind (2^degree - 1).
  std::uint32_t period() const { return (1u << degree_) - 1; }

 private:
  std::uint32_t state_;
  unsigned degree_;
  unsigned tap_;  // second feedback tap position (1-based from LSB side)
};

}  // namespace pdr::dsp
