#include "dsp/walsh.hpp"

#include <bit>

#include "util/error.hpp"

namespace pdr::dsp {

std::vector<int> walsh_code(std::size_t length, std::size_t index) {
  PDR_CHECK(length != 0 && (length & (length - 1)) == 0, "walsh_code", "length must be a power of two");
  PDR_CHECK(index < length, "walsh_code", "index out of range");
  std::vector<int> code(length);
  for (std::size_t n = 0; n < length; ++n) {
    // H[k][n] = (-1)^{popcount(k & n)}
    const auto bits = std::popcount(index & n);
    code[n] = (bits % 2 == 0) ? 1 : -1;
  }
  return code;
}

std::vector<std::vector<int>> hadamard_matrix(std::size_t length) {
  std::vector<std::vector<int>> m;
  m.reserve(length);
  for (std::size_t k = 0; k < length; ++k) m.push_back(walsh_code(length, k));
  return m;
}

long walsh_dot(const std::vector<int>& a, const std::vector<int>& b) {
  PDR_CHECK(a.size() == b.size(), "walsh_dot", "length mismatch");
  long acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<long>(a[i]) * b[i];
  return acc;
}

}  // namespace pdr::dsp
