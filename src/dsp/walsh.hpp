// Walsh-Hadamard spreading codes for MC-CDMA.
//
// Code k of length L (L a power of two) is row k of the LxL Hadamard
// matrix with entries in {-1, +1}. Distinct rows are orthogonal, which is
// what lets MC-CDMA stack users on the same subcarriers.
#pragma once

#include <cstdint>
#include <vector>

namespace pdr::dsp {

/// Returns Walsh code `index` of length `length` (entries -1 / +1).
/// `length` must be a power of two and `index < length`.
std::vector<int> walsh_code(std::size_t length, std::size_t index);

/// Returns the full Hadamard matrix of size `length`.
std::vector<std::vector<int>> hadamard_matrix(std::size_t length);

/// Inner product of two codes (0 iff orthogonal).
long walsh_dot(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace pdr::dsp
