#include "fabric/bitstream.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {
namespace {

constexpr std::uint32_t kType1 = 0b001u << 29;
constexpr std::uint32_t kType2 = 0b010u << 29;
constexpr std::uint32_t kOpWrite = 0b01u << 27;
constexpr std::uint32_t kType1CountMask = 0x7ffu;  // 11 bits
constexpr std::uint32_t kType2CountMask = 0x07ffffffu;

std::uint32_t type1_header(ConfigReg reg, std::uint32_t count) {
  return kType1 | kOpWrite | (static_cast<std::uint32_t>(reg) << 13) | (count & kType1CountMask);
}

std::uint32_t type2_header(std::uint32_t count) { return kType2 | kOpWrite | (count & kType2CountMask); }

std::uint32_t word_at(std::span<const std::uint8_t> bytes, std::size_t word_index) {
  const std::size_t i = word_index * 4;
  return (static_cast<std::uint32_t>(bytes[i]) << 24) | (static_cast<std::uint32_t>(bytes[i + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[i + 2]) << 8) | static_cast<std::uint32_t>(bytes[i + 3]);
}

void crc_word(dsp::Crc32& crc, std::uint32_t w) {
  crc.update_byte(static_cast<std::uint8_t>(w >> 24));
  crc.update_byte(static_cast<std::uint8_t>(w >> 16));
  crc.update_byte(static_cast<std::uint8_t>(w >> 8));
  crc.update_byte(static_cast<std::uint8_t>(w));
}

}  // namespace

BitstreamWriter::BitstreamWriter(const DeviceModel& device) : device_(device) {}

void BitstreamWriter::put_word(std::uint32_t w) {
  out_.push_back(static_cast<std::uint8_t>(w >> 24));
  out_.push_back(static_cast<std::uint8_t>(w >> 16));
  out_.push_back(static_cast<std::uint8_t>(w >> 8));
  out_.push_back(static_cast<std::uint8_t>(w));
}

void BitstreamWriter::put_header(ConfigReg reg, std::size_t words) {
  if (reg == ConfigReg::Fdri) {
    // FDRI writes always use a type-1 header with count 0 followed by a
    // type-2 count word, like large real-world FDRI bursts.
    put_word(type1_header(reg, 0));
    PDR_CHECK(words <= kType2CountMask, "BitstreamWriter", "FDRI burst too large");
    put_word(type2_header(static_cast<std::uint32_t>(words)));
  } else {
    PDR_CHECK(words <= kType1CountMask, "BitstreamWriter", "packet too large for type-1 header");
    put_word(type1_header(reg, static_cast<std::uint32_t>(words)));
  }
}

void BitstreamWriter::begin() {
  PDR_CHECK(!begun_, "BitstreamWriter::begin", "begin() called twice");
  begun_ = true;
  put_word(kDummyWord);
  put_word(kDummyWord);
  put_word(kSyncWord);
}

void BitstreamWriter::write_idcode() {
  PDR_CHECK(begun_ && !ended_, "BitstreamWriter::write_idcode", "stream not open");
  put_header(ConfigReg::Idcode, 1);
  put_word(device_.idcode);
}

void BitstreamWriter::write_far(const FrameAddress& addr) {
  PDR_CHECK(begun_ && !ended_, "BitstreamWriter::write_far", "stream not open");
  PDR_CHECK(FrameMap(device_).valid(addr), "BitstreamWriter::write_far",
            "frame address " + addr.to_string() + " not on device " + device_.name);
  put_header(ConfigReg::Far, 1);
  const std::uint32_t far = addr.encode();
  put_word(far);
  crc_word(crc_, far);
}

void BitstreamWriter::write_fdri(std::span<const std::uint8_t> data) {
  PDR_CHECK(begun_ && !ended_, "BitstreamWriter::write_fdri", "stream not open");
  const auto frame_bytes = static_cast<std::size_t>(device_.frame_bytes());
  PDR_CHECK(!data.empty() && data.size() % frame_bytes == 0, "BitstreamWriter::write_fdri",
            "FDRI data must be a whole number of frames");
  const std::size_t words = data.size() / 4;
  put_header(ConfigReg::Fdri, words);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint32_t word = word_at(data, w);
    put_word(word);
    crc_word(crc_, word);
  }
  have_fdri_frame_ = true;
}

void BitstreamWriter::write_mfwr(const FrameAddress& addr) {
  PDR_CHECK(begun_ && !ended_, "BitstreamWriter::write_mfwr", "stream not open");
  PDR_CHECK(have_fdri_frame_, "BitstreamWriter::write_mfwr",
            "MFWR requires a preceding FDRI frame to repeat");
  write_far(addr);
  put_header(ConfigReg::Mfwr, 2);
  put_word(0);  // two dummy payload words, as in the real protocol
  put_word(0);
  crc_word(crc_, 0);
  crc_word(crc_, 0);
}

void BitstreamWriter::end() {
  PDR_CHECK(begun_ && !ended_, "BitstreamWriter::end", "stream not open");
  ended_ = true;
  put_header(ConfigReg::Crc, 1);
  put_word(crc_.value());
  put_header(ConfigReg::Cmd, 1);
  put_word(static_cast<std::uint32_t>(ConfigCmd::Desync));
}

BitstreamReader::BitstreamReader(const DeviceModel& device, Sink& sink)
    : device_(device), frames_(device), sink_(sink) {}

ParseResult BitstreamReader::parse(std::span<const std::uint8_t> stream) {
  PDR_CHECK(stream.size() % 4 == 0, "BitstreamReader", "stream is not word aligned");
  const std::size_t total_words = stream.size() / 4;

  // Hunt for the sync word over leading dummy padding.
  std::size_t w = 0;
  while (w < total_words && word_at(stream, w) != kSyncWord) {
    PDR_CHECK(word_at(stream, w) == kDummyWord, "BitstreamReader",
              "garbage before sync word at word " + std::to_string(w));
    ++w;
  }
  PDR_CHECK(w < total_words, "BitstreamReader", "no sync word found");
  ++w;  // consume sync

  ParseResult result;
  dsp::Crc32 crc;
  std::optional<FrameAddress> far;
  bool idcode_checked = false;
  bool crc_checked = false;
  const auto frame_words = static_cast<std::size_t>(device_.frame_words());
  const auto frame_bytes = static_cast<std::size_t>(device_.frame_bytes());
  std::vector<std::uint8_t> last_frame;  ///< most recent FDRI frame, for MFWR

  while (w < total_words) {
    const std::uint32_t header = word_at(stream, w++);
    PDR_CHECK((header >> 29) == 0b001u, "BitstreamReader",
              "expected type-1 packet header at word " + std::to_string(w - 1));
    PDR_CHECK(((header >> 27) & 0x3u) == 0b01u, "BitstreamReader", "only write packets are supported");
    const auto reg = static_cast<ConfigReg>((header >> 13) & 0x3fffu);
    std::size_t count = header & kType1CountMask;
    if (reg == ConfigReg::Fdri) {
      PDR_CHECK(count == 0, "BitstreamReader", "FDRI type-1 header must carry count 0");
      PDR_CHECK(w < total_words, "BitstreamReader", "truncated FDRI type-2 header");
      const std::uint32_t t2 = word_at(stream, w++);
      PDR_CHECK((t2 >> 29) == 0b010u, "BitstreamReader", "expected type-2 header after FDRI");
      count = t2 & kType2CountMask;
    }
    PDR_CHECK(w + count <= total_words, "BitstreamReader", "packet payload runs past end of stream");

    switch (reg) {
      case ConfigReg::Idcode: {
        PDR_CHECK(count == 1, "BitstreamReader", "IDCODE packet must have 1 word");
        const std::uint32_t id = word_at(stream, w++);
        PDR_CHECK(id == device_.idcode, "BitstreamReader",
                  strprintf("IDCODE mismatch: stream 0x%08x, device %s has 0x%08x", id,
                            device_.name.c_str(), device_.idcode));
        idcode_checked = true;
        break;
      }
      case ConfigReg::Far: {
        PDR_CHECK(count == 1, "BitstreamReader", "FAR packet must have 1 word");
        const std::uint32_t far_word = word_at(stream, w++);
        far = FrameAddress::decode(far_word);
        PDR_CHECK(frames_.valid(*far), "BitstreamReader",
                  "FAR " + far->to_string() + " not on device " + device_.name);
        crc_word(crc, far_word);
        break;
      }
      case ConfigReg::Fdri: {
        PDR_CHECK(idcode_checked, "BitstreamReader", "FDRI before IDCODE check");
        PDR_CHECK(far.has_value(), "BitstreamReader", "FDRI with no FAR set");
        PDR_CHECK(count % frame_words == 0, "BitstreamReader",
                  "FDRI word count is not a whole number of frames");
        const std::size_t n_frames = count / frame_words;
        std::vector<std::uint8_t> frame(frame_bytes);
        for (std::size_t f = 0; f < n_frames; ++f) {
          for (std::size_t fw = 0; fw < frame_words; ++fw) {
            const std::uint32_t word = word_at(stream, w++);
            crc_word(crc, word);
            frame[fw * 4 + 0] = static_cast<std::uint8_t>(word >> 24);
            frame[fw * 4 + 1] = static_cast<std::uint8_t>(word >> 16);
            frame[fw * 4 + 2] = static_cast<std::uint8_t>(word >> 8);
            frame[fw * 4 + 3] = static_cast<std::uint8_t>(word);
          }
          sink_.write_frame(*far, frame);
          result.touched.push_back(*far);
          ++result.frames_written;
          if (f + 1 < n_frames) far = frames_.next(*far);
        }
        last_frame = std::move(frame);
        break;
      }
      case ConfigReg::Mfwr: {
        PDR_CHECK(count == 2, "BitstreamReader", "MFWR packet must have 2 words");
        PDR_CHECK(!last_frame.empty(), "BitstreamReader", "MFWR with no preceding FDRI frame");
        PDR_CHECK(far.has_value(), "BitstreamReader", "MFWR with no FAR set");
        for (int d = 0; d < 2; ++d) crc_word(crc, word_at(stream, w++));
        sink_.write_frame(*far, last_frame);
        result.touched.push_back(*far);
        ++result.frames_written;
        break;
      }
      case ConfigReg::Crc: {
        PDR_CHECK(count == 1, "BitstreamReader", "CRC packet must have 1 word");
        const std::uint32_t expect = word_at(stream, w++);
        PDR_CHECK(expect == crc.value(), "BitstreamReader",
                  strprintf("CRC mismatch: stream 0x%08x, computed 0x%08x", expect, crc.value()));
        crc_checked = true;
        break;
      }
      case ConfigReg::Cmd: {
        PDR_CHECK(count == 1, "BitstreamReader", "CMD packet must have 1 word");
        const auto cmd = static_cast<ConfigCmd>(word_at(stream, w++));
        if (cmd == ConfigCmd::Desync) {
          PDR_CHECK(crc_checked, "BitstreamReader", "DESYNC before CRC check");
          PDR_CHECK(w == total_words, "BitstreamReader", "trailing bytes after DESYNC");
          return result;
        }
        break;
      }
      default:
        raise("BitstreamReader", "write to unsupported register");
    }
  }
  raise("BitstreamReader", "stream ended without DESYNC");
}

namespace {

/// Discards frame data; used for validation-only parses.
class NullSink : public BitstreamReader::Sink {
 public:
  void write_frame(const FrameAddress&, std::span<const std::uint8_t>) override {}
};

/// Records packet actions for decode_packets().
class RecordingSink : public BitstreamReader::Sink {
 public:
  void write_frame(const FrameAddress& addr, std::span<const std::uint8_t>) override {
    touched.push_back(addr);
  }
  std::vector<FrameAddress> touched;
};

}  // namespace

ParseResult BitstreamReader::validate(const DeviceModel& device, std::span<const std::uint8_t> stream) {
  NullSink sink;
  return BitstreamReader(device, sink).parse(stream);
}

std::vector<PacketAction> decode_packets(const DeviceModel& device,
                                         std::span<const std::uint8_t> stream) {
  // Re-parse, recording one action per FAR/FDRI/IDCODE/CRC/CMD packet.
  // Structural validation is identical to BitstreamReader::parse (it is
  // BitstreamReader::parse), so reuse it, then decode headers lightly.
  BitstreamReader::validate(device, stream);  // throws if malformed

  std::vector<PacketAction> actions;
  const std::size_t total_words = stream.size() / 4;
  std::size_t w = 0;
  while (word_at(stream, w) != kSyncWord) ++w;
  ++w;
  while (w < total_words) {
    const std::uint32_t header = word_at(stream, w++);
    const auto reg = static_cast<ConfigReg>((header >> 13) & 0x3fffu);
    std::size_t count = header & kType1CountMask;
    if (reg == ConfigReg::Fdri) count = word_at(stream, w++) & kType2CountMask;
    PacketAction action;
    action.reg = reg;
    action.payload.reserve(count);
    for (std::size_t i = 0; i < count; ++i) action.payload.push_back(word_at(stream, w++));
    actions.push_back(std::move(action));
  }
  return actions;
}

std::string describe_bitstream(const DeviceModel& device, std::span<const std::uint8_t> stream) {
  const ParseResult r = BitstreamReader::validate(device, stream);
  return strprintf("%s bitstream: %s, %d frames, crc ok", device.name.c_str(),
                   human_bytes(stream.size()).c_str(), r.frames_written);
}

}  // namespace pdr::fabric
