// Synthetic Virtex-II-style configuration bitstream format.
//
// A bitstream is a sequence of big-endian 32-bit words:
//
//   <dummy pad words> SYNC
//   W IDCODE <idcode>
//   repeated: W FAR <frame address> ; W FDRI <n> <n frame-data words ...>
//   W CRC <crc32 over all FAR/FDRI payload bytes>
//   W CMD DESYNC
//
// Type-1 packet header: [31:29]=001, [28:27]=opcode (01 = write),
// [26:13]=register address, [10:0]=word count. This mirrors the real
// SelectMAP packet protocol closely enough that the protocol configuration
// builder (paper §5) has real work to do: framing, auto-incrementing frame
// addresses, CRC sealing, and desync.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsp/crc.hpp"
#include "fabric/frames.hpp"

namespace pdr::fabric {

/// Configuration registers addressed by packets.
enum class ConfigReg : std::uint16_t {
  Crc = 0,
  Far = 1,
  Fdri = 2,
  Mfwr = 3,  ///< multi-frame write: repeat the last FDRI frame at the current FAR
  Cmd = 4,
  Idcode = 12,
};

/// CMD register values.
enum class ConfigCmd : std::uint32_t {
  Null = 0,
  WriteConfig = 1,
  Desync = 13,
};

inline constexpr std::uint32_t kSyncWord = 0xaa995566u;
inline constexpr std::uint32_t kDummyWord = 0xffffffffu;

/// One parsed packet action (exposed for tests / inspection tools).
struct PacketAction {
  ConfigReg reg = ConfigReg::Cmd;
  std::vector<std::uint32_t> payload;
};

/// Serializes configuration command sequences into bitstream bytes.
class BitstreamWriter {
 public:
  explicit BitstreamWriter(const DeviceModel& device);

  /// Emits pad words and the sync word; call first.
  void begin();

  /// Emits the IDCODE check word.
  void write_idcode();

  /// Sets the frame address register.
  void write_far(const FrameAddress& addr);

  /// Writes `frames` consecutive frames of data starting at the current
  /// FAR. `data.size()` must equal frames * frame_bytes and frame_bytes
  /// must divide into whole words.
  void write_fdri(std::span<const std::uint8_t> data);

  /// Multi-frame write (compression): repeats the data of the last FDRI
  /// frame at `addr` — a 4-word packet pair instead of a whole frame.
  /// Requires a preceding write_fdri in this stream.
  void write_mfwr(const FrameAddress& addr);

  /// Seals the stream: CRC word + DESYNC command. Call last.
  void end();

  /// The finished stream (valid after end()).
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void put_word(std::uint32_t w);
  void put_header(ConfigReg reg, std::size_t words);

  DeviceModel device_;
  std::vector<std::uint8_t> out_;
  dsp::Crc32 crc_;
  bool begun_ = false;
  bool ended_ = false;
  bool have_fdri_frame_ = false;  ///< MFWR legality
};

/// Result of parsing / applying a bitstream.
struct ParseResult {
  int frames_written = 0;
  std::vector<FrameAddress> touched;  ///< every frame written, in order
};

/// Parses a bitstream and hands each frame write to a sink. Validates the
/// sync word, the IDCODE against the device, word counts, frame
/// alignment, the final CRC and the DESYNC trailer; throws pdr::Error with
/// a precise message on any violation.
class BitstreamReader {
 public:
  /// Frame sink: receives (address, frame_bytes) for every frame.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void write_frame(const FrameAddress& addr, std::span<const std::uint8_t> data) = 0;
  };

  BitstreamReader(const DeviceModel& device, Sink& sink);

  /// Parses the full stream, applying all frame writes.
  ParseResult parse(std::span<const std::uint8_t> stream);

  /// Parses without a device-attached sink (validation only).
  static ParseResult validate(const DeviceModel& device, std::span<const std::uint8_t> stream);

 private:
  DeviceModel device_;
  FrameMap frames_;
  Sink& sink_;
};

/// Decodes the packet list of a bitstream without applying it (debugging /
/// tests). Performs the same structural validation as BitstreamReader.
std::vector<PacketAction> decode_packets(const DeviceModel& device,
                                         std::span<const std::uint8_t> stream);

/// Human-readable one-line summary ("sync @byte 8, 88 frames, crc ok").
std::string describe_bitstream(const DeviceModel& device, std::span<const std::uint8_t> stream);

}  // namespace pdr::fabric
