#include "fabric/bus_macro.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {

int bus_macros_needed(int signal_count) {
  PDR_CHECK(signal_count >= 0, "bus_macros_needed", "negative signal count");
  return (signal_count + kBusMacroWidth - 1) / kBusMacroWidth;
}

std::vector<BusMacro> plan_bus_macros(const std::string& region_name, int boundary_col,
                                      int in_signals, int out_signals, int max_row_bands,
                                      int device_clb_cols) {
  PDR_CHECK(device_clb_cols >= 2, "plan_bus_macros",
            strprintf("device has %d CLB columns; a bus macro needs columns on both sides",
                      device_clb_cols));
  // A macro straddles boundary_col-1 | boundary_col; at the device edges
  // one of those columns does not exist, so the bridge has no static side.
  PDR_CHECK(boundary_col >= 1 && boundary_col <= device_clb_cols - 1, "plan_bus_macros",
            strprintf("region %s bus macro at boundary %d would straddle CLB columns %d | %d, "
                      "but column %d does not exist on a %d-column device",
                      region_name.c_str(), boundary_col, boundary_col - 1, boundary_col,
                      boundary_col < 1 ? boundary_col - 1 : boundary_col, device_clb_cols));
  const int n_in = bus_macros_needed(in_signals);
  const int n_out = bus_macros_needed(out_signals);
  PDR_CHECK(n_in + n_out <= max_row_bands, "plan_bus_macros",
            strprintf("region %s needs %d bus macros at column %d but only %d row bands exist",
                      region_name.c_str(), n_in + n_out, boundary_col, max_row_bands));
  std::vector<BusMacro> out;
  int band = 0;
  for (int i = 0; i < n_in; ++i) {
    out.push_back(BusMacro{strprintf("%s_bm_in%d", region_name.c_str(), i), boundary_col, band++,
                           BusMacroDir::LeftToRight});
  }
  for (int i = 0; i < n_out; ++i) {
    out.push_back(BusMacro{strprintf("%s_bm_out%d", region_name.c_str(), i), boundary_col, band++,
                           BusMacroDir::RightToLeft});
  }
  return out;
}

}  // namespace pdr::fabric
