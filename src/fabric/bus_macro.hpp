// Bus macros: the fixed routing bridges between static and reconfigurable
// regions.
//
// The paper (§5): "The communications between static and dynamic parts use
// a special bus macro. This bus is a fixed routing bridge between two
// sides and is pre-routed. The current implementation of the bus macro
// uses eight 3-state buffers, their position exactly straddles the
// dividing line between designs."
//
// We model a bus macro as an 8-signal bridge pinned at a CLB column
// boundary. A floorplan must provision enough macros at each region edge
// to carry every signal crossing it; the placer computes that from module
// port widths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdr::fabric {

/// Signals carried by one bus macro (eight 3-state buffers).
inline constexpr int kBusMacroWidth = 8;

enum class BusMacroDir : std::uint8_t { LeftToRight, RightToLeft };

/// One pre-routed bus macro instance.
struct BusMacro {
  std::string name;
  int boundary_col = 0;  ///< straddles the boundary between CLB columns boundary_col-1 | boundary_col
  int row_band = 0;      ///< vertical position index (0 = bottom band)
  BusMacroDir dir = BusMacroDir::LeftToRight;
};

/// Computes how many bus macros are needed to carry `signal_count` signals
/// in one direction (ceil division by the macro width).
int bus_macros_needed(int signal_count);

/// Plans bus macro instances for a region edge: `in_signals` entering the
/// region and `out_signals` leaving it across the boundary at
/// `boundary_col`. Row bands are assigned sequentially from the bottom.
/// Throws if more macros are requested than `max_row_bands` can hold, or
/// if the boundary sits on a device edge: a macro straddles CLB columns
/// boundary_col-1 | boundary_col, so on a `device_clb_cols`-column device
/// only boundaries in [1, device_clb_cols-1] have a neighbor column on
/// both sides.
std::vector<BusMacro> plan_bus_macros(const std::string& region_name, int boundary_col,
                                      int in_signals, int out_signals, int max_row_bands,
                                      int device_clb_cols);

}  // namespace pdr::fabric
