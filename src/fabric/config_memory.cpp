#include "fabric/config_memory.hpp"

#include "util/error.hpp"

namespace pdr::fabric {

ConfigMemory::ConfigMemory(const DeviceModel& device)
    : device_(device),
      map_(device),
      frames_(static_cast<std::size_t>(device.total_frames()),
              std::vector<std::uint8_t>(static_cast<std::size_t>(device.frame_bytes()), 0)),
      owners_(static_cast<std::size_t>(device.total_frames())) {}

void ConfigMemory::write_frame(const FrameAddress& addr, std::span<const std::uint8_t> data) {
  PDR_CHECK(data.size() == static_cast<std::size_t>(device_.frame_bytes()), "ConfigMemory",
            "frame data size mismatch");
  const auto i = static_cast<std::size_t>(map_.linear_index(addr));
  frames_[i].assign(data.begin(), data.end());
  owners_[i] = writer_tag_;
  ++frames_written_;
}

std::span<const std::uint8_t> ConfigMemory::read_frame(const FrameAddress& addr) const {
  return frames_[static_cast<std::size_t>(map_.linear_index(addr))];
}

const std::string& ConfigMemory::frame_owner(const FrameAddress& addr) const {
  return owners_[static_cast<std::size_t>(map_.linear_index(addr))];
}

void ConfigMemory::flip_bit(const FrameAddress& addr, int byte_index, int bit) {
  PDR_CHECK(byte_index >= 0 && byte_index < device_.frame_bytes(), "ConfigMemory::flip_bit",
            "byte index out of range");
  PDR_CHECK(bit >= 0 && bit < 8, "ConfigMemory::flip_bit", "bit index out of range");
  const auto i = static_cast<std::size_t>(map_.linear_index(addr));
  frames_[i][static_cast<std::size_t>(byte_index)] ^= static_cast<std::uint8_t>(1u << bit);
  ++upsets_;
}

bool ConfigMemory::region_owned_by(std::span<const FrameAddress> addrs, const std::string& tag) const {
  for (const auto& a : addrs)
    if (frame_owner(a) != tag) return false;
  return true;
}

}  // namespace pdr::fabric
