// Device configuration memory.
//
// Holds the current contents of every configuration frame and, per frame,
// the name of the module whose bitstream last wrote it. This is how the
// simulation observes which module is "physically" present in a
// reconfigurable region at any instant.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabric/bitstream.hpp"
#include "fabric/frames.hpp"

namespace pdr::fabric {

class ConfigMemory : public BitstreamReader::Sink {
 public:
  explicit ConfigMemory(const DeviceModel& device);

  const DeviceModel& device() const { return device_; }

  /// BitstreamReader sink: stores the frame and tags it with the pending
  /// writer tag (see set_writer_tag).
  void write_frame(const FrameAddress& addr, std::span<const std::uint8_t> data) override;

  /// Tag recorded on every subsequent frame write (typically the module
  /// name whose bitstream is being loaded).
  void set_writer_tag(std::string tag) { writer_tag_ = std::move(tag); }

  /// Readback of one frame.
  std::span<const std::uint8_t> read_frame(const FrameAddress& addr) const;

  /// Owner tag of a frame ("" if never written).
  const std::string& frame_owner(const FrameAddress& addr) const;

  /// Number of frames ever written.
  int frames_written() const { return frames_written_; }

  /// True if every frame in `addrs` is owned by `tag`.
  bool region_owned_by(std::span<const FrameAddress> addrs, const std::string& tag) const;

  /// Flips one bit of a stored frame — a single-event upset (SEU) model
  /// for scrubbing experiments. The owner tag is unchanged: corruption is
  /// invisible to bookkeeping, only to payload verification. Throws
  /// pdr::Error on an invalid address, byte_index or bit.
  void flip_bit(const FrameAddress& addr, int byte_index, int bit);

  /// Number of bits ever flipped through flip_bit().
  int upsets() const { return upsets_; }

 private:
  DeviceModel device_;
  FrameMap map_;
  std::vector<std::vector<std::uint8_t>> frames_;
  std::vector<std::string> owners_;
  std::string writer_tag_;
  int frames_written_ = 0;
  int upsets_ = 0;
};

}  // namespace pdr::fabric
