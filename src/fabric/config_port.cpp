#include "fabric/config_port.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {

const char* port_kind_name(PortKind kind) {
  switch (kind) {
    case PortKind::Icap: return "ICAP";
    case PortKind::SelectMap: return "SelectMAP";
    case PortKind::Jtag: return "JTAG";
  }
  return "?";
}

ConfigPort::ConfigPort(PortKind kind, PortTiming timing, ConfigMemory& memory)
    : kind_(kind), timing_(timing), memory_(memory) {
  PDR_CHECK(timing_.width_bits > 0 && timing_.clock_hz > 0, "ConfigPort", "invalid timing");
}

PortTiming ConfigPort::default_timing(PortKind kind) {
  switch (kind) {
    case PortKind::Icap: return PortTiming{8, 66e6, 500};
    case PortKind::SelectMap: return PortTiming{8, 50e6, 1000};
    case PortKind::Jtag: return PortTiming{1, 33e6, 2000};
  }
  return PortTiming{};
}

TimeNs ConfigPort::transfer_time(Bytes bytes) const {
  const auto bits = static_cast<double>(bytes) * 8.0;
  const double cycles = bits / static_cast<double>(timing_.width_bits);
  const double ns = cycles * 1e9 / timing_.clock_hz;
  const auto whole = static_cast<TimeNs>(ns);
  return timing_.setup_overhead + ((static_cast<double>(whole) < ns) ? whole + 1 : whole);
}

double ConfigPort::bandwidth_bytes_per_s() const {
  return timing_.clock_hz * static_cast<double>(timing_.width_bits) / 8.0;
}

void ConfigPort::abort_load(std::span<const std::uint8_t> stream, const std::string& module_tag,
                            double fraction) {
  // Cut on a word boundary strictly inside the stream: at least one word
  // goes through (the port accepted the sync sequence before dying), and
  // the DESYNC word never arrives, so the parse below always throws.
  const std::size_t words = stream.size() / 4;
  const std::size_t keep =
      std::clamp<std::size_t>(static_cast<std::size_t>(fraction * static_cast<double>(words)), 1,
                              words - 1);
  const auto prefix = stream.first(keep * 4);

  memory_.set_writer_tag(module_tag);
  BitstreamReader reader(memory_.device(), memory_);
  const int frames_before = memory_.frames_written();
  try {
    reader.parse(prefix);
  } catch (const Error&) {
    // Expected: a truncated stream cannot end cleanly. The frames fed
    // before the cut are already committed to configuration memory.
  }

  ++loads_;
  ++aborted_loads_;
  total_busy_ += transfer_time(prefix.size());
  total_bytes_ += prefix.size();
  raise("ConfigPort",
        strprintf("load of '%s' aborted after %zu of %zu bytes (%d frames committed)",
                  module_tag.c_str(), prefix.size(), stream.size(),
                  memory_.frames_written() - frames_before));
}

LoadReport ConfigPort::load(std::span<const std::uint8_t> stream, const std::string& module_tag) {
  if (fault_hook_) {
    const double fraction = fault_hook_(stream.size(), module_tag);
    if (fraction > 0.0 && fraction < 1.0 && stream.size() / 4 > 1)
      abort_load(stream, module_tag, fraction);
  }
  memory_.set_writer_tag(module_tag);
  BitstreamReader reader(memory_.device(), memory_);
  const ParseResult parsed = reader.parse(stream);

  LoadReport report;
  report.stream_bytes = stream.size();
  report.frames_written = parsed.frames_written;
  report.duration = transfer_time(stream.size());

  ++loads_;
  total_busy_ += report.duration;
  total_bytes_ += report.stream_bytes;
  return report;
}

}  // namespace pdr::fabric
