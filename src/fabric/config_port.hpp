// Configuration port models: ICAP, SelectMAP and (for completeness of the
// Figure-2 sweep) serial JTAG.
//
// A port is a byte funnel into the device's configuration memory: loading
// a bitstream costs `setup + ceil(bits / width) / clock` of simulated
// time, and only one load can be in flight at a time (the simulator owns
// exclusive scheduling; this class enforces only the accounting).
//
//  - ICAP: the Internal Configuration Access Port, reachable from the
//    FPGA's own fixed logic — the paper's case (a) standalone
//    self-reconfiguration.
//  - SelectMAP: the external 8-bit parallel port, driven by a CPU or CPLD
//    — the paper's case (b).
//  - JTAG: 1-bit serial, the slow fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "fabric/config_memory.hpp"
#include "util/units.hpp"

namespace pdr::fabric {

enum class PortKind : std::uint8_t { Icap, SelectMap, Jtag };

const char* port_kind_name(PortKind kind);

/// Timing knobs of a configuration port.
struct PortTiming {
  int width_bits = 8;          ///< bits accepted per configuration clock
  double clock_hz = 50e6;      ///< configuration clock
  TimeNs setup_overhead = 0;   ///< fixed per-load overhead (sync, startup)
};

/// Summary of one completed load.
struct LoadReport {
  Bytes stream_bytes = 0;
  int frames_written = 0;
  TimeNs duration = 0;
};

class ConfigPort {
 public:
  ConfigPort(PortKind kind, PortTiming timing, ConfigMemory& memory);

  /// Default datasheet-flavoured timings per port kind:
  /// ICAP 8 bit @ 66 MHz, SelectMAP 8 bit @ 50 MHz, JTAG 1 bit @ 33 MHz.
  static PortTiming default_timing(PortKind kind);

  PortKind kind() const { return kind_; }
  const char* name() const { return port_kind_name(kind_); }
  const PortTiming& timing() const { return timing_; }

  /// Pure timing model: how long feeding `bytes` through this port takes.
  TimeNs transfer_time(Bytes bytes) const;

  /// Peak sustained bandwidth in bytes per second.
  double bandwidth_bytes_per_s() const;

  /// Parses and applies a full (partial) bitstream, tagging written frames
  /// with `module_tag`. Throws pdr::Error if the stream is malformed; on
  /// throw the configuration memory may hold a partially-written region
  /// (exactly like real hardware after an aborted load).
  LoadReport load(std::span<const std::uint8_t> stream, const std::string& module_tag);

  /// Fault hook consulted at the start of every load: return a value in
  /// (0, 1) to cut the transfer after that fraction of the stream's words
  /// (the frames delivered before the cut stay written — real hardware
  /// after a dropped port clock — and load() throws pdr::Error); any
  /// other value lets the load proceed normally.
  using FaultHook = std::function<double(Bytes stream_bytes, const std::string& module_tag)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Cumulative accounting across loads.
  int loads() const { return loads_; }
  int aborted_loads() const { return aborted_loads_; }
  TimeNs total_busy() const { return total_busy_; }
  Bytes total_bytes() const { return total_bytes_; }

 private:
  /// Feeds only `fraction` of the stream, then throws the abort error.
  [[noreturn]] void abort_load(std::span<const std::uint8_t> stream,
                               const std::string& module_tag, double fraction);

  PortKind kind_;
  PortTiming timing_;
  ConfigMemory& memory_;
  FaultHook fault_hook_;
  int loads_ = 0;
  int aborted_loads_ = 0;
  TimeNs total_busy_ = 0;
  Bytes total_bytes_ = 0;
};

}  // namespace pdr::fabric
