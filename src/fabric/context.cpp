#include "fabric/context.hpp"

#include "util/error.hpp"

namespace pdr::fabric {

std::vector<std::uint8_t> snapshot_region(const ConfigMemory& memory, const Floorplan& plan,
                                          const std::string& region_name) {
  const auto frames = plan.region_frames(region_name);
  PDR_CHECK(!frames.empty(), "snapshot_region", "region has no frames");
  const DeviceModel& device = memory.device();
  const FrameMap map(device);

  BitstreamWriter writer(device);
  writer.begin();
  writer.write_idcode();
  std::size_t i = 0;
  while (i < frames.size()) {
    std::size_t j = i;
    while (j + 1 < frames.size() &&
           map.linear_index(frames[j + 1]) == map.linear_index(frames[j]) + 1)
      ++j;
    writer.write_far(frames[i]);
    std::vector<std::uint8_t> burst;
    burst.reserve((j - i + 1) * static_cast<std::size_t>(device.frame_bytes()));
    for (std::size_t k = i; k <= j; ++k) {
      const auto data = memory.read_frame(frames[k]);
      burst.insert(burst.end(), data.begin(), data.end());
    }
    writer.write_fdri(burst);
    i = j + 1;
  }
  writer.end();
  return writer.take();
}

int restore_region(ConfigMemory& memory, const Floorplan& plan, const std::string& region_name,
                   std::span<const std::uint8_t> snapshot, const std::string& tag) {
  const auto frames = plan.region_frames(region_name);
  memory.set_writer_tag(tag);
  BitstreamReader reader(memory.device(), memory);
  const ParseResult parsed = reader.parse(snapshot);
  PDR_CHECK(parsed.frames_written == static_cast<int>(frames.size()), "restore_region",
            "snapshot does not cover exactly the region's frames");
  for (std::size_t k = 0; k < frames.size(); ++k)
    PDR_CHECK(parsed.touched[k] == frames[k], "restore_region",
              "snapshot frame order does not match region '" + region_name + "'");
  return parsed.frames_written;
}

}  // namespace pdr::fabric
