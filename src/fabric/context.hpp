// Module context save / restore.
//
// A reconfigurable module's configuration frames ARE its state (LUT RAM,
// SRL contents, BRAM data live in the configuration plane on Virtex-II).
// Capturing a region's frames into a bitstream-formatted snapshot and
// replaying it later — possibly into a congruent region elsewhere, via
// relocate_bitstream — is the standard mechanism for task preemption and
// migration on partially reconfigurable fabrics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabric/config_memory.hpp"
#include "fabric/floorplan.hpp"

namespace pdr::fabric {

/// Reads region `region_name`'s current frames out of `memory` and packs
/// them as a loadable partial bitstream (readback + repackaging).
std::vector<std::uint8_t> snapshot_region(const ConfigMemory& memory, const Floorplan& plan,
                                          const std::string& region_name);

/// Restores a snapshot into `region_name` via the given port-less direct
/// write (tags frames with `tag`). The snapshot must cover exactly the
/// region's frames. Returns the number of frames restored.
int restore_region(ConfigMemory& memory, const Floorplan& plan, const std::string& region_name,
                   std::span<const std::uint8_t> snapshot, const std::string& tag);

}  // namespace pdr::fabric
