#include "fabric/device.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {
namespace {

DeviceModel base(std::string name, int rows, int cols, int bram_cols, int brams_per_col,
                 std::uint32_t idcode) {
  DeviceModel d;
  d.name = std::move(name);
  d.clb_rows = rows;
  d.clb_cols = cols;
  d.bram_cols = bram_cols;
  d.brams_per_col = brams_per_col;
  d.idcode = idcode;
  return d;
}

}  // namespace

DeviceModel xc2v1000() { return base("XC2V1000", 40, 32, 4, 10, 0x01028093u); }

DeviceModel xc2v2000() { return base("XC2V2000", 56, 48, 4, 14, 0x01038093u); }

DeviceModel xc2v3000() { return base("XC2V3000", 64, 56, 6, 16, 0x01040093u); }

DeviceModel xc2v6000() { return base("XC2V6000", 96, 88, 6, 24, 0x01060093u); }

DeviceModel device_by_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "xc2v1000") return xc2v1000();
  if (n == "xc2v2000") return xc2v2000();
  if (n == "xc2v3000") return xc2v3000();
  if (n == "xc2v6000") return xc2v6000();
  raise("device_by_name", "unknown device '" + name + "'");
}

}  // namespace pdr::fabric
