// Virtex-II device models.
//
// The paper's case study runs on a Xilinx XC2V2000. We model the Virtex-II
// family geometry that the reconfiguration arithmetic depends on: the CLB
// array (slices / LUTs / flip-flops), BRAM and MULT18 columns, and the
// column-oriented configuration plane (frames per column, bytes per
// frame). The frame-size model `frame_bits = 80 * clb_rows + 384` lands
// within 0.1 % of the documented full-device bitstream sizes (e.g. the
// XC2V2000 model gives 851,200 bytes vs. 851,044 documented), which is the
// property the paper's "≈ 4 ms to reconfigure 8 % of the device" claim
// rests on.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace pdr::fabric {

/// Static geometry of one device of the (modeled) Virtex-II family.
struct DeviceModel {
  std::string name;

  // Logic plane.
  int clb_rows = 0;  ///< CLB array height
  int clb_cols = 0;  ///< CLB array width (columns of the configuration plane)
  int slices_per_clb = 4;
  int luts_per_slice = 2;  ///< 4-input LUTs
  int ffs_per_slice = 2;

  // Embedded columns. Each BRAM column carries `brams_per_col` 18-kbit
  // block RAMs and the same number of MULT18X18 multipliers.
  int bram_cols = 0;
  int brams_per_col = 0;

  // Configuration plane (column oriented, full-height frames).
  int frames_per_clb_col = 22;
  int frames_per_bram_col = 64;       ///< BRAM content frames
  int frames_per_bram_int_col = 22;   ///< BRAM interconnect frames
  std::uint32_t idcode = 0;

  int total_slices() const { return clb_rows * clb_cols * slices_per_clb; }
  int total_luts() const { return total_slices() * luts_per_slice; }
  int total_ffs() const { return total_slices() * ffs_per_slice; }
  int total_brams() const { return bram_cols * brams_per_col; }
  int total_mult18() const { return bram_cols * brams_per_col; }
  int total_tbufs() const { return clb_rows * clb_cols * 2; }  ///< 2 TBUFs per CLB

  /// Bits in one configuration frame (model; see file comment).
  int frame_bits() const { return 80 * clb_rows + 384; }
  int frame_bytes() const { return frame_bits() / 8; }
  int frame_words() const { return frame_bits() / 32; }

  /// Frames in the whole device.
  int total_frames() const {
    return clb_cols * frames_per_clb_col + bram_cols * (frames_per_bram_col + frames_per_bram_int_col);
  }

  /// Raw configuration payload of the full device (frame data only).
  Bytes config_payload_bytes() const {
    return static_cast<Bytes>(total_frames()) * static_cast<Bytes>(frame_bytes());
  }

  /// Slices per single CLB column (one column of the array, full height).
  int slices_per_clb_col() const { return clb_rows * slices_per_clb; }
};

/// XC2V1000: 40 x 32 CLBs, 5,120 slices.
DeviceModel xc2v1000();

/// XC2V2000: 56 x 48 CLBs, 10,752 slices — the paper's case-study device.
DeviceModel xc2v2000();

/// XC2V3000: 64 x 56 CLBs, 14,336 slices.
DeviceModel xc2v3000();

/// XC2V6000: 96 x 88 CLBs, 33,792 slices.
DeviceModel xc2v6000();

/// Looks a model up by name ("XC2V2000", case-insensitive). Throws on
/// unknown names.
DeviceModel device_by_name(const std::string& name);

}  // namespace pdr::fabric
