#include "fabric/floorplan.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {

ClbCols to_clb_cols(SliceCols w) {
  PDR_CHECK(w.value % kSliceColsPerClbCol == 0, "to_clb_cols",
            strprintf("%d slice-columns is not a whole number of CLB columns "
                      "(1 CLB column = %d slice-columns)",
                      w.value, kSliceColsPerClbCol));
  return ClbCols{w.value / kSliceColsPerClbCol};
}

Floorplan::Floorplan(DeviceModel device) : device_(std::move(device)), frames_(device_) {}

void Floorplan::check_overlap(int col_lo, int col_hi) const {
  for (const auto& r : regions_) {
    const bool disjoint = col_hi < r.col_lo || col_lo > r.col_hi;
    PDR_CHECK(disjoint, "Floorplan",
              strprintf("columns [%d, %d] overlap region '%s' [%d, %d]", col_lo, col_hi,
                        r.name.c_str(), r.col_lo, r.col_hi));
  }
}

const Region& Floorplan::add_region(const std::string& name, int col_lo, int col_hi,
                                    bool reconfigurable, int in_signals, int out_signals) {
  PDR_CHECK(find_region(name) == nullptr, "Floorplan", "duplicate region name '" + name + "'");
  PDR_CHECK(0 <= col_lo && col_lo <= col_hi && col_hi < device_.clb_cols, "Floorplan",
            strprintf("region '%s' columns [%d, %d] outside device (%d CLB columns)", name.c_str(),
                      col_lo, col_hi, device_.clb_cols));
  check_overlap(col_lo, col_hi);

  Region r;
  r.name = name;
  r.col_lo = col_lo;
  r.col_hi = col_hi;
  r.reconfigurable = reconfigurable;

  if (reconfigurable) {
    PDR_CHECK(r.width().value >= kMinReconfigClbCols, "Floorplan",
              strprintf("reconfigurable region '%s' is %d slice-columns (%d CLB column(s)) wide; "
                        "the Modular Design rule requires at least %d slice-columns (%d CLB "
                        "columns)",
                        name.c_str(), r.width_slices().value, r.width().value,
                        kMinReconfigSliceCols, kMinReconfigClbCols));
    // Bus macros straddle each boundary with the static area. Split the
    // crossing signals between the left and right edges when both exist
    // (left edge preferred for inputs, right for outputs, like the paper's
    // left-to-right pipeline floorplans).
    const bool has_left = col_lo > 0;
    const bool has_right = col_hi < device_.clb_cols - 1;
    PDR_CHECK(has_left || has_right, "Floorplan",
              "reconfigurable region '" + name + "' covers the whole device; nowhere for bus macros");
    // Each CLB row can host one macro band; full height gives clb_rows bands.
    const int bands = device_.clb_rows;
    if (has_left && has_right) {
      auto left = plan_bus_macros(name + "_L", col_lo, in_signals, 0, bands, device_.clb_cols);
      auto right =
          plan_bus_macros(name + "_R", col_hi + 1, 0, out_signals, bands, device_.clb_cols);
      r.bus_macros = std::move(left);
      r.bus_macros.insert(r.bus_macros.end(), right.begin(), right.end());
    } else {
      const int boundary = has_left ? col_lo : col_hi + 1;
      r.bus_macros =
          plan_bus_macros(name, boundary, in_signals, out_signals, bands, device_.clb_cols);
    }
  }

  regions_.push_back(std::move(r));
  return regions_.back();
}

const Region* Floorplan::find_region(const std::string& name) const {
  for (const auto& r : regions_)
    if (r.name == name) return &r;
  return nullptr;
}

const Region& Floorplan::region(const std::string& name) const {
  const Region* r = find_region(name);
  PDR_CHECK(r != nullptr, "Floorplan::region", "no region named '" + name + "'");
  return *r;
}

std::vector<const Region*> Floorplan::reconfigurable_regions() const {
  std::vector<const Region*> out;
  for (const auto& r : regions_)
    if (r.reconfigurable) out.push_back(&r);
  return out;
}

std::vector<int> Floorplan::free_columns() const {
  std::vector<bool> used(static_cast<std::size_t>(device_.clb_cols), false);
  for (const auto& r : regions_)
    for (int c = r.col_lo; c <= r.col_hi; ++c) used[static_cast<std::size_t>(c)] = true;
  std::vector<int> out;
  for (int c = 0; c < device_.clb_cols; ++c)
    if (!used[static_cast<std::size_t>(c)]) out.push_back(c);
  return out;
}

std::vector<FrameAddress> Floorplan::region_frames(const std::string& name) const {
  const Region& r = region(name);
  return frames_.frames_for_clb_range(r.col_lo, r.col_hi);
}

Bytes Floorplan::region_payload_bytes(const std::string& name) const {
  return static_cast<Bytes>(region_frames(name).size()) *
         static_cast<Bytes>(device_.frame_bytes());
}

double Floorplan::region_fraction(const std::string& name) const {
  return static_cast<double>(region_frames(name).size()) /
         static_cast<double>(device_.total_frames());
}

int Floorplan::region_slices(const std::string& name) const {
  return region(name).width_cols() * device_.slices_per_clb_col();
}

std::string Floorplan::render() const {
  std::string out(static_cast<std::size_t>(device_.clb_cols), '.');
  for (const auto& r : regions_) {
    const char mark = r.reconfigurable ? 'D' : 'S';
    for (int c = r.col_lo; c <= r.col_hi; ++c) out[static_cast<std::size_t>(c)] = mark;
  }
  std::string legend;
  for (const auto& r : regions_)
    legend += strprintf("  %s: cols [%d, %d]%s\n", r.name.c_str(), r.col_lo, r.col_hi,
                        r.reconfigurable ? " (reconfigurable)" : "");
  return device_.name + " |" + out + "|\n" + legend;
}

}  // namespace pdr::fabric
