// Device floorplan: static area plus full-height reconfigurable regions.
//
// The paper's Modular-Design placement rules (§5) are enforced here:
//  - a reconfigurable module spans the full height of the device,
//  - its width is at least four slices (= two CLB columns, since a
//    Virtex-II CLB column is two slice-columns wide),
//  - regions do not overlap,
//  - static/dynamic signals cross only through bus macros pinned at the
//    region boundaries.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fabric/bus_macro.hpp"
#include "fabric/device.hpp"
#include "fabric/frames.hpp"

namespace pdr::fabric {

/// Minimum reconfigurable-region width: 4 slice-columns = 2 CLB columns.
inline constexpr int kMinReconfigClbCols = 2;

/// One full-height column range of the device.
struct Region {
  std::string name;
  int col_lo = 0;  ///< first CLB column (inclusive)
  int col_hi = 0;  ///< last CLB column (inclusive)
  bool reconfigurable = false;
  std::vector<BusMacro> bus_macros;  ///< bridges at this region's edges

  int width_cols() const { return col_hi - col_lo + 1; }
  /// Width in slice-columns (the unit the paper's 4-slice rule uses).
  int width_slice_cols() const { return width_cols() * 2; }
};

class Floorplan {
 public:
  explicit Floorplan(DeviceModel device);

  const DeviceModel& device() const { return device_; }
  const FrameMap& frame_map() const { return frames_; }

  /// Adds a region; validates the placement rules above. For
  /// reconfigurable regions, plans bus macros for `in_signals` /
  /// `out_signals` crossing each of its boundaries with the static area.
  const Region& add_region(const std::string& name, int col_lo, int col_hi, bool reconfigurable,
                           int in_signals = 0, int out_signals = 0);

  const Region& region(const std::string& name) const;
  const Region* find_region(const std::string& name) const;
  const std::vector<Region>& regions() const { return regions_; }

  std::vector<const Region*> reconfigurable_regions() const;

  /// CLB columns not covered by any region (available static area).
  std::vector<int> free_columns() const;

  /// All configuration frames of a region (CLB + interleaved BRAM cols).
  std::vector<FrameAddress> region_frames(const std::string& name) const;

  /// Frame-data payload bytes of a partial bitstream covering the region.
  Bytes region_payload_bytes(const std::string& name) const;

  /// Region frames as a fraction of total device frames (the paper quotes
  /// its dynamic region as 8 % of the FPGA).
  double region_fraction(const std::string& name) const;

  /// Slices available in a region.
  int region_slices(const std::string& name) const;

  /// ASCII rendering of the column map, e.g. "SSSS DDDD SSSS..." — used by
  /// examples to show the resulting floorplan.
  std::string render() const;

 private:
  void check_overlap(int col_lo, int col_hi) const;

  DeviceModel device_;
  FrameMap frames_;
  std::vector<Region> regions_;
};

}  // namespace pdr::fabric
