// Device floorplan: static area plus full-height reconfigurable regions.
//
// The paper's Modular-Design placement rules (§5) are enforced here:
//  - a reconfigurable module spans the full height of the device,
//  - its width is at least four slices (= two CLB columns, since a
//    Virtex-II CLB column is two slice-columns wide),
//  - regions do not overlap,
//  - static/dynamic signals cross only through bus macros pinned at the
//    region boundaries.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fabric/bus_macro.hpp"
#include "fabric/device.hpp"
#include "fabric/frames.hpp"

namespace pdr::fabric {

// -------------------------------------------------------------- width units
//
// Virtex-II widths come in two units that are numerically off by exactly a
// factor of two: the configuration grid (and this floorplan) counts CLB
// columns, while the paper's Modular Design rule counts slice-columns
// (one CLB column = two slice-columns). A bare `int` width silently means
// either, which is how a spec authored in slice-columns can pass the
// RegionTooNarrow check at half the intended width. Widths therefore cross
// API boundaries as distinct wrapper types with an asserting conversion.

/// Slice-columns per CLB column on Virtex-II.
inline constexpr int kSliceColsPerClbCol = 2;

/// A width counted in CLB columns (the configuration-grid unit).
struct ClbCols {
  int value = 0;
  constexpr bool operator==(const ClbCols&) const = default;
};

/// A width counted in slice-columns (the paper's §5 unit).
struct SliceCols {
  int value = 0;
  constexpr bool operator==(const SliceCols&) const = default;
};

constexpr SliceCols to_slice_cols(ClbCols w) { return SliceCols{w.value * kSliceColsPerClbCol}; }

/// Converts a slice-column width to CLB columns; throws if the count is
/// not a whole number of CLB columns (regions sit on CLB-column
/// boundaries, so an odd slice-column width cannot be realized).
ClbCols to_clb_cols(SliceCols w);

/// Minimum reconfigurable-region width: 4 slice-columns = 2 CLB columns.
inline constexpr int kMinReconfigClbCols = 2;
/// The same minimum in the paper's unit.
inline constexpr int kMinReconfigSliceCols = kMinReconfigClbCols * kSliceColsPerClbCol;
static_assert(kMinReconfigSliceCols == 4, "the paper's rule is four slice-columns");

/// One full-height column range of the device.
struct Region {
  std::string name;
  int col_lo = 0;  ///< first CLB column (inclusive)
  int col_hi = 0;  ///< last CLB column (inclusive)
  bool reconfigurable = false;
  std::vector<BusMacro> bus_macros;  ///< bridges at this region's edges

  ClbCols width() const { return ClbCols{col_hi - col_lo + 1}; }
  SliceCols width_slices() const { return to_slice_cols(width()); }

  int width_cols() const { return width().value; }
  /// Width in slice-columns (the unit the paper's 4-slice rule uses).
  int width_slice_cols() const { return width_slices().value; }
};

class Floorplan {
 public:
  explicit Floorplan(DeviceModel device);

  const DeviceModel& device() const { return device_; }
  const FrameMap& frame_map() const { return frames_; }

  /// Adds a region; validates the placement rules above. For
  /// reconfigurable regions, plans bus macros for `in_signals` /
  /// `out_signals` crossing each of its boundaries with the static area.
  const Region& add_region(const std::string& name, int col_lo, int col_hi, bool reconfigurable,
                           int in_signals = 0, int out_signals = 0);

  const Region& region(const std::string& name) const;
  const Region* find_region(const std::string& name) const;
  const std::vector<Region>& regions() const { return regions_; }

  std::vector<const Region*> reconfigurable_regions() const;

  /// CLB columns not covered by any region (available static area).
  std::vector<int> free_columns() const;

  /// All configuration frames of a region (CLB + interleaved BRAM cols).
  std::vector<FrameAddress> region_frames(const std::string& name) const;

  /// Frame-data payload bytes of a partial bitstream covering the region.
  Bytes region_payload_bytes(const std::string& name) const;

  /// Region frames as a fraction of total device frames (the paper quotes
  /// its dynamic region as 8 % of the FPGA).
  double region_fraction(const std::string& name) const;

  /// Slices available in a region.
  int region_slices(const std::string& name) const;

  /// ASCII rendering of the column map, e.g. "SSSS DDDD SSSS..." — used by
  /// examples to show the resulting floorplan.
  std::string render() const;

 private:
  void check_overlap(int col_lo, int col_hi) const;

  DeviceModel device_;
  FrameMap frames_;
  std::vector<Region> regions_;
};

}  // namespace pdr::fabric
