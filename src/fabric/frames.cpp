#include "fabric/frames.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fabric {

const char* block_type_name(BlockType t) {
  switch (t) {
    case BlockType::Clb: return "CLB";
    case BlockType::BramContent: return "BRAM";
    case BlockType::BramInterconnect: return "BRAM_INT";
  }
  return "?";
}

std::uint32_t FrameAddress::encode() const {
  return (static_cast<std::uint32_t>(block) << 24) | (static_cast<std::uint32_t>(major) << 8) |
         static_cast<std::uint32_t>(minor);
}

FrameAddress FrameAddress::decode(std::uint32_t far) {
  const auto block_raw = (far >> 24) & 0x3u;
  PDR_CHECK(block_raw <= 2, "FrameAddress::decode", "unknown block type in FAR");
  FrameAddress a;
  a.block = static_cast<BlockType>(block_raw);
  a.major = static_cast<std::uint16_t>((far >> 8) & 0xffffu);
  a.minor = static_cast<std::uint16_t>(far & 0xffu);
  return a;
}

std::string FrameAddress::to_string() const {
  return strprintf("%s[%u].%u", block_type_name(block), static_cast<unsigned>(major),
                   static_cast<unsigned>(minor));
}

FrameMap::FrameMap(const DeviceModel& device) : device_(device) {
  PDR_CHECK(device_.clb_cols > 0 && device_.clb_rows > 0, "FrameMap", "empty device");
}

int FrameMap::frames_in_column(BlockType block) const {
  switch (block) {
    case BlockType::Clb: return device_.frames_per_clb_col;
    case BlockType::BramContent: return device_.frames_per_bram_col;
    case BlockType::BramInterconnect: return device_.frames_per_bram_int_col;
  }
  return 0;
}

int FrameMap::columns(BlockType block) const {
  return block == BlockType::Clb ? device_.clb_cols : device_.bram_cols;
}

int FrameMap::linear_index(const FrameAddress& addr) const {
  PDR_CHECK(valid(addr), "FrameMap::linear_index", "invalid frame address " + addr.to_string());
  const int clb_total = device_.clb_cols * device_.frames_per_clb_col;
  const int bram_total = device_.bram_cols * device_.frames_per_bram_col;
  switch (addr.block) {
    case BlockType::Clb:
      return addr.major * device_.frames_per_clb_col + addr.minor;
    case BlockType::BramContent:
      return clb_total + addr.major * device_.frames_per_bram_col + addr.minor;
    case BlockType::BramInterconnect:
      return clb_total + bram_total + addr.major * device_.frames_per_bram_int_col + addr.minor;
  }
  return -1;
}

FrameAddress FrameMap::from_linear(int index) const {
  PDR_CHECK(index >= 0 && index < total_frames(), "FrameMap::from_linear", "index out of range");
  const int clb_total = device_.clb_cols * device_.frames_per_clb_col;
  const int bram_total = device_.bram_cols * device_.frames_per_bram_col;
  FrameAddress a;
  if (index < clb_total) {
    a.block = BlockType::Clb;
    a.major = static_cast<std::uint16_t>(index / device_.frames_per_clb_col);
    a.minor = static_cast<std::uint16_t>(index % device_.frames_per_clb_col);
  } else if (index < clb_total + bram_total) {
    const int i = index - clb_total;
    a.block = BlockType::BramContent;
    a.major = static_cast<std::uint16_t>(i / device_.frames_per_bram_col);
    a.minor = static_cast<std::uint16_t>(i % device_.frames_per_bram_col);
  } else {
    const int i = index - clb_total - bram_total;
    a.block = BlockType::BramInterconnect;
    a.major = static_cast<std::uint16_t>(i / device_.frames_per_bram_int_col);
    a.minor = static_cast<std::uint16_t>(i % device_.frames_per_bram_int_col);
  }
  return a;
}

bool FrameMap::valid(const FrameAddress& addr) const {
  return addr.major < columns(addr.block) && addr.minor < frames_in_column(addr.block);
}

FrameAddress FrameMap::next(const FrameAddress& addr) const {
  const int index = linear_index(addr) + 1;
  PDR_CHECK(index < total_frames(), "FrameMap::next", "ran past last frame of device");
  return from_linear(index);
}

std::vector<FrameAddress> FrameMap::clb_column_frames(int clb_col) const {
  PDR_CHECK(clb_col >= 0 && clb_col < device_.clb_cols, "FrameMap::clb_column_frames",
            "CLB column out of range");
  std::vector<FrameAddress> out;
  out.reserve(static_cast<std::size_t>(device_.frames_per_clb_col));
  for (int minor = 0; minor < device_.frames_per_clb_col; ++minor)
    out.push_back(FrameAddress{BlockType::Clb, static_cast<std::uint16_t>(clb_col),
                               static_cast<std::uint16_t>(minor)});
  return out;
}

std::vector<int> FrameMap::bram_positions() const {
  std::vector<int> out;
  if (device_.bram_cols == 0) return out;
  // Spread evenly: BRAM column b sits after CLB column
  // round((b+1) * clb_cols / (bram_cols+1)) - 1.
  for (int b = 0; b < device_.bram_cols; ++b) {
    const int pos = ((b + 1) * device_.clb_cols) / (device_.bram_cols + 1) - 1;
    out.push_back(pos);
  }
  return out;
}

std::vector<FrameAddress> FrameMap::frames_for_clb_range(int col_lo, int col_hi) const {
  PDR_CHECK(0 <= col_lo && col_lo <= col_hi && col_hi < device_.clb_cols,
            "FrameMap::frames_for_clb_range", "bad CLB column range");
  std::vector<FrameAddress> out;
  for (int c = col_lo; c <= col_hi; ++c) {
    const auto col = clb_column_frames(c);
    out.insert(out.end(), col.begin(), col.end());
  }
  const auto brams = bram_positions();
  for (std::size_t b = 0; b < brams.size(); ++b) {
    if (brams[b] >= col_lo && brams[b] < col_hi) {
      for (int minor = 0; minor < device_.frames_per_bram_col; ++minor)
        out.push_back(FrameAddress{BlockType::BramContent, static_cast<std::uint16_t>(b),
                                   static_cast<std::uint16_t>(minor)});
      for (int minor = 0; minor < device_.frames_per_bram_int_col; ++minor)
        out.push_back(FrameAddress{BlockType::BramInterconnect, static_cast<std::uint16_t>(b),
                                   static_cast<std::uint16_t>(minor)});
    }
  }
  return out;
}

}  // namespace pdr::fabric
