// Configuration frame addressing.
//
// Virtex-II configuration memory is column oriented: every frame spans the
// full device height. A frame address (FAR) names a block type (CLB plane,
// BRAM content, BRAM interconnect), a major address (the column) and a
// minor address (the frame within that column). Frames also have a dense
// linear index used by ConfigMemory for storage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/device.hpp"

namespace pdr::fabric {

enum class BlockType : std::uint8_t { Clb = 0, BramContent = 1, BramInterconnect = 2 };

const char* block_type_name(BlockType t);

/// One frame address (block, column, frame-in-column).
struct FrameAddress {
  BlockType block = BlockType::Clb;
  std::uint16_t major = 0;  ///< column index within the block type
  std::uint16_t minor = 0;  ///< frame index within the column

  friend bool operator==(const FrameAddress&, const FrameAddress&) = default;

  /// Packs into the 32-bit FAR register encoding used in bitstreams:
  /// [25:24] block type, [23:8] major, [7:0] minor.
  std::uint32_t encode() const;

  /// Unpacks a FAR register value. Throws on unknown block type.
  static FrameAddress decode(std::uint32_t far);

  std::string to_string() const;
};

/// Frame address arithmetic for one device.
class FrameMap {
 public:
  explicit FrameMap(const DeviceModel& device);

  const DeviceModel& device() const { return device_; }

  int total_frames() const { return device_.total_frames(); }

  /// Frames in one column of the given block type.
  int frames_in_column(BlockType block) const;

  /// Number of columns of the given block type.
  int columns(BlockType block) const;

  /// Dense linear index of a frame address (0 .. total_frames()-1).
  /// Ordering: all CLB frames, then BRAM content, then BRAM interconnect.
  int linear_index(const FrameAddress& addr) const;

  /// Inverse of linear_index.
  FrameAddress from_linear(int index) const;

  /// True if the address names an existing frame on this device.
  bool valid(const FrameAddress& addr) const;

  /// The frame that follows `addr` in linear order (used for multi-frame
  /// FDRI writes, which auto-increment the FAR). Throws past the end.
  FrameAddress next(const FrameAddress& addr) const;

  /// All frames of one CLB column (the unit reconfigurable modules occupy).
  std::vector<FrameAddress> clb_column_frames(int clb_col) const;

  /// All frames covering CLB columns [col_lo, col_hi] plus any BRAM columns
  /// interleaved in that range (see bram_positions()).
  std::vector<FrameAddress> frames_for_clb_range(int col_lo, int col_hi) const;

  /// CLB-column positions after which a BRAM column sits. The model
  /// spreads the device's BRAM columns evenly across the array, matching
  /// Virtex-II's interleaved BRAM column layout.
  std::vector<int> bram_positions() const;

 private:
  DeviceModel device_;
};

}  // namespace pdr::fabric
