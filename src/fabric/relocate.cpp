#include "fabric/relocate.hpp"

#include <map>

#include "util/error.hpp"

namespace pdr::fabric {

bool regions_congruent(const Floorplan& plan, const std::string& from, const std::string& to) {
  const Region& a = plan.region(from);
  const Region& b = plan.region(to);
  if (a.width_cols() != b.width_cols()) return false;
  // Frame layout must match: same block-type sequence relative to the
  // region origin (BRAM columns interleave at device-dependent spots).
  const auto fa = plan.region_frames(from);
  const auto fb = plan.region_frames(to);
  if (fa.size() != fb.size()) return false;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (fa[i].block != fb[i].block || fa[i].minor != fb[i].minor) return false;
    // Column offsets relative to the region origin must match for CLB
    // frames; BRAM columns have their own numbering checked via ordering.
    if (fa[i].block == BlockType::Clb &&
        fa[i].major - a.col_lo != fb[i].major - b.col_lo)
      return false;
  }
  return true;
}

std::vector<std::uint8_t> relocate_bitstream(const Floorplan& plan,
                                             std::span<const std::uint8_t> stream,
                                             const std::string& from, const std::string& to) {
  PDR_CHECK(regions_congruent(plan, from, to), "relocate_bitstream",
            "regions '" + from + "' and '" + to + "' are not congruent");
  const DeviceModel& device = plan.device();

  // Build the frame-address translation from the congruent frame lists.
  const auto fa = plan.region_frames(from);
  const auto fb = plan.region_frames(to);
  std::map<std::uint32_t, FrameAddress> translate;
  for (std::size_t i = 0; i < fa.size(); ++i) translate[fa[i].encode()] = fb[i];

  // Capture every frame of the source stream (validating it fully).
  struct CaptureSink : BitstreamReader::Sink {
    std::vector<std::pair<FrameAddress, std::vector<std::uint8_t>>> frames;
    void write_frame(const FrameAddress& addr, std::span<const std::uint8_t> data) override {
      frames.emplace_back(addr, std::vector<std::uint8_t>(data.begin(), data.end()));
    }
  } sink;
  BitstreamReader(device, sink).parse(stream);

  // Re-emit against the target region, coalescing consecutive frames.
  const FrameMap map(device);
  BitstreamWriter writer(device);
  writer.begin();
  writer.write_idcode();
  std::size_t i = 0;
  while (i < sink.frames.size()) {
    const auto it = translate.find(sink.frames[i].first.encode());
    PDR_CHECK(it != translate.end(), "relocate_bitstream",
              "stream writes frame " + sink.frames[i].first.to_string() + " outside region '" +
                  from + "'");
    std::size_t j = i;
    // Extend the run while both source and target stay linearly consecutive.
    while (j + 1 < sink.frames.size()) {
      const auto next_it = translate.find(sink.frames[j + 1].first.encode());
      if (next_it == translate.end()) break;
      if (map.linear_index(sink.frames[j + 1].first) !=
              map.linear_index(sink.frames[j].first) + 1 ||
          map.linear_index(next_it->second) != map.linear_index(translate.at(
                                                   sink.frames[j].first.encode())) + 1)
        break;
      ++j;
    }
    writer.write_far(it->second);
    std::vector<std::uint8_t> burst;
    for (std::size_t k = i; k <= j; ++k)
      burst.insert(burst.end(), sink.frames[k].second.begin(), sink.frames[k].second.end());
    writer.write_fdri(burst);
    i = j + 1;
  }
  writer.end();
  return writer.take();
}

}  // namespace pdr::fabric
