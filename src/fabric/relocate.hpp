// Partial-bitstream relocation.
//
// A classic partial-reconfiguration capability: take the partial
// bitstream of a module placed in one full-height region and retarget it
// to another region of identical shape by rewriting the frame addresses
// (and resealing the CRC), without re-running synthesis or placement.
// With one stored bitstream a module can then occupy any compatible
// region — the natural companion to the paper's "more than one dynamic
// part" extension.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fabric/bitstream.hpp"
#include "fabric/floorplan.hpp"

namespace pdr::fabric {

/// Rewrites `stream` (a valid partial bitstream for `from`) so it targets
/// `to`. Both regions must have the same width and cover the same frame
/// pattern (same CLB frame count and identical interleaved BRAM columns,
/// else the frame sets are not congruent). Throws pdr::Error when the
/// regions are incompatible or the stream is malformed.
std::vector<std::uint8_t> relocate_bitstream(const Floorplan& plan,
                                             std::span<const std::uint8_t> stream,
                                             const std::string& from, const std::string& to);

/// True if a bitstream for `from` can be relocated to `to` on this
/// floorplan (same width, congruent frame layout).
bool regions_congruent(const Floorplan& plan, const std::string& from, const std::string& to);

}  // namespace pdr::fabric
