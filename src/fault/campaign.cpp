#include "fault/campaign.hpp"

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "rtr/prefetch.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fault {

int CampaignReport::total_corrupted_frames() const {
  int total = 0;
  for (const auto& r : regions) total += r.corrupted_frames;
  return total;
}

bool CampaignReport::all_healthy() const {
  for (const auto& r : regions)
    if (r.health != rtr::RegionHealth::Healthy) return false;
  return !regions.empty();
}

std::string CampaignReport::to_string() const {
  std::string out;
  out += strprintf("fault campaign: seed %llu, horizon %.3f ms, recovery %s\n",
                   static_cast<unsigned long long>(seed), to_ms(horizon), recovery ? "on" : "off");
  const auto row = [&out](const char* name, int value) {
    out += strprintf("  %-20s %d\n", name, value);
  };
  row("seus_injected", seus_injected);
  row("port_aborts_armed", port_aborts_armed);
  row("fetch_corruptions", fetch_corruptions);
  row("store_damages", store_damages);
  row("store_repairs", store_repairs);
  row("demands", demands);
  row("unrecovered_errors", unrecovered_errors);
  row("scrub_ticks", scrub.ticks);
  row("scrubs", scrub.scrubs);
  row("frames_repaired", scrub.frames_repaired);
  out += strprintf("  %-20s %.3f ms\n", "mean_seu_exposure", mean_seu_exposure_ms);
  out += strprintf("  %-20s %.2f %%\n", "port_busy", 100.0 * port_busy_fraction);
  for (const auto& r : regions)
    out += strprintf("  region %-13s %s, resident '%s', corrupted_frames %d\n", r.region.c_str(),
                     rtr::region_health_name(r.health), r.resident.c_str(), r.corrupted_frames);
  out += "manager stats:\n";
  out += manager.to_string();
  return out;
}

CampaignReport run_campaign(const synth::DesignBundle& bundle, rtr::BitstreamStore& store,
                            const FaultSpec& spec, const CampaignConfig& config,
                            obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  PDR_CHECK(!bundle.dynamic_variants.empty(), "run_campaign", "bundle has no dynamic regions");

  // Validate every name the spec mentions against the bundle up front, so
  // a typo in a .faults file fails loudly instead of injecting nothing.
  std::set<std::string> known_modules;
  for (const auto& [region, variants] : bundle.dynamic_variants)
    for (const auto& v : variants) known_modules.insert(v.name);
  for (const auto& s : spec.seus)
    PDR_CHECK(bundle.dynamic_variants.count(s.region) > 0, "run_campaign",
              "fault spec names unknown region '" + s.region + "'");
  for (const auto& f : spec.fetch_faults)
    PDR_CHECK(known_modules.count(f.module) > 0, "run_campaign",
              "fault spec names unknown module '" + f.module + "'");
  for (const auto& d : spec.store_damages)
    PDR_CHECK(known_modules.count(d.module) > 0, "run_campaign",
              "fault spec names unknown module '" + d.module + "'");
  for (const auto& r : spec.store_repairs)
    PDR_CHECK(known_modules.count(r.module) > 0, "run_campaign",
              "fault spec names unknown module '" + r.module + "'");

  FaultInjector injector(spec, config.seed);
  CampaignReport report;
  report.seed = injector.seed();
  report.horizon = spec.horizon;
  report.recovery = config.recovery;

  std::vector<std::string> regions;
  std::map<std::string, std::vector<std::string>> variants_of;
  std::map<std::string, std::vector<fabric::FrameAddress>> frames_of;
  for (const auto& [region, variants] : bundle.dynamic_variants) {
    regions.push_back(region);
    variants_of[region] = bundle.variant_names(region);
    frames_of[region] = bundle.floorplan.region_frames(region);
  }

  rtr::ManagerConfig manager_config = config.manager;
  manager_config.recovery.enabled = config.recovery;
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, manager_config, store, policy);
  manager.set_observability(tracer, metrics);

  // Safe module per region: the first variant the spec never targets with
  // a permanent store damage or a fetch fault — the image we can trust.
  std::map<std::string, std::string> safe_of;
  for (const auto& region : regions) {
    const auto& names = variants_of.at(region);
    std::string safe = names.front();
    for (const auto& name : names) {
      bool targeted = spec.find_fetch_fault(name) != nullptr;
      for (const auto& d : spec.store_damages) targeted = targeted || d.module == name;
      if (!targeted) {
        safe = name;
        break;
      }
    }
    safe_of[region] = safe;
    manager.set_safe_module(region, safe);
    // Initial bring-up happens before the hooks arm: the full-device
    // bitstream configured the fabric on the bench, not in the field.
    manager.set_resident(region, safe);
  }

  manager.port().set_fault_hook(
      [&injector](Bytes, const std::string&) { return injector.next_port_abort(); });
  manager.set_fetch_fault_hook(
      [&injector](const std::string& module, std::vector<std::uint8_t>& bytes) {
        return injector.maybe_corrupt_fetch(module, bytes);
      });

  sim::EventQueue queue;
  queue.set_observability(tracer, metrics);

  // SEU exposure accounting: upsets pending per region until a full
  // rewrite (demand load or scrub) erases them.
  std::map<std::string, std::vector<TimeNs>> pending;
  double exposure_sum_ms = 0;
  int exposure_count = 0;
  const auto repaired_at = [&pending, &exposure_sum_ms, &exposure_count](
                               const std::string& region, TimeNs done) {
    auto& v = pending[region];
    for (const TimeNs t : v) {
      exposure_sum_ms += to_ms(done - t);
      ++exposure_count;
    }
    v.clear();
  };

  const int frame_bytes = bundle.device.frame_bytes();
  for (const auto& region : regions) {
    const auto timeline = injector.seu_timeline(region, frames_of.at(region).size(), frame_bytes);
    report.seus_injected += static_cast<int>(timeline.size());
    for (const auto& ev : timeline) {
      queue.schedule(ev.at, "seu " + region,
                     [&manager, &pending, &frames_of, region, ev](TimeNs now) {
                       const auto& frames = frames_of.at(region);
                       manager.memory().flip_bit(frames[ev.frame_offset], ev.byte_index, ev.bit);
                       pending[region].push_back(now);
                     });
    }
  }

  for (const auto& damage : spec.store_damages) {
    queue.schedule(damage.at, "store damage " + damage.module,
                   [&store, &injector, &report, damage](TimeNs) {
                     store.corrupt(damage.module,
                                   injector.damage_byte(damage.module, store.size_of(damage.module)));
                     ++report.store_damages;
                   });
  }

  // Golden-copy re-flashes close the outage window a damage opened.
  for (const auto& rep : spec.store_repairs) {
    queue.schedule(rep.at, "store repair " + rep.module, [&store, &report, rep](TimeNs) {
      store.repair(rep.module);
      ++report.store_repairs;
    });
  }

  // Demand traffic: rotate each region through its variants so transfers
  // are in flight when port/fetch faults fire.
  std::map<std::string, std::size_t> rotation;
  std::function<void(TimeNs)> demand_tick = [&](TimeNs now) {
    for (const auto& region : regions) {
      const auto& names = variants_of.at(region);
      const std::string target = names[rotation[region]++ % names.size()];
      ++report.demands;
      try {
        const auto out = manager.request(region, target, now);
        if (out.kind != rtr::RequestKind::AlreadyLoaded && !manager.loaded(region).empty())
          repaired_at(region, out.ready_at);  // the rewrite erased prior upsets
      } catch (const Error&) {
        ++report.unrecovered_errors;
      }
    }
    queue.schedule(now + config.demand_period, "demand tick", demand_tick);
  };
  if (config.demand_period > 0)
    queue.schedule(config.demand_period, "demand tick", demand_tick);

  std::optional<ScrubScheduler> scrubber;
  if (config.scrub_period > 0) {
    scrubber.emplace(queue, manager, regions, config.scrub_period, config.scrub_mode);
    scrubber->set_on_scrub(
        [&repaired_at](const std::string& region, TimeNs done, int) { repaired_at(region, done); });
    scrubber->start();
  }

  queue.run(spec.horizon);

  if (config.recovery) {
    // Horizon drain: the self-healing contract is that nothing detected
    // stays broken. Bring failed regions back on their safe module and
    // scrub out any upset that landed since the last tick.
    for (const auto& region : regions) {
      if (manager.loaded(region).empty()) {
        try {
          manager.request(region, safe_of.at(region), spec.horizon);
        } catch (const Error&) {
          ++report.unrecovered_errors;
        }
      }
      if (!manager.loaded(region).empty() && manager.check_health(region, spec.horizon) > 0) {
        const TimeNs done = manager.scrub(region, spec.horizon);
        repaired_at(region, done);
      }
    }
  }

  // Upsets never repaired were exposed until the horizon.
  for (const auto& [region, times] : pending)
    for (const TimeNs t : times) {
      exposure_sum_ms += to_ms(spec.horizon - t);
      ++exposure_count;
    }

  for (const auto& region : regions) {
    RegionOutcome outcome;
    outcome.region = region;
    outcome.health = manager.health(region);
    outcome.resident = manager.loaded(region);
    outcome.corrupted_frames = outcome.resident.empty() ? 0 : manager.verify_resident(region);
    report.regions.push_back(std::move(outcome));
  }

  report.manager = manager.stats();
  if (scrubber.has_value()) report.scrub = scrubber->stats();
  report.port_aborts_armed = injector.port_aborts_armed();
  report.fetch_corruptions = injector.fetch_corruptions();
  report.mean_seu_exposure_ms = exposure_count > 0 ? exposure_sum_ms / exposure_count : 0.0;
  report.port_busy_fraction =
      spec.horizon > 0
          ? static_cast<double>(manager.port().total_busy()) / static_cast<double>(spec.horizon)
          : 0.0;
  return report;
}

}  // namespace pdr::fault
