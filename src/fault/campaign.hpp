// Seeded fault campaign: wires the injector into a live manager and runs
// the whole system on the discrete-event queue.
//
// One campaign = one DesignBundle + one FaultSpec + one seed. The driver
//  - installs the injector's hooks on the manager's config port (mid-
//    stream aborts) and fetch path (transient corruption),
//  - schedules every SEU as a flip_bit event and every permanent store
//    damage as a corrupt() event,
//  - generates demand traffic (round-robin variant rotation per region)
//    so transfers are in flight when faults land,
//  - runs the periodic scrub scheduler,
// then reports per-region outcomes. Everything derives from the seed:
// the same (bundle, spec, seed) triple produces a bit-identical report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "fault/scrub_scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/bitstream_store.hpp"
#include "rtr/manager.hpp"
#include "synth/flow.hpp"
#include "util/units.hpp"

namespace pdr::fault {

struct CampaignConfig {
  std::uint64_t seed = 0;   ///< 0 = use the spec's seed
  bool recovery = true;     ///< manager retry/fallback self-healing
  TimeNs scrub_period = 10'000'000;  ///< 10 ms; 0 disables scrubbing
  ScrubScheduler::Mode scrub_mode = ScrubScheduler::Mode::Blind;
  TimeNs demand_period = 5'000'000;  ///< variant-rotation period; 0 disables
  rtr::ManagerConfig manager;  ///< recovery + safe modules filled in by the run
};

struct RegionOutcome {
  std::string region;
  rtr::RegionHealth health = rtr::RegionHealth::Healthy;
  std::string resident;       ///< module in the region at horizon ("" = blank)
  int corrupted_frames = 0;   ///< verify_resident() at horizon (0 = clean)
};

struct CampaignReport {
  std::uint64_t seed = 0;
  TimeNs horizon = 0;
  bool recovery = false;
  // Injection counts.
  int seus_injected = 0;
  int port_aborts_armed = 0;
  int fetch_corruptions = 0;
  int store_damages = 0;
  int store_repairs = 0;
  // Traffic and recovery.
  int demands = 0;
  int unrecovered_errors = 0;  ///< loads that threw (recovery disabled)
  rtr::ManagerStats manager;
  ScrubStats scrub;
  std::vector<RegionOutcome> regions;
  /// Mean time an upset sat on the fabric before a rewrite erased it
  /// (upsets never repaired count their exposure up to the horizon).
  double mean_seu_exposure_ms = 0;
  double port_busy_fraction = 0;

  int total_corrupted_frames() const;
  bool all_healthy() const;

  /// Deterministic text report — byte-identical across runs of the same
  /// (bundle, spec, seed) triple.
  std::string to_string() const;
};

/// Runs one campaign to the spec's horizon. Validates that every module
/// the spec names exists in the bundle. `tracer`/`metrics` may be null.
CampaignReport run_campaign(const synth::DesignBundle& bundle, rtr::BitstreamStore& store,
                            const FaultSpec& spec, const CampaignConfig& config,
                            obs::Tracer* tracer = nullptr,
                            obs::MetricsRegistry* metrics = nullptr);

}  // namespace pdr::fault
