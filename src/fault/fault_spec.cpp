#include "fault/fault_spec.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::fault {

const SeuProcess* FaultSpec::find_seu(const std::string& region) const {
  for (const auto& s : seus)
    if (s.region == region) return &s;
  return nullptr;
}

const FetchFault* FaultSpec::find_fetch_fault(const std::string& module) const {
  for (const auto& f : fetch_faults)
    if (f.module == module) return &f;
  return nullptr;
}

namespace {

/// Same token-stream shape as the constraints parser: '#' comments,
/// whitespace-separated words, errors carrying the source line.
class Parser {
 public:
  explicit Parser(const std::string& text) { tokenize(text); }

  FaultSpec parse() {
    while (!at_end()) {
      const std::string head = next("directive");
      if (head == "seed") {
        spec_.seed = parse_u64(next("seed <n>"));
      } else if (head == "horizon_ms") {
        spec_.horizon = parse_ms(next("horizon_ms <ms>"));
        fail_unless(spec_.horizon > 0, "horizon must be positive");
      } else if (head == "seu") {
        SeuProcess s;
        s.region = next("seu <region> rate <per_s>");
        fail_unless(next("seu <region> rate <per_s>") == "rate", "expected 'rate' in seu");
        s.rate_hz = parse_double(next("seu <region> rate <per_s>"));
        fail_unless(s.rate_hz > 0, "seu rate must be positive");
        fail_unless(spec_.find_seu(s.region) == nullptr,
                    "duplicate seu process for region '" + s.region + "'");
        spec_.seus.push_back(std::move(s));
      } else if (head == "port") {
        fail_unless(next("port abort_prob <p>") == "abort_prob", "expected 'abort_prob' in port");
        spec_.port_abort_prob = parse_prob(next("port abort_prob <p>"));
      } else if (head == "fetch") {
        fail_unless(next("fetch corrupt <module> prob <p>") == "corrupt",
                    "expected 'corrupt' in fetch");
        FetchFault f;
        f.module = next("fetch corrupt <module> prob <p>");
        fail_unless(next("fetch corrupt <module> prob <p>") == "prob", "expected 'prob' in fetch");
        f.prob = parse_prob(next("fetch corrupt <module> prob <p>"));
        fail_unless(spec_.find_fetch_fault(f.module) == nullptr,
                    "duplicate fetch fault for module '" + f.module + "'");
        spec_.fetch_faults.push_back(std::move(f));
      } else if (head == "store") {
        const std::string verb = next("store damage|repair <module> at_ms <t>");
        fail_unless(verb == "damage" || verb == "repair",
                    "expected 'damage' or 'repair' in store");
        const std::string module = next("store damage|repair <module> at_ms <t>");
        fail_unless(next("store damage|repair <module> at_ms <t>") == "at_ms",
                    "expected 'at_ms' in store");
        const TimeNs at = parse_ms(next("store damage|repair <module> at_ms <t>"));
        fail_unless(at >= 0, "store " + verb + " time must be non-negative");
        if (verb == "damage")
          spec_.store_damages.push_back(StoreDamage{module, at});
        else
          spec_.store_repairs.push_back(StoreRepair{module, at});
      } else {
        fail("unknown directive '" + head + "'");
      }
    }
    return std::move(spec_);
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };

  void tokenize(const std::string& text) {
    const auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string raw = lines[i];
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      for (const std::string& word : split_ws(raw)) tokens_.push_back(Token{word, i + 1});
    }
  }

  bool at_end() const { return pos_ >= tokens_.size(); }

  [[noreturn]] void fail(const std::string& msg) const {
    const std::size_t line = pos_ > 0 && pos_ <= tokens_.size()
                                 ? tokens_[pos_ - 1].line
                                 : (tokens_.empty() ? 0 : tokens_.back().line);
    raise("fault_spec", "line " + std::to_string(line) + ": " + msg);
  }
  void fail_unless(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  std::string next(const std::string& usage) {
    if (at_end()) fail("missing token; usage: " + usage);
    return tokens_[pos_++].text;
  }

  double parse_double(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const double v = std::stod(s, &idx);
      if (idx != s.size()) fail("trailing characters in number '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected a number, got '" + s + "'");
    }
  }

  double parse_prob(const std::string& s) const {
    const double p = parse_double(s);
    fail_unless(p >= 0.0 && p <= 1.0, "probability must be in [0, 1], got '" + s + "'");
    return p;
  }

  TimeNs parse_ms(const std::string& s) const {
    return static_cast<TimeNs>(parse_double(s) * 1e6);
  }

  std::uint64_t parse_u64(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const unsigned long long v = std::stoull(s, &idx);
      if (idx != s.size()) fail("trailing characters in integer '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected an unsigned integer, got '" + s + "'");
    }
  }

  FaultSpec spec_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) { return Parser(text).parse(); }

std::string write_fault_spec(const FaultSpec& spec) {
  std::string out;
  out += strprintf("seed %llu\n", static_cast<unsigned long long>(spec.seed));
  out += strprintf("horizon_ms %g\n", to_ms(spec.horizon));
  for (const auto& s : spec.seus)
    out += strprintf("seu %s rate %g\n", s.region.c_str(), s.rate_hz);
  if (spec.port_abort_prob > 0) out += strprintf("port abort_prob %g\n", spec.port_abort_prob);
  for (const auto& f : spec.fetch_faults)
    out += strprintf("fetch corrupt %s prob %g\n", f.module.c_str(), f.prob);
  for (const auto& d : spec.store_damages)
    out += strprintf("store damage %s at_ms %g\n", d.module.c_str(), to_ms(d.at));
  for (const auto& r : spec.store_repairs)
    out += strprintf("store repair %s at_ms %g\n", r.module.c_str(), to_ms(r.at));
  return out;
}

}  // namespace pdr::fault
