// Fault-specification files.
//
// A fault spec declares the radiation / hardware environment a campaign
// subjects the reconfigurable system to, in the same token-stream DSL the
// constraints files use (comments with '#', line-numbered parse errors):
//
//   seed 7                      # default campaign seed
//   horizon_ms 120              # simulated campaign length
//   seu D1 rate 400             # Poisson upsets per second over D1's frames
//   port abort_prob 0.08        # each port load dies mid-stream with p
//   fetch corrupt qam16 prob 0.3   # a fetch of qam16 arrives corrupted
//   store damage qam16 at_ms 60    # the stored image is damaged for good
//   store repair qam16 at_ms 90    # ... until re-flashed from a golden copy
//
// Three fault classes, mirroring the hardware:
//  - `seu`: single-event upsets flip bits of configuration frames already
//    on the device (scrubbing territory).
//  - `port abort_prob` / `fetch corrupt`: transients — one transfer dies,
//    the next may succeed (retry territory).
//  - `store damage`: permanent external-memory corruption, CRC record
//    included — every later fetch fails (safe-module fallback territory)
//    until a `store repair` re-flashes the golden image, which is how a
//    campaign models a bounded outage window (damage at X, repair at Y).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pdr::fault {

/// Poisson SEU process over one region's configuration frames.
struct SeuProcess {
  std::string region;
  double rate_hz = 0;  ///< expected upsets per simulated second
};

/// Transient fetch corruption of one module's stream.
struct FetchFault {
  std::string module;
  double prob = 0;  ///< probability one fetch arrives corrupted
};

/// Permanent damage to one module's stored image.
struct StoreDamage {
  std::string module;
  TimeNs at = 0;  ///< when the damage lands
};

/// Re-flash of one module's stored image from the golden copy, ending an
/// outage window a StoreDamage opened.
struct StoreRepair {
  std::string module;
  TimeNs at = 0;  ///< when the golden image is restored
};

struct FaultSpec {
  std::uint64_t seed = 1;
  TimeNs horizon = 100'000'000;  ///< 100 ms
  std::vector<SeuProcess> seus;
  double port_abort_prob = 0;
  std::vector<FetchFault> fetch_faults;
  std::vector<StoreDamage> store_damages;
  std::vector<StoreRepair> store_repairs;

  const SeuProcess* find_seu(const std::string& region) const;
  const FetchFault* find_fetch_fault(const std::string& module) const;
};

/// Parses a fault spec; throws pdr::Error with the offending line number.
FaultSpec parse_fault_spec(const std::string& text);

/// Writes a spec back to its file form (round-trips through the parser).
std::string write_fault_spec(const FaultSpec& spec);

}  // namespace pdr::fault
