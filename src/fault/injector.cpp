#include "fault/injector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pdr::fault {

namespace {

/// FNV-1a, for deriving independent sub-seeds from fault-target names.
std::uint64_t fnv1a(const char* kind, const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](char c) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  };
  for (const char* p = kind; *p != '\0'; ++p) mix(*p);
  mix(':');
  for (const char c : name) mix(c);
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed != 0 ? seed : spec_.seed), port_rng_(0) {
  port_rng_ = stream("port", "abort");
}

Rng FaultInjector::stream(const char* kind, const std::string& name) const {
  return Rng(seed_ ^ fnv1a(kind, name));
}

std::vector<SeuEvent> FaultInjector::seu_timeline(const std::string& region,
                                                  std::size_t frame_count,
                                                  int frame_bytes) const {
  std::vector<SeuEvent> timeline;
  const SeuProcess* process = spec_.find_seu(region);
  if (process == nullptr || frame_count == 0 || frame_bytes <= 0) return timeline;

  Rng rng = stream("seu", region);
  double t_s = 0;
  const double horizon_s = static_cast<double>(spec_.horizon) / 1e9;
  for (;;) {
    // Poisson process: exponential inter-arrival times.
    t_s += -std::log(1.0 - rng.uniform01()) / process->rate_hz;
    if (t_s >= horizon_s) break;
    SeuEvent ev;
    ev.at = static_cast<TimeNs>(t_s * 1e9);
    ev.frame_offset = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame_count) - 1));
    ev.byte_index = static_cast<int>(rng.uniform_int(0, frame_bytes - 1));
    ev.bit = static_cast<int>(rng.uniform_int(0, 7));
    timeline.push_back(ev);
  }
  return timeline;
}

double FaultInjector::next_port_abort() {
  if (spec_.port_abort_prob <= 0) return -1.0;
  if (!port_rng_.chance(spec_.port_abort_prob)) return -1.0;
  ++port_aborts_armed_;
  // Die somewhere strictly inside the stream; the edges are handled by
  // the port's own word-boundary clamping.
  return port_rng_.uniform(0.05, 0.95);
}

bool FaultInjector::maybe_corrupt_fetch(const std::string& module,
                                        std::vector<std::uint8_t>& bytes) {
  const FetchFault* fault = spec_.find_fetch_fault(module);
  if (fault == nullptr || bytes.empty()) return false;
  auto it = fetch_rngs_.find(module);
  if (it == fetch_rngs_.end()) it = fetch_rngs_.emplace(module, stream("fetch", module)).first;
  Rng& rng = it->second;
  if (!rng.chance(fault->prob)) return false;
  const auto index =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
  const auto mask = static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
  bytes[index] ^= mask;
  ++fetch_corruptions_;
  return true;
}

std::size_t FaultInjector::damage_byte(const std::string& module, std::size_t stream_bytes) const {
  PDR_CHECK(stream_bytes > 0, "FaultInjector::damage_byte", "empty stream for '" + module + "'");
  Rng rng = stream("store", module);
  return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(stream_bytes) - 1));
}

}  // namespace pdr::fault
