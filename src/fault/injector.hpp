// Deterministic, seed-driven fault injector.
//
// Every fault class draws from its own forked RNG stream, sub-seeded from
// (campaign seed, fault kind, target name). The streams are independent:
// adding a fetch fault to the spec does not move a single SEU, and two
// campaigns with the same seed produce bit-identical fault sequences —
// the property the reproducibility acceptance test pins.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdr::fault {

/// One scheduled single-event upset inside a region.
struct SeuEvent {
  TimeNs at = 0;
  std::size_t frame_offset = 0;  ///< index into the region's frame list
  int byte_index = 0;
  int bit = 0;
};

class FaultInjector {
 public:
  /// `seed` == 0 means "use the spec's own seed".
  FaultInjector(FaultSpec spec, std::uint64_t seed = 0);

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  /// Poisson SEU timeline for one region over [0, spec.horizon), sorted by
  /// time. Deterministic per (seed, region); regions with no `seu`
  /// directive get an empty timeline.
  std::vector<SeuEvent> seu_timeline(const std::string& region, std::size_t frame_count,
                                     int frame_bytes) const;

  /// Config-port hook: draws one per-load decision. Returns a fraction in
  /// (0, 1) — cut the transfer there — or -1 for a clean load.
  double next_port_abort();

  /// Fetch hook: if this fetch of `module` draws a transient fault, flips
  /// one pseudo-random byte of `bytes` and returns true.
  bool maybe_corrupt_fetch(const std::string& module, std::vector<std::uint8_t>& bytes);

  /// Deterministic byte position for a permanent store damage of `module`.
  std::size_t damage_byte(const std::string& module, std::size_t stream_bytes) const;

  int port_aborts_armed() const { return port_aborts_armed_; }
  int fetch_corruptions() const { return fetch_corruptions_; }

 private:
  /// Independent sub-stream for (kind, name).
  Rng stream(const char* kind, const std::string& name) const;

  FaultSpec spec_;
  std::uint64_t seed_;
  Rng port_rng_;
  std::map<std::string, Rng> fetch_rngs_;
  int port_aborts_armed_ = 0;
  int fetch_corruptions_ = 0;
};

}  // namespace pdr::fault
