#include "fault/scrub_scheduler.hpp"

#include "util/error.hpp"

namespace pdr::fault {

ScrubScheduler::ScrubScheduler(sim::EventQueue& queue, rtr::ReconfigManager& manager,
                               std::vector<std::string> regions, TimeNs period, Mode mode)
    : queue_(queue), manager_(manager), regions_(std::move(regions)), period_(period), mode_(mode) {
  PDR_CHECK(period_ > 0, "ScrubScheduler", "scrub period must be positive");
  PDR_CHECK(!regions_.empty(), "ScrubScheduler", "no regions to scrub");
}

void ScrubScheduler::start() {
  queue_.schedule_in(period_, "scrub tick", [this](TimeNs now) { tick(now); });
}

void ScrubScheduler::tick(TimeNs now) {
  ++stats_.ticks;
  for (const auto& region : regions_) {
    if (manager_.loaded(region).empty()) continue;  // blank or failed: nothing to rewrite
    const int corrupted = manager_.check_health(region, now);
    if (mode_ == Mode::ReadbackTriggered && corrupted == 0) continue;
    const TimeNs done = manager_.scrub(region, now);
    ++stats_.scrubs;
    stats_.frames_repaired += corrupted;
    if (on_scrub_) on_scrub_(region, done, corrupted);
  }
  queue_.schedule(now + period_, "scrub tick", [this](TimeNs at) { tick(at); });
}

}  // namespace pdr::fault
