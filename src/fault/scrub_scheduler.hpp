// Periodic scrub scheduler, driven by the discrete-event queue.
//
// Real SEU-hardened systems re-walk their configuration memory on a fixed
// period. Two flavours are modelled:
//  - Blind: rewrite every region's resident module each tick (classic
//    flow-through scrubbing; simple, port-hungry).
//  - ReadbackTriggered: readback-verify first, rewrite only regions whose
//    frames actually differ (cheaper on the port, pays the readback).
//
// The scheduler self-reschedules forever; bound a campaign with
// EventQueue::run(horizon).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtr/manager.hpp"
#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace pdr::fault {

struct ScrubStats {
  int ticks = 0;            ///< scheduler wake-ups
  int scrubs = 0;           ///< region rewrites issued
  int frames_repaired = 0;  ///< corrupted frames found before a rewrite
};

class ScrubScheduler {
 public:
  enum class Mode { Blind, ReadbackTriggered };

  /// Called after each completed scrub: `done` is the rewrite's completion
  /// time, `repaired` the corrupted frames it erased.
  using ScrubCallback =
      std::function<void(const std::string& region, TimeNs done, int repaired)>;

  ScrubScheduler(sim::EventQueue& queue, rtr::ReconfigManager& manager,
                 std::vector<std::string> regions, TimeNs period, Mode mode = Mode::Blind);

  /// Schedules the first tick one period from the queue's current time.
  void start();

  void set_on_scrub(ScrubCallback callback) { on_scrub_ = std::move(callback); }

  const ScrubStats& stats() const { return stats_; }
  TimeNs period() const { return period_; }
  Mode mode() const { return mode_; }

 private:
  void tick(TimeNs now);

  sim::EventQueue& queue_;
  rtr::ReconfigManager& manager_;
  std::vector<std::string> regions_;
  TimeNs period_;
  Mode mode_;
  ScrubStats stats_;
  ScrubCallback on_scrub_;
};

}  // namespace pdr::fault
