#include "flow/artifact_store.hpp"

namespace pdr::flow {

std::uint64_t ArtifactStore::runs(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stats_.find(stage);
  return it == stats_.end() ? 0 : it->second.runs;
}

std::uint64_t ArtifactStore::hits(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stats_.find(stage);
  return it == stats_.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArtifactStore::stages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(stats_.size());
  for (const auto& [stage, stats] : stats_) out.push_back(stage);
  return out;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ArtifactStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_.clear();
}

void ArtifactStore::export_metrics(obs::MetricsRegistry& metrics) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [stage, stats] : stats_) {
    obs::Counter& runs = metrics.counter("flow.cache." + stage + ".runs");
    obs::Counter& hits = metrics.counter("flow.cache." + stage + ".hits");
    // Counters are monotonic: bump by the delta since the last export.
    if (static_cast<double>(stats.runs) > runs.value())
      runs.add(static_cast<double>(stats.runs) - runs.value());
    if (static_cast<double>(stats.hits) > hits.value())
      hits.add(static_cast<double>(stats.hits) - hits.value());
  }
}

std::shared_ptr<ArtifactStore> default_store() {
  static std::shared_ptr<ArtifactStore> store = std::make_shared<ArtifactStore>();
  return store;
}

}  // namespace pdr::flow
