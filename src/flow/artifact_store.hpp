// ArtifactStore: the typed, content-addressed cache between pipeline
// stages.
//
// Each entry is keyed by (stage name, input fingerprint) and holds one
// immutable artifact behind a shared_ptr<const T>. get_or_build() is
// single-flight and thread-safe: when N scenario workers ask for the same
// missing artifact concurrently, exactly one runs the builder while the
// rest block on its future — so the per-stage run counter counts real
// recomputations, never duplicated work.
//
// The run/hit counters per stage are the observable caching contract:
// "re-running a flow with unchanged inputs serves the cached artifact"
// is asserted by tests (and exported as flow.cache.* metrics) through
// runs(stage) staying flat while hits(stage) climbs.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "flow/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pdr::flow {

class ArtifactStore {
 public:
  struct StageStats {
    std::uint64_t runs = 0;  ///< builder invocations (cache misses)
    std::uint64_t hits = 0;  ///< requests served from the cache
  };

  /// Returns the artifact for (stage, key), running `build` only when it
  /// is not cached. `build` must return T (by value); the stored artifact
  /// is immutable from then on. A builder that throws does not poison the
  /// key: the exception propagates to every waiter and the next call
  /// retries.
  template <typename T, typename Build>
  std::shared_ptr<const T> get_or_build(const std::string& stage, const Fingerprint& key,
                                        Build&& build) {
    const StoreKey store_key{stage, key.value()};
    std::promise<Stored> promise;
    std::shared_future<Stored> future;
    bool is_builder = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(store_key);
      if (it != entries_.end()) {
        ++stats_[stage].hits;
        future = it->second;
      } else {
        future = promise.get_future().share();
        entries_.emplace(store_key, future);
        ++stats_[stage].runs;
        is_builder = true;
      }
    }
    if (is_builder) {
      try {
        auto artifact = std::make_shared<const T>(build());
        promise.set_value(Stored{artifact, std::type_index(typeid(T))});
      } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(store_key);  // let the next caller retry
      }
    }
    return checked_cast<T>(stage, future.get());
  }

  /// Builder invocations for `stage` so far.
  std::uint64_t runs(const std::string& stage) const;
  /// Cache-served requests for `stage` so far.
  std::uint64_t hits(const std::string& stage) const;

  /// Stage names with any activity, sorted.
  std::vector<std::string> stages() const;

  std::size_t size() const;
  void clear();

  /// Exports per-stage counters as "flow.cache.<stage>.runs" and
  /// "flow.cache.<stage>.hits" into `metrics`.
  void export_metrics(obs::MetricsRegistry& metrics) const;

 private:
  using StoreKey = std::pair<std::string, std::uint64_t>;
  struct Stored {
    std::shared_ptr<const void> artifact;
    std::type_index type = std::type_index(typeid(void));
  };

  template <typename T>
  static std::shared_ptr<const T> checked_cast(const std::string& stage, const Stored& stored) {
    PDR_CHECK(stored.type == std::type_index(typeid(T)), "ArtifactStore",
              "stage '" + stage + "' artifact requested as a different type");
    return std::static_pointer_cast<const T>(stored.artifact);
  }

  mutable std::mutex mutex_;
  std::map<StoreKey, std::shared_future<Stored>> entries_;
  std::map<std::string, StageStats> stats_;
};

/// Process-wide store shared by the presets (run_flow_from_constraints,
/// the case study, the CLI): repeated builds of identical inputs anywhere
/// in the process are served from cache.
std::shared_ptr<ArtifactStore> default_store();

}  // namespace pdr::flow
