#include "flow/explorer.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

namespace pdr::flow {

DesignSpaceExplorer::DesignSpaceExplorer(aaa::Project project, aaa::ExplorationSpace space,
                                         ExplorerOptions options)
    : project_(std::move(project)), space_(std::move(space)), options_(std::move(options)) {}

ExplorationReport DesignSpaceExplorer::run() const {
  PDR_CHECK(space_.point_count() <= options_.max_points, "DesignSpaceExplorer",
            strprintf("design space has %zu points, over the %zu-point ceiling — restrict an "
                      "axis or raise max_points",
                      space_.point_count(), options_.max_points));

  ExplorationReport report;
  report.space = space_.describe();
  report.points = space_.enumerate();
  report.outcomes.resize(report.points.size());

  aaa::Adequation::ReconfigCost cost = options_.reconfig_cost_fn;
  if (!cost) {
    const TimeNs flat = options_.reconfig_cost;
    cost = [flat](const std::string&, const std::string&) { return flat; };
  }

  // The static feasibility oracle: pdr::verify's interval analysis over
  // the point's schedule (with the point's own preload assumptions), or
  // the caller's override. Rejected points are never simulated.
  aaa::ScheduleVerifier verifier;
  if (options_.static_pruning) {
    verifier = options_.verifier;
    if (!verifier) {
      const aaa::Project* project = &project_;
      verifier = [project](const aaa::Schedule& schedule,
                           const aaa::DesignPoint& point) -> std::string {
        verify::VerifyOptions vo;
        vo.preloaded = point.to_options().preloaded;
        const verify::Certificate cert =
            verify::verify_schedule(schedule, project->algorithm, project->architecture, vo);
        if (cert.certified()) return "";
        return "statically rejected: " + cert.first_error();
      };
    }
  }

  // One scenario per point; each body writes only its own outcome slot.
  std::vector<Scenario> scenarios;
  scenarios.reserve(report.points.size());
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const aaa::DesignPoint& point = report.points[i];
    aaa::ExplorationOutcome& slot = report.outcomes[i];
    scenarios.push_back(Scenario{
        point.name(), [this, &point, &slot, &cost, &verifier](ObsSinks& sinks) -> std::string {
          slot = aaa::run_design_point(project_, point, cost, verifier);
          sinks.metrics.counter("explore.points").add(1);
          if (slot.rejected) sinks.metrics.counter("explore.pruned").add(1);
          if (!slot.ok) throw Error(slot.error);
          sinks.metrics.gauge("explore.makespan_ns").set(static_cast<double>(slot.makespan));
          sinks.metrics.gauge("explore.reconfig_exposed_ns")
              .set(static_cast<double>(slot.reconfig_exposed));
          return strprintf("makespan %.3f us, %d reconfigs (%.3f us exposed)\n",
                           to_us(slot.makespan), slot.reconfig_count,
                           to_us(slot.reconfig_exposed));
        }});
  }

  const ScenarioRunner runner(options_.jobs);
  report.sweep = runner.run(scenarios);
  report.pareto = aaa::pareto_front(report.outcomes);
  return report;
}

std::size_t ExplorationReport::failed_points() const {
  std::size_t n = 0;
  for (const auto& outcome : outcomes)
    if (!outcome.ok && !outcome.rejected) ++n;
  return n;
}

std::size_t ExplorationReport::pruned_points() const {
  std::size_t n = 0;
  for (const auto& outcome : outcomes)
    if (outcome.rejected) ++n;
  return n;
}

std::string ExplorationReport::to_string(std::size_t top) const {
  std::string out = strprintf("design space: %zu points (%s)\n", points.size(), space.c_str());
  const std::size_t shown = top == 0 ? pareto.size() : std::min(top, pareto.size());
  out += strprintf("pareto front: %zu of %zu points%s\n", pareto.size(),
                   points.size() - failed_points() - pruned_points(),
                   shown < pareto.size() ? strprintf(" (top %zu shown)", shown).c_str() : "");
  Table table({"#", "makespan (us)", "exposed (us)", "reconfigs", "point"});
  for (std::size_t rank = 0; rank < shown; ++rank) {
    const std::size_t i = pareto[rank];
    table.row()
        .add(static_cast<std::int64_t>(rank + 1))
        .add(to_us(outcomes[i].makespan), 3)
        .add(to_us(outcomes[i].reconfig_exposed), 3)
        .add(outcomes[i].reconfig_count)
        .add(points[i].name());
  }
  out += table.to_markdown();
  if (pruned_points() > 0)
    out += strprintf("%zu points statically rejected by pdr::verify (pruned, never simulated)\n",
                     pruned_points());
  if (failed_points() > 0)
    out += strprintf("%zu points failed to schedule (excluded from the front)\n",
                     failed_points());
  return out;
}

}  // namespace pdr::flow
