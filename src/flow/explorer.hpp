// DesignSpaceExplorer: the parallel front end of the schedule design-space
// search. aaa::ExplorationSpace enumerates the points (mapping strategy x
// prefetch x preloaded-module seeds x variant selections); this class runs
// one adequation per point through the ScenarioRunner thread pool, scores
// them by (makespan, reconfiguration exposure) and returns the Pareto set.
//
// Determinism contract, inherited from ScenarioRunner: scenario bodies are
// pure functions of (project, point) writing only index-owned slots, and
// the merge runs serially in enumeration order — so the report (and
// `pdrflow explore` stdout) is byte-identical whatever --jobs is.
#pragma once

#include <string>
#include <vector>

#include "aaa/explorer.hpp"
#include "flow/scenario.hpp"
#include "util/units.hpp"

namespace pdr::flow {

struct ExplorerOptions {
  /// Thread-pool width (<= 1 runs inline).
  int jobs = 1;
  /// Hard ceiling on the enumerated space — a larger cross product is an
  /// explicit error, never a silent truncation.
  std::size_t max_points = 4096;
  /// Flat reconfiguration cost…
  TimeNs reconfig_cost = 4'000'000;  // 4 ms, the paper's measured figure
  /// …or a callback overriding it (e.g. per-variant cost from a bundle).
  aaa::Adequation::ReconfigCost reconfig_cost_fn;
  /// Static hazard certification (pdr::verify's interval analysis) on
  /// every point's schedule before it is accepted: uncertified points are
  /// marked rejected and never simulated or scored. The prune is sound —
  /// the verifier certifies every schedule the adequation engine emits —
  /// so the surviving Pareto front is byte-identical to an unpruned run.
  bool static_pruning = true;
  /// Replaces the built-in verifier (tests, or an external feasibility
  /// oracle such as a floorplanner). Consulted only when static_pruning
  /// is true.
  aaa::ScheduleVerifier verifier;
};

struct ExplorationReport {
  std::vector<aaa::DesignPoint> points;           ///< enumeration order
  std::vector<aaa::ExplorationOutcome> outcomes;  ///< same order
  std::vector<std::size_t> pareto;                ///< indices, best makespan first
  SweepResult sweep;    ///< per-point reports + merged trace/metrics
  std::string space;    ///< axis summary (ExplorationSpace::describe)

  /// Points that failed to schedule (excluding statically rejected ones).
  std::size_t failed_points() const;
  /// Points the static verifier refused to certify (pruned, unsimulated).
  std::size_t pruned_points() const;

  /// Deterministic textual report: axis summary, Pareto table (`top` rows,
  /// 0 = the whole front) and a one-line tally. Simulated-time numbers
  /// only — wall-clock stays out, so serial and parallel runs match.
  std::string to_string(std::size_t top = 0) const;
};

class DesignSpaceExplorer {
 public:
  /// The project is copied so worker threads share an immutable snapshot.
  DesignSpaceExplorer(aaa::Project project, aaa::ExplorationSpace space,
                      ExplorerOptions options = {});

  /// Runs every design point, blocks until all finish. Throws pdr::Error
  /// when the space exceeds options.max_points.
  ExplorationReport run() const;

  const aaa::ExplorationSpace& space() const { return space_; }

 private:
  aaa::Project project_;
  aaa::ExplorationSpace space_;
  ExplorerOptions options_;
};

}  // namespace pdr::flow
