#include "flow/fingerprint.hpp"

#include <cstring>

namespace pdr::flow {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

void Fingerprint::mix_raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    value_ ^= p[i];
    value_ *= kFnvPrime;
  }
}

Fingerprint& Fingerprint::mix(std::span<const std::uint8_t> bytes) {
  const std::uint64_t n = bytes.size();
  mix_raw(&n, sizeof n);
  mix_raw(bytes.data(), bytes.size());
  return *this;
}

Fingerprint& Fingerprint::mix(const std::string& s) {
  const std::uint64_t n = s.size();
  mix_raw(&n, sizeof n);
  mix_raw(s.data(), s.size());
  return *this;
}

Fingerprint& Fingerprint::mix(std::uint64_t v) {
  mix_raw(&v, sizeof v);
  return *this;
}

Fingerprint& Fingerprint::mix(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

Fingerprint fingerprint_of(const std::string& s) {
  Fingerprint fp;
  fp.mix(s);
  return fp;
}

}  // namespace pdr::flow
