// Content fingerprints: the cache keys of the pipeline's ArtifactStore.
//
// A Fingerprint is a 64-bit FNV-1a hash accumulated over every input that
// feeds a stage — source text, parameter values, and the fingerprints of
// upstream stages. Two stage invocations with equal fingerprints are
// guaranteed (up to hash collisions) to have byte-identical inputs, so
// the store may serve the first invocation's artifact to the second.
//
// Mixing is order-sensitive and length-prefixed: mix("ab") then mix("c")
// differs from mix("a") then mix("bc"), so concatenation ambiguity cannot
// alias two distinct input sets onto one key.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace pdr::flow {

class Fingerprint {
 public:
  /// Accumulates raw bytes (length-prefixed).
  Fingerprint& mix(std::span<const std::uint8_t> bytes);
  Fingerprint& mix(const std::string& s);
  Fingerprint& mix(std::uint64_t v);
  Fingerprint& mix(double v);
  Fingerprint& mix(bool v) { return mix(std::uint64_t{v ? 1u : 0u}); }
  /// Folds another fingerprint in (upstream-stage keys).
  Fingerprint& mix(const Fingerprint& other) { return mix(other.value_); }

  std::uint64_t value() const { return value_; }

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.value_ == b.value_;
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.value_ < b.value_;
  }

 private:
  void mix_raw(const void* data, std::size_t n);

  std::uint64_t value_ = 14695981039346656037ull;  // FNV-1a offset basis
};

/// Fingerprint of a single string, for the common one-input case.
Fingerprint fingerprint_of(const std::string& s);

}  // namespace pdr::flow
