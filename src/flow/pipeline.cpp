#include "flow/pipeline.hpp"

#include <utility>

#include "aaa/codegen_c.hpp"
#include "aaa/codegen_m4.hpp"
#include "aaa/codegen_vhdl.hpp"
#include "fabric/device.hpp"
#include "lint/constraint_rules.hpp"
#include "lint/executive_rules.hpp"
#include "lint/schedule_rules.hpp"
#include "rtr/bitstream_store.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "verify/verify.hpp"

namespace pdr::flow {

Fingerprint fingerprint_statics(const std::vector<synth::ModuleSpec>& statics) {
  Fingerprint fp;
  fp.mix(std::uint64_t{statics.size()});
  for (const auto& s : statics) {
    fp.mix(s.name).mix(s.kind).mix(std::uint64_t{s.params.size()});
    for (const auto& [key, value] : s.params)
      fp.mix(key).mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
  }
  return fp;
}

Pipeline::Pipeline(PipelineOptions options, std::shared_ptr<ArtifactStore> store)
    : options_(std::move(options)), store_(std::move(store)) {
  PDR_CHECK(store_ != nullptr, "Pipeline", "null artifact store");
  PDR_CHECK(!options_.reconfig_cost_fn || !options_.reconfig_cost_tag.empty(), "Pipeline",
            "a reconfig_cost_fn needs a reconfig_cost_tag to key the cache");
}

void Pipeline::set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

Fingerprint Pipeline::constraints_key() const { return fingerprint_of(options_.constraints_text); }

Fingerprint Pipeline::synth_key() const {
  Fingerprint fp = constraints_key();
  fp.mix(fingerprint_statics(options_.statics));
  return fp;
}

Fingerprint Pipeline::project_key() const { return fingerprint_of(options_.project_text); }

Fingerprint Pipeline::adequation_key() const {
  Fingerprint fp = project_key();
  fp.mix(static_cast<std::uint64_t>(options_.reconfig_cost))
      .mix(options_.reconfig_cost_tag)
      .mix(options_.prefetch)
      .mix(std::uint64_t{options_.preloaded.size()});
  for (const auto& [region, module] : options_.preloaded) fp.mix(region).mix(module);
  if (options_.apply_constraints) fp.mix(constraints_key());
  return fp;
}

void Pipeline::note_stage(const char* stage, bool ran) {
  if (tracer_ != nullptr && !ran)
    tracer_->instant("flow", std::string(stage) + " (cached)", "flow_cache", 0);
  if (metrics_ != nullptr) store_->export_metrics(*metrics_);
}

std::shared_ptr<const aaa::ConstraintSet> Pipeline::constraints() {
  PDR_CHECK(!options_.constraints_text.empty(), "Pipeline::constraints",
            "no constraints_text input");
  const std::uint64_t runs_before = store_->runs(stage::kParseConstraints);
  auto artifact = store_->get_or_build<aaa::ConstraintSet>(
      stage::kParseConstraints, constraints_key(),
      [&] { return aaa::parse_constraints(options_.constraints_text, /*validate=*/false); });
  note_stage(stage::kParseConstraints, store_->runs(stage::kParseConstraints) != runs_before);
  return artifact;
}

std::shared_ptr<const lint::Report> Pipeline::lint_report() {
  auto parsed = constraints();
  const std::uint64_t runs_before = store_->runs(stage::kLint);
  auto artifact = store_->get_or_build<lint::Report>(
      stage::kLint, constraints_key(), [&] { return lint::check_constraints(*parsed); });
  note_stage(stage::kLint, store_->runs(stage::kLint) != runs_before);
  return artifact;
}

std::shared_ptr<const synth::DesignBundle> Pipeline::bundle() {
  auto parsed = constraints();
  if (options_.lint_gate) {
    auto report = lint_report();
    if (report->errors() > 0)
      throw Error("constraints failed the design-rule check:\n" + report->to_text());
  }
  const std::uint64_t runs_before = store_->runs(stage::kSynth);
  auto artifact = store_->get_or_build<synth::DesignBundle>(stage::kSynth, synth_key(), [&] {
    synth::ModularDesignFlow flow(fabric::device_by_name(parsed->device));
    flow.set_observability(tracer_, metrics_);
    for (const auto& s : options_.statics) flow.add_static(s.name, s.kind, s.params);
    for (const auto& region : parsed->regions) {
      std::vector<synth::ModuleSpec> variants;
      for (const auto* m : parsed->modules_of(region.name))
        variants.push_back(synth::ModuleSpec{m->name, m->kind, m->params});
      flow.add_region(region.name, std::move(variants), region.margin,
                      region.width);  // width -1 = auto
    }
    return flow.run();
  });
  note_stage(stage::kSynth, store_->runs(stage::kSynth) != runs_before);
  return artifact;
}

std::shared_ptr<const aaa::Project> Pipeline::project() {
  PDR_CHECK(!options_.project_text.empty(), "Pipeline::project", "no project_text input");
  const std::uint64_t runs_before = store_->runs(stage::kParseProject);
  auto artifact = store_->get_or_build<aaa::Project>(
      stage::kParseProject, project_key(), [&] { return aaa::parse_project(options_.project_text); });
  note_stage(stage::kParseProject, store_->runs(stage::kParseProject) != runs_before);
  return artifact;
}

std::shared_ptr<const AdequationArtifacts> Pipeline::adequation() {
  auto proj = project();
  const std::uint64_t runs_before = store_->runs(stage::kAdequation);
  auto artifact =
      store_->get_or_build<AdequationArtifacts>(stage::kAdequation, adequation_key(), [&] {
        aaa::Adequation adequation(proj->algorithm, proj->architecture, proj->durations);
        if (options_.apply_constraints) adequation.apply_constraints(*constraints());
        if (options_.reconfig_cost_fn) {
          adequation.set_reconfig_cost(options_.reconfig_cost_fn);
        } else {
          const TimeNs cost = options_.reconfig_cost;
          adequation.set_reconfig_cost(
              [cost](const std::string&, const std::string&) { return cost; });
        }
        aaa::AdequationOptions opts;
        opts.prefetch = options_.prefetch;
        opts.preloaded = options_.preloaded;
        const aaa::Schedule schedule = adequation.run(opts);
        const aaa::Executive executive =
            aaa::generate_executive(schedule, proj->algorithm, proj->architecture);
        lint::Report report =
            lint::check_schedule(schedule, proj->algorithm, proj->architecture);
        report.merge(lint::check_executive(executive));
        // Interval certification (PDR1xx): the schedule must be provably
        // race-free before anything downstream simulates or emits it.
        verify::VerifyOptions verify_options;
        verify_options.preloaded = options_.preloaded;
        std::shared_ptr<const aaa::ConstraintSet> cset;  // keeps the artifact alive
        if (options_.apply_constraints) {
          cset = constraints();
          verify_options.constraints = cset.get();
        }
        report.merge(
            verify::verify_schedule(schedule, proj->algorithm, proj->architecture, verify_options)
                .to_report());
        if (options_.lint_gate && report.errors() > 0)
          throw Error("schedule/executive failed the design-rule check:\n" + report.to_text());
        return AdequationArtifacts{schedule, executive, std::move(report)};
      });
  note_stage(stage::kAdequation, store_->runs(stage::kAdequation) != runs_before);
  return artifact;
}

std::shared_ptr<const CodegenArtifacts> Pipeline::codegen() {
  auto proj = project();
  auto adeq = adequation();
  const bool with_constraints = !options_.constraints_text.empty();
  // The generated manager/top wiring depends on the constraints (port,
  // manager/builder placement) and, for region operators, on the synth
  // floorplan's bus-macro provisioning — fold both into the key.
  Fingerprint key = adequation_key();
  if (with_constraints) key.mix(synth_key());
  const std::uint64_t runs_before = store_->runs(stage::kCodegen);
  auto artifact = store_->get_or_build<CodegenArtifacts>(stage::kCodegen, key, [&] {
    const aaa::ConstraintSet fallback;
    const aaa::ConstraintSet& cset = with_constraints ? *constraints() : fallback;
    const synth::DesignBundle* bun = with_constraints ? bundle().get() : nullptr;
    CodegenArtifacts out;
    out.files["pdr_executive_pkg.vhd"] = aaa::generate_vhdl_package();
    for (aaa::NodeId n : proj->architecture.operators()) {
      const aaa::OperatorNode& op = proj->architecture.op(n);
      const aaa::MacroProgram& program = adeq->executive.program(op.name);
      if (op.kind == aaa::OperatorKind::Processor) {
        out.files[identifier(op.name) + "_executive.c"] =
            aaa::generate_c_executive(program, op, cset);
      } else {
        aaa::VhdlOptions vhdl;
        vhdl.embed_reconfig_manager =
            op.kind == aaa::OperatorKind::FpgaStatic && cset.manager == aaa::Placement::Fpga;
        if (op.kind == aaa::OperatorKind::FpgaRegion && bun != nullptr) {
          if (const fabric::Region* region = bun->floorplan.find_region(op.region))
            vhdl.bus_macro_count = static_cast<int>(region->bus_macros.size());
        }
        out.files[identifier(op.name) + ".vhd"] = aaa::generate_vhdl_entity(program, op, vhdl);
      }
    }
    out.files["design_top.vhd"] =
        aaa::generate_vhdl_top(adeq->executive, proj->architecture, cset);
    for (const auto& program : adeq->executive.programs)
      out.files[identifier(program.resource) + ".m4"] =
          aaa::generate_m4_macrocode(program, proj->architecture);
    out.files["application.m4"] =
        aaa::generate_m4_application(adeq->executive, proj->architecture, proj->name);
    return out;
  });
  note_stage(stage::kCodegen, store_->runs(stage::kCodegen) != runs_before);
  return artifact;
}

std::shared_ptr<const fault::CampaignReport> Pipeline::fault_campaign(
    const std::string& spec_text, const FaultCampaignOptions& opts) {
  auto bun = bundle();
  Fingerprint key = synth_key();
  key.mix(spec_text)
      .mix(opts.seed)
      .mix(opts.recovery)
      .mix(static_cast<std::uint64_t>(opts.scrub_period))
      .mix(std::uint64_t{static_cast<unsigned>(opts.scrub_mode)})
      .mix(static_cast<std::uint64_t>(opts.demand_period))
      .mix(opts.manager_tag)
      .mix(opts.store_bandwidth)
      .mix(static_cast<std::uint64_t>(opts.store_latency));
  const std::uint64_t runs_before = store_->runs(stage::kFaultCampaign);
  auto artifact =
      store_->get_or_build<fault::CampaignReport>(stage::kFaultCampaign, key, [&] {
        const fault::FaultSpec spec = fault::parse_fault_spec(spec_text);
        fault::CampaignConfig config;
        config.seed = opts.seed;
        config.recovery = opts.recovery;
        config.scrub_period = opts.scrub_period;
        config.scrub_mode = opts.scrub_mode;
        config.demand_period = opts.demand_period;
        config.manager = opts.manager;
        rtr::BitstreamStore store(opts.store_bandwidth, opts.store_latency);
        return fault::run_campaign(*bun, store, spec, config, tracer_, metrics_);
      });
  note_stage(stage::kFaultCampaign, store_->runs(stage::kFaultCampaign) != runs_before);
  return artifact;
}

}  // namespace pdr::flow
