// The pdr::flow pipeline: the paper's top-down flow as an explicit stage
// graph over cached artifacts.
//
// Stages and their data flow (docs/pipeline.md has the full picture):
//
//   constraints_text ──> ParseConstraints ──> Lint ──> Synth ─┬─> FaultCampaign
//   project_text ──────> ParseProject ──> Adequation ──> Codegen
//
// Every stage is keyed in the ArtifactStore by a content fingerprint of
// its transitive inputs, so re-running a pipeline whose upstream inputs
// are unchanged (the same constraints file across a prefetch sweep, say)
// serves the cached schedule/bundle instead of recomputing it — and
// editing one input byte re-runs exactly the stages downstream of that
// input, nothing else.
//
// A Pipeline instance is cheap: it holds the input text and a shared
// ArtifactStore, and each accessor materialises (or fetches) one stage's
// artifact. Stage artifacts are immutable and shared; two pipelines with
// the same inputs and store alias the same artifacts.
//
// The Simulate stage (the seeded MC-CDMA transmitter run) lives in
// mccdma::flow_presets — it sits above this library in the dependency
// order. FaultCampaign is hosted here since pdr::fault is below flow.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "fault/campaign.hpp"
#include "flow/artifact_store.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/flow.hpp"
#include "util/units.hpp"

namespace pdr::flow {

/// Stable stage names: ArtifactStore keys, flow.cache.* metric suffixes.
namespace stage {
inline constexpr const char* kParseConstraints = "parse_constraints";
inline constexpr const char* kLint = "lint";
inline constexpr const char* kSynth = "synth";
inline constexpr const char* kParseProject = "parse_project";
inline constexpr const char* kAdequation = "adequation";
inline constexpr const char* kCodegen = "codegen";
inline constexpr const char* kFaultCampaign = "fault_campaign";
}  // namespace stage

struct PipelineOptions {
  // --- constraints side (ParseConstraints -> Lint -> Synth) -------------
  std::string constraints_text;
  std::vector<synth::ModuleSpec> statics;

  // --- project side (ParseProject -> Adequation -> Codegen) -------------
  std::string project_text;
  /// Constant reconfiguration cost for the adequation…
  TimeNs reconfig_cost = 4'000'000;  // 4 ms, the paper's measured figure
  /// …or a callback overriding it (e.g. per-variant cost from the synth
  /// bundle). Callbacks are opaque to the cache: a non-empty
  /// `reconfig_cost_tag` naming the callback's identity is mandatory so
  /// two different cost models never alias one cache key.
  aaa::Adequation::ReconfigCost reconfig_cost_fn;
  std::string reconfig_cost_tag;
  bool prefetch = true;
  /// Modules assumed resident per region at t=0.
  std::map<std::string, std::string> preloaded;
  /// Apply the constraints' region pinnings/exclusions to the adequation
  /// (requires constraints_text).
  bool apply_constraints = false;

  /// Lint gate: refuse (throw pdr::Error carrying the report) to run
  /// Synth/Adequation when the input fails the design-rule check.
  bool lint_gate = true;
};

/// Adequation-stage artifact: schedule + synchronized executive + the
/// (non-blocking) diagnostics the schedule/executive rule families found.
struct AdequationArtifacts {
  aaa::Schedule schedule;
  aaa::Executive executive;
  lint::Report report;
};

/// Codegen-stage artifact: filename -> generated source.
struct CodegenArtifacts {
  std::map<std::string, std::string> files;
};

/// FaultCampaign-stage inputs beyond the spec text. `manager_tag` must
/// change whenever `manager` does (the cache cannot see into the struct).
struct FaultCampaignOptions {
  std::uint64_t seed = 0;  ///< 0 = the spec's own seed
  bool recovery = true;
  TimeNs scrub_period = 10'000'000;
  fault::ScrubScheduler::Mode scrub_mode = fault::ScrubScheduler::Mode::Blind;
  TimeNs demand_period = 5'000'000;
  rtr::ManagerConfig manager;
  std::string manager_tag;
  double store_bandwidth = 16.7e6;  ///< external bitstream memory model
  TimeNs store_latency = 10'000;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options,
                    std::shared_ptr<ArtifactStore> store = default_store());

  /// Sinks receive stage spans/counters for stages that actually run;
  /// cache hits emit an instant event instead. Either may be nullptr.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // --- constraints side -------------------------------------------------
  std::shared_ptr<const aaa::ConstraintSet> constraints();
  /// Constraint-rule diagnostics (always computed, never throws).
  std::shared_ptr<const lint::Report> lint_report();
  /// The Modular Design flow output. Throws when the lint gate rejects.
  std::shared_ptr<const synth::DesignBundle> bundle();

  // --- project side -----------------------------------------------------
  std::shared_ptr<const aaa::Project> project();
  std::shared_ptr<const AdequationArtifacts> adequation();
  std::shared_ptr<const CodegenArtifacts> codegen();

  // --- fault campaign ---------------------------------------------------
  /// Seeded campaign on bundle(); cached by (bundle, spec, options), so
  /// repeating a seed in a sweep is a cache hit.
  std::shared_ptr<const fault::CampaignReport> fault_campaign(const std::string& spec_text,
                                                              const FaultCampaignOptions& opts);

  const PipelineOptions& options() const { return options_; }
  ArtifactStore& store() { return *store_; }
  std::shared_ptr<ArtifactStore> store_ptr() const { return store_; }

 private:
  Fingerprint constraints_key() const;
  Fingerprint synth_key() const;
  Fingerprint project_key() const;
  Fingerprint adequation_key() const;

  /// Emits a cache-hit instant on `tracer_` when `ran` is false, and
  /// refreshes the flow.cache.* metrics either way.
  void note_stage(const char* stage, bool ran);

  PipelineOptions options_;
  std::shared_ptr<ArtifactStore> store_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Fingerprint helper shared with presets: mixes a ModuleSpec list.
Fingerprint fingerprint_statics(const std::vector<synth::ModuleSpec>& statics);

}  // namespace pdr::flow
