#include "flow/scenario.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "util/arg_parser.hpp"
#include "util/error.hpp"

namespace pdr::flow {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

void ObsSinks::write() const {
  if (!trace_path.empty()) {
    tracer.write_chrome_json(trace_path);
    std::printf("wrote trace with %zu events to %s\n", tracer.size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    metrics.write_json(metrics_path);
    std::printf("wrote %zu metrics to %s\n", metrics.names().size(), metrics_path.c_str());
  }
}

std::string SweepResult::combined_report() const {
  std::string out;
  for (const ScenarioResult& r : results) {
    out += "=== " + r.name + " ===\n";
    out += r.ok() ? r.report : "ERROR: " + r.error + "\n";
  }
  return out;
}

void SweepResult::write_obs(const std::string& trace_path,
                            const std::string& metrics_path) const {
  if (!trace_path.empty()) {
    trace.write_chrome_json(trace_path);
    std::printf("wrote trace with %zu events to %s\n", trace.size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    metrics.write_json(metrics_path);
    std::printf("wrote %zu metrics to %s\n", metrics.names().size(), metrics_path.c_str());
  }
}

std::size_t SweepResult::failures() const {
  std::size_t n = 0;
  for (const ScenarioResult& r : results)
    if (!r.ok()) ++n;
  return n;
}

ScenarioRunner::ScenarioRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

SweepResult ScenarioRunner::run(const std::vector<Scenario>& scenarios) const {
  const auto sweep_start = std::chrono::steady_clock::now();
  const std::size_t n = scenarios.size();

  // Per-scenario isolation: each worker touches only index-owned slots.
  std::vector<ObsSinks> sinks(n);
  std::vector<ScenarioResult> results(n);
  for (std::size_t i = 0; i < n; ++i) results[i].name = scenarios[i].name;

  const auto run_one = [&](std::size_t i) {
    PDR_CHECK(scenarios[i].body != nullptr, "ScenarioRunner", "scenario without a body");
    const auto start = std::chrono::steady_clock::now();
    try {
      results[i].report = scenarios[i].body(sinks[i]);
    } catch (const std::exception& e) {
      results[i].error = e.what();
    }
    results[i].wall_ms = elapsed_ms(start);
  };

  if (jobs_ <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    const std::size_t workers = std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) run_one(i);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Deterministic merge: strictly scenario-list order, after the barrier.
  SweepResult sweep;
  sweep.results = std::move(results);
  for (std::size_t i = 0; i < n; ++i) {
    sweep.trace.append(sinks[i].tracer, scenarios[i].name + "/");
    sweep.metrics.merge(sinks[i].metrics);
  }
  sweep.wall_ms = elapsed_ms(sweep_start);
  return sweep;
}

ObsSinks obs_sinks_from_argv(int& argc, char** argv) {
  const util::ArgParser args = util::ArgParser::extract(
      "obs", argc, argv, {{"--trace-out", true}, {"--metrics-out", true}});
  ObsSinks sinks;
  sinks.trace_path = args.string_or("--trace-out", "");
  sinks.metrics_path = args.string_or("--metrics-out", "");
  return sinks;
}

int jobs_from_argv(int& argc, char** argv, int fallback) {
  const util::ArgParser args = util::ArgParser::extract("jobs", argc, argv, {{"--jobs", true}});
  return static_cast<int>(args.uint_or("--jobs", static_cast<std::uint64_t>(fallback)));
}

}  // namespace pdr::flow
