// ScenarioRunner: N independent pipeline/simulation instances on a
// fixed-size thread pool, with per-scenario observability sinks merged
// deterministically.
//
// The determinism contract: for the same scenario list (same seeds, same
// bodies), the merged SweepResult — per-scenario report strings, merged
// tracer, merged metrics — is byte-identical whatever `jobs` is, 1 or 16.
// Three properties combine to give that:
//  - every scenario body is a pure function of its inputs (all the
//    simulations are seed-driven; sim::EventQueue's FIFO tie-break keeps
//    them so),
//  - each scenario writes only to its own Tracer/MetricsRegistry and its
//    own result slot (no shared mutable state between bodies),
//  - merging happens after the barrier, serially, in scenario-list order
//    (never completion order).
// Wall-clock timings are recorded per scenario but deliberately kept out
// of the report strings; print them to stderr, not stdout.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdr::flow {

/// Per-scenario observability sinks, handed to the body. Also the shared
/// --trace-out/--metrics-out plumbing for the bench/CLI binaries (the
/// successor of the deleted bench/bench_obs.hpp).
struct ObsSinks {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::string trace_path;    ///< "" = do not write
  std::string metrics_path;  ///< "" = do not write

  /// Writes whichever outputs have a path, logging one line each.
  void write() const;
};

struct Scenario {
  /// Unique label; prefixes the scenario's tracks in the merged trace.
  std::string name;
  /// Runs the scenario, recording into `sinks`, and returns the
  /// deterministic report text (simulated-time numbers only — no
  /// wall-clock, or serial-vs-parallel byte-identity breaks).
  std::function<std::string(ObsSinks& sinks)> body;
};

struct ScenarioResult {
  std::string name;
  std::string report;   ///< body's return value ("" when it threw)
  std::string error;    ///< exception message ("" on success)
  double wall_ms = 0;   ///< body wall-clock (excluded from determinism)
  bool ok() const { return error.empty(); }
};

struct SweepResult {
  std::vector<ScenarioResult> results;  ///< scenario-list order
  obs::Tracer trace;                    ///< tracks prefixed "<name>/"
  obs::MetricsRegistry metrics;         ///< counters summed, index order
  double wall_ms = 0;                   ///< whole sweep, wall-clock

  /// Concatenated per-scenario reports, each under a "=== name ==="
  /// header — the sweep's canonical byte-comparable output.
  std::string combined_report() const;
  std::size_t failures() const;

  /// Writes the merged trace/metrics to the given paths ("" = skip),
  /// logging one line each — the post-sweep counterpart of
  /// ObsSinks::write().
  void write_obs(const std::string& trace_path, const std::string& metrics_path) const;
};

class ScenarioRunner {
 public:
  /// `jobs` <= 1 runs scenarios inline on the calling thread.
  explicit ScenarioRunner(int jobs);

  /// Runs every scenario, blocks until all finish, merges in list order.
  SweepResult run(const std::vector<Scenario>& scenarios) const;

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

/// Parses (and strips from argv) --trace-out/--metrics-out into an
/// ObsSinks, the pre-benchmark::Initialize idiom the ablations use.
ObsSinks obs_sinks_from_argv(int& argc, char** argv);

/// Parses (and strips) a --jobs N flag; `fallback` when absent.
int jobs_from_argv(int& argc, char** argv, int fallback = 1);

}  // namespace pdr::flow
