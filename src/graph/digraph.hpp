// Generic directed graph with typed vertex and edge payloads.
//
// Both AAA graphs (the data-flow algorithm graph and the architecture
// graph) are instances of Digraph. Vertices and edges are addressed by
// dense integer ids that stay valid for the life of the graph (no removal
// compaction; removed slots are tombstoned).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace pdr::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

template <typename V, typename E>
class Digraph {
 public:
  struct Node {
    V value;
    std::vector<EdgeId> out;
    std::vector<EdgeId> in;
    bool alive = true;
  };
  struct Edge {
    E value;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    bool alive = true;
  };

  NodeId add_node(V value) {
    nodes_.push_back(Node{std::move(value), {}, {}, true});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  EdgeId add_edge(NodeId from, NodeId to, E value) {
    PDR_CHECK(valid(from) && valid(to), "Digraph::add_edge", "endpoint does not exist");
    edges_.push_back(Edge{std::move(value), from, to, true});
    const auto id = static_cast<EdgeId>(edges_.size() - 1);
    nodes_[from].out.push_back(id);
    nodes_[to].in.push_back(id);
    return id;
  }

  /// Tombstones a node and all incident edges.
  void remove_node(NodeId n) {
    PDR_CHECK(valid(n), "Digraph::remove_node", "node does not exist");
    for (EdgeId e : nodes_[n].out) edges_[e].alive = false;
    for (EdgeId e : nodes_[n].in) edges_[e].alive = false;
    nodes_[n].alive = false;
  }

  void remove_edge(EdgeId e) {
    PDR_CHECK(e < edges_.size() && edges_[e].alive, "Digraph::remove_edge", "edge does not exist");
    edges_[e].alive = false;
  }

  bool valid(NodeId n) const { return n < nodes_.size() && nodes_[n].alive; }
  bool valid_edge(EdgeId e) const { return e < edges_.size() && edges_[e].alive; }

  V& operator[](NodeId n) {
    PDR_CHECK(valid(n), "Digraph", "node does not exist");
    return nodes_[n].value;
  }
  const V& operator[](NodeId n) const {
    PDR_CHECK(valid(n), "Digraph", "node does not exist");
    return nodes_[n].value;
  }
  E& edge(EdgeId e) {
    PDR_CHECK(valid_edge(e), "Digraph", "edge does not exist");
    return edges_[e].value;
  }
  const E& edge(EdgeId e) const {
    PDR_CHECK(valid_edge(e), "Digraph", "edge does not exist");
    return edges_[e].value;
  }

  NodeId edge_from(EdgeId e) const {
    PDR_CHECK(valid_edge(e), "Digraph", "edge does not exist");
    return edges_[e].from;
  }
  NodeId edge_to(EdgeId e) const {
    PDR_CHECK(valid_edge(e), "Digraph", "edge does not exist");
    return edges_[e].to;
  }

  /// Live out-edges of n.
  std::vector<EdgeId> out_edges(NodeId n) const { return live_edges(nodes_.at(n).out); }
  /// Live in-edges of n.
  std::vector<EdgeId> in_edges(NodeId n) const { return live_edges(nodes_.at(n).in); }

  // Allocation-free adjacency iteration. The vector-returning accessors
  // above allocate a fresh vector per call, which dominates scheduler
  // inner loops at 10^5..10^6 nodes; these visit the same live edges via
  // a callback instead.
  template <typename F>
  void for_each_out_edge(NodeId n, F&& f) const {
    for (EdgeId e : nodes_.at(n).out)
      if (edges_[e].alive) f(e);
  }
  template <typename F>
  void for_each_in_edge(NodeId n, F&& f) const {
    for (EdgeId e : nodes_.at(n).in)
      if (edges_[e].alive) f(e);
  }
  /// Visits live successor node ids (duplicates if parallel edges exist).
  template <typename F>
  void for_each_successor(NodeId n, F&& f) const {
    for (EdgeId e : nodes_.at(n).out)
      if (edges_[e].alive) f(edges_[e].to);
  }
  template <typename F>
  void for_each_predecessor(NodeId n, F&& f) const {
    for (EdgeId e : nodes_.at(n).in)
      if (edges_[e].alive) f(edges_[e].from);
  }

  /// Visits every live edge as (id, from, to) in edge-id order — one
  /// sequential pass over edge storage. Per-node adjacency lists hold
  /// ascending edge ids, so grouping this stream by endpoint reproduces
  /// exactly the order the per-node visitors produce; bulk builders
  /// (indegree tables, CSR flattening) use it to avoid chasing a random
  /// list per node.
  template <typename F>
  void for_each_live_edge(F&& f) const {
    for (EdgeId e = 0; e < edges_.size(); ++e)
      if (edges_[e].alive) f(e, edges_[e].from, edges_[e].to);
  }

  /// Visits every live node as (id, value) in id order — one sequential
  /// pass over node storage, without the per-access liveness check that
  /// operator[] performs. Bulk builders use it to snapshot value-pointer
  /// tables for scheduler inner loops.
  template <typename F>
  void for_each_live_node(F&& f) const {
    for (NodeId n = 0; n < nodes_.size(); ++n)
      if (nodes_[n].alive) f(n, nodes_[n].value);
  }

  /// Live in-edge count of n, without materializing the edge list.
  std::size_t in_degree(NodeId n) const {
    std::size_t count = 0;
    for (EdgeId e : nodes_.at(n).in)
      if (edges_[e].alive) ++count;
    return count;
  }
  std::size_t out_degree(NodeId n) const {
    std::size_t count = 0;
    for (EdgeId e : nodes_.at(n).out)
      if (edges_[e].alive) ++count;
    return count;
  }

  /// Node slots ever allocated (live + tombstoned): the bound for dense
  /// NodeId-indexed side tables.
  std::size_t node_capacity() const { return nodes_.size(); }
  /// Edge slots ever allocated (live + tombstoned): the bound for dense
  /// EdgeId-indexed side tables.
  std::size_t edge_capacity() const { return edges_.size(); }

  /// Live successor node ids of n (with duplicates if parallel edges exist).
  std::vector<NodeId> successors(NodeId n) const {
    std::vector<NodeId> out;
    out.reserve(nodes_.at(n).out.size());
    for_each_successor(n, [&](NodeId s) { out.push_back(s); });
    return out;
  }
  std::vector<NodeId> predecessors(NodeId n) const {
    std::vector<NodeId> out;
    out.reserve(nodes_.at(n).in.size());
    for_each_predecessor(n, [&](NodeId p) { out.push_back(p); });
    return out;
  }

  std::size_t node_count() const {
    return static_cast<std::size_t>(std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) { return n.alive; }));
  }
  std::size_t edge_count() const {
    return static_cast<std::size_t>(std::count_if(edges_.begin(), edges_.end(), [](const Edge& e) { return e.alive; }));
  }

  /// All live node ids in insertion order.
  std::vector<NodeId> node_ids() const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < nodes_.size(); ++n)
      if (nodes_[n].alive) out.push_back(n);
    return out;
  }
  std::vector<EdgeId> edge_ids() const {
    std::vector<EdgeId> out;
    for (EdgeId e = 0; e < edges_.size(); ++e)
      if (edges_[e].alive) out.push_back(e);
    return out;
  }

  /// Kahn topological order; empty optional if the live graph has a cycle.
  std::optional<std::vector<NodeId>> topological_order() const {
    // Indegrees from one sequential edge scan, not a list chase per node.
    std::vector<std::size_t> indeg(nodes_.size(), 0);
    for_each_live_edge([&](EdgeId, NodeId, NodeId to) { ++indeg[to]; });
    std::vector<NodeId> ready;
    std::size_t live = 0;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (!nodes_[n].alive) continue;
      ++live;
      if (indeg[n] == 0) ready.push_back(n);
    }
    std::vector<NodeId> order;
    order.reserve(live);
    for (std::size_t head = 0; head < ready.size(); ++head) {
      const NodeId n = ready[head];
      order.push_back(n);
      for_each_successor(n, [&](NodeId s) {
        if (--indeg[s] == 0) ready.push_back(s);
      });
    }
    if (order.size() != live) return std::nullopt;
    return order;
  }

  bool is_acyclic() const { return topological_order().has_value(); }

  /// Longest path length with per-node weights; requires acyclic graph.
  /// Returns per-node "distance to sink" (node weight included), i.e. the
  /// critical-path remainder used by list schedulers. `weight` is any
  /// NodeId -> double callable, invoked once per live node (statically
  /// dispatched — a million-node graph pays no std::function indirection).
  template <typename Weight>
  std::vector<double> critical_path_remainder(const Weight& weight) const {
    auto order = topological_order();
    PDR_CHECK(order.has_value(), "Digraph::critical_path_remainder", "graph has a cycle");
    std::vector<double> dist(nodes_.size(), 0.0);
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const NodeId n = *it;
      double best = 0.0;
      for_each_successor(n, [&](NodeId s) { best = std::max(best, dist[s]); });
      dist[n] = weight(n) + best;
    }
    return dist;
  }

  /// All nodes reachable from n (excluding n itself unless on a cycle).
  std::vector<NodeId> reachable_from(NodeId n) const {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<NodeId> stack{n};
    std::vector<NodeId> out;
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      for_each_successor(cur, [&](NodeId s) {
        if (!seen[s]) {
          seen[s] = true;
          out.push_back(s);
          stack.push_back(s);
        }
      });
    }
    return out;
  }

 private:
  std::vector<EdgeId> live_edges(const std::vector<EdgeId>& ids) const {
    std::vector<EdgeId> out;
    out.reserve(ids.size());
    for (EdgeId e : ids)
      if (edges_[e].alive) out.push_back(e);
    return out;
  }

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace pdr::graph
