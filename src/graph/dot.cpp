#include "graph/dot.hpp"

#include "util/strings.hpp"

namespace pdr::graph {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const std::string& graph_name, const std::vector<DotNode>& nodes,
                   const std::vector<DotEdge>& edges) {
  std::string out = "digraph " + identifier(graph_name) + " {\n";
  out += "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  for (const auto& n : nodes) {
    out += "  " + identifier(n.id) + " [label=\"" + escape(n.label) + "\", shape=" + n.shape;
    if (!n.color.empty()) out += ", style=filled, fillcolor=\"" + escape(n.color) + "\"";
    out += "];\n";
  }
  for (const auto& e : edges) {
    out += "  " + identifier(e.from) + " -> " + identifier(e.to);
    std::string attrs;
    if (!e.label.empty()) attrs += "label=\"" + escape(e.label) + "\"";
    if (e.dashed) attrs += std::string(attrs.empty() ? "" : ", ") + "style=dashed";
    if (!attrs.empty()) out += " [" + attrs + "]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace pdr::graph
