// Graphviz DOT export for pdr graphs.
#pragma once

#include <string>
#include <vector>

namespace pdr::graph {

/// One node of a DOT rendering.
struct DotNode {
  std::string id;
  std::string label;
  std::string shape = "box";   // graphviz shape name
  std::string color;           // optional fill color
};

/// One edge of a DOT rendering.
struct DotEdge {
  std::string from;
  std::string to;
  std::string label;
  bool dashed = false;
};

/// Renders a digraph description as Graphviz DOT text.
std::string to_dot(const std::string& graph_name, const std::vector<DotNode>& nodes,
                   const std::vector<DotEdge>& edges);

}  // namespace pdr::graph
