// Indegree / ready-set utilities for list schedulers.
//
// A list scheduler repeatedly asks "which nodes have every predecessor
// finished?". Rescanning all pending nodes each round costs O(V^2 * deg)
// over a whole schedule; ReadyTracker answers it incrementally: snapshot
// the indegrees once, then each complete() decrements the counters of the
// node's successors and hands back exactly the nodes that just became
// ready — O(V + E) total across the run.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace pdr::graph {

/// Live-edge indegree of every node, indexed by NodeId (dead slots 0).
template <typename V, typename E>
std::vector<std::size_t> indegree_counts(const Digraph<V, E>& g) {
  std::vector<std::size_t> indeg;
  for (NodeId n : g.node_ids()) {
    if (n >= indeg.size()) indeg.resize(n + 1, 0);
    indeg[n] = g.in_edges(n).size();
  }
  return indeg;
}

/// Incremental ready-set over a DAG snapshot. Construction captures
/// indegrees and successor lists; complete(n) returns the successors whose
/// last outstanding predecessor was n. Completing every node exactly once
/// visits each edge exactly once.
class ReadyTracker {
 public:
  template <typename V, typename E>
  explicit ReadyTracker(const Digraph<V, E>& g) : indeg_(indegree_counts(g)) {
    successors_.resize(indeg_.size());
    for (NodeId n : g.node_ids()) successors_[n] = g.successors(n);
    for (NodeId n : g.node_ids())
      if (indeg_[n] == 0) initial_.push_back(n);
    remaining_ = g.node_count();
  }

  /// Nodes ready before any completion (indegree 0), in id order.
  const std::vector<NodeId>& initial() const { return initial_; }

  /// Marks `n` complete; returns the successors that just became ready.
  /// Each node must be completed at most once.
  std::vector<NodeId> complete(NodeId n) {
    PDR_CHECK(n < indeg_.size(), "ReadyTracker::complete", "node does not exist");
    PDR_CHECK(remaining_ > 0, "ReadyTracker::complete", "all nodes already completed");
    --remaining_;
    std::vector<NodeId> newly_ready;
    for (NodeId s : successors_[n]) {
      PDR_CHECK(indeg_[s] > 0, "ReadyTracker::complete",
                "successor completed before its predecessor");
      if (--indeg_[s] == 0) newly_ready.push_back(s);
    }
    return newly_ready;
  }

  /// Nodes not yet completed.
  std::size_t remaining() const { return remaining_; }
  bool done() const { return remaining_ == 0; }

 private:
  std::vector<std::size_t> indeg_;
  std::vector<std::vector<NodeId>> successors_;
  std::vector<NodeId> initial_;
  std::size_t remaining_ = 0;
};

}  // namespace pdr::graph
