// Indegree / ready-set utilities for list schedulers.
//
// A list scheduler repeatedly asks "which nodes have every predecessor
// finished?". Rescanning all pending nodes each round costs O(V^2 * deg)
// over a whole schedule; ReadyTracker answers it incrementally: snapshot
// the indegrees once, then each complete() decrements the counters of the
// node's successors and hands back exactly the nodes that just became
// ready — O(V + E) total across the run.
#pragma once

#include <algorithm>
#include <vector>

#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace pdr::graph {

/// Live-edge indegree of every node, indexed by NodeId (dead slots 0).
template <typename V, typename E>
std::vector<std::size_t> indegree_counts(const Digraph<V, E>& g) {
  std::vector<std::size_t> indeg(g.node_capacity(), 0);
  for (NodeId n = 0; n < indeg.size(); ++n)
    if (g.valid(n)) indeg[n] = g.in_degree(n);
  return indeg;
}

/// Incremental ready-set over a DAG snapshot. Construction captures
/// indegrees and successor lists (flattened CSR — one allocation, not one
/// vector per node); complete(n) returns the successors whose last
/// outstanding predecessor was n. Completing every node exactly once
/// visits each edge exactly once; completing a node twice is a checked
/// error, since the second completion would decrement successor indegrees
/// again and surface nodes as ready before their real predecessors
/// finished.
class ReadyTracker {
 public:
  template <typename V, typename E>
  explicit ReadyTracker(const Digraph<V, E>& g) {
    // Indegrees and the successor CSR come from two sequential edge
    // scans instead of a per-node adjacency chase. Per-node out-lists
    // hold ascending edge ids, so scanning edges in id order fills each
    // CSR row in exactly the order for_each_successor would visit.
    const std::size_t cap = g.node_capacity();
    indeg_.assign(cap, 0);
    completed_.assign(cap, 0);
    succ_offset_.assign(cap + 1, 0);
    g.for_each_live_edge([&](EdgeId, NodeId from, NodeId to) {
      ++indeg_[to];
      ++succ_offset_[from + 1];
    });
    for (std::size_t n = 0; n < cap; ++n) succ_offset_[n + 1] += succ_offset_[n];
    succ_.resize(succ_offset_[cap]);
    std::vector<std::size_t> cursor(succ_offset_.begin(), succ_offset_.end() - 1);
    g.for_each_live_edge([&](EdgeId, NodeId from, NodeId to) { succ_[cursor[from]++] = to; });
    for (NodeId n = 0; n < cap; ++n) {
      if (!g.valid(n)) continue;
      if (indeg_[n] == 0) initial_.push_back(n);
      ++remaining_;
    }
    total_ = remaining_;
  }

  /// Nodes ready before any completion (indegree 0), in id order.
  const std::vector<NodeId>& initial() const { return initial_; }

  /// Marks `n` complete, appending the successors that just became ready
  /// to `newly_ready` (not cleared — callers reuse one buffer across the
  /// run to stay allocation-free). Each node must be completed exactly
  /// once; a double complete is a PDR_CHECK failure.
  void complete(NodeId n, std::vector<NodeId>& newly_ready) {
    PDR_CHECK(n < indeg_.size(), "ReadyTracker::complete", "node does not exist");
    PDR_CHECK(remaining_ > 0, "ReadyTracker::complete", "all nodes already completed");
    PDR_CHECK(!completed_[n], "ReadyTracker::complete", "node completed twice");
    completed_[n] = 1;
    --remaining_;
    for (std::size_t i = succ_offset_[n]; i < succ_offset_[n + 1]; ++i) {
      const NodeId s = succ_[i];
      PDR_CHECK(indeg_[s] > 0, "ReadyTracker::complete",
                "successor completed before its predecessor");
      if (--indeg_[s] == 0) newly_ready.push_back(s);
    }
  }

  /// Marks `n` complete; returns the successors that just became ready.
  std::vector<NodeId> complete(NodeId n) {
    std::vector<NodeId> newly_ready;
    complete(n, newly_ready);
    return newly_ready;
  }

  /// True once `n` has been completed.
  bool is_completed(NodeId n) const { return n < completed_.size() && completed_[n] != 0; }

  /// Per-node "distance to sink" over the snapshot — the same values as
  /// Digraph::critical_path_remainder (max over identical successor sets
  /// is permutation-independent), computed from the tracker's flattened
  /// CSR so a scheduler that already built a tracker pays no second
  /// adjacency chase. Requires a pristine tracker: the counters must
  /// still hold the snapshot indegrees, so call before any complete().
  template <typename Weight>
  std::vector<double> critical_path_remainder(const Weight& weight) const {
    PDR_CHECK(remaining_ == total_, "ReadyTracker::critical_path_remainder",
              "tracker already partially consumed");
    std::vector<std::size_t> indeg(indeg_);
    std::vector<NodeId> order;
    order.reserve(total_);
    order.insert(order.end(), initial_.begin(), initial_.end());
    for (std::size_t head = 0; head < order.size(); ++head) {
      const NodeId n = order[head];
      for (std::size_t i = succ_offset_[n]; i < succ_offset_[n + 1]; ++i)
        if (--indeg[succ_[i]] == 0) order.push_back(succ_[i]);
    }
    PDR_CHECK(order.size() == total_, "ReadyTracker::critical_path_remainder",
              "graph has a cycle");
    std::vector<double> dist(indeg_.size(), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      double best = 0.0;
      for (std::size_t i = succ_offset_[n]; i < succ_offset_[n + 1]; ++i)
        best = std::max(best, dist[succ_[i]]);
      dist[n] = weight(n) + best;
    }
    return dist;
  }

  /// Nodes not yet completed.
  std::size_t remaining() const { return remaining_; }
  bool done() const { return remaining_ == 0; }

 private:
  std::vector<std::size_t> indeg_;
  std::vector<char> completed_;
  std::vector<std::size_t> succ_offset_;  ///< CSR row offsets into succ_
  std::vector<NodeId> succ_;              ///< flattened successor lists
  std::vector<NodeId> initial_;
  std::size_t remaining_ = 0;
  std::size_t total_ = 0;  ///< live nodes in the snapshot
};

}  // namespace pdr::graph
