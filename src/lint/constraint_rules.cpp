#include "lint/constraint_rules.hpp"

#include "lint/diagnostic.hpp"

namespace pdr::lint {

Report check_constraints(const aaa::ConstraintSet& set) {
  Report report;
  visit_constraint_violations(set, [&report](Rule rule, Severity severity, std::string where,
                                             std::string message, std::string hint) {
    report.add(rule, severity, std::move(where), std::move(message), std::move(hint));
  });
  return report;
}

}  // namespace pdr::lint
