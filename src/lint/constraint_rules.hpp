// Constraints-file design rules (PDR001..PDR017).
//
// The paper's constraints file (§4) declares dynamic modules and their
// loading/unloading policies, area sharing, dynamic relations and
// exclusions. These rules check the file's self-consistency before any
// flow stage runs.
//
// `visit_constraint_violations` is THE implementation, shared by
//   - lint::check_constraints (diagnostic Report for `pdrflow check`),
//   - aaa::ConstraintSet::validate (throws with every error at once).
// It is a header template so that pdr_aaa reuses it without linking
// pdr_lint (no library cycle).
#pragma once

#include <set>
#include <string>
#include <utility>

#include "aaa/constraints.hpp"
#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "lint/rule_codes.hpp"
#include "synth/elaborate.hpp"
#include "util/error.hpp"

namespace pdr::lint {

class Report;

/// Calls emit(Rule, Severity, where, message, hint) — all strings — once
/// per violated constraint rule. Emits every violation, never throws.
template <typename Emit>
void visit_constraint_violations(const aaa::ConstraintSet& set, Emit&& emit) {
  using aaa::LoadPolicy;
  using aaa::UnloadPolicy;

  try {
    (void)fabric::device_by_name(set.device);
  } catch (const Error&) {
    emit(Rule::UnknownDevice, Severity::Error, "device " + set.device,
         "unknown device '" + set.device + "'",
         "supported devices: XC2V1000, XC2V2000, XC2V3000, XC2V6000");
  }

  std::set<std::string> region_names;
  for (const auto& r : set.regions) {
    if (!region_names.insert(r.name).second)
      emit(Rule::DuplicateRegion, Severity::Error, "region " + r.name,
           "duplicate region '" + r.name + "'", "rename or remove one declaration");
    if (!(r.width == -1 || r.width >= 1))
      emit(Rule::InvalidRegionWidth, Severity::Error, "region " + r.name,
           "region '" + r.name + "' has invalid width " + std::to_string(r.width),
           "use 'auto' or a positive CLB column count");
    // Widths authored in slice-columns (`width Nsc`) are checked in the
    // authored unit: the parser rounds them up to whole CLB columns, so
    // without this check a 3-slice-column spec would silently become a
    // legal 2-CLB-column (4-slice) region — or, before the rounding fix,
    // half the intended width.
    if (r.width_slice_cols >= 0 && r.width_slice_cols < fabric::kMinReconfigSliceCols)
      emit(Rule::RegionTooNarrow, Severity::Error, "region " + r.name,
           "region '" + r.name + "' is declared " + std::to_string(r.width_slice_cols) +
               " slice-columns wide; the Modular Design minimum is " +
               std::to_string(fabric::kMinReconfigSliceCols) + " slice-columns (" +
               std::to_string(fabric::kMinReconfigClbCols) + " CLB columns)",
           "widen the region to at least " + std::to_string(fabric::kMinReconfigSliceCols) +
               " slice-columns");
    else if (r.width_slice_cols >= 0 && r.width_slice_cols % fabric::kSliceColsPerClbCol != 0)
      emit(Rule::InvalidRegionWidth, Severity::Error, "region " + r.name,
           "region '" + r.name + "' is declared " + std::to_string(r.width_slice_cols) +
               " slice-columns wide, which is not a whole number of CLB columns",
           "Virtex-II regions sit on CLB-column boundaries (1 CLB column = " +
               std::to_string(fabric::kSliceColsPerClbCol) + " slice-columns)");
    // A width authored in CLB columns below the minimum was previously
    // widened silently by the flow; flag it here instead.
    if (r.width_slice_cols < 0 && r.width >= 1 && r.width < fabric::kMinReconfigClbCols)
      emit(Rule::RegionTooNarrow, Severity::Error, "region " + r.name,
           "region '" + r.name + "' is declared " + std::to_string(r.width) +
               " CLB column(s) wide; the Modular Design minimum is " +
               std::to_string(fabric::kMinReconfigClbCols) + " CLB columns (" +
               std::to_string(fabric::kMinReconfigSliceCols) + " slice-columns)",
           "widen the region to at least " + std::to_string(fabric::kMinReconfigClbCols) +
               " CLB columns");
    if (r.margin < 0)
      emit(Rule::NegativeRegionMargin, Severity::Error, "region " + r.name,
           "region '" + r.name + "' has negative margin " + std::to_string(r.margin),
           "margins add spare columns and must be >= 0");
  }

  const auto known_kind = [](const std::string& kind) {
    for (const std::string& k : synth::known_operator_kinds())
      if (k == kind) return true;
    return false;
  };

  std::set<std::string> module_names;
  for (const auto& m : set.modules) {
    if (!module_names.insert(m.name).second)
      emit(Rule::DuplicateModule, Severity::Error, "module " + m.name,
           "duplicate dynamic module '" + m.name + "'", "rename or remove one declaration");
    if (region_names.count(m.region) == 0)
      emit(Rule::UndeclaredRegion, Severity::Error, "module " + m.name,
           "module '" + m.name + "' names undeclared region '" + m.region + "'",
           "declare 'region " + m.region + " { ... }' or fix the name");
    if (m.kind.empty())
      emit(Rule::MissingModuleKind, Severity::Error, "module " + m.name,
           "module '" + m.name + "' has no kind", "add 'kind <operator-kind>'");
    else if (!known_kind(m.kind))
      emit(Rule::UnknownOperatorKind, Severity::Warning, "module " + m.name,
           "module '" + m.name + "' has kind '" + m.kind + "' the elaborator cannot build",
           "see synth::known_operator_kinds() for the supported kinds");
    if (m.load == LoadPolicy::Startup && m.unload == UnloadPolicy::Eager)
      emit(Rule::ContradictoryPolicy, Severity::Warning, "module " + m.name,
           "module '" + m.name + "' is loaded at startup but unloaded eagerly",
           "a startup-resident module with eager unload is evicted after first use; "
           "use 'unload lazy' or 'load on_demand'");
  }

  for (const auto& r : set.regions)
    if (set.modules_of(r.name).empty())
      emit(Rule::EmptyRegion, Severity::Error, "region " + r.name,
           "region '" + r.name + "' has no dynamic modules",
           "declare at least one 'dynamic <name> { region " + r.name + " ... }'");

  std::set<std::pair<std::string, std::string>> seen_exclusions;
  for (const auto& [a, b] : set.exclusions) {
    const bool known = module_names.count(a) != 0 && module_names.count(b) != 0;
    if (!known)
      emit(Rule::ExclusionUnknownModule, Severity::Error, "exclude " + a + " " + b,
           "exclusion names unknown module ('" + a + "', '" + b + "')",
           "exclusions may only name declared dynamic modules");
    if (a == b) {
      emit(Rule::SelfExclusion, Severity::Error, "exclude " + a + " " + b,
           "module '" + a + "' excluded with itself", "remove the self-exclusion");
      continue;
    }
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (!seen_exclusions.insert(key).second)
      emit(Rule::DuplicateExclusion, Severity::Warning, "exclude " + a + " " + b,
           "exclusion ('" + a + "', '" + b + "') declared more than once",
           "exclusions are symmetric; keep a single declaration");
  }

  std::set<std::pair<std::string, std::string>> seen_relations;
  for (const auto& [a, b] : set.relations) {
    if (module_names.count(a) == 0 || module_names.count(b) == 0)
      emit(Rule::RelationUnknownModule, Severity::Error, "relation " + a + " then " + b,
           "relation names unknown module ('" + a + "', '" + b + "')",
           "relations may only name declared dynamic modules");
    if (a == b)
      emit(Rule::SelfRelation, Severity::Warning, "relation " + a + " then " + b,
           "relation from module '" + a + "' to itself",
           "a module never follows itself; remove the relation");
    else if (!seen_relations.insert({a, b}).second)
      emit(Rule::DuplicateRelation, Severity::Warning, "relation " + a + " then " + b,
           "relation ('" + a + "' then '" + b + "') declared more than once",
           "keep a single declaration");
  }
}

/// Runs every constraint rule and collects the diagnostics.
Report check_constraints(const aaa::ConstraintSet& set);

}  // namespace pdr::lint
