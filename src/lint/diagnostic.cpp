#include "lint/diagnostic.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

// Canonical diagnostic order: rule code, then location, then message,
// then hint. Both renderers sort with it (to_text additionally groups by
// severity first), so a report's output is a pure function of its
// diagnostic *set* — never of rule-execution or merge order. `pdrflow
// check --deep` relies on this for byte-stable JSON diffs across --jobs.
bool canonical_less(const Diagnostic& a, const Diagnostic& b) {
  if (a.rule != b.rule) return static_cast<int>(a.rule) < static_cast<int>(b.rule);
  if (a.where != b.where) return a.where < b.where;
  if (a.message != b.message) return a.message < b.message;
  return a.hint < b.hint;
}

std::vector<const Diagnostic*> sorted_view(const std::vector<Diagnostic>& diags,
                                           bool severity_first) {
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diags.size());
  for (const auto& d : diags) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [severity_first](const Diagnostic* a, const Diagnostic* b) {
                     if (severity_first && a->severity != b->severity)
                       return static_cast<int>(a->severity) > static_cast<int>(b->severity);
                     return canonical_less(*a, *b);
                   });
  return sorted;
}

}  // namespace

std::string Diagnostic::to_string() const {
  std::string out = std::string(severity_name(severity)) + " " + rule_id(rule);
  if (!where.empty()) out += " [" + where + "]";
  out += ": " + message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

void Report::add(Diagnostic diag) { diags_.push_back(std::move(diag)); }

void Report::add(Rule rule, Severity severity, std::string where, std::string message,
                 std::string hint) {
  diags_.push_back(
      Diagnostic{rule, severity, std::move(where), std::move(message), std::move(hint)});
}

void Report::merge(Report other) {
  for (auto& d : other.diags_) diags_.push_back(std::move(d));
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

bool Report::has(Rule rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::to_text() const {
  if (diags_.empty()) return "";
  std::string out;
  for (const Diagnostic* d : sorted_view(diags_, /*severity_first=*/true))
    out += d->to_string() + "\n";
  out += strprintf("%zu error(s), %zu warning(s)\n", errors(), warnings());
  return out;
}

std::string Report::to_json() const {
  const std::vector<const Diagnostic*> sorted = sorted_view(diags_, /*severity_first=*/false);
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Diagnostic& d = *sorted[i];
    if (i > 0) out += ",";
    out += strprintf(
        "\n  {\"code\":\"%s\",\"severity\":\"%s\",\"where\":\"%s\",\"message\":\"%s\","
        "\"hint\":\"%s\"}",
        rule_id(d.rule), severity_name(d.severity), json_escape(d.where).c_str(),
        json_escape(d.message).c_str(), json_escape(d.hint).c_str());
  }
  out += strprintf("\n],\"errors\":%zu,\"warnings\":%zu}\n", errors(), warnings());
  return out;
}

}  // namespace pdr::lint
