#include "lint/diagnostic.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::to_string() const {
  std::string out = std::string(severity_name(severity)) + " " + rule_id(rule);
  if (!where.empty()) out += " [" + where + "]";
  out += ": " + message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

void Report::add(Diagnostic diag) { diags_.push_back(std::move(diag)); }

void Report::add(Rule rule, Severity severity, std::string where, std::string message,
                 std::string hint) {
  diags_.push_back(
      Diagnostic{rule, severity, std::move(where), std::move(message), std::move(hint)});
}

void Report::merge(Report other) {
  for (auto& d : other.diags_) diags_.push_back(std::move(d));
}

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

bool Report::has(Rule rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::to_text() const {
  if (diags_.empty()) return "";
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diags_.size());
  for (const auto& d : diags_) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(), [](const Diagnostic* a, const Diagnostic* b) {
    return static_cast<int>(a->severity) > static_cast<int>(b->severity);
  });
  std::string out;
  for (const Diagnostic* d : sorted) out += d->to_string() + "\n";
  out += strprintf("%zu error(s), %zu warning(s)\n", errors(), warnings());
  return out;
}

std::string Report::to_json() const {
  std::string out = "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) out += ",";
    out += strprintf(
        "\n  {\"code\":\"%s\",\"severity\":\"%s\",\"where\":\"%s\",\"message\":\"%s\","
        "\"hint\":\"%s\"}",
        rule_id(d.rule), severity_name(d.severity), json_escape(d.where).c_str(),
        json_escape(d.message).c_str(), json_escape(d.hint).c_str());
  }
  out += strprintf("\n],\"errors\":%zu,\"warnings\":%zu}\n", errors(), warnings());
  return out;
}

}  // namespace pdr::lint
