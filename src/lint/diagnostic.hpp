// Structured diagnostics emitted by the pdr::lint rule checkers.
//
// A Diagnostic pins one design-rule violation to a location (a region,
// module, resource or file position), with a stable rule code, a
// severity, a human message and a fix hint. A Report collects them and
// renders text (one line per diagnostic, compiler style) or JSON (for
// tooling; same shape as `pdrflow check --json`).
#pragma once

#include <string>
#include <vector>

#include "lint/rule_codes.hpp"

namespace pdr::lint {

struct Diagnostic {
  Rule rule = Rule::ParseError;
  Severity severity = Severity::Error;
  std::string where;    ///< location: "region D1", "module qpsk", "line 12", ...
  std::string message;  ///< what is wrong
  std::string hint;     ///< how to fix it (may be empty)

  /// "error PDR001 [region D1]: duplicate region 'D1' (hint: ...)".
  std::string to_string() const;
};

class Report {
 public:
  void add(Diagnostic diag);
  void add(Rule rule, Severity severity, std::string where, std::string message,
           std::string hint = "");

  /// Appends every diagnostic of another report.
  void merge(Report other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::size_t count(Severity severity) const;
  std::size_t errors() const { return count(Severity::Error); }
  std::size_t warnings() const { return count(Severity::Warning); }

  /// True if any diagnostic carries `rule`.
  bool has(Rule rule) const;

  /// Severity-sorted (errors first) compiler-style listing plus a final
  /// "N error(s), M warning(s)" summary line; "" when clean. Within one
  /// severity, diagnostics are ordered by (code, where, message, hint):
  /// the listing depends only on the diagnostic set, never on the order
  /// the rule checkers ran or reports were merged.
  std::string to_text() const;

  /// {"diagnostics":[{code,severity,where,message,hint},...],
  ///  "errors":N,"warnings":M}. Diagnostics are canonically ordered by
  /// (code, where, message, hint) so the document is byte-stable for a
  /// given diagnostic set — the contract `pdrflow check --json` diffs
  /// build on.
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace pdr::lint
