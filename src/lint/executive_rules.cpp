#include "lint/executive_rules.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

using aaa::Executive;
using aaa::MacroInstr;
using aaa::MacroOp;
using aaa::MacroProgram;

/// One Send/Recv/Move occurrence, located by (program, instruction).
struct Endpoint {
  std::size_t program = 0;
  std::size_t instr = 0;
  TimeNs at = 0;
};

/// Channel key: (medium name, buffer name).
using ChannelKey = std::pair<std::string, std::string>;

struct Channel {
  std::vector<Endpoint> sends;
  std::vector<Endpoint> recvs;
  std::vector<Endpoint> moves;
};

std::string channel_name(const ChannelKey& key) {
  return "buffer " + key.second + " on " + key.first;
}

/// PDR060/061/062: pairing of sends, recvs and moves per channel.
void check_pairing(Report& report, const Executive& executive,
                   const std::map<ChannelKey, Channel>& channels) {
  for (const auto& [key, ch] : channels) {
    if (!ch.sends.empty() && ch.recvs.empty())
      report.add(Rule::SendWithoutRecv, Severity::Error, channel_name(key),
                 "'" + executive.programs[ch.sends.front().program].resource + "' sends buffer '" +
                     key.second + "' over '" + key.first + "' but no program receives it",
                 "a blocking send with no receiver stalls the executive forever");
    else if (ch.sends.size() > ch.recvs.size())
      report.add(Rule::SendWithoutRecv, Severity::Error, channel_name(key),
                 strprintf("buffer '%s' is sent %zu time(s) over '%s' but received only %zu",
                           key.second.c_str(), ch.sends.size(), key.first.c_str(),
                           ch.recvs.size()),
                 "every send must pair with exactly one recv on the same medium");
    if (!ch.recvs.empty() && ch.sends.empty())
      report.add(Rule::RecvWithoutSend, Severity::Error, channel_name(key),
                 "'" + executive.programs[ch.recvs.front().program].resource +
                     "' waits for buffer '" + key.second + "' on '" + key.first +
                     "' but no program sends it",
                 "a blocking receive with no sender deadlocks its program");
    else if (ch.recvs.size() > ch.sends.size())
      report.add(Rule::RecvWithoutSend, Severity::Error, channel_name(key),
                 strprintf("buffer '%s' is received %zu time(s) over '%s' but sent only %zu",
                           key.second.c_str(), ch.recvs.size(), key.first.c_str(),
                           ch.sends.size()),
                 "every recv must pair with exactly one send on the same medium");
    if (!ch.moves.empty() && ch.sends.empty() && ch.recvs.empty())
      report.add(Rule::OrphanMove, Severity::Warning, channel_name(key),
                 "medium '" + key.first + "' carries buffer '" + key.second +
                     "' that no operator sends or receives",
                 "remove the move or add the missing endpoints");
  }
}

/// PDR064/065: single-buffer semantics per channel — a value must be
/// written before it is read and read before it is overwritten.
void check_buffer_order(Report& report, const std::map<ChannelKey, Channel>& channels) {
  for (const auto& [key, ch] : channels) {
    if (ch.sends.empty() || ch.recvs.empty()) continue;  // pairing rules fired already
    // Merge sends (+1) and recvs (-1) in schedule-time order; a send at
    // the same instant as a recv is ordered first (the recv observes the
    // transfer's completion).
    struct Ev {
      TimeNs at;
      int kind;  // 0 = send, 1 = recv
    };
    std::vector<Ev> events;
    events.reserve(ch.sends.size() + ch.recvs.size());
    for (const Endpoint& e : ch.sends) events.push_back(Ev{e.at, 0});
    for (const Endpoint& e : ch.recvs) events.push_back(Ev{e.at, 1});
    std::stable_sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.kind < b.kind;
    });
    int outstanding = 0;
    bool reported_read = false;
    bool reported_overwrite = false;
    for (const Ev& ev : events) {
      if (ev.kind == 0) {
        if (outstanding > 0 && !reported_overwrite) {
          report.add(Rule::BufferOverwrite, Severity::Error, channel_name(key),
                     strprintf("buffer '%s' is sent again at %lld ns before the previous value "
                               "is received",
                               key.second.c_str(), static_cast<long long>(ev.at)),
                     "single-buffer channels must alternate send and recv");
          reported_overwrite = true;
        }
        ++outstanding;
      } else {
        if (outstanding == 0 && !reported_read) {
          report.add(Rule::RecvBeforeSend, Severity::Error, channel_name(key),
                     strprintf("buffer '%s' is read at %lld ns before any send writes it",
                               key.second.c_str(), static_cast<long long>(ev.at)),
                     "reorder the programs so the producer sends first");
          reported_read = true;
        } else if (outstanding > 0) {
          --outstanding;
        }
      }
    }
  }
}

/// PDR063: deadlock — a cycle in the graph whose nodes are instructions,
/// with intra-program sequential edges and a cross edge from each send to
/// its paired recv (k-th send pairs with k-th recv per channel). A
/// time-consistent executive is acyclic: every edge advances time.
void check_deadlock(Report& report, const Executive& executive,
                    const std::map<ChannelKey, Channel>& channels) {
  // Global instruction numbering.
  std::vector<std::size_t> program_base(executive.programs.size(), 0);
  std::size_t total = 0;
  for (std::size_t p = 0; p < executive.programs.size(); ++p) {
    program_base[p] = total;
    total += executive.programs[p].body.size();
  }
  std::vector<std::vector<std::size_t>> next(total);
  for (std::size_t p = 0; p < executive.programs.size(); ++p)
    for (std::size_t i = 1; i < executive.programs[p].body.size(); ++i)
      next[program_base[p] + i - 1].push_back(program_base[p] + i);
  for (const auto& [key, ch] : channels) {
    (void)key;
    const std::size_t pairs = std::min(ch.sends.size(), ch.recvs.size());
    for (std::size_t k = 0; k < pairs; ++k)
      next[program_base[ch.sends[k].program] + ch.sends[k].instr].push_back(
          program_base[ch.recvs[k].program] + ch.recvs[k].instr);
  }

  // Iterative DFS with tri-colour marking; report the first cycle found.
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> colour(total, White);
  const auto describe = [&](std::size_t node) {
    for (std::size_t p = executive.programs.size(); p-- > 0;)
      if (node >= program_base[p]) {
        const MacroProgram& prog = executive.programs[p];
        const MacroInstr& mi = prog.body[node - program_base[p]];
        return prog.resource + ": " + std::string(macro_op_name(mi.op)) + " " + mi.what;
      }
    return std::string("?");
  };
  for (std::size_t root = 0; root < total; ++root) {
    if (colour[root] != White) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    colour[root] = Grey;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < next[node].size()) {
        const std::size_t to = next[node][edge++];
        if (colour[to] == Grey) {
          // Reconstruct the cycle from the DFS stack.
          std::string cycle = describe(to);
          for (std::size_t i = stack.size(); i-- > 0;) {
            cycle += " <- " + describe(stack[i].first);
            if (stack[i].first == to) break;
          }
          report.add(Rule::SyncCycle, Severity::Error, "executive",
                     "cyclic synchronization (deadlock): " + cycle,
                     "the blocked programs wait on each other forever; break the cycle by "
                     "reordering sends and receives");
          return;  // one deadlock report is enough
        }
        if (colour[to] == White) {
          colour[to] = Grey;
          stack.emplace_back(to, 0);
        }
      } else {
        colour[node] = Black;
        stack.pop_back();
      }
    }
  }
}

}  // namespace

Report check_executive(const Executive& executive) {
  Report report;

  std::map<ChannelKey, Channel> channels;
  for (std::size_t p = 0; p < executive.programs.size(); ++p) {
    const MacroProgram& prog = executive.programs[p];
    for (std::size_t i = 0; i < prog.body.size(); ++i) {
      const MacroInstr& mi = prog.body[i];
      const Endpoint ep{p, i, mi.at};
      switch (mi.op) {
        case MacroOp::Send: channels[{mi.with, mi.what}].sends.push_back(ep); break;
        case MacroOp::Recv: channels[{mi.with, mi.what}].recvs.push_back(ep); break;
        case MacroOp::Move:
          if (prog.is_medium) channels[{prog.resource, mi.what}].moves.push_back(ep);
          break;
        default: break;
      }
    }
  }

  check_pairing(report, executive, channels);
  check_buffer_order(report, channels);
  check_deadlock(report, executive, channels);
  return report;
}

}  // namespace pdr::lint
