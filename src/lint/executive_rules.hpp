// Synchronized-executive design rules (PDR060..PDR065).
//
// "The result is a synchronized executive represented by a macro-code for
// each vertices of the architecture." (§3) The macro programs synchronize
// through blocking Send/Recv pairs over media; these rules verify the
// synchronization is sound before any code is generated from it:
//   - every Send has a matching Recv on the same medium (and vice versa),
//   - the cross-program synchronization graph has no cycle (deadlock),
//   - no buffer is read before it is written, or overwritten before read.
#pragma once

#include "aaa/macrocode.hpp"
#include "lint/diagnostic.hpp"

namespace pdr::lint {

Report check_executive(const aaa::Executive& executive);

}  // namespace pdr::lint
