#include "lint/floorplan_rules.hpp"

#include <algorithm>
#include <string>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

bool col_in_reconfigurable(const std::vector<fabric::Region>& regions, int col) {
  for (const auto& r : regions)
    if (r.reconfigurable && col >= r.col_lo && col <= r.col_hi) return true;
  return false;
}

}  // namespace

Report check_floorplan(const fabric::DeviceModel& device,
                       const std::vector<fabric::Region>& regions) {
  Report report;

  for (const auto& r : regions) {
    if (r.col_lo < 0 || r.col_hi >= device.clb_cols || r.col_lo > r.col_hi)
      report.add(Rule::RegionOutOfBounds, Severity::Error, "region " + r.name,
                 strprintf("region '%s' spans columns %d..%d outside the %d-column device",
                           r.name.c_str(), r.col_lo, r.col_hi, device.clb_cols),
                 "regions must lie within the CLB array");
    if (r.reconfigurable && r.width().value < fabric::kMinReconfigClbCols)
      report.add(Rule::RegionTooNarrow, Severity::Error, "region " + r.name,
                 strprintf("reconfigurable region '%s' is %d slice-columns (%d CLB column(s)) "
                           "wide; the Modular Design minimum is %d slice-columns (%d CLB "
                           "columns)",
                           r.name.c_str(), r.width_slices().value, r.width().value,
                           fabric::kMinReconfigSliceCols, fabric::kMinReconfigClbCols),
                 "widen the region or merge it with a neighbour");
  }

  // Overlap: sort by col_lo, flag every adjacent overlapping pair.
  std::vector<const fabric::Region*> sorted;
  sorted.reserve(regions.size());
  for (const auto& r : regions) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const fabric::Region* a, const fabric::Region* b) {
                     return a->col_lo < b->col_lo;
                   });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i]->col_lo <= sorted[i - 1]->col_hi)
      report.add(Rule::RegionOverlap, Severity::Error,
                 "region " + sorted[i - 1]->name + " / " + sorted[i]->name,
                 strprintf("regions '%s' (%d..%d) and '%s' (%d..%d) share CLB columns",
                           sorted[i - 1]->name.c_str(), sorted[i - 1]->col_lo,
                           sorted[i - 1]->col_hi, sorted[i]->name.c_str(), sorted[i]->col_lo,
                           sorted[i]->col_hi),
                 "every column belongs to at most one region");

  // Bus macros must straddle a boundary between this region and static
  // area: at col_lo (bridging col_lo-1 | col_lo) or col_hi+1.
  for (const auto& r : regions) {
    for (const auto& bm : r.bus_macros) {
      const bool at_left = bm.boundary_col == r.col_lo;
      const bool at_right = bm.boundary_col == r.col_hi + 1;
      std::string problem;
      if (!at_left && !at_right) {
        problem = strprintf("boundary column %d is not an edge of region '%s' (%d..%d)",
                            bm.boundary_col, r.name.c_str(), r.col_lo, r.col_hi);
      } else {
        const int outside = at_left ? r.col_lo - 1 : r.col_hi + 1;
        if (outside < 0 || outside >= device.clb_cols)
          problem = strprintf("boundary %d straddles CLB columns %d | %d, but column %d does "
                              "not exist on the %d-column device; there is no static side to "
                              "bridge to",
                              bm.boundary_col, bm.boundary_col - 1, bm.boundary_col, outside,
                              device.clb_cols);
        else if (col_in_reconfigurable(regions, outside))
          problem = strprintf("column %d on the far side of the boundary belongs to another "
                              "reconfigurable region",
                              outside);
      }
      if (!problem.empty())
        report.add(Rule::BusMacroOffBoundary, Severity::Error,
                   "region " + r.name + " macro " + bm.name,
                   "bus macro '" + bm.name + "': " + problem,
                   "bus macros are fixed bridges pinned where a dynamic region meets the "
                   "static area (paper section 5)");
    }
  }

  return report;
}

Report check_floorplan(const fabric::Floorplan& plan) {
  return check_floorplan(plan.device(), plan.regions());
}

Report check_bundle(const synth::DesignBundle& bundle) {
  Report report = check_floorplan(bundle.floorplan);

  int region_slices_total = 0;
  for (const auto& region : bundle.floorplan.regions())
    if (region.reconfigurable)
      region_slices_total += bundle.floorplan.region_slices(region.name);

  for (const auto& [region_name, variants] : bundle.dynamic_variants) {
    const fabric::Region* region = bundle.floorplan.find_region(region_name);
    if (region == nullptr) {
      report.add(Rule::RegionOutOfBounds, Severity::Error, "region " + region_name,
                 "dynamic variants declared for region '" + region_name +
                     "' which the floorplan does not contain",
                 "run the flow with a floorplan declaring this region");
      continue;
    }
    const int capacity = bundle.floorplan.region_slices(region_name);
    for (const auto& v : variants)
      if (v.usage.slices > capacity)
        report.add(Rule::VariantOverflow, Severity::Error,
                   "region " + region_name + " variant " + v.name,
                   strprintf("variant '%s' needs %d slices but region '%s' provides %d",
                             v.name.c_str(), v.usage.slices, region_name.c_str(), capacity),
                   "widen the region (width/margin in the constraints file) or shrink the "
                   "module");
  }

  const int static_capacity = bundle.device.total_slices() - region_slices_total;
  const synth::ResourceUsage statics = bundle.static_usage();
  if (statics.slices > static_capacity)
    report.add(Rule::StaticOverflow, Severity::Error, "static area",
               strprintf("static modules need %d slices but only %d remain outside the "
                         "reconfigurable regions",
                         statics.slices, static_capacity),
               "use a larger device or shrink the static design");

  return report;
}

}  // namespace pdr::lint
