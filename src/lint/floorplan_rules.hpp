// Floorplan design rules (PDR020..PDR025): the paper's Modular Design
// placement constraints (§5) — full-height regions that do not overlap,
// the 4-slice (2 CLB columns) minimum width, bus macros straddling the
// static/dynamic boundary — plus capacity checks of the flow's output
// (every dynamic variant fits its region, statics fit the free area).
#pragma once

#include <vector>

#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "lint/diagnostic.hpp"
#include "synth/flow.hpp"

namespace pdr::lint {

/// Checks raw region declarations against a device. Operates on plain
/// Region values (not a constructed Floorplan, which enforces most of
/// these rules at build time) so that externally-produced or hand-edited
/// floorplans can be audited too.
Report check_floorplan(const fabric::DeviceModel& device,
                       const std::vector<fabric::Region>& regions);

/// Convenience overload for a constructed floorplan.
Report check_floorplan(const fabric::Floorplan& plan);

/// Floorplan rules plus capacity checks over a complete flow output:
/// every dynamic variant within its region's slices (PDR024), static
/// modules within the area no region covers (PDR025).
Report check_bundle(const synth::DesignBundle& bundle);

}  // namespace pdr::lint
