#include "lint/lint.hpp"

#include <utility>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::lint {

InputKind sniff_input(const std::string& text) {
  for (const std::string& line : split(text, '\n')) {
    std::string raw = line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> words = split_ws(raw);
    if (words.empty()) continue;
    const std::string& head = words.front();
    if (head == "project" || head == "algorithm" || head == "architecture" ||
        head == "durations")
      return InputKind::Project;
    return InputKind::Constraints;
  }
  return InputKind::Constraints;
}

Report check_constraints_text(const std::string& text) {
  aaa::ConstraintSet set;
  try {
    set = aaa::parse_constraints(text, /*validate=*/false);
  } catch (const Error& e) {
    Report report;
    report.add(Rule::ParseError, Severity::Error, "constraints file",
               std::string("parse failed: ") + e.what(), "");
    return report;
  }

  Report report = check_constraints(set);
  if (report.errors() > 0) return report;  // the flow below would only re-throw

  // Run the Modular Design flow (no static modules: lint audits the
  // dynamic-region plan, not a full system) and check its output.
  try {
    synth::ModularDesignFlow flow(fabric::device_by_name(set.device));
    for (const auto& region : set.regions) {
      std::vector<synth::ModuleSpec> variants;
      for (const auto* m : set.modules_of(region.name))
        variants.push_back(synth::ModuleSpec{m->name, m->kind, m->params});
      flow.add_region(region.name, std::move(variants), region.margin, region.width);
    }
    report.merge(check_bundle(flow.run()));
  } catch (const Error& e) {
    report.add(Rule::ParseError, Severity::Error, "flow",
               std::string("Modular Design flow failed: ") + e.what(),
               "fix the constraints so every module elaborates and fits its region");
  }
  return report;
}

Report check_project_text(const std::string& text) {
  aaa::Project project;
  try {
    project = aaa::parse_project(text);
  } catch (const Error& e) {
    Report report;
    report.add(Rule::ParseError, Severity::Error, "project file",
               std::string("parse failed: ") + e.what(), "");
    return report;
  }

  Report report;
  try {
    const aaa::Adequation adequation(project.algorithm, project.architecture,
                                     project.durations);
    const aaa::Schedule schedule = adequation.run();
    report.merge(check_schedule(schedule, project.algorithm, project.architecture));
    const aaa::Executive executive =
        aaa::generate_executive(schedule, project.algorithm, project.architecture);
    report.merge(check_executive(executive));
  } catch (const Error& e) {
    report.add(Rule::ParseError, Severity::Error, "adequation",
               std::string("adequation failed: ") + e.what(),
               "every operation needs a feasible operator and a duration entry");
  }
  return report;
}

Report check_text(const std::string& text) {
  return sniff_input(text) == InputKind::Project ? check_project_text(text)
                                                 : check_constraints_text(text);
}

}  // namespace pdr::lint
