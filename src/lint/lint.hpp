// pdr::lint — static design-rule checking for whole input files.
//
// Entry points for `pdrflow check` and tests: hand in the text of a
// constraints file (§4 DSL) or a SynDEx-style project file and get back a
// Report covering every applicable rule family:
//
//   constraints file:  constraint rules  -> Modular Design flow
//                      -> floorplan/capacity rules over the result
//   project file:      parse -> adequation -> schedule rules
//                      -> synchronized executive -> executive rules
//
// Parse and flow failures are reported as PDR000 diagnostics instead of
// exceptions, so a single run always yields a complete report.
#pragma once

#include <string>

#include "lint/constraint_rules.hpp"
#include "lint/diagnostic.hpp"
#include "lint/executive_rules.hpp"
#include "lint/floorplan_rules.hpp"
#include "lint/schedule_rules.hpp"

namespace pdr::lint {

enum class InputKind : std::uint8_t { Constraints, Project };

/// Classifies an input file: a leading `project`, `algorithm`,
/// `architecture` or `durations` directive marks a project file;
/// everything else is treated as a constraints file.
InputKind sniff_input(const std::string& text);

/// Checks a constraints file end to end: parse (unvalidated), constraint
/// rules, and — when the constraints are error-free — the Modular Design
/// flow with floorplan/capacity rules over its output.
Report check_constraints_text(const std::string& text);

/// Checks a project file end to end: parse, adequation with default
/// options, schedule rules, executive generation, executive rules.
Report check_project_text(const std::string& text);

/// Sniffs the input kind and dispatches.
Report check_text(const std::string& text);

}  // namespace pdr::lint
