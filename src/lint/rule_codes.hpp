// Stable design-rule identifiers for pdr::lint.
//
// Every static check the linter performs carries one of these codes;
// codes are append-only and never renumbered so that suppression lists,
// CI baselines and docs/lint_rules.md stay valid across releases.
//
// Families (mirrors the paper's artifacts):
//   PDR000           internal / parse failures
//   PDR001..PDR019   constraints file (§4: loading, unloading, area
//                    sharing, dynamic relations, exclusion)
//   PDR020..PDR039   floorplan / Modular Design placement rules (§5)
//   PDR040..PDR059   schedule / reconfiguration hazards (§3, §6)
//   PDR060..PDR079   synchronized executive (§3 macro-code)
//   PDR100..PDR119   pdr::verify interval analysis (static race
//                    certification over per-resource timelines)
//   PDR120..PDR139   fleet service request logs (pdr::svc; rules
//                    implemented in src/svc/service_rules.cpp so lint
//                    stays dependency-free)
//
// This header is dependency-free on purpose: pdr::aaa reuses the
// constraint-rule engine (one implementation for ConstraintSet::validate
// and `pdrflow check`) without linking the lint library.
#pragma once

#include <cstdint>

namespace pdr::lint {

enum class Severity : std::uint8_t { Info, Warning, Error };

inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

enum class Rule : std::uint16_t {
  // Internal.
  ParseError = 0,  ///< the input does not parse / the flow aborted

  // Constraints family.
  DuplicateRegion = 1,        ///< two `region` blocks share a name
  InvalidRegionWidth = 2,     ///< width is neither 'auto' nor >= 1
  NegativeRegionMargin = 3,   ///< margin < 0
  DuplicateModule = 4,        ///< two `dynamic` blocks share a name
  UndeclaredRegion = 5,       ///< module names a region never declared
  MissingModuleKind = 6,      ///< module has no `kind`
  EmptyRegion = 7,            ///< region declares no dynamic modules
  ExclusionUnknownModule = 8, ///< `exclude` names an undeclared module
  SelfExclusion = 9,          ///< `exclude m m`
  DuplicateExclusion = 10,    ///< same pair excluded twice (either order)
  // PDR011 retired before release: same-region exclusion is the paper's
  // canonical area-sharing idiom (case study §6), not a defect.
  RelationUnknownModule = 12, ///< `relation` names an undeclared module
  SelfRelation = 13,          ///< `relation m then m`
  DuplicateRelation = 14,     ///< same ordered relation declared twice
  ContradictoryPolicy = 15,   ///< load startup + unload eager
  UnknownDevice = 16,         ///< device name not in the device library
  UnknownOperatorKind = 17,   ///< module kind the elaborator cannot build

  // Floorplan family.
  RegionOverlap = 20,         ///< two regions share CLB columns
  RegionTooNarrow = 21,       ///< reconfigurable region under the 4-slice rule
  RegionOutOfBounds = 22,     ///< region columns outside the device array
  BusMacroOffBoundary = 23,   ///< bus macro not on a static/dynamic boundary
  VariantOverflow = 24,       ///< dynamic variant exceeds region capacity
  StaticOverflow = 25,        ///< static modules exceed remaining device area

  // Schedule family.
  ResourceOverlap = 40,       ///< two items overlap on one resource
  DependencyViolation = 41,   ///< consumer starts before producer ends
  WrongModuleLoaded = 42,     ///< compute runs a variant its region never loaded
  ComputeDuringReconfig = 43, ///< operation starts mid-reconfiguration
  ExclusionOverlap = 44,      ///< excluded modules resident simultaneously
  PrefetchIntoBusyRegion = 45,///< reconfiguration starts while region computes
  PortOverlap = 46,           ///< two reconfigurations share the config port
  NegativeDuration = 47,      ///< item ends before it starts
  ScrubPeriodExceedsBudget = 48, ///< region unscrubbed longer than its SEU budget

  // Executive family.
  SendWithoutRecv = 60,       ///< no matching recv on the same medium
  RecvWithoutSend = 61,       ///< no matching send on the same medium
  OrphanMove = 62,            ///< medium carries a buffer no operator touches
  SyncCycle = 63,             ///< cross-program synchronization deadlock
  RecvBeforeSend = 64,        ///< buffer read before it is written
  BufferOverwrite = 65,       ///< buffer re-sent before the previous value is read

  // Verify family (pdr::verify interval analysis). Each diagnostic
  // carries a witness: the two scheduled items, the shared resource and
  // the overlapping [start..end) intervals.
  ReconfigDuringExecute = 100, ///< region frames rewritten while an op executes
  ExecuteDuringReconfig = 101, ///< op starts while its region is being rewritten
  UseBeforeConfigure = 102,    ///< variant executed with no prior load at all
  StaleModuleExecution = 103,  ///< a different module is resident at op start
  MediumTransferOverlap = 104, ///< two transfers overlap on an exclusive medium
  PortDoubleBooking = 105,     ///< two loads overlap on the ICAP/SelectMAP port
  DataCrossesReconfig = 106,   ///< producer->consumer data spans a region rewrite
  OperatorOverlap = 107,       ///< two computations overlap on one operator
  ForeignModuleLoad = 108,     ///< region loads a module declared for another region

  // Service family (request logs drained by pdr::svc).
  UnknownServiceRegion = 120,   ///< request names a region the design lacks
  UnknownServiceModule = 121,   ///< request names a module its region lacks
  ServiceDeadlineTooTight = 122,///< deadline under the best-case (staged) load latency
  ServicePriorityInversion = 123,///< maintenance outranks same-region demand traffic
  ServiceDeviceOutOfRange = 124,///< request pins a device outside the declared fleet
};

/// "PDR042"-style stable identifier.
inline const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::ParseError: return "PDR000";
    case Rule::DuplicateRegion: return "PDR001";
    case Rule::InvalidRegionWidth: return "PDR002";
    case Rule::NegativeRegionMargin: return "PDR003";
    case Rule::DuplicateModule: return "PDR004";
    case Rule::UndeclaredRegion: return "PDR005";
    case Rule::MissingModuleKind: return "PDR006";
    case Rule::EmptyRegion: return "PDR007";
    case Rule::ExclusionUnknownModule: return "PDR008";
    case Rule::SelfExclusion: return "PDR009";
    case Rule::DuplicateExclusion: return "PDR010";
    case Rule::RelationUnknownModule: return "PDR012";
    case Rule::SelfRelation: return "PDR013";
    case Rule::DuplicateRelation: return "PDR014";
    case Rule::ContradictoryPolicy: return "PDR015";
    case Rule::UnknownDevice: return "PDR016";
    case Rule::UnknownOperatorKind: return "PDR017";
    case Rule::RegionOverlap: return "PDR020";
    case Rule::RegionTooNarrow: return "PDR021";
    case Rule::RegionOutOfBounds: return "PDR022";
    case Rule::BusMacroOffBoundary: return "PDR023";
    case Rule::VariantOverflow: return "PDR024";
    case Rule::StaticOverflow: return "PDR025";
    case Rule::ResourceOverlap: return "PDR040";
    case Rule::DependencyViolation: return "PDR041";
    case Rule::WrongModuleLoaded: return "PDR042";
    case Rule::ComputeDuringReconfig: return "PDR043";
    case Rule::ExclusionOverlap: return "PDR044";
    case Rule::PrefetchIntoBusyRegion: return "PDR045";
    case Rule::PortOverlap: return "PDR046";
    case Rule::NegativeDuration: return "PDR047";
    case Rule::ScrubPeriodExceedsBudget: return "PDR048";
    case Rule::SendWithoutRecv: return "PDR060";
    case Rule::RecvWithoutSend: return "PDR061";
    case Rule::OrphanMove: return "PDR062";
    case Rule::SyncCycle: return "PDR063";
    case Rule::RecvBeforeSend: return "PDR064";
    case Rule::BufferOverwrite: return "PDR065";
    case Rule::ReconfigDuringExecute: return "PDR100";
    case Rule::ExecuteDuringReconfig: return "PDR101";
    case Rule::UseBeforeConfigure: return "PDR102";
    case Rule::StaleModuleExecution: return "PDR103";
    case Rule::MediumTransferOverlap: return "PDR104";
    case Rule::PortDoubleBooking: return "PDR105";
    case Rule::DataCrossesReconfig: return "PDR106";
    case Rule::OperatorOverlap: return "PDR107";
    case Rule::ForeignModuleLoad: return "PDR108";
    case Rule::UnknownServiceRegion: return "PDR120";
    case Rule::UnknownServiceModule: return "PDR121";
    case Rule::ServiceDeadlineTooTight: return "PDR122";
    case Rule::ServicePriorityInversion: return "PDR123";
    case Rule::ServiceDeviceOutOfRange: return "PDR124";
  }
  return "PDR???";
}

}  // namespace pdr::lint
