#include "lint/schedule_rules.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

using aaa::ItemKind;
using aaa::Schedule;

std::string span(const Schedule& s, std::size_t i) {
  return strprintf("'%s' [%lld..%lld ns]", s.label(i).c_str(), static_cast<long long>(s.start(i)),
                   static_cast<long long>(s.end(i)));
}

/// Classifies one overlapping pair on a region/operator; `first` starts
/// no later than `second`.
void report_overlap(Report& report, const Schedule& s, const std::string& resource,
                    std::size_t first, std::size_t second) {
  if (s.kind(first) == ItemKind::Compute && s.kind(second) == ItemKind::Reconfig) {
    report.add(Rule::PrefetchIntoBusyRegion, Severity::Error, "resource " + resource,
               "reconfiguration " + span(s, second) + " starts while " + span(s, first) +
                   " still occupies region '" + resource + "'",
               "a prefetch may only be hoisted to an instant the region is free");
  } else if (s.kind(first) == ItemKind::Reconfig && s.kind(second) == ItemKind::Compute) {
    report.add(Rule::ComputeDuringReconfig, Severity::Error, "resource " + resource,
               "operation " + span(s, second) + " starts while region '" + resource +
                   "' is still reconfiguring (" + span(s, first) + ")",
               "delay the operation until the reconfiguration completes");
  } else {
    report.add(Rule::ResourceOverlap, Severity::Error, "resource " + resource,
               "items " + span(s, first) + " and " + span(s, second) + " overlap on resource '" +
                   resource + "'",
               "every operator and medium executes sequentially (paper section 3)");
  }
}

/// Residency interval of one module in one region: from the end of the
/// reconfiguration that loaded it to the start of the next one.
struct Residency {
  std::string module;
  std::string region;
  TimeNs from = 0;
  TimeNs to = 0;
};

}  // namespace

Report check_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                      const aaa::ArchitectureGraph& architecture,
                      const aaa::ConstraintSet* constraints) {
  Report report;

  // PDR047 + per-resource grouping. Resources are visited in name order
  // (as the old string-keyed map iterated), keeping finding order stable.
  std::map<std::string_view, std::vector<std::size_t>> per_resource;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (schedule.end(i) < schedule.start(i))
      report.add(Rule::NegativeDuration, Severity::Error,
                 "resource " + std::string(schedule.resource(i)),
                 "item " + span(schedule, i) + " ends before it starts", "");
    per_resource[schedule.resource(i)].push_back(i);
  }

  // PDR040 / PDR043 / PDR045: overlap on one resource, classified.
  for (auto& [resource, list] : per_resource) {
    std::stable_sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return schedule.start(a) < schedule.start(b);
    });
    const std::string rname(resource);
    for (std::size_t i = 1; i < list.size(); ++i)
      if (schedule.start(list[i]) < schedule.end(list[i - 1]))
        report_overlap(report, schedule, rname, list[i - 1], list[i]);
  }

  // PDR041: every dependency's consumer starts after its producer ends,
  // with a transfer in between when placed apart. Scheduler-produced
  // transfer rows carry the algorithm-graph edge they serve, so presence
  // is answered from a dense edge-id bitmap; rows without an edge id
  // (hand-built schedules) fall back to a (src,dst) name-pair match.
  // The fallback resolves names through the rows themselves, not
  // symbols.find(): the scheduler records operation labels with the
  // interner's unindexed append path, so text lookup cannot see them.
  constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);
  const auto& g = algorithm.digraph();
  std::vector<std::size_t> compute_of(g.node_capacity(), kNoItem);
  std::vector<char> edge_served(g.edge_capacity(), 0);
  std::vector<std::pair<std::string_view, std::string_view>> transfer_pairs;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (schedule.kind(i) == ItemKind::Compute) {
      const graph::NodeId n = schedule.op(i);
      if (n < compute_of.size()) compute_of[n] = i;
    } else if (schedule.kind(i) == ItemKind::Transfer) {
      const graph::EdgeId te = schedule.edge(i);
      if (te < edge_served.size())
        edge_served[te] = 1;
      else
        transfer_pairs.emplace_back(schedule.src(i), schedule.dst(i));
    }
  }
  std::sort(transfer_pairs.begin(), transfer_pairs.end());
  const auto has_transfer = [&](graph::EdgeId e, std::string_view src, std::string_view dst) {
    if (edge_served[e]) return true;
    return std::binary_search(transfer_pairs.begin(), transfer_pairs.end(),
                              std::make_pair(src, dst));
  };
  for (graph::EdgeId e : g.edge_ids()) {
    const graph::NodeId p = g.edge_from(e);
    const graph::NodeId c = g.edge_to(e);
    const std::size_t ip = p < compute_of.size() ? compute_of[p] : kNoItem;
    const std::size_t ic = c < compute_of.size() ? compute_of[c] : kNoItem;
    if (ip == kNoItem || ic == kNoItem) {
      const std::string& missing = ip == kNoItem ? g[p].name : g[c].name;
      report.add(Rule::DependencyViolation, Severity::Error, "operation " + missing,
                 "operation '" + missing + "' was never scheduled",
                 "every algorithm vertex must appear in the schedule");
      continue;
    }
    if (schedule.start(ic) < schedule.end(ip))
      report.add(Rule::DependencyViolation, Severity::Error, "operation " + g[c].name,
                 "operation '" + g[c].name + "' starts at " + std::to_string(schedule.start(ic)) +
                     " ns, before its input '" + g[p].name + "' finishes at " +
                     std::to_string(schedule.end(ip)) + " ns",
                 "");
    if (schedule.resource_sym(ip) != schedule.resource_sym(ic) && g.edge(e).bytes > 0) {
      if (!has_transfer(e, g[p].name, g[c].name))
        report.add(Rule::DependencyViolation, Severity::Error, "operation " + g[c].name,
                   "dependency '" + g[p].name + "' -> '" + g[c].name +
                       "' crosses operators with no transfer scheduled",
                   "route the buffer over a connecting medium");
    }
  }

  // PDR042: a region computes only the variant its last reconfiguration
  // loaded (or a consistent preloaded one before any reconfiguration).
  for (aaa::NodeId w : architecture.operators_of_kind(aaa::OperatorKind::FpgaRegion)) {
    const std::string& rname = architecture.op(w).name;
    const auto it = per_resource.find(std::string_view(rname));
    if (it == per_resource.end()) continue;
    util::SymbolId loaded = util::kEmptySymbol;
    bool any_reconfig = false;
    util::SymbolId preloaded_variant = util::kEmptySymbol;
    for (const std::size_t i : it->second) {
      if (schedule.kind(i) == ItemKind::Reconfig) {
        loaded = schedule.module_sym(i);
        any_reconfig = true;
      } else if (schedule.kind(i) == ItemKind::Compute &&
                 schedule.variant_sym(i) != util::kEmptySymbol) {
        const std::string variant(schedule.variant(i));
        if (!any_reconfig) {
          if (preloaded_variant == util::kEmptySymbol) preloaded_variant = schedule.variant_sym(i);
          if (schedule.variant_sym(i) != preloaded_variant)
            report.add(Rule::WrongModuleLoaded, Severity::Error, "resource " + rname,
                       "region '" + rname + "' computes variant '" + variant + "' and variant '" +
                           std::string(schedule.name(preloaded_variant)) +
                           "' with no reconfiguration between",
                       "insert a reconfiguration or fix the variant selection");
        } else if (schedule.variant_sym(i) != loaded) {
          report.add(Rule::WrongModuleLoaded, Severity::Error, "resource " + rname,
                     "region '" + rname + "' computes variant '" + variant + "' while module '" +
                         std::string(schedule.name(loaded)) + "' is loaded",
                     "reconfigure the region to '" + variant + "' first");
        }
      }
    }
  }

  // PDR046: reconfigurations serialize on the single configuration port.
  std::vector<std::size_t> reconfigs;
  for (std::size_t i = 0; i < schedule.size(); ++i)
    if (schedule.kind(i) == ItemKind::Reconfig) reconfigs.push_back(i);
  std::stable_sort(reconfigs.begin(), reconfigs.end(), [&](std::size_t a, std::size_t b) {
    return schedule.start(a) < schedule.start(b);
  });
  for (std::size_t i = 1; i < reconfigs.size(); ++i)
    if (schedule.start(reconfigs[i]) < schedule.end(reconfigs[i - 1]))
      report.add(Rule::PortOverlap, Severity::Error, "configuration port",
                 "reconfigurations " + span(schedule, reconfigs[i - 1]) + " and " +
                     span(schedule, reconfigs[i]) + " overlap on the configuration port",
                 "the device has one configuration port; loads must serialize");

  // PDR044: mutually-exclusive modules resident at the same time.
  if (constraints != nullptr && !constraints->exclusions.empty()) {
    std::vector<Residency> residencies;
    for (auto& [resource, list] : per_resource) {
      std::size_t current = static_cast<std::size_t>(-1);
      for (const std::size_t i : list) {
        if (schedule.kind(i) != ItemKind::Reconfig) continue;
        if (current != static_cast<std::size_t>(-1))
          residencies.push_back(Residency{std::string(schedule.module_name(current)),
                                          std::string(resource), schedule.end(current),
                                          schedule.start(i)});
        current = i;
      }
      if (current != static_cast<std::size_t>(-1))
        residencies.push_back(Residency{std::string(schedule.module_name(current)),
                                        std::string(resource), schedule.end(current),
                                        std::max(schedule.makespan, schedule.end(current))});
    }
    for (const auto& [a, b] : constraints->exclusions) {
      for (const Residency& ra : residencies) {
        if (ra.module != a) continue;
        for (const Residency& rb : residencies) {
          if (rb.module != b || ra.region == rb.region) continue;
          const TimeNs lo = std::max(ra.from, rb.from);
          const TimeNs hi = std::min(ra.to, rb.to);
          if (lo < hi)
            report.add(Rule::ExclusionOverlap, Severity::Error,
                       "exclude " + a + " " + b,
                       strprintf("excluded modules '%s' (region %s) and '%s' (region %s) are "
                                 "both resident during [%lld..%lld ns]",
                                 a.c_str(), ra.region.c_str(), b.c_str(), rb.region.c_str(),
                                 static_cast<long long>(lo), static_cast<long long>(hi)),
                       "serialize their residency or drop the exclusion");
        }
      }
    }
  }

  // PDR048: a region with an SEU-exposure budget must be rewritten (by a
  // scheduled reconfiguration, which rewrites every frame and thus acts
  // as a scrub) at least once per budget interval over the whole
  // schedule. A longer gap leaves upsets unrepaired past the budget.
  if (constraints != nullptr) {
    for (const auto& rc : constraints->regions) {
      if (rc.seu_budget_ms < 0) continue;
      const TimeNs budget = static_cast<TimeNs>(rc.seu_budget_ms) * 1'000'000;
      std::vector<TimeNs> rewrites;
      const auto it = per_resource.find(std::string_view(rc.name));
      if (it != per_resource.end())
        for (const std::size_t i : it->second)
          if (schedule.kind(i) == ItemKind::Reconfig) rewrites.push_back(schedule.end(i));
      std::sort(rewrites.begin(), rewrites.end());
      TimeNs last = 0;
      TimeNs worst = 0;
      TimeNs worst_from = 0;
      for (const TimeNs t : rewrites) {
        if (t - last > worst) {
          worst = t - last;
          worst_from = last;
        }
        last = std::max(last, t);
      }
      const TimeNs horizon = std::max(schedule.makespan, last);
      if (horizon - last > worst) {
        worst = horizon - last;
        worst_from = last;
      }
      if (worst > budget)
        report.add(Rule::ScrubPeriodExceedsBudget, Severity::Warning, "region " + rc.name,
                   strprintf("region '%s' goes %.3f ms without a rewrite (starting at "
                             "%lld ns); its SEU-exposure budget is %d ms",
                             rc.name.c_str(), static_cast<double>(worst) / 1e6,
                             static_cast<long long>(worst_from), rc.seu_budget_ms),
                   "shorten the scrub period or schedule a reconfiguration inside the window");
    }
  }

  return report;
}

}  // namespace pdr::lint
