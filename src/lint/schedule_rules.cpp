#include "lint/schedule_rules.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace pdr::lint {

namespace {

using aaa::ItemKind;
using aaa::ScheduledItem;

std::string span(const ScheduledItem& item) {
  return strprintf("'%s' [%lld..%lld ns]", item.label.c_str(),
                   static_cast<long long>(item.start), static_cast<long long>(item.end));
}

/// Classifies one overlapping pair on a region/operator; `first` starts
/// no later than `second`.
void report_overlap(Report& report, const std::string& resource, const ScheduledItem& first,
                    const ScheduledItem& second) {
  if (first.kind == ItemKind::Compute && second.kind == ItemKind::Reconfig) {
    report.add(Rule::PrefetchIntoBusyRegion, Severity::Error, "resource " + resource,
               "reconfiguration " + span(second) + " starts while " + span(first) +
                   " still occupies region '" + resource + "'",
               "a prefetch may only be hoisted to an instant the region is free");
  } else if (first.kind == ItemKind::Reconfig && second.kind == ItemKind::Compute) {
    report.add(Rule::ComputeDuringReconfig, Severity::Error, "resource " + resource,
               "operation " + span(second) + " starts while region '" + resource +
                   "' is still reconfiguring (" + span(first) + ")",
               "delay the operation until the reconfiguration completes");
  } else {
    report.add(Rule::ResourceOverlap, Severity::Error, "resource " + resource,
               "items " + span(first) + " and " + span(second) + " overlap on resource '" +
                   resource + "'",
               "every operator and medium executes sequentially (paper section 3)");
  }
}

/// Residency interval of one module in one region: from the end of the
/// reconfiguration that loaded it to the start of the next one.
struct Residency {
  std::string module;
  std::string region;
  TimeNs from = 0;
  TimeNs to = 0;
};

}  // namespace

Report check_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                      const aaa::ArchitectureGraph& architecture,
                      const aaa::ConstraintSet* constraints) {
  Report report;

  // PDR047 + per-resource grouping.
  std::map<std::string, std::vector<const ScheduledItem*>> per_resource;
  for (const auto& item : schedule.items) {
    if (item.end < item.start)
      report.add(Rule::NegativeDuration, Severity::Error, "resource " + item.resource,
                 "item " + span(item) + " ends before it starts", "");
    per_resource[item.resource].push_back(&item);
  }

  // PDR040 / PDR043 / PDR045: overlap on one resource, classified.
  for (auto& [resource, list] : per_resource) {
    std::stable_sort(list.begin(), list.end(),
                     [](const ScheduledItem* a, const ScheduledItem* b) {
                       return a->start < b->start;
                     });
    for (std::size_t i = 1; i < list.size(); ++i)
      if (list[i]->start < list[i - 1]->end)
        report_overlap(report, resource, *list[i - 1], *list[i]);
  }

  // PDR041: every dependency's consumer starts after its producer ends,
  // with a transfer in between when placed apart.
  std::map<graph::NodeId, const ScheduledItem*> compute_of;
  for (const auto& item : schedule.items)
    if (item.kind == ItemKind::Compute) compute_of[item.op] = &item;
  const auto& g = algorithm.digraph();
  for (graph::EdgeId e : g.edge_ids()) {
    const graph::NodeId p = g.edge_from(e);
    const graph::NodeId c = g.edge_to(e);
    const auto ip = compute_of.find(p);
    const auto ic = compute_of.find(c);
    if (ip == compute_of.end() || ic == compute_of.end()) {
      const std::string& missing = ip == compute_of.end() ? g[p].name : g[c].name;
      report.add(Rule::DependencyViolation, Severity::Error, "operation " + missing,
                 "operation '" + missing + "' was never scheduled",
                 "every algorithm vertex must appear in the schedule");
      continue;
    }
    if (ic->second->start < ip->second->end)
      report.add(Rule::DependencyViolation, Severity::Error, "operation " + g[c].name,
                 "operation '" + g[c].name + "' starts at " +
                     std::to_string(ic->second->start) + " ns, before its input '" + g[p].name +
                     "' finishes at " + std::to_string(ip->second->end) + " ns",
                 "");
    if (ip->second->resource != ic->second->resource && g.edge(e).bytes > 0) {
      bool found = false;
      for (const auto& item : schedule.items)
        if (item.kind == ItemKind::Transfer && item.src == g[p].name && item.dst == g[c].name)
          found = true;
      if (!found)
        report.add(Rule::DependencyViolation, Severity::Error, "operation " + g[c].name,
                   "dependency '" + g[p].name + "' -> '" + g[c].name +
                       "' crosses operators with no transfer scheduled",
                   "route the buffer over a connecting medium");
    }
  }

  // PDR042: a region computes only the variant its last reconfiguration
  // loaded (or a consistent preloaded one before any reconfiguration).
  for (aaa::NodeId w : architecture.operators_of_kind(aaa::OperatorKind::FpgaRegion)) {
    const std::string& rname = architecture.op(w).name;
    const auto it = per_resource.find(rname);
    if (it == per_resource.end()) continue;
    std::string loaded;
    bool any_reconfig = false;
    std::string preloaded_variant;
    for (const ScheduledItem* item : it->second) {
      if (item->kind == ItemKind::Reconfig) {
        loaded = item->module;
        any_reconfig = true;
      } else if (item->kind == ItemKind::Compute && !item->variant.empty()) {
        if (!any_reconfig) {
          if (preloaded_variant.empty()) preloaded_variant = item->variant;
          if (item->variant != preloaded_variant)
            report.add(Rule::WrongModuleLoaded, Severity::Error, "resource " + rname,
                       "region '" + rname + "' computes variant '" + item->variant +
                           "' and variant '" + preloaded_variant +
                           "' with no reconfiguration between",
                       "insert a reconfiguration or fix the variant selection");
        } else if (item->variant != loaded) {
          report.add(Rule::WrongModuleLoaded, Severity::Error, "resource " + rname,
                     "region '" + rname + "' computes variant '" + item->variant +
                         "' while module '" + loaded + "' is loaded",
                     "reconfigure the region to '" + item->variant + "' first");
        }
      }
    }
  }

  // PDR046: reconfigurations serialize on the single configuration port.
  std::vector<const ScheduledItem*> reconfigs;
  for (const auto& item : schedule.items)
    if (item.kind == ItemKind::Reconfig) reconfigs.push_back(&item);
  std::stable_sort(reconfigs.begin(), reconfigs.end(),
                   [](const ScheduledItem* a, const ScheduledItem* b) {
                     return a->start < b->start;
                   });
  for (std::size_t i = 1; i < reconfigs.size(); ++i)
    if (reconfigs[i]->start < reconfigs[i - 1]->end)
      report.add(Rule::PortOverlap, Severity::Error, "configuration port",
                 "reconfigurations " + span(*reconfigs[i - 1]) + " and " + span(*reconfigs[i]) +
                     " overlap on the configuration port",
                 "the device has one configuration port; loads must serialize");

  // PDR044: mutually-exclusive modules resident at the same time.
  if (constraints != nullptr && !constraints->exclusions.empty()) {
    std::vector<Residency> residencies;
    for (auto& [resource, list] : per_resource) {
      const ScheduledItem* current = nullptr;
      for (const ScheduledItem* item : list) {
        if (item->kind != ItemKind::Reconfig) continue;
        if (current != nullptr)
          residencies.push_back(
              Residency{current->module, resource, current->end, item->start});
        current = item;
      }
      if (current != nullptr)
        residencies.push_back(Residency{current->module, resource, current->end,
                                        std::max(schedule.makespan, current->end)});
    }
    for (const auto& [a, b] : constraints->exclusions) {
      for (const Residency& ra : residencies) {
        if (ra.module != a) continue;
        for (const Residency& rb : residencies) {
          if (rb.module != b || ra.region == rb.region) continue;
          const TimeNs lo = std::max(ra.from, rb.from);
          const TimeNs hi = std::min(ra.to, rb.to);
          if (lo < hi)
            report.add(Rule::ExclusionOverlap, Severity::Error,
                       "exclude " + a + " " + b,
                       strprintf("excluded modules '%s' (region %s) and '%s' (region %s) are "
                                 "both resident during [%lld..%lld ns]",
                                 a.c_str(), ra.region.c_str(), b.c_str(), rb.region.c_str(),
                                 static_cast<long long>(lo), static_cast<long long>(hi)),
                       "serialize their residency or drop the exclusion");
        }
      }
    }
  }

  // PDR048: a region with an SEU-exposure budget must be rewritten (by a
  // scheduled reconfiguration, which rewrites every frame and thus acts
  // as a scrub) at least once per budget interval over the whole
  // schedule. A longer gap leaves upsets unrepaired past the budget.
  if (constraints != nullptr) {
    for (const auto& rc : constraints->regions) {
      if (rc.seu_budget_ms < 0) continue;
      const TimeNs budget = static_cast<TimeNs>(rc.seu_budget_ms) * 1'000'000;
      std::vector<TimeNs> rewrites;
      const auto it = per_resource.find(rc.name);
      if (it != per_resource.end())
        for (const ScheduledItem* item : it->second)
          if (item->kind == ItemKind::Reconfig) rewrites.push_back(item->end);
      std::sort(rewrites.begin(), rewrites.end());
      TimeNs last = 0;
      TimeNs worst = 0;
      TimeNs worst_from = 0;
      for (const TimeNs t : rewrites) {
        if (t - last > worst) {
          worst = t - last;
          worst_from = last;
        }
        last = std::max(last, t);
      }
      const TimeNs horizon = std::max(schedule.makespan, last);
      if (horizon - last > worst) {
        worst = horizon - last;
        worst_from = last;
      }
      if (worst > budget)
        report.add(Rule::ScrubPeriodExceedsBudget, Severity::Warning, "region " + rc.name,
                   strprintf("region '%s' goes %.3f ms without a rewrite (starting at "
                             "%lld ns); its SEU-exposure budget is %d ms",
                             rc.name.c_str(), static_cast<double>(worst) / 1e6,
                             static_cast<long long>(worst_from), rc.seu_budget_ms),
                   "shorten the scrub period or schedule a reconfiguration inside the window");
    }
  }

  return report;
}

}  // namespace pdr::lint
