// Schedule design rules (PDR040..PDR047): reconfiguration hazards in an
// adequation result.
//
// Beyond the structural invariants (no resource overlap, dependencies
// respected — the lint twins of aaa::validate_schedule), these rules
// catch the dynamic-reconfiguration hazards the paper's flow must avoid
// (§4/§6): an operation computing on a region whose module is unloaded or
// still reconfiguring, a prefetched reconfiguration ousting a busy
// region, mutually-exclusive modules resident at the same time, and two
// loads contending for the single configuration port.
#pragma once

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "lint/diagnostic.hpp"

namespace pdr::lint {

/// Checks one schedule. `constraints` may be nullptr (project files carry
/// no constraints file); exclusion-overlap checks are skipped then.
Report check_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                      const aaa::ArchitectureGraph& architecture,
                      const aaa::ConstraintSet* constraints = nullptr);

}  // namespace pdr::lint
