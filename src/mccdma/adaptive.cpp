#include "mccdma/adaptive.hpp"

#include "util/error.hpp"

namespace pdr::mccdma {

AdaptiveController::AdaptiveController(Config config)
    : config_(std::move(config)), active_(config_.low_mod) {
  PDR_CHECK(config_.down_threshold_db < config_.up_threshold_db, "AdaptiveController",
            "hysteresis requires down threshold below up threshold");
  PDR_CHECK(config_.guard_db >= 0.0, "AdaptiveController", "guard band must be non-negative");
}

AdaptiveController::Decision AdaptiveController::update(double snr_db) {
  Decision d;
  const bool low_active = active_ == config_.low_mod;

  if (low_active && snr_db >= config_.up_threshold_db) {
    active_ = config_.high_mod;
    d.switched = true;
    ++switches_;
  } else if (!low_active && snr_db <= config_.down_threshold_db) {
    active_ = config_.low_mod;
    d.switched = true;
    ++switches_;
  } else if (low_active && snr_db >= config_.up_threshold_db - config_.guard_db) {
    // Drifting up towards the switch point: warn the prefetcher.
    d.announce = config_.high_mod;
  } else if (!low_active && snr_db <= config_.down_threshold_db + config_.guard_db) {
    d.announce = config_.low_mod;
  }

  d.active = active_;
  return d;
}

}  // namespace pdr::mccdma
