// Adaptive modulation controller.
//
// The DSP measures SNR and selects the modulation of each OFDM symbol
// (paper §6). This controller adds two standard refinements that make the
// reconfiguration workload realistic:
//  - hysteresis around the switching threshold, so channel noise does not
//    cause modulation ping-pong (each switch costs a ~4 ms
//    reconfiguration);
//  - a guard band: when the SNR drifts within `guard_db` of a switching
//    boundary, the controller emits an *announcement* of the likely next
//    modulation — the early warning the reconfiguration manager's
//    prefetcher turns into hidden loading time.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pdr::mccdma {

class AdaptiveController {
 public:
  struct Config {
    double up_threshold_db = 14.0;   ///< switch QPSK -> QAM-16 above this
    double down_threshold_db = 10.0; ///< switch QAM-16 -> QPSK below this
    double guard_db = 2.0;           ///< announce when this close to a switch
    std::string low_mod = "qpsk";
    std::string high_mod = "qam16";
  };

  struct Decision {
    std::string active;                   ///< modulation for the next symbol
    bool switched = false;                ///< active changed this step
    std::optional<std::string> announce;  ///< prefetch hint, if any
  };

  explicit AdaptiveController(Config config);

  /// Decides the modulation given the latest SNR measurement.
  Decision update(double snr_db);

  const std::string& active() const { return active_; }
  int switches() const { return switches_; }

 private:
  Config config_;
  std::string active_;
  int switches_ = 0;
};

}  // namespace pdr::mccdma
