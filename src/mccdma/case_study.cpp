#include "mccdma/case_study.hpp"

#include "fabric/config_port.hpp"
#include "flow/pipeline.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

std::string case_study_constraints_text() {
  return R"(# Reconfigurable MC-CDMA transmitter (paper section 6, Figure 4)
device XC2V2000
port icap            # standalone self-reconfiguration (Figure 2 case a)
manager fpga
builder fpga
prefetch schedule

region D1 {
  width 5            # 5/48 CLB columns ~= 8% of the device (paper: "8%")
}

dynamic qpsk {
  region D1
  kind qpsk_mapper
  load startup
  unload lazy
}

dynamic qam16 {
  region D1
  kind qam16_mapper
  load on_demand
  unload lazy
}

exclude qpsk qam16          # both implement block 'modulation'
relation qpsk then qam16    # SNR rises: QAM-16 usually follows QPSK
relation qam16 then qpsk
)";
}

aaa::AlgorithmGraph make_transmitter_algorithm(const McCdmaParams& params) {
  const auto n = static_cast<int>(params.n_subcarriers);
  const auto sf = static_cast<int>(params.spreading_factor);
  const auto cp = static_cast<int>(params.cyclic_prefix);
  const auto users = static_cast<int>(params.n_users);

  // Per-iteration (one OFDM symbol) payload sizes in bytes.
  const Bytes bits_bytes = params.n_users * params.symbols_per_user();  // ~1 B per mapped symbol
  const Bytes symbol_bytes = params.n_users * params.symbols_per_user() * 4;  // I/Q 16-bit
  const Bytes chip_bytes = params.n_subcarriers * 4;
  const Bytes sample_bytes = params.samples_per_symbol() * 4;

  aaa::AlgorithmGraph g;
  g.add_sensor("data_in", "bit_source");
  g.add_compute("scramble", "scrambler");
  g.add_compute("conv_code", "conv_encoder", {{"k", 7}});
  g.add_compute("interleave", "interleaver", {{"depth", 512}, {"width", 8}});
  g.add_conditioned("modulation", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  g.add_compute("spread", "walsh_spreader", {{"sf", sf}, {"users", users}});
  g.add_compute("ifft", "ifft", {{"n", n}, {"width", 16}});
  g.add_compute("cyclic_prefix", "cyclic_prefix", {{"n", n}, {"cp", cp}, {"width", 16}});
  g.add_compute("frame", "frame_builder", {{"n", n}, {"width", 16}});
  g.add_actuator("shb_out", "interface_in_out");

  g.add_dependency("data_in", "scramble", bits_bytes);
  g.add_dependency("scramble", "conv_code", bits_bytes);
  g.add_dependency("conv_code", "interleave", 2 * bits_bytes);
  g.add_dependency("interleave", "modulation", 2 * bits_bytes);
  g.add_dependency("modulation", "spread", symbol_bytes);
  g.add_dependency("spread", "ifft", chip_bytes);
  g.add_dependency("ifft", "cyclic_prefix", chip_bytes);
  g.add_dependency("cyclic_prefix", "frame", sample_bytes);
  g.add_dependency("frame", "shb_out", sample_bytes);
  g.validate();
  return g;
}

synth::DesignBundle run_flow_from_constraints(const aaa::ConstraintSet& constraints,
                                              const std::vector<synth::ModuleSpec>& statics,
                                              obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  constraints.validate();  // keep the legacy contract: invalid sets throw here
  flow::PipelineOptions options;
  options.constraints_text = aaa::write_constraints(constraints);
  options.statics = statics;
  options.lint_gate = false;  // validate() above is the gate; lint stays advisory
  flow::Pipeline pipeline(std::move(options));
  pipeline.set_observability(tracer, metrics);
  return *pipeline.bundle();
}

std::vector<synth::ModuleSpec> case_study_statics() {
  const McCdmaParams params{};
  const auto n = static_cast<int>(params.n_subcarriers);
  const auto cp = static_cast<int>(params.cyclic_prefix);
  return {
      {"interface_in_out", "interface_in_out", {}},
      {"scrambler", "scrambler", {}},
      {"conv_encoder", "conv_encoder", {{"k", 7}}},
      {"interleaver", "interleaver", {{"depth", 512}, {"width", 8}}},
      {"walsh_spreader",
       "walsh_spreader",
       {{"sf", static_cast<int>(params.spreading_factor)},
        {"users", static_cast<int>(params.n_users)}}},
      {"ifft", "ifft", {{"n", n}, {"width", 16}}},
      {"cyclic_prefix", "cyclic_prefix", {{"n", n}, {"cp", cp}, {"width", 16}}},
      {"frame_builder", "frame_builder", {{"n", n}, {"width", 16}}},
      {"config_manager", "config_manager", {}},
      {"protocol_builder", "protocol_builder", {}},
  };
}

CaseStudy build_case_study() {
  const McCdmaParams params{};
  aaa::ConstraintSet constraints = aaa::parse_constraints(case_study_constraints_text());
  synth::DesignBundle bundle = run_flow_from_constraints(constraints, case_study_statics());
  return CaseStudy{std::move(constraints), make_transmitter_algorithm(params),
                   aaa::make_sundance_architecture(), aaa::mccdma_durations(), std::move(bundle),
                   params};
}

const CaseStudy& shared_case_study() {
  static const CaseStudy cs = build_case_study();
  return cs;
}

rtr::BitstreamStore make_case_study_store() {
  return rtr::BitstreamStore(kCaseStudyStoreBandwidth, kCaseStudyStoreLatency);
}

aaa::Adequation::ReconfigCost case_study_reconfig_cost(const synth::DesignBundle& bundle) {
  // Cold-load latency: the pipeline memory -> builder -> ICAP is
  // bottlenecked by the external memory stream.
  const fabric::PortTiming icap = fabric::ConfigPort::default_timing(fabric::PortKind::Icap);
  return [&bundle, icap](const std::string& region, const std::string& module) -> TimeNs {
    const auto& artifact = bundle.variant(region, module);
    const Bytes bytes = artifact.bitstream.size();
    const TimeNs fetch =
        kCaseStudyStoreLatency + transfer_time_ns(bytes, kCaseStudyStoreBandwidth);
    const double port_bps = icap.clock_hz * icap.width_bits / 8.0;
    const TimeNs port = icap.setup_overhead + transfer_time_ns(bytes, port_bps);
    return std::max(fetch, port) + 500;  // + manager overhead
  };
}

}  // namespace pdr::mccdma
