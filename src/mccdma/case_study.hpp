// The paper's case study (§6), assembled end to end:
//
//  - the constraints file defining dynamic modules qpsk/qam16 in region
//    D1 (sized to the paper's "8 % of the FPGA"),
//  - the transmitter algorithm graph (paper Figure 4 datapath),
//  - the Sundance platform architecture graph (DSP + XC2V2000),
//  - the Modular Design flow output (floorplan, placements, partial
//    bitstreams),
//  - the external bitstream memory sized so that a cold reconfiguration
//    of Op_Dyn lands at the paper's measured ~= 4 ms.
#pragma once

#include <string>

#include "aaa/adequation.hpp"
#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "aaa/durations.hpp"
#include "mccdma/params.hpp"
#include "rtr/bitstream_store.hpp"
#include "synth/flow.hpp"

namespace pdr::mccdma {

/// External bitstream memory streaming rate chosen so that the 8 %
/// region's partial bitstream loads in ~= 4 ms (the memory, not the ICAP,
/// is the bottleneck — as in the paper's board, where the protocol
/// builder addresses external memory).
inline constexpr double kCaseStudyStoreBandwidth = 16.7e6;  // bytes/s
inline constexpr TimeNs kCaseStudyStoreLatency = 10'000;    // 10 us address setup

/// Width (CLB columns) pinned for region D1: 5 of the XC2V2000's 48
/// columns ~= 7.9 % of the device's configuration frames, matching the
/// paper's "8 % of the FPGA".
inline constexpr int kCaseStudyRegionCols = 5;

struct CaseStudy {
  aaa::ConstraintSet constraints;
  aaa::AlgorithmGraph algorithm;
  aaa::ArchitectureGraph architecture;
  aaa::DurationTable durations;
  synth::DesignBundle bundle;
  McCdmaParams params;
};

/// The constraints-file text for the case study (parseable DSL).
std::string case_study_constraints_text();

/// Builds the transmitter algorithm graph (paper Figure 4 datapath).
aaa::AlgorithmGraph make_transmitter_algorithm(const McCdmaParams& params);

/// The case study's static-module list (everything outside region D1).
std::vector<synth::ModuleSpec> case_study_statics();

/// Runs the Modular Design flow for a ConstraintSet: dynamic modules from
/// the constraints, plus the given static modules.
/// `tracer`/`metrics` (optional) receive the flow's stage spans and
/// counters.
///
/// A thin preset over flow::Pipeline's Synth stage: the constraints are
/// serialized to their canonical text and looked up in the process-wide
/// artifact store, so calling this twice with equivalent inputs runs the
/// Modular Design flow once and serves the cached bundle the second time.
synth::DesignBundle run_flow_from_constraints(const aaa::ConstraintSet& constraints,
                                              const std::vector<synth::ModuleSpec>& statics,
                                              obs::Tracer* tracer = nullptr,
                                              obs::MetricsRegistry* metrics = nullptr);

/// Assembles the whole case study.
CaseStudy build_case_study();

/// Process-wide shared case study (built once, the synth stage served
/// from the flow artifact cache). The reference stays valid for the
/// process lifetime — what sweep scenarios and benches should use.
const CaseStudy& shared_case_study();

/// An external store pre-sized with the case-study timing model.
rtr::BitstreamStore make_case_study_store();

/// Reconfiguration-cost callback for the adequation: cold-load latency of
/// each variant through the case-study store and ICAP.
aaa::Adequation::ReconfigCost case_study_reconfig_cost(const synth::DesignBundle& bundle);

}  // namespace pdr::mccdma
