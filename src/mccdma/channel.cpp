#include "mccdma/channel.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

std::vector<Cplx> AwgnChannel::apply(std::span<const Cplx> samples, double snr_db) {
  PDR_CHECK(!samples.empty(), "AwgnChannel::apply", "no samples");
  double power = 0.0;
  for (const Cplx& s : samples) power += std::norm(s);
  power /= static_cast<double>(samples.size());

  const double snr = std::pow(10.0, snr_db / 10.0);
  const double noise_power = power / snr;
  const double sigma = std::sqrt(noise_power / 2.0);  // per real dimension

  std::vector<Cplx> out;
  out.reserve(samples.size());
  for (const Cplx& s : samples)
    out.push_back(s + Cplx{sigma * rng_.normal(), sigma * rng_.normal()});
  return out;
}

MultipathChannel::MultipathChannel(std::vector<Cplx> taps, Rng rng)
    : taps_(std::move(taps)), awgn_(rng) {
  PDR_CHECK(!taps_.empty(), "MultipathChannel", "need at least one tap");
  memory_.assign(taps_.size() - 1, Cplx{0.0, 0.0});
}

std::vector<Cplx> MultipathChannel::exponential_profile(std::size_t n_taps, double decay,
                                                        Rng& rng) {
  PDR_CHECK(n_taps >= 1 && decay > 0, "MultipathChannel::exponential_profile", "bad profile");
  std::vector<Cplx> taps(n_taps);
  double total = 0;
  for (std::size_t l = 0; l < n_taps; ++l) {
    const double power = std::exp(-static_cast<double>(l) / decay);
    const double amp = std::sqrt(power / 2.0);
    taps[l] = {amp * rng.normal(), amp * rng.normal()};
    total += std::norm(taps[l]);
  }
  const double scale = 1.0 / std::sqrt(total);
  for (auto& t : taps) t *= scale;
  return taps;
}

std::vector<Cplx> MultipathChannel::apply(std::span<const Cplx> samples, double snr_db) {
  PDR_CHECK(!samples.empty(), "MultipathChannel::apply", "no samples");
  // Stateful FIR: prepend the retained tail of the previous call.
  std::vector<Cplx> extended(memory_.begin(), memory_.end());
  extended.insert(extended.end(), samples.begin(), samples.end());

  const std::size_t l = taps_.size();
  std::vector<Cplx> out(samples.size());
  for (std::size_t n = 0; n < samples.size(); ++n) {
    Cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < l; ++k) acc += taps_[k] * extended[n + (l - 1) - k];
    out[n] = acc;
  }
  if (l > 1) memory_.assign(extended.end() - static_cast<std::ptrdiff_t>(l - 1), extended.end());
  if (snr_db > 300.0) return out;
  return awgn_.apply(out, snr_db);
}

std::vector<Cplx> MultipathChannel::frequency_response(std::size_t n_fft) const {
  std::vector<Cplx> h(n_fft, Cplx{0.0, 0.0});
  for (std::size_t l = 0; l < taps_.size() && l < n_fft; ++l) h[l] = taps_[l];
  dsp::fft(h);
  return h;
}

void MultipathChannel::reset() { memory_.assign(memory_.size(), Cplx{0.0, 0.0}); }

SnrTrace::SnrTrace(Config config, Rng rng)
    : config_(config), rng_(rng), snr_db_(config.initial_db) {
  PDR_CHECK(config_.lo_db < config_.hi_db, "SnrTrace", "lo must be below hi");
  PDR_CHECK(config_.reversion >= 0.0 && config_.reversion <= 1.0, "SnrTrace",
            "reversion must be in [0, 1]");
}

double SnrTrace::step() {
  snr_db_ += config_.reversion * (config_.mean_db - snr_db_) + config_.sigma_db * rng_.normal();
  snr_db_ = std::clamp(snr_db_, config_.lo_db, config_.hi_db);
  return snr_db_;
}

std::vector<double> SnrTrace::generate(std::size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = step();
  return out;
}

}  // namespace pdr::mccdma
