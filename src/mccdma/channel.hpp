// Channel models: AWGN plus the slowly-varying SNR process that drives
// adaptive modulation.
//
// The paper's hardware demo switched modulation "according to the signal
// to noise ratio" measured by the DSP; lacking a radio, we generate the
// SNR as a bounded Gauss-Markov random walk (first-order autoregressive),
// the standard surrogate for slow shadow fading.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdr::mccdma {

using Cplx = std::complex<double>;

/// Additive white Gaussian noise at a target SNR (dB) relative to the
/// measured input power.
class AwgnChannel {
 public:
  explicit AwgnChannel(Rng rng) : rng_(rng) {}

  /// Returns samples + noise such that 10*log10(P_signal/P_noise) ~= snr_db.
  std::vector<Cplx> apply(std::span<const Cplx> samples, double snr_db);

 private:
  Rng rng_;
};

/// Frequency-selective multipath channel: an L-tap FIR with memory across
/// symbol boundaries (the cyclic prefix is what protects against the
/// resulting inter-symbol interference), followed by AWGN. This is the
/// channel MC-CDMA's frequency-domain spreading is designed for.
class MultipathChannel {
 public:
  /// `taps` is the complex impulse response (normalized or not).
  MultipathChannel(std::vector<Cplx> taps, Rng rng);

  /// Draws an L-tap exponentially-decaying random channel, normalized to
  /// unit total power: E|h_l|^2 = C * exp(-l / decay).
  static std::vector<Cplx> exponential_profile(std::size_t n_taps, double decay, Rng& rng);

  /// Convolves (stateful across calls) and adds noise at `snr_db`
  /// relative to the faded signal power. Pass +inf (or > 300) for a
  /// noiseless channel.
  std::vector<Cplx> apply(std::span<const Cplx> samples, double snr_db);

  /// Channel frequency response over `n_fft` bins (for the receiver's
  /// per-subcarrier equalizer).
  std::vector<Cplx> frequency_response(std::size_t n_fft) const;

  const std::vector<Cplx>& taps() const { return taps_; }

  /// Clears the inter-symbol memory.
  void reset();

 private:
  std::vector<Cplx> taps_;
  std::vector<Cplx> memory_;  ///< last L-1 input samples
  AwgnChannel awgn_;
};

/// Bounded AR(1) SNR trace: snr[k+1] = snr[k] + rho*(mean - snr[k]) + sigma*N(0,1),
/// clamped to [lo, hi].
class SnrTrace {
 public:
  struct Config {
    double initial_db = 12.0;
    double mean_db = 12.0;
    double reversion = 0.02;  ///< pull towards the mean per step
    double sigma_db = 0.35;   ///< innovation std-dev per step
    double lo_db = 0.0;
    double hi_db = 24.0;
  };

  SnrTrace(Config config, Rng rng);

  /// Current SNR (dB).
  double current() const { return snr_db_; }

  /// Advances one step and returns the new SNR.
  double step();

  /// Generates n steps.
  std::vector<double> generate(std::size_t n);

 private:
  Config config_;
  Rng rng_;
  double snr_db_;
};

}  // namespace pdr::mccdma
