#include "mccdma/estimator.hpp"

#include "dsp/prbs.hpp"
#include "mccdma/ofdm.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

ChannelEstimator::ChannelEstimator(const McCdmaParams& params) : params_(params) {
  params_.validate();
  dsp::Prbs prbs(dsp::Prbs::Kind::Prbs15, 0x2f);
  pilot_chips_.reserve(params_.n_subcarriers);
  for (std::size_t k = 0; k < params_.n_subcarriers; ++k)
    pilot_chips_.push_back(Cplx{prbs.next_bit() ? -1.0 : 1.0, 0.0});
}

std::vector<Cplx> ChannelEstimator::pilot_samples() const {
  return OfdmModulator(params_).modulate(pilot_chips_);
}

std::vector<Cplx> ChannelEstimator::estimate(std::span<const Cplx> received_pilot) const {
  const std::vector<Cplx> chips = OfdmModulator(params_).demodulate(received_pilot);
  std::vector<Cplx> h(params_.n_subcarriers);
  for (std::size_t k = 0; k < h.size(); ++k) h[k] = chips[k] / pilot_chips_[k];
  return h;
}

std::vector<Cplx> ChannelEstimator::smooth(std::span<const Cplx> h, int half_window) {
  PDR_CHECK(half_window >= 0, "ChannelEstimator::smooth", "negative window");
  if (half_window == 0) return {h.begin(), h.end()};
  const auto n = static_cast<std::ptrdiff_t>(h.size());
  std::vector<Cplx> out(h.size());
  for (std::ptrdiff_t k = 0; k < n; ++k) {
    Cplx acc{0.0, 0.0};
    for (std::ptrdiff_t d = -half_window; d <= half_window; ++d)
      acc += h[static_cast<std::size_t>(((k + d) % n + n) % n)];
    out[static_cast<std::size_t>(k)] = acc / static_cast<double>(2 * half_window + 1);
  }
  return out;
}

double ChannelEstimator::mse(std::span<const Cplx> a, std::span<const Cplx> b) {
  PDR_CHECK(a.size() == b.size() && !a.empty(), "ChannelEstimator::mse", "size mismatch");
  double acc = 0;
  for (std::size_t k = 0; k < a.size(); ++k) acc += std::norm(a[k] - b[k]);
  return acc / static_cast<double>(a.size());
}

}  // namespace pdr::mccdma
