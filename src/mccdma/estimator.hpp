// Pilot-based channel estimation.
//
// The case-study frames interleave pilot OFDM symbols with data (paper
// Figure 4's frame builder carries the pilot ROM). The receiver divides
// the received pilot by the known transmitted pattern to estimate the
// channel's per-subcarrier response, optionally smoothing across
// neighbouring subcarriers — replacing the genie channel knowledge the
// BER benches use.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "mccdma/params.hpp"

namespace pdr::mccdma {

using Cplx = std::complex<double>;

class ChannelEstimator {
 public:
  explicit ChannelEstimator(const McCdmaParams& params);

  /// The known pilot pattern: one BPSK chip (+-1) per subcarrier, drawn
  /// from a fixed PRBS so transmitter and receiver agree.
  const std::vector<Cplx>& pilot_chips() const { return pilot_chips_; }

  /// The pilot OFDM symbol's time-domain samples (with cyclic prefix).
  std::vector<Cplx> pilot_samples() const;

  /// Least-squares estimate from a received pilot symbol:
  /// H[k] = Y[k] / X[k].
  std::vector<Cplx> estimate(std::span<const Cplx> received_pilot) const;

  /// Moving-average smoothing over 2*half_window+1 adjacent subcarriers
  /// (wrapping); reduces noise on slowly varying channels.
  static std::vector<Cplx> smooth(std::span<const Cplx> h, int half_window);

  /// Mean squared error between two responses (diagnostics/tests).
  static double mse(std::span<const Cplx> a, std::span<const Cplx> b);

 private:
  McCdmaParams params_;
  std::vector<Cplx> pilot_chips_;
};

}  // namespace pdr::mccdma
