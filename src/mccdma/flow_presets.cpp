#include "mccdma/flow_presets.hpp"

#include <utility>

#include "aaa/project_io.hpp"
#include "rtr/manager.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pdr::mccdma {

flow::Pipeline case_study_pipeline() {
  flow::PipelineOptions options;
  options.constraints_text = case_study_constraints_text();
  options.statics = case_study_statics();

  aaa::Project project;
  project.name = "mccdma_tx";
  project.algorithm = make_transmitter_algorithm(McCdmaParams{});
  project.architecture = aaa::make_sundance_architecture();
  project.durations = aaa::mccdma_durations();
  options.project_text = aaa::write_project(project);

  // Per-variant costs through the case-study store/ICAP model. The
  // callback is opaque to the cache; the tag names this cost model.
  options.reconfig_cost_fn = case_study_reconfig_cost(shared_case_study().bundle);
  options.reconfig_cost_tag = "case_study_store";
  options.apply_constraints = true;
  options.preloaded = {{"D1", "qpsk"}};
  return flow::Pipeline(std::move(options));
}

flow::Pipeline constraints_pipeline(std::string constraints_text,
                                    std::vector<synth::ModuleSpec> statics) {
  flow::PipelineOptions options;
  options.constraints_text = std::move(constraints_text);
  options.statics = std::move(statics);
  return flow::Pipeline(std::move(options));
}

SystemConfig sweep_system_config(aaa::PrefetchChoice prefetch, std::uint64_t seed) {
  SystemConfig config;
  config.manager = rtr::sundance_manager_config();
  config.prefetch = prefetch;
  config.seed = seed;
  return config;
}

std::string format_system_report(const SystemReport& report, const SystemConfig& config) {
  std::string out = strprintf("MC-CDMA transmitter, %zu symbols, prefetch=%s\n\n", report.symbols,
                              aaa::to_keyword(config.prefetch));
  Table t({"metric", "value"});
  t.row().add("elapsed (ms)").add(to_ms(report.elapsed), 3);
  t.row().add("stall (ms)").add(to_ms(report.stall_total), 3);
  t.row().add("stall fraction (%)").add(100.0 * report.stall_fraction(), 2);
  t.row().add("throughput (Mb/s)").add(report.throughput_bps() / 1e6, 2);
  t.row().add("modulation switches").add(report.switches);
  t.row().add("mean SNR (dB)").add(report.mean_snr_db, 1);
  out += t.to_markdown();

  const rtr::ManagerStats& m = report.manager;
  out += "\nreconfiguration manager:\n";
  Table mt({"stat", "value"});
  mt.row().add("requests").add(m.requests);
  mt.row().add("already loaded").add(m.already_loaded);
  mt.row().add("prefetch hits").add(m.prefetch_hits);
  mt.row().add("prefetch in-flight").add(m.prefetch_inflight);
  mt.row().add("cache hits").add(m.cache_hits);
  mt.row().add("misses").add(m.misses);
  mt.row().add("prefetches issued").add(m.prefetches_issued);
  mt.row().add("prefetches wasted").add(m.prefetches_wasted);
  mt.row().add("scrubs").add(m.scrubs);
  mt.row().add("blanks").add(m.blanks);
  mt.row().add("load failures").add(m.load_failures);
  mt.row().add("retries").add(m.retries);
  mt.row().add("fallbacks").add(m.fallbacks);
  mt.row().add("scrub repairs").add(m.scrub_repairs);
  mt.row().add("total load time (ms)").add(to_ms(m.total_load_time), 3);
  mt.row().add("bytes loaded").add(human_bytes(m.bytes_loaded));
  out += mt.to_markdown();
  return out;
}

flow::Scenario transmitter_scenario(std::string name, SystemConfig config, std::size_t symbols) {
  return flow::Scenario{
      std::move(name), [config, symbols](flow::ObsSinks& sinks) mutable {
        config.tracer = &sinks.tracer;
        config.metrics = &sinks.metrics;
        TransmitterSystem system(shared_case_study(), config);
        const SystemReport report = system.run(symbols);
        return format_system_report(report, config);
      }};
}

flow::Scenario campaign_scenario(std::string name, std::string spec_text,
                                 flow::FaultCampaignOptions options) {
  return flow::Scenario{
      std::move(name),
      [spec_text = std::move(spec_text), options](flow::ObsSinks& sinks) {
        flow::Pipeline pipeline =
            constraints_pipeline(case_study_constraints_text(), case_study_statics());
        pipeline.set_observability(&sinks.tracer, &sinks.metrics);
        return pipeline.fault_campaign(spec_text, options)->to_string();
      }};
}

}  // namespace pdr::mccdma
