// Pipeline presets and sweep scenario factories for the MC-CDMA case
// study — the layer where the flow engine meets the transmitter.
//
// The Simulate stage lives here (not in pdr::flow) because it needs
// mccdma::TransmitterSystem, which sits above the flow library in the
// dependency order. The presets assemble flow::Pipeline instances over
// the process-wide artifact store, so every sweep scenario shares one
// cached Modular Design bundle instead of re-running synthesis.
#pragma once

#include <cstddef>
#include <string>

#include "flow/pipeline.hpp"
#include "flow/scenario.hpp"
#include "mccdma/system.hpp"

namespace pdr::mccdma {

/// Pipeline wired to the case study: constraints side (constraints text +
/// static modules) and project side (transmitter algorithm on the Sundance
/// architecture, per-variant reconfiguration costs from the shared
/// bundle, constraints applied, qpsk preloaded in D1).
flow::Pipeline case_study_pipeline();

/// Pipeline for an externally supplied constraints file; statics default
/// to none (matches `pdrflow build`).
flow::Pipeline constraints_pipeline(std::string constraints_text,
                                    std::vector<synth::ModuleSpec> statics = {});

/// A SystemConfig preset: Sundance manager, given prefetch policy and
/// seed, everything else at case-study defaults.
SystemConfig sweep_system_config(aaa::PrefetchChoice prefetch, std::uint64_t seed);

/// Renders a SystemReport as the canonical two-table text used by
/// `pdrflow simulate` and the sweep scenarios. Deterministic for a given
/// (config, report): simulated-time numbers only, no wall-clock.
std::string format_system_report(const SystemReport& report, const SystemConfig& config);

/// One seeded transmitter run as a sweep scenario. The body wires the
/// scenario's private sinks into the config, runs `symbols` OFDM symbols
/// against shared_case_study() and returns format_system_report().
flow::Scenario transmitter_scenario(std::string name, SystemConfig config, std::size_t symbols);

/// One seeded fault-injection campaign as a sweep scenario, run through
/// the case-study pipeline's FaultCampaign stage (so a repeated
/// (spec, options) pair is a cache hit). Returns the campaign report text.
flow::Scenario campaign_scenario(std::string name, std::string spec_text,
                                 flow::FaultCampaignOptions options);

}  // namespace pdr::mccdma
