#include "mccdma/modulation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pdr::mccdma {
namespace {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Gray PAM levels for 2^bits levels, unit average energy per axis pair.
/// E.g. 4 levels: {-3,-1,+1,+3} scaled.
std::vector<double> gray_levels(int bits_per_axis) {
  const int levels = 1 << bits_per_axis;
  std::vector<double> out(static_cast<std::size_t>(levels));
  for (int i = 0; i < levels; ++i) out[static_cast<std::size_t>(i)] = 2 * i - (levels - 1);
  return out;
}

/// Index -> Gray code, and the inverse lookup for mapping bits to levels.
int gray_of(int i) { return i ^ (i >> 1); }

/// Square-QAM with `bits_per_axis` Gray bits per axis (1 => QPSK).
class SquareQam final : public Modulator {
 public:
  SquareQam(std::string name, int bits_per_axis) : name_(std::move(name)), bits_axis_(bits_per_axis) {
    const auto raw = gray_levels(bits_axis_);
    // Normalize to unit average symbol energy: E = 2 * mean(level^2).
    double e = 0;
    for (double v : raw) e += v * v;
    e = 2.0 * e / static_cast<double>(raw.size());
    scale_ = 1.0 / std::sqrt(e);
    // level_of_gray_[g] = amplitude whose Gray code is g.
    level_of_gray_.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
      level_of_gray_[static_cast<std::size_t>(gray_of(static_cast<int>(i)))] = raw[i] * scale_;
  }

  const std::string& name() const override { return name_; }
  int bits_per_symbol() const override { return 2 * bits_axis_; }

  void demap_symbol(Cplx symbol, std::vector<std::uint8_t>& bits_out) const override {
    demap_axis(symbol.real(), bits_out);
    demap_axis(symbol.imag(), bits_out);
  }

 protected:
  Cplx map_symbol(std::span<const std::uint8_t> bits) const override {
    return {axis(bits.subspan(0, static_cast<std::size_t>(bits_axis_))),
            axis(bits.subspan(static_cast<std::size_t>(bits_axis_)))};
  }

 private:
  double axis(std::span<const std::uint8_t> bits) const {
    int gray = 0;
    for (int b = 0; b < bits_axis_; ++b) gray = (gray << 1) | (bits[static_cast<std::size_t>(b)] & 1);
    return level_of_gray_[static_cast<std::size_t>(gray)];
  }

  void demap_axis(double value, std::vector<std::uint8_t>& bits_out) const {
    // Nearest level, then its Gray code MSB-first.
    const int levels = 1 << bits_axis_;
    const double unscaled = value / scale_;
    int index = static_cast<int>(std::lround((unscaled + (levels - 1)) / 2.0));
    index = std::max(0, std::min(levels - 1, index));
    const int gray = gray_of(index);
    for (int b = bits_axis_ - 1; b >= 0; --b)
      bits_out.push_back(static_cast<std::uint8_t>((gray >> b) & 1));
  }

  std::string name_;
  int bits_axis_;
  double scale_ = 1.0;
  std::vector<double> level_of_gray_;
};

/// BPSK lives on the real axis only.
class Bpsk final : public Modulator {
 public:
  const std::string& name() const override { return name_; }
  int bits_per_symbol() const override { return 1; }

  void demap_symbol(Cplx symbol, std::vector<std::uint8_t>& bits_out) const override {
    bits_out.push_back(symbol.real() >= 0 ? 0 : 1);
  }

 protected:
  Cplx map_symbol(std::span<const std::uint8_t> bits) const override {
    return {bits[0] ? -1.0 : 1.0, 0.0};
  }

 private:
  std::string name_ = "bpsk";
};

}  // namespace

std::vector<Cplx> Modulator::map(std::span<const std::uint8_t> bits) const {
  const auto k = static_cast<std::size_t>(bits_per_symbol());
  PDR_CHECK(bits.size() % k == 0, "Modulator::map",
            "bit count not divisible by bits_per_symbol of " + name());
  std::vector<Cplx> out;
  out.reserve(bits.size() / k);
  for (std::size_t i = 0; i < bits.size(); i += k) out.push_back(map_symbol(bits.subspan(i, k)));
  return out;
}

std::vector<std::uint8_t> Modulator::demap(std::span<const Cplx> symbols) const {
  std::vector<std::uint8_t> out;
  out.reserve(symbols.size() * static_cast<std::size_t>(bits_per_symbol()));
  for (const Cplx& s : symbols) demap_symbol(s, out);
  return out;
}

void Modulator::demap_soft_symbol(Cplx symbol, double noise_var,
                                  std::vector<double>& llrs_out) const {
  PDR_CHECK(noise_var > 0, "Modulator::demap_soft_symbol", "noise variance must be positive");
  const int k = bits_per_symbol();
  const int points = 1 << k;
  // Max-log: llr_b = (min_{x: bit b = 1} |y - x|^2 - min_{x: bit b = 0} |y - x|^2) / N0.
  std::vector<double> best0(static_cast<std::size_t>(k), 1e300);
  std::vector<double> best1(static_cast<std::size_t>(k), 1e300);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
  for (int v = 0; v < points; ++v) {
    for (int b = 0; b < k; ++b) bits[static_cast<std::size_t>(b)] = (v >> (k - 1 - b)) & 1;
    const double d2 = std::norm(symbol - map_symbol(bits));
    for (int b = 0; b < k; ++b) {
      auto& best = bits[static_cast<std::size_t>(b)] ? best1 : best0;
      if (d2 < best[static_cast<std::size_t>(b)]) best[static_cast<std::size_t>(b)] = d2;
    }
  }
  for (int b = 0; b < k; ++b)
    llrs_out.push_back((best1[static_cast<std::size_t>(b)] - best0[static_cast<std::size_t>(b)]) /
                       noise_var);
}

std::vector<double> Modulator::demap_soft(std::span<const Cplx> symbols, double noise_var) const {
  std::vector<double> out;
  out.reserve(symbols.size() * static_cast<std::size_t>(bits_per_symbol()));
  for (const Cplx& s : symbols) demap_soft_symbol(s, noise_var, out);
  return out;
}

std::unique_ptr<Modulator> make_bpsk() { return std::make_unique<Bpsk>(); }
std::unique_ptr<Modulator> make_qpsk() { return std::make_unique<SquareQam>("qpsk", 1); }
std::unique_ptr<Modulator> make_qam16() { return std::make_unique<SquareQam>("qam16", 2); }
std::unique_ptr<Modulator> make_qam64() { return std::make_unique<SquareQam>("qam64", 3); }

std::unique_ptr<Modulator> make_modulator(const std::string& name) {
  if (name == "bpsk") return make_bpsk();
  if (name == "qpsk") return make_qpsk();
  if (name == "qam16") return make_qam16();
  if (name == "qam64") return make_qam64();
  raise("make_modulator", "unknown modulation '" + name + "'");
}

double theoretical_ber(const std::string& name, double ebn0_db) {
  const double ebn0 = std::pow(10.0, ebn0_db / 10.0);
  if (name == "bpsk" || name == "qpsk") return q_function(std::sqrt(2.0 * ebn0));
  if (name == "qam16") {
    // Gray 16-QAM approximation: (3/4) Q(sqrt(4/5 Eb/N0)).
    return 0.75 * q_function(std::sqrt(0.8 * ebn0));
  }
  if (name == "qam64") {
    // Gray square M-QAM approximation with M=64:
    // (4/log2 M)(1 - 1/sqrt M) Q(sqrt(3 log2(M) Eb/N0 / (M-1))).
    return (7.0 / 12.0) * q_function(std::sqrt(18.0 / 63.0 * ebn0));
  }
  raise("theoretical_ber", "unknown modulation '" + name + "'");
}

}  // namespace pdr::mccdma
