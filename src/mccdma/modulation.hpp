// Constellation mappers: the dynamic modules of the case study.
//
// "Block modulation performs either a QPSK or QAM-16 modulation. This
// adaptive modulation is selected by the conditional entry Select which
// defines the modulation of each OFDM symbol according to the signal to
// noise ratio." (§6)
//
// All mappers are Gray-coded with unit average symbol energy, so the
// demapper's hard decisions give textbook AWGN bit-error rates — the
// property tests pin that down.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pdr::mccdma {

using Cplx = std::complex<double>;

class Modulator {
 public:
  virtual ~Modulator() = default;

  virtual const std::string& name() const = 0;
  virtual int bits_per_symbol() const = 0;

  /// Maps `bits` (size divisible by bits_per_symbol) to symbols.
  std::vector<Cplx> map(std::span<const std::uint8_t> bits) const;

  /// Hard-decision demap of one symbol.
  virtual void demap_symbol(Cplx symbol, std::vector<std::uint8_t>& bits_out) const = 0;

  /// Hard-decision demap of a symbol sequence.
  std::vector<std::uint8_t> demap(std::span<const Cplx> symbols) const;

  /// Max-log soft demap: per-bit log-likelihood ratios, convention
  /// llr > 0 <=> bit 0 more likely. `noise_var` is E|n|^2 of the complex
  /// noise on the symbol. Feeds dsp::ConvolutionalCode::decode_soft.
  void demap_soft_symbol(Cplx symbol, double noise_var, std::vector<double>& llrs_out) const;
  std::vector<double> demap_soft(std::span<const Cplx> symbols, double noise_var) const;

 protected:
  virtual Cplx map_symbol(std::span<const std::uint8_t> bits) const = 0;
};

/// BPSK: 1 bit/symbol.
std::unique_ptr<Modulator> make_bpsk();
/// Gray QPSK: 2 bits/symbol.
std::unique_ptr<Modulator> make_qpsk();
/// Gray 16-QAM: 4 bits/symbol.
std::unique_ptr<Modulator> make_qam16();
/// Gray 64-QAM: 6 bits/symbol.
std::unique_ptr<Modulator> make_qam64();

/// Factory by module name ("bpsk", "qpsk", "qam16", "qam64").
std::unique_ptr<Modulator> make_modulator(const std::string& name);

/// Theoretical AWGN bit-error rate of a modulation at Eb/N0 (dB), for the
/// property tests (Gray-coded approximations).
double theoretical_ber(const std::string& name, double ebn0_db);

}  // namespace pdr::mccdma
