#include "mccdma/ofdm.hpp"

#include <cmath>

#include "dsp/fft.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

OfdmModulator::OfdmModulator(const McCdmaParams& params) : params_(params) { params_.validate(); }

std::vector<Cplx> OfdmModulator::modulate(std::span<const Cplx> chips) const {
  PDR_CHECK(chips.size() == params_.n_subcarriers, "OfdmModulator::modulate", "chip count mismatch");
  std::vector<Cplx> freq(chips.begin(), chips.end());
  dsp::ifft(freq);  // includes 1/N
  const double unitary = std::sqrt(static_cast<double>(params_.n_subcarriers));
  for (auto& s : freq) s *= unitary;  // -> 1/sqrt(N) overall

  std::vector<Cplx> out;
  out.reserve(params_.samples_per_symbol());
  // Cyclic prefix: last cp samples first.
  out.insert(out.end(), freq.end() - static_cast<std::ptrdiff_t>(params_.cyclic_prefix), freq.end());
  out.insert(out.end(), freq.begin(), freq.end());
  return out;
}

std::vector<Cplx> OfdmModulator::demodulate(std::span<const Cplx> samples) const {
  PDR_CHECK(samples.size() == params_.samples_per_symbol(), "OfdmModulator::demodulate",
            "sample count mismatch");
  std::vector<Cplx> body(samples.begin() + static_cast<std::ptrdiff_t>(params_.cyclic_prefix),
                         samples.end());
  dsp::fft(body);
  const double unitary = 1.0 / std::sqrt(static_cast<double>(params_.n_subcarriers));
  for (auto& c : body) c *= unitary;
  return body;
}

}  // namespace pdr::mccdma
