// OFDM modulation: IFFT + cyclic prefix (and the inverse).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "mccdma/params.hpp"

namespace pdr::mccdma {

using Cplx = std::complex<double>;

class OfdmModulator {
 public:
  explicit OfdmModulator(const McCdmaParams& params);

  /// Frequency-domain chips -> time-domain samples with cyclic prefix.
  /// Uses the unitary (1/sqrt(N)) convention so chip and sample energies
  /// match.
  std::vector<Cplx> modulate(std::span<const Cplx> chips) const;

  /// Time samples (with CP) -> frequency-domain chips.
  std::vector<Cplx> demodulate(std::span<const Cplx> samples) const;

 private:
  McCdmaParams params_;
};

}  // namespace pdr::mccdma
