#include "mccdma/params.hpp"

#include "dsp/fft.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

void McCdmaParams::validate() const {
  PDR_CHECK(dsp::is_pow2(n_subcarriers), "McCdmaParams", "n_subcarriers must be a power of two");
  PDR_CHECK(dsp::is_pow2(spreading_factor), "McCdmaParams",
            "spreading_factor must be a power of two");
  PDR_CHECK(spreading_factor <= n_subcarriers, "McCdmaParams",
            "spreading_factor cannot exceed n_subcarriers");
  PDR_CHECK(n_subcarriers % spreading_factor == 0, "McCdmaParams",
            "spreading_factor must divide n_subcarriers");
  PDR_CHECK(n_users >= 1 && n_users <= spreading_factor, "McCdmaParams",
            "n_users must be in [1, spreading_factor]");
  PDR_CHECK(cyclic_prefix < n_subcarriers, "McCdmaParams",
            "cyclic prefix must be shorter than the symbol");
  PDR_CHECK(sample_rate_hz > 0, "McCdmaParams", "sample rate must be positive");
}

}  // namespace pdr::mccdma
