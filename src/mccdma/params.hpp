// MC-CDMA system parameters.
//
// Defaults follow the 4G air-interface prototype the case study
// implements (Le Nours, Nouvel & Hélard, EURASIP JASP 2004 — paper
// ref. [3]): 64 subcarriers, Walsh spreading factor 16, 1/4 cyclic
// prefix, 20 MHz sampling.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace pdr::mccdma {

struct McCdmaParams {
  std::size_t n_subcarriers = 64;   ///< OFDM size (power of two)
  std::size_t spreading_factor = 16;  ///< Walsh code length (power of two, <= n_subcarriers)
  std::size_t cyclic_prefix = 16;   ///< CP length in samples
  std::size_t n_users = 4;          ///< active users (<= spreading_factor)
  double sample_rate_hz = 20e6;

  /// Spread symbol groups per OFDM symbol (frequency-division of codes).
  std::size_t groups() const { return n_subcarriers / spreading_factor; }

  /// Data symbols carried per user per OFDM symbol.
  std::size_t symbols_per_user() const { return groups(); }

  /// Samples in one OFDM symbol including cyclic prefix.
  std::size_t samples_per_symbol() const { return n_subcarriers + cyclic_prefix; }

  /// Air time of one OFDM symbol.
  TimeNs symbol_duration() const {
    return static_cast<TimeNs>(static_cast<double>(samples_per_symbol()) * 1e9 / sample_rate_hz);
  }

  /// Checks structural validity (powers of two, user count, ...).
  void validate() const;
};

}  // namespace pdr::mccdma
