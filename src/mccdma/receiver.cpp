#include "mccdma/receiver.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pdr::mccdma {

Receiver::Receiver(const McCdmaParams& params)
    : params_(params), modulator_(make_qpsk()), spreader_(params), ofdm_(params) {}

void Receiver::select_modulation(const std::string& name) { modulator_ = make_modulator(name); }

void Receiver::set_channel_response(std::vector<Cplx> h, Equalizer mode, double snr_db) {
  if (h.empty()) {
    equalizer_taps_.clear();
    return;
  }
  PDR_CHECK(h.size() == params_.n_subcarriers, "Receiver::set_channel_response",
            "response must cover every subcarrier");
  equalizer_taps_.resize(h.size());
  const double inv_snr = std::pow(10.0, -snr_db / 10.0);
  for (std::size_t k = 0; k < h.size(); ++k) {
    if (mode == Equalizer::Zf) {
      PDR_CHECK(std::abs(h[k]) > 1e-12, "Receiver::set_channel_response",
                "zero-forcing cannot invert a spectral null");
      equalizer_taps_[k] = 1.0 / h[k];
    } else {
      equalizer_taps_[k] = std::conj(h[k]) / (std::norm(h[k]) + inv_snr);
    }
  }
}

std::vector<Cplx> Receiver::equalized_chips(std::span<const Cplx> samples) const {
  std::vector<Cplx> chips = ofdm_.demodulate(samples);
  if (!equalizer_taps_.empty())
    for (std::size_t k = 0; k < chips.size(); ++k) chips[k] *= equalizer_taps_[k];
  return chips;
}

std::vector<std::vector<std::uint8_t>> Receiver::receive(std::span<const Cplx> samples) const {
  const std::vector<Cplx> chips = equalized_chips(samples);
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(params_.n_users);
  for (std::size_t u = 0; u < params_.n_users; ++u) {
    const std::vector<Cplx> symbols = spreader_.despread(chips, u);
    out.push_back(modulator_->demap(symbols));
  }
  return out;
}

void Receiver::measure(std::span<const Cplx> samples,
                       const std::vector<std::vector<std::uint8_t>>& sent,
                       BerReport& report) const {
  const auto received = receive(samples);
  PDR_CHECK(received.size() == sent.size(), "Receiver::measure", "user count mismatch");
  for (std::size_t u = 0; u < sent.size(); ++u) {
    PDR_CHECK(received[u].size() == sent[u].size(), "Receiver::measure", "bit count mismatch");
    for (std::size_t b = 0; b < sent[u].size(); ++b) {
      ++report.bits;
      if (received[u][b] != sent[u][b]) ++report.errors;
    }
  }
}

double Receiver::evm(std::span<const Cplx> samples) const {
  const std::vector<Cplx> chips = equalized_chips(samples);
  double err = 0.0;
  double ref = 0.0;
  std::vector<std::uint8_t> bits;
  for (std::size_t u = 0; u < params_.n_users; ++u) {
    for (const Cplx& s : spreader_.despread(chips, u)) {
      bits.clear();
      modulator_->demap_symbol(s, bits);
      const std::vector<Cplx> ideal = modulator_->map(bits);
      err += std::norm(s - ideal.front());
      ref += std::norm(ideal.front());
    }
  }
  return ref == 0.0 ? 0.0 : std::sqrt(err / ref);
}

}  // namespace pdr::mccdma
