// Reference MC-CDMA receiver + error counting.
//
// Used by tests and benches to prove the transmitter chain is real: CP
// removal, FFT, despreading, hard-decision demapping, bit-error counting
// against the transmitted bits.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mccdma/ofdm.hpp"
#include "mccdma/spreading.hpp"
#include "mccdma/transmitter.hpp"

namespace pdr::mccdma {

struct BerReport {
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double ber() const { return bits == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(bits); }
};

class Receiver {
 public:
  explicit Receiver(const McCdmaParams& params);

  void select_modulation(const std::string& name);

  /// Per-subcarrier equalizer flavours. ZF inverts the channel exactly
  /// (noise-enhancing on faded bins); MMSE weights by
  /// conj(H) / (|H|^2 + 1/snr), trading residual bias against noise
  /// enhancement — the better detector at low SNR.
  enum class Equalizer : std::uint8_t { Zf, Mmse };

  /// Installs a per-subcarrier channel frequency response; subsequent
  /// receive()/measure()/evm() calls equalize before despreading. Pass an
  /// empty vector to clear. Zero bins are rejected for ZF (it cannot
  /// invert a spectral null); MMSE tolerates them.
  void set_channel_response(std::vector<Cplx> h, Equalizer mode = Equalizer::Zf,
                            double snr_db = 20.0);

  /// Demodulates one OFDM symbol's time samples back to per-user bits.
  std::vector<std::vector<std::uint8_t>> receive(std::span<const Cplx> samples) const;

  /// Receives `samples` and accumulates errors vs `sent` into `report`.
  void measure(std::span<const Cplx> samples,
               const std::vector<std::vector<std::uint8_t>>& sent, BerReport& report) const;

  /// Error-vector magnitude (RMS, relative) of the despread constellation
  /// against its hard decisions.
  double evm(std::span<const Cplx> samples) const;

 private:
  /// OFDM demod + optional ZF equalization.
  std::vector<Cplx> equalized_chips(std::span<const Cplx> samples) const;

  McCdmaParams params_;
  std::unique_ptr<Modulator> modulator_;
  Spreader spreader_;
  OfdmModulator ofdm_;
  std::vector<Cplx> equalizer_taps_;  ///< per-subcarrier weights; empty = off
};

}  // namespace pdr::mccdma
