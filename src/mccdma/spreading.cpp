#include "mccdma/spreading.hpp"

#include <cmath>

#include "dsp/walsh.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

Spreader::Spreader(const McCdmaParams& params) : params_(params) {
  params_.validate();
  for (std::size_t u = 0; u < params_.n_users; ++u)
    codes_.push_back(dsp::walsh_code(params_.spreading_factor, u));
}

std::vector<Cplx> Spreader::spread(const std::vector<std::vector<Cplx>>& user_symbols) const {
  PDR_CHECK(user_symbols.size() == params_.n_users, "Spreader::spread", "user count mismatch");
  for (const auto& symbols : user_symbols)
    PDR_CHECK(symbols.size() == params_.symbols_per_user(), "Spreader::spread",
              "symbols per user mismatch");

  const std::size_t sf = params_.spreading_factor;
  const double scale = 1.0 / std::sqrt(static_cast<double>(params_.n_users));
  std::vector<Cplx> chips(params_.n_subcarriers, Cplx{0.0, 0.0});
  for (std::size_t g = 0; g < params_.groups(); ++g) {
    for (std::size_t u = 0; u < params_.n_users; ++u) {
      const Cplx s = user_symbols[u][g] * scale;
      for (std::size_t k = 0; k < sf; ++k)
        chips[g * sf + k] += s * static_cast<double>(codes_[u][k]);
    }
  }
  return chips;
}

std::vector<Cplx> Spreader::despread(std::span<const Cplx> chips, std::size_t user) const {
  PDR_CHECK(chips.size() == params_.n_subcarriers, "Spreader::despread", "chip count mismatch");
  PDR_CHECK(user < params_.n_users, "Spreader::despread", "user index out of range");

  const std::size_t sf = params_.spreading_factor;
  const double scale = std::sqrt(static_cast<double>(params_.n_users)) / static_cast<double>(sf);
  std::vector<Cplx> symbols;
  symbols.reserve(params_.groups());
  for (std::size_t g = 0; g < params_.groups(); ++g) {
    Cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < sf; ++k)
      acc += chips[g * sf + k] * static_cast<double>(codes_[user][k]);
    symbols.push_back(acc * scale);
  }
  return symbols;
}

}  // namespace pdr::mccdma
