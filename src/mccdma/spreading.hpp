// Walsh-Hadamard spreading and despreading for MC-CDMA.
//
// Each user's data symbol is multiplied by its length-SF Walsh code and
// summed chip-wise with the other users'; the Nc subcarriers carry
// Nc/SF such code groups per OFDM symbol. Orthogonality of distinct Walsh
// codes makes despreading exact in the absence of channel distortion.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "mccdma/params.hpp"

namespace pdr::mccdma {

using Cplx = std::complex<double>;

class Spreader {
 public:
  explicit Spreader(const McCdmaParams& params);

  /// Spreads per-user symbols onto subcarrier chips. `user_symbols[u]`
  /// holds `params.symbols_per_user()` symbols of user u; the result has
  /// `params.n_subcarriers` chips. Chips are scaled by 1/sqrt(n_users) so
  /// average chip energy stays ~1 regardless of load.
  std::vector<Cplx> spread(const std::vector<std::vector<Cplx>>& user_symbols) const;

  /// Recovers user `user`'s symbols from the chips.
  std::vector<Cplx> despread(std::span<const Cplx> chips, std::size_t user) const;

  const McCdmaParams& params() const { return params_; }

 private:
  McCdmaParams params_;
  std::vector<std::vector<int>> codes_;  ///< Walsh code per user
};

}  // namespace pdr::mccdma
