#include "mccdma/system.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace pdr::mccdma {
namespace {

std::unique_ptr<rtr::PrefetchPolicy> policy_for(aaa::PrefetchChoice choice,
                                                const aaa::ConstraintSet& constraints) {
  aaa::ConstraintSet adjusted = constraints;
  adjusted.prefetch = choice;
  return rtr::make_prefetch_policy(adjusted);
}

}  // namespace

TransmitterSystem::TransmitterSystem(const CaseStudy& case_study, SystemConfig config)
    : cs_(case_study),
      config_(config),
      store_(make_case_study_store()),
      policy_(policy_for(config.prefetch, case_study.constraints)),
      manager_(std::make_unique<rtr::ReconfigManager>(case_study.bundle, config.manager, store_,
                                                      *policy_)),
      tx_(case_study.params),
      rx_(case_study.params),
      channel_(Rng(config.seed ^ 0xc0ffee)),
      estimator_(case_study.params),
      snr_(config.snr, Rng(config.seed)),
      controller_(config.adaptive) {
  manager_->set_observability(config_.tracer, config_.metrics);
  if (config_.multipath) {
    Rng taps_rng(config_.seed ^ 0xfade);
    fading_ = std::make_unique<MultipathChannel>(
        MultipathChannel::exponential_profile(config_.channel_taps, 2.0, taps_rng),
        Rng(config_.seed ^ 0xc0ffee));
    if (config_.pilot_every == 0) {
      // Genie channel knowledge.
      rx_.set_channel_response(fading_->frequency_response(cs_.params.n_subcarriers),
                               Receiver::Equalizer::Mmse, config_.snr.mean_db);
    }
  }
}

SystemReport TransmitterSystem::run(std::size_t n_symbols) {
  PDR_CHECK(n_symbols > 0, "TransmitterSystem::run", "need at least one symbol");
  const std::string region = "D1";
  const TimeNs symbol_t = cs_.params.symbol_duration();

  SystemReport report;
  TimeNs now = 0;
  double snr_sum = 0;

  // Initial configuration. A module declared `load startup` in the
  // constraints file ships inside the initial full-device bitstream —
  // free at run time; otherwise the first load stalls like any other.
  {
    const aaa::ModuleConstraint* mc = cs_.constraints.find_module(controller_.active());
    if (mc != nullptr && mc->load == aaa::LoadPolicy::Startup) {
      manager_->set_resident(region, controller_.active());
    } else {
      const auto outcome = manager_->request(region, controller_.active(), now);
      if (outcome.stall > 0)
        timeline_.add(region, "initial " + controller_.active(), sim::SpanKind::Reconfig, now,
                      outcome.ready_at);
      report.stall_total += outcome.stall;
      now = outcome.ready_at;
    }
    tx_.select_modulation(controller_.active());
    rx_.select_modulation(controller_.active());
  }

  TimeNs next_scrub = config_.scrub_period > 0 ? config_.scrub_period : 0;
  for (std::size_t k = 0; k < n_symbols; ++k) {
    if (config_.scrub_period > 0 && now >= next_scrub) {
      manager_->scrub(region, now);  // off critical path; occupies the port
      next_scrub += config_.scrub_period;
    }
    if (k % config_.decision_interval == 0) {
      const double snr_db = snr_.step();
      snr_sum += snr_db;
      const auto decision = controller_.update(snr_db);
      if (decision.announce.has_value() && config_.prefetch == aaa::PrefetchChoice::Schedule) {
        manager_->announce(region, *decision.announce, now);
      }
      if (decision.switched) {
        const auto outcome = manager_->request(region, decision.active, now);
        if (outcome.stall > 0) {
          // In_Reconf locks the pipeline: air time is lost.
          timeline_.add(region, "reconf " + decision.active, sim::SpanKind::Reconfig, now,
                        outcome.ready_at);
          report.stall_total += outcome.stall;
          now = outcome.ready_at;
        }
        tx_.select_modulation(decision.active);
        rx_.select_modulation(decision.active);
        ++report.switches;
        // History mode: stage the predicted next module right away.
        if (config_.prefetch == aaa::PrefetchChoice::History)
          manager_->auto_prefetch(region, now);
      }
    }

    // Pilot insertion: a known symbol the receiver re-estimates the
    // equalizer from (multipath mode only). Pilots use air time.
    if (fading_ && config_.pilot_every != 0 && k % config_.pilot_every == 0) {
      const auto received_pilot = fading_->apply(estimator_.pilot_samples(), snr_.current());
      const auto h = ChannelEstimator::smooth(estimator_.estimate(received_pilot), 1);
      rx_.set_channel_response(h, Receiver::Equalizer::Mmse, snr_.current());
      ++report.pilots_sent;
      now += symbol_t;
    }

    const TxSymbol sym = tx_.next_symbol();
    for (const auto& bits : sym.user_bits) report.payload_bits += bits.size();

    if (config_.ber_sample_every != 0 && k % config_.ber_sample_every == 0) {
      const auto noisy = fading_ ? fading_->apply(sym.samples, snr_.current())
                                 : channel_.apply(sym.samples, snr_.current());
      BerReport& ber = sym.modulation == "qpsk" ? report.ber_qpsk : report.ber_qam16;
      rx_.measure(noisy, sym.user_bits, ber);
    }

    now += symbol_t;
  }

  report.symbols = n_symbols;
  report.elapsed = now;
  report.manager = manager_->stats();
  if (config_.tracer != nullptr) timeline_.export_to(*config_.tracer, "system_");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("system.symbols").add(static_cast<double>(n_symbols));
    config_.metrics->counter("system.switches").add(report.switches);
    config_.metrics->counter("system.pilots_sent").add(static_cast<double>(report.pilots_sent));
    config_.metrics->counter("system.stall_ns").add(static_cast<double>(report.stall_total));
    config_.metrics->counter("system.payload_bits").add(static_cast<double>(report.payload_bits));
    config_.metrics->gauge("system.throughput_bps").set(report.throughput_bps());
    config_.metrics->gauge("system.stall_fraction").set(report.stall_fraction());
  }
  report.mean_snr_db =
      snr_sum / static_cast<double>((n_symbols + config_.decision_interval - 1) /
                                    config_.decision_interval);
  PDR_INFO("system") << n_symbols << " symbols, " << report.switches << " switches, stall "
                     << to_ms(report.stall_total) << " ms";
  return report;
}

}  // namespace pdr::mccdma
