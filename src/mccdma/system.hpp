// The reconfigurable MC-CDMA transmitter system: signal processing,
// adaptive modulation, runtime reconfiguration manager and timing, run as
// one simulation (paper Figure 4 + the abstract's prefetching claim).
//
// Per OFDM symbol the transmitter emits real samples under the active
// modulation. Every `decision_interval` symbols the DSP measures SNR and
// the adaptive controller decides the modulation of subsequent symbols;
// a switch demands a reconfiguration of region D1 (the transmit pipeline
// locks up via In_Reconf for the exposed latency), while a guard-band
// drift only *announces* the likely module, letting the manager prefetch.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mccdma/adaptive.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/channel.hpp"
#include "mccdma/estimator.hpp"
#include "mccdma/receiver.hpp"
#include "mccdma/transmitter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/manager.hpp"
#include "sim/timeline.hpp"

namespace pdr::mccdma {

struct SystemConfig {
  AdaptiveController::Config adaptive;
  SnrTrace::Config snr;
  rtr::ManagerConfig manager;
  /// Prefetch strategy: None disables staging entirely; Schedule stages on
  /// the controller's guard-band announcements; History lets the Markov
  /// predictor stage the likely next module right after every switch.
  aaa::PrefetchChoice prefetch = aaa::PrefetchChoice::Schedule;
  std::size_t decision_interval = 16;  ///< symbols between SNR measurements
  /// Periodic configuration-memory scrubbing (0 = off). Scrubs run off
  /// the critical path but occupy the configuration port, delaying any
  /// reconfiguration that lands while one is in progress.
  TimeNs scrub_period = 0;
  std::uint64_t seed = 42;
  /// Measure BER through the channel on every n-th symbol (0 = never).
  std::size_t ber_sample_every = 8;
  /// Frequency-selective channel instead of flat AWGN.
  bool multipath = false;
  std::size_t channel_taps = 6;
  /// With multipath: transmit a known pilot symbol every `pilot_every`
  /// symbols and re-estimate the equalizer from it (0 = genie channel
  /// knowledge). Pilots consume air time but carry no payload.
  std::size_t pilot_every = 0;
  /// Optional observability sinks. The manager's port/staging spans and
  /// "rtr.*" metrics flow here; run() also replays the system timeline and
  /// records "system.*" counters. Either may be nullptr.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct SystemReport {
  std::size_t symbols = 0;
  TimeNs elapsed = 0;           ///< air time + reconfiguration stalls
  TimeNs stall_total = 0;       ///< pipeline lock-up due to reconfigurations
  std::uint64_t payload_bits = 0;
  std::size_t pilots_sent = 0;  ///< pilot symbols (airtime without payload)
  int switches = 0;
  rtr::ManagerStats manager;
  BerReport ber_qpsk;
  BerReport ber_qam16;
  double mean_snr_db = 0;

  /// Net payload throughput including stalls.
  double throughput_bps() const {
    return elapsed <= 0 ? 0.0 : static_cast<double>(payload_bits) * 1e9 / static_cast<double>(elapsed);
  }
  /// Fraction of wall time lost to reconfiguration stalls.
  double stall_fraction() const {
    return elapsed <= 0 ? 0.0 : static_cast<double>(stall_total) / static_cast<double>(elapsed);
  }
};

class TransmitterSystem {
 public:
  /// `case_study` must outlive the system (the manager references its
  /// design bundle).
  TransmitterSystem(const CaseStudy& case_study, SystemConfig config);

  /// Runs `n_symbols` OFDM symbols of air time.
  SystemReport run(std::size_t n_symbols);

  const rtr::ReconfigManager& manager() const { return *manager_; }
  const sim::Timeline& timeline() const { return timeline_; }

 private:
  const CaseStudy& cs_;
  SystemConfig config_;
  rtr::BitstreamStore store_;
  std::unique_ptr<rtr::PrefetchPolicy> policy_;
  std::unique_ptr<rtr::ReconfigManager> manager_;
  Transmitter tx_;
  Receiver rx_;
  AwgnChannel channel_;
  std::unique_ptr<MultipathChannel> fading_;  ///< only with config.multipath
  ChannelEstimator estimator_;
  SnrTrace snr_;
  AdaptiveController controller_;
  sim::Timeline timeline_;
};

}  // namespace pdr::mccdma
