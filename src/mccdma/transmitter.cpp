#include "mccdma/transmitter.hpp"

#include <cmath>

#include "dsp/fft.hpp"
#include "util/error.hpp"

namespace pdr::mccdma {

Transmitter::Transmitter(const McCdmaParams& params)
    : params_(params), modulator_(make_qpsk()), spreader_(params), ofdm_(params) {
  params_.validate();
  for (std::size_t u = 0; u < params_.n_users; ++u)
    sources_.emplace_back(dsp::Prbs::Kind::Prbs23, static_cast<std::uint32_t>(u + 1));
}

void Transmitter::select_modulation(const std::string& name) { modulator_ = make_modulator(name); }

const std::string& Transmitter::active_modulation() const { return modulator_->name(); }

std::size_t Transmitter::bits_per_user_symbol() const {
  return params_.symbols_per_user() * static_cast<std::size_t>(modulator_->bits_per_symbol());
}

TxSymbol Transmitter::next_symbol() {
  std::vector<std::vector<std::uint8_t>> user_bits;
  user_bits.reserve(params_.n_users);
  for (std::size_t u = 0; u < params_.n_users; ++u)
    user_bits.push_back(sources_[u].bits(bits_per_user_symbol()));
  return make_symbol(user_bits);
}

TxSymbol Transmitter::make_symbol(const std::vector<std::vector<std::uint8_t>>& user_bits) const {
  PDR_CHECK(user_bits.size() == params_.n_users, "Transmitter::make_symbol", "user count mismatch");
  TxSymbol out;
  out.user_bits = user_bits;
  out.modulation = modulator_->name();

  std::vector<std::vector<Cplx>> user_symbols;
  user_symbols.reserve(params_.n_users);
  for (const auto& bits : user_bits) {
    PDR_CHECK(bits.size() == bits_per_user_symbol(), "Transmitter::make_symbol",
              "bit count mismatch for active modulation");
    user_symbols.push_back(modulator_->map(bits));
  }
  out.chips = spreader_.spread(user_symbols);
  if (!fixed_point_) {
    out.samples = ofdm_.modulate(out.chips);
    return out;
  }

  // Q15 datapath: chips scaled into the [-1, 1) range (multi-user sums
  // can reach sqrt(users) * max-constellation-amplitude, so the datapath
  // applies input headroom exactly like a hardware implementation),
  // IFFT in fixed point (1/N scaling), rescaled back to the unitary
  // 1/sqrt(N) convention, cyclic prefix added.
  const double headroom = std::sqrt(static_cast<double>(params_.n_users)) * 1.25;
  std::vector<Cplx> scaled = out.chips;
  for (auto& c : scaled) c /= headroom;
  std::vector<dsp::CQ15> q = dsp::to_q15(scaled);
  dsp::fft_q15(q, /*inverse=*/true);
  std::vector<Cplx> body = dsp::from_q15(q);
  const double unitary = headroom * std::sqrt(static_cast<double>(params_.n_subcarriers));
  for (auto& s : body) s *= unitary;
  out.samples.reserve(params_.samples_per_symbol());
  out.samples.assign(body.end() - static_cast<std::ptrdiff_t>(params_.cyclic_prefix), body.end());
  out.samples.insert(out.samples.end(), body.begin(), body.end());
  return out;
}

}  // namespace pdr::mccdma
