// The MC-CDMA transmitter chain (paper Figure 4's datapath, bit-exact).
//
// Per OFDM symbol: per-user source bits -> constellation mapping (the
// runtime-reconfigurable block) -> Walsh spreading -> IFFT + cyclic
// prefix. The active modulation can be switched between symbols, exactly
// like the hardware's Op_Dyn region.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsp/prbs.hpp"
#include "mccdma/modulation.hpp"
#include "mccdma/ofdm.hpp"
#include "mccdma/spreading.hpp"

namespace pdr::mccdma {

/// Everything produced for one OFDM symbol.
struct TxSymbol {
  std::vector<std::vector<std::uint8_t>> user_bits;  ///< bits fed per user
  std::vector<Cplx> chips;                           ///< post-spreading subcarriers
  std::vector<Cplx> samples;                         ///< time-domain with CP
  std::string modulation;                            ///< mapper used
};

class Transmitter {
 public:
  explicit Transmitter(const McCdmaParams& params);

  /// Switches the active constellation mapper ("qpsk", "qam16", ...).
  void select_modulation(const std::string& name);
  const std::string& active_modulation() const;

  /// Computes the IFFT in Q15 fixed point (the FPGA datapath's
  /// arithmetic) instead of double precision. Output samples are
  /// rescaled to the same unitary convention, so the two paths differ
  /// only by quantization noise (bounded in the tests).
  void set_fixed_point(bool on) { fixed_point_ = on; }
  bool fixed_point() const { return fixed_point_; }

  /// Bits consumed per user per OFDM symbol under the active modulation.
  std::size_t bits_per_user_symbol() const;

  /// Produces the next OFDM symbol from the internal PRBS sources.
  TxSymbol next_symbol();

  /// Produces one OFDM symbol from caller-supplied per-user bits.
  TxSymbol make_symbol(const std::vector<std::vector<std::uint8_t>>& user_bits) const;

  const McCdmaParams& params() const { return params_; }

 private:
  McCdmaParams params_;
  std::unique_ptr<Modulator> modulator_;
  Spreader spreader_;
  OfdmModulator ofdm_;
  std::vector<dsp::Prbs> sources_;  ///< one PRBS per user
  bool fixed_point_ = false;
};

}  // namespace pdr::mccdma
