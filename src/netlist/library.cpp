#include "netlist/library.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::netlist {

int clog2(int n) {
  PDR_CHECK(n >= 1, "clog2", "argument must be >= 1");
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

Netlist make_register(int width) {
  PDR_CHECK(width > 0, "make_register", "width must be positive");
  Netlist n(strprintf("reg%d", width));
  n.add_port("d", width, PortDir::In).add_port("q", width, PortDir::Out);
  n.add(PrimitiveKind::FlipFlop, width);
  return n;
}

Netlist make_counter(int width) {
  PDR_CHECK(width > 0, "make_counter", "width must be positive");
  Netlist n(strprintf("counter%d", width));
  n.add_port("en", 1, PortDir::In).add_port("q", width, PortDir::Out);
  n.add(PrimitiveKind::Lut4, width).add(PrimitiveKind::FlipFlop, width);
  return n;
}

Netlist make_adder(int width) {
  PDR_CHECK(width > 0, "make_adder", "width must be positive");
  Netlist n(strprintf("add%d", width));
  n.add_port("a", width, PortDir::In).add_port("b", width, PortDir::In).add_port("s", width, PortDir::Out);
  n.add(PrimitiveKind::Lut4, width);
  return n;
}

Netlist make_comparator(int width) {
  PDR_CHECK(width > 0, "make_comparator", "width must be positive");
  Netlist n(strprintf("cmp%d", width));
  n.add_port("a", width, PortDir::In).add_port("b", width, PortDir::In).add_port("eq", 1, PortDir::Out);
  n.add(PrimitiveKind::Lut4, (width + 1) / 2);
  return n;
}

Netlist make_mux(int width, int ways) {
  PDR_CHECK(width > 0 && ways >= 2, "make_mux", "need positive width and >= 2 ways");
  Netlist n(strprintf("mux%dx%d", ways, width));
  for (int i = 0; i < ways; ++i) n.add_port(strprintf("in%d", i), width, PortDir::In);
  n.add_port("sel", clog2(ways), PortDir::In).add_port("out", width, PortDir::Out);
  n.add(PrimitiveKind::Lut4, width * (ways - 1));
  return n;
}

Netlist make_shift_register(int width, int depth) {
  PDR_CHECK(width > 0 && depth > 0, "make_shift_register", "width and depth must be positive");
  Netlist n(strprintf("srl%dx%d", width, depth));
  n.add_port("d", width, PortDir::In).add_port("q", width, PortDir::Out);
  n.add(PrimitiveKind::Lut4, width * ((depth + 15) / 16));
  return n;
}

Netlist make_rom(int depth, int width) {
  PDR_CHECK(depth > 0 && width > 0, "make_rom", "depth and width must be positive");
  Netlist n(strprintf("rom%dx%d", depth, width));
  n.add_port("addr", clog2(depth), PortDir::In).add_port("data", width, PortDir::Out);
  if (depth <= 64) {
    // LUT ROM: a 4-input LUT stores 16 bits.
    n.add(PrimitiveKind::Lut4, width * ((depth + 15) / 16));
  } else {
    const int bits = depth * width;
    n.add(PrimitiveKind::Bram18, (bits + 18431) / 18432);
  }
  return n;
}

Netlist make_multiplier(int width) {
  PDR_CHECK(width > 0, "make_multiplier", "width must be positive");
  Netlist n(strprintf("mult%d", width));
  n.add_port("a", width, PortDir::In).add_port("b", width, PortDir::In);
  n.add_port("p", 2 * width, PortDir::Out);
  const int blocks_per_dim = (width + 17) / 18;
  n.add(PrimitiveKind::Mult18, blocks_per_dim * blocks_per_dim);
  if (blocks_per_dim > 1) n.add(PrimitiveKind::Lut4, 2 * width);  // partial-product adders
  return n;
}

Netlist make_fsm(int states, int inputs, int outputs) {
  PDR_CHECK(states >= 2, "make_fsm", "an FSM needs at least 2 states");
  PDR_CHECK(inputs >= 0 && outputs >= 0, "make_fsm", "negative port counts");
  Netlist n(strprintf("fsm_s%d_i%d_o%d", states, inputs, outputs));
  if (inputs > 0) n.add_port("in", inputs, PortDir::In);
  if (outputs > 0) n.add_port("out", outputs, PortDir::Out);
  n.add(PrimitiveKind::FlipFlop, clog2(states));
  n.add(PrimitiveKind::Lut4, outputs + states / 2 + inputs + clog2(states));
  return n;
}

Netlist make_fifo(int depth, int width) {
  PDR_CHECK(depth >= 2 && width > 0, "make_fifo", "need depth >= 2 and positive width");
  Netlist n(strprintf("fifo%dx%d", depth, width));
  n.add_port("din", width, PortDir::In).add_port("wr", 1, PortDir::In);
  n.add_port("dout", width, PortDir::Out).add_port("rd", 1, PortDir::In);
  n.add_port("empty", 1, PortDir::Out).add_port("full", 1, PortDir::Out);
  const int ptr = clog2(depth);
  n.instantiate(make_counter(ptr), 2);
  n.instantiate(make_comparator(ptr), 2);
  if (depth * width > 1024) {
    n.add(PrimitiveKind::Bram18, (depth * width + 18431) / 18432);
  } else {
    n.add(PrimitiveKind::Lut4, width * ((depth + 15) / 16));  // SRL16-based
  }
  return n;
}

Netlist make_ping_pong_buffer(int depth, int width) {
  PDR_CHECK(depth >= 2 && width > 0, "make_ping_pong_buffer", "need depth >= 2 and positive width");
  Netlist n(strprintf("pingpong%dx%d", depth, width));
  n.add_port("din", width, PortDir::In).add_port("dout", width, PortDir::Out);
  n.add_port("phase", 1, PortDir::In);
  const int bits = depth * width;
  n.add(PrimitiveKind::Bram18, 2 * ((bits + 18431) / 18432));
  n.instantiate(make_counter(clog2(depth)), 2);
  n.instantiate(make_fsm(4, 2, 3), 1);  // read/write phase control (paper §5)
  return n;
}

}  // namespace pdr::netlist
