// RTL building-block library.
//
// Synthesis elaborates operators into compositions of these blocks. Each
// builder returns a Netlist whose primitive counts follow standard
// Virtex-II technology-mapping rules (SRL16 shift registers, carry-chain
// adders, 18-kbit block RAM, MULT18X18 multipliers), so module resource
// totals — the numbers Table 1 compares — come out at realistic
// magnitudes rather than arbitrary constants.
#pragma once

#include "netlist/netlist.hpp"

namespace pdr::netlist {

/// w-bit register: w flip-flops.
Netlist make_register(int width);

/// w-bit binary counter: w LUTs + w FFs.
Netlist make_counter(int width);

/// w-bit ripple/carry adder: w LUTs (carry chain is free on Virtex-II).
Netlist make_adder(int width);

/// w-bit equality/magnitude comparator: ceil(w/2) LUTs.
Netlist make_comparator(int width);

/// n-to-1 multiplexer of w-bit buses: w * (n-1) LUTs (2:1 tree).
Netlist make_mux(int width, int ways);

/// w-bit x depth shift register mapped to SRL16s: w * ceil(depth/16) LUTs.
Netlist make_shift_register(int width, int depth);

/// ROM of `depth` x `width` bits: LUT-ROM when depth <= 64, otherwise
/// BRAM18s (ceil(depth*width / 18432)).
Netlist make_rom(int depth, int width);

/// Signed multiplier: MULT18X18s (1 for w <= 18, 4 for w <= 35, ...).
Netlist make_multiplier(int width);

/// Moore FSM with `states` states, `inputs` input bits, `outputs` output
/// bits: ceil(log2 states) FFs, (outputs + states/2 + inputs) LUTs.
Netlist make_fsm(int states, int inputs, int outputs);

/// Synchronous FIFO depth x width: BRAM storage + 2 counters + comparator.
Netlist make_fifo(int depth, int width);

/// Dual-port buffer bank used by the generated designs' alternating
/// read/write buffer phases (paper §5): BRAM + phase FSM.
Netlist make_ping_pong_buffer(int depth, int width);

/// ceil(log2(n)) for n >= 1.
int clog2(int n);

}  // namespace pdr::netlist
