#include "netlist/netlist.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::netlist {

const char* primitive_name(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::Lut4: return "LUT4";
    case PrimitiveKind::FlipFlop: return "FF";
    case PrimitiveKind::Bram18: return "BRAM18";
    case PrimitiveKind::Mult18: return "MULT18";
    case PrimitiveKind::Tbuf: return "TBUF";
    case PrimitiveKind::Iob: return "IOB";
  }
  return "?";
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {
  PDR_CHECK(!name_.empty(), "Netlist", "module name must not be empty");
}

Netlist& Netlist::add_port(std::string name, int width, PortDir dir) {
  PDR_CHECK(width > 0, "Netlist::add_port", "port width must be positive");
  for (const auto& p : ports_)
    PDR_CHECK(p.name != name, "Netlist::add_port", "duplicate port '" + name + "'");
  ports_.push_back(Port{std::move(name), width, dir});
  return *this;
}

int Netlist::input_bits() const {
  int bits = 0;
  for (const auto& p : ports_)
    if (p.dir == PortDir::In) bits += p.width;
  return bits;
}

int Netlist::output_bits() const {
  int bits = 0;
  for (const auto& p : ports_)
    if (p.dir == PortDir::Out) bits += p.width;
  return bits;
}

Netlist& Netlist::add(PrimitiveKind kind, int n) {
  PDR_CHECK(n >= 0, "Netlist::add", "negative primitive count");
  counts_[kind] += n;
  return *this;
}

int Netlist::count(PrimitiveKind kind) const {
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

Netlist& Netlist::instantiate(const Netlist& sub, int times) {
  PDR_CHECK(times >= 0, "Netlist::instantiate", "negative instance count");
  for (const auto& [kind, n] : sub.counts_) counts_[kind] += n * times;
  submodules_.emplace_back(sub.name(), times);
  return *this;
}

int Netlist::total_primitives() const {
  int total = 0;
  for (const auto& [kind, n] : counts_) total += n;
  return total;
}

std::uint64_t Netlist::content_hash() const {
  // FNV-1a over name, counts and ports.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (char c : name_) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  for (const auto& [kind, n] : counts_) {
    mix(static_cast<std::uint64_t>(kind));
    mix(static_cast<std::uint64_t>(n));
  }
  for (const auto& p : ports_) {
    for (char c : p.name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    mix(static_cast<std::uint64_t>(p.width));
    mix(static_cast<std::uint64_t>(p.dir));
  }
  return h;
}

std::string Netlist::report() const {
  std::string out = "module " + name_ + "\n";
  for (const auto& p : ports_)
    out += strprintf("  port %-16s %3d bits %s\n", p.name.c_str(), p.width,
                     p.dir == PortDir::In ? "in" : "out");
  for (const auto& [kind, n] : counts_)
    out += strprintf("  %-8s x %d\n", primitive_name(kind), n);
  for (const auto& [sub, times] : submodules_)
    out += strprintf("  uses %s x %d\n", sub.c_str(), times);
  return out;
}

}  // namespace pdr::netlist
