// Post-synthesis netlist model.
//
// The Modular Design flow synthesizes the static part and each dynamic
// module to separate netlists (paper §5). We model a netlist at the
// granularity the evaluation needs: aggregate primitive counts (4-input
// LUTs, flip-flops, BRAMs, MULT18s, TBUFs) plus the port list, with
// submodule provenance retained for reporting. Table 1 is resource
// arithmetic over exactly these counts; instance-level connectivity would
// not change any measured number, so we deliberately do not carry nets.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pdr::netlist {

enum class PrimitiveKind : std::uint8_t { Lut4, FlipFlop, Bram18, Mult18, Tbuf, Iob };

const char* primitive_name(PrimitiveKind kind);

enum class PortDir : std::uint8_t { In, Out };

/// One named port of a module.
struct Port {
  std::string name;
  int width = 1;
  PortDir dir = PortDir::In;
};

class Netlist {
 public:
  explicit Netlist(std::string name);

  const std::string& name() const { return name_; }

  // --- Ports -------------------------------------------------------------
  Netlist& add_port(std::string name, int width, PortDir dir);
  const std::vector<Port>& ports() const { return ports_; }
  /// Total input (resp. output) signal bits; drives bus-macro planning.
  int input_bits() const;
  int output_bits() const;

  // --- Primitives ----------------------------------------------------------
  Netlist& add(PrimitiveKind kind, int n = 1);
  int count(PrimitiveKind kind) const;

  /// Adds `times` copies of `sub`'s primitives (ports are NOT inherited;
  /// submodule connectivity is internal). Provenance is recorded for
  /// report().
  Netlist& instantiate(const Netlist& sub, int times = 1);

  /// Sum of all primitive counts.
  int total_primitives() const;

  /// Deterministic hash of name + counts + ports. The bitstream generator
  /// derives the synthetic frame payload from this, so two different
  /// netlists yield different configuration data (and identical netlists
  /// yield identical bitstreams).
  std::uint64_t content_hash() const;

  /// Multi-line human-readable resource report.
  std::string report() const;

  const std::vector<std::pair<std::string, int>>& submodules() const { return submodules_; }

 private:
  std::string name_;
  std::vector<Port> ports_;
  std::map<PrimitiveKind, int> counts_;
  std::vector<std::pair<std::string, int>> submodules_;
};

}  // namespace pdr::netlist
