#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::obs {

void Counter::add(double delta) {
  PDR_CHECK(delta >= 0.0, "Counter::add", "counters only increase");
  value_ += delta;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PDR_CHECK(!bounds_.empty(), "Histogram", "need at least one bucket bound");
  PDR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()), "Histogram",
            "bucket bounds must be ascending");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Histogram::quantile(double q) const {
  PDR_CHECK(q >= 0.0 && q <= 1.0, "Histogram::quantile", "q outside [0,1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b == bounds_.size()) return max_;  // overflow bucket
    const double lo = b == 0 ? std::min(min_, bounds_[0]) : bounds_[b - 1];
    const double hi = bounds_[b];
    const double frac =
        (target - static_cast<double>(before)) / static_cast<double>(buckets_[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  PDR_CHECK(bounds_ == other.bounds_, "Histogram::merge_from", "bucket bounds differ");
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<double> exponential_buckets(double start, double factor, int count) {
  PDR_CHECK(start > 0.0 && factor > 1.0 && count > 0, "exponential_buckets",
            "need start > 0, factor > 1, count > 0");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> latency_buckets_ns() {
  // 1 us doubling up to ~17 s: covers port transfers through cold loads.
  return exponential_buckets(1e3, 2.0, 25);
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  PDR_CHECK(!name.empty(), "MetricsRegistry::counter", "empty metric name");
  Entry& e = entries_[name];
  PDR_CHECK(!e.gauge && !e.histogram, "MetricsRegistry::counter",
            "'" + name + "' is already registered as another kind");
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
    e.help = help;
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  PDR_CHECK(!name.empty(), "MetricsRegistry::gauge", "empty metric name");
  Entry& e = entries_[name];
  PDR_CHECK(!e.counter && !e.histogram, "MetricsRegistry::gauge",
            "'" + name + "' is already registered as another kind");
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
    e.help = help;
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help) {
  PDR_CHECK(!name.empty(), "MetricsRegistry::histogram", "empty metric name");
  Entry& e = entries_[name];
  PDR_CHECK(!e.counter && !e.gauge, "MetricsRegistry::histogram",
            "'" + name + "' is already registered as another kind");
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.help = help;
  }
  return *e.histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, e] : other.entries_) {
    if (e.counter) {
      counter(name, e.help).add(e.counter->value());
    } else if (e.gauge) {
      gauge(name, e.help).set(e.gauge->value());
    } else if (e.histogram) {
      histogram(name, e.histogram->bounds(), e.help).merge_from(*e.histogram);
    }
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ',';
    first = false;
    out += strprintf("\"%s\":", name.c_str());
    if (e.counter) {
      out += strprintf("{\"type\":\"counter\",\"value\":%g}", e.counter->value());
    } else if (e.gauge) {
      out += strprintf("{\"type\":\"gauge\",\"value\":%g}", e.gauge->value());
    } else {
      const Histogram& h = *e.histogram;
      out += strprintf("{\"type\":\"histogram\",\"count\":%llu,\"sum\":%g,\"min\":%g,"
                       "\"max\":%g,\"mean\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g,\"buckets\":[",
                       static_cast<unsigned long long>(h.count()), h.sum(), h.min(), h.max(),
                       h.mean(), h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
      for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
        if (b > 0) out += ',';
        const double edge =
            b < h.bounds().size() ? h.bounds()[b] : -1.0;  // -1 marks the +inf bucket
        out += strprintf("{\"le\":%g,\"count\":%llu}", edge,
                         static_cast<unsigned long long>(h.bucket_counts()[b]));
      }
      out += "]}";
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::to_text() const {
  std::string out;
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) out += strprintf("# HELP %s %s\n", name.c_str(), e.help.c_str());
    if (e.counter) {
      out += strprintf("# TYPE %s counter\n%s %g\n", name.c_str(), name.c_str(),
                       e.counter->value());
    } else if (e.gauge) {
      out += strprintf("# TYPE %s gauge\n%s %g\n", name.c_str(), name.c_str(), e.gauge->value());
    } else {
      const Histogram& h = *e.histogram;
      out += strprintf("# TYPE %s histogram\n", name.c_str());
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
        cumulative += h.bucket_counts()[b];
        if (b < h.bounds().size())
          out += strprintf("%s_bucket{le=\"%g\"} %llu\n", name.c_str(), h.bounds()[b],
                           static_cast<unsigned long long>(cumulative));
        else
          out += strprintf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                           static_cast<unsigned long long>(cumulative));
      }
      out += strprintf("%s_sum %g\n%s_count %llu\n", name.c_str(), h.sum(), name.c_str(),
                       static_cast<unsigned long long>(h.count()));
    }
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PDR_CHECK(out.good(), "MetricsRegistry::write_json", "cannot open '" + path + "'");
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  PDR_CHECK(out.good(), "MetricsRegistry::write_json", "write to '" + path + "' failed");
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace pdr::obs
