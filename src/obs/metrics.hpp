// Metrics registry: counters, gauges and histograms by name.
//
// The aggregate structs scattered through the runtime (ManagerStats and
// friends) answer "how many, in total"; the registry adds distributions —
// stall-time and load-latency histograms — and a uniform export path
// (JSON for machines, a Prometheus-style text page for eyeballs), so the
// BER/ablation benches can report percentiles instead of only means.
//
// Instruments are owned by the registry and handed out as stable
// references: look one up once, then update it with no further map
// traffic. Names are dotted paths ("rtr.manager.requests"); exports sort
// by name so diffs between runs line up.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pdr::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void add(double delta = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges;
/// an implicit +inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

  /// Quantile estimate (q in [0,1]), linearly interpolated inside the
  /// containing bucket; the overflow bucket reports the observed max.
  double quantile(double q) const;

  /// Adds `other`'s observations to this histogram. Throws pdr::Error if
  /// the bucket bounds differ.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `count` buckets at start, start*factor, start*factor^2, ...
std::vector<double> exponential_buckets(double start, double factor, int count);

/// Default bucket edges for nanosecond latencies: 1 us .. ~17 s.
std::vector<double> latency_buckets_ns();

class MetricsRegistry {
 public:
  /// Returns the instrument registered under `name`, creating it on first
  /// use. Throws pdr::Error if `name` is already registered as a
  /// different instrument kind.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` are only consulted on first registration.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  bool contains(const std::string& name) const { return entries_.count(name) > 0; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// Folds `other` into this registry: counters add, gauges take
  /// `other`'s value (last merge wins), histograms merge bucket counts.
  /// Merging the same sequence of registries in the same order always
  /// produces an identical registry — the determinism the parallel
  /// scenario runner relies on. Throws pdr::Error on instrument-kind or
  /// histogram-bound mismatches.
  void merge(const MetricsRegistry& other);

  /// {"name": {"type": ..., "value"/"count"/"sum"/...}, ...}
  std::string to_json() const;

  /// Prometheus-exposition-flavoured text (one instrument per stanza).
  std::string to_text() const;

  /// Writes to_json() to `path`; throws pdr::Error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Entry> entries_;
};

/// Process-wide default registry for call sites without an explicit one.
MetricsRegistry& global_metrics();

}  // namespace pdr::obs
