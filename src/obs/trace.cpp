#include "obs/trace.hpp"

#include <fstream>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::obs {

void Tracer::span(std::string track, std::string name, std::string category, TimeNs start,
                  TimeNs end, std::vector<TraceArg> args) {
  PDR_CHECK(end >= start, "Tracer::span", "span '" + name + "' ends before it starts");
  TraceEvent ev;
  ev.phase = TracePhase::Complete;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts = start;
  ev.dur = end - start;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string track, std::string name, std::string category, TimeNs at,
                     std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.phase = TracePhase::Instant;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts = at;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::counter(std::string track, std::string name, TimeNs at, double value) {
  TraceEvent ev;
  ev.phase = TracePhase::Counter;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.category = "counter";
  ev.ts = at;
  ev.value = value;
  events_.push_back(std::move(ev));
}

void Tracer::append(const Tracer& other, const std::string& track_prefix) {
  events_.reserve(events_.size() + other.events_.size());
  for (const TraceEvent& ev : other.events_) {
    TraceEvent copy = ev;
    copy.track = track_prefix + copy.track;
    events_.push_back(std::move(copy));
  }
}

TimeNs Tracer::total_duration(const std::string& category) const {
  TimeNs total = 0;
  for (const auto& ev : events_)
    if (ev.phase == TracePhase::Complete && ev.category == category) total += ev.dur;
  return total;
}

std::size_t Tracer::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& ev : events_)
    if (ev.category == category) ++n;
  return n;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += strprintf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out += c;
    }
  }
  return out;
}

std::string Tracer::to_chrome_json() const {
  // Stable track -> tid mapping in order of first appearance; tid 0 is
  // reserved for events without a track.
  std::map<std::string, int> tids;
  for (const auto& ev : events_)
    if (!tids.count(ev.track)) tids.emplace(ev.track, static_cast<int>(tids.size()) + 1);

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& piece) {
    if (!first) out += ',';
    first = false;
    out += piece;
  };

  for (const auto& [track, tid] : tids)
    append(strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
        tid, json_escape(track).c_str()));

  for (const auto& ev : events_) {
    const int tid = ev.track.empty() ? 0 : tids.at(ev.track);
    // Chrome trace timestamps are microseconds; emit 3 decimals to keep
    // the nanosecond resolution of TimeNs.
    std::string piece = strprintf("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,"
                                  "\"tid\":%d,\"ts\":%.3f",
                                  json_escape(ev.name).c_str(), json_escape(ev.category).c_str(),
                                  static_cast<char>(ev.phase), tid, to_us(ev.ts));
    if (ev.phase == TracePhase::Complete) piece += strprintf(",\"dur\":%.3f", to_us(ev.dur));
    if (ev.phase == TracePhase::Instant) piece += ",\"s\":\"t\"";
    if (ev.phase == TracePhase::Counter) {
      piece += strprintf(",\"args\":{\"value\":%g}", ev.value);
    } else if (!ev.args.empty()) {
      piece += ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) piece += ',';
        piece += strprintf("\"%s\":\"%s\"", json_escape(ev.args[i].key).c_str(),
                           json_escape(ev.args[i].value).c_str());
      }
      piece += '}';
    }
    piece += '}';
    append(piece);
  }
  out += "]}";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PDR_CHECK(out.good(), "Tracer::write_chrome_json", "cannot open '" + path + "'");
  const std::string json = to_chrome_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  PDR_CHECK(out.good(), "Tracer::write_chrome_json", "write to '" + path + "' failed");
}

Tracer& global_tracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace pdr::obs
