// Span/event tracer: the process-wide timeline substrate.
//
// Every runtime layer (reconfiguration manager, event simulator, design
// flow, adequation) records named, tagged intervals here instead of
// keeping private ad-hoc logs. Timestamps are explicit — simulated
// nanoseconds from the manager and simulator, wall-clock nanoseconds from
// the flow — so one tracer composes both worlds; use separate tracks to
// keep them apart.
//
// The export format is Chrome trace-event JSON (the `chrome://tracing` /
// Perfetto "JSON Array Format"): open the file in https://ui.perfetto.dev
// or chrome://tracing and the MC-CDMA prefetch-hit timeline from the
// paper's case study becomes directly inspectable — staging spans on one
// track, port loads on another.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace pdr::obs {

/// One "key=value" annotation attached to an event (rendered in the
/// viewer's argument pane).
struct TraceArg {
  std::string key;
  std::string value;
};

/// Chrome trace-event phases we emit. Complete spans carry a duration;
/// instants mark a point; counters plot a value over time.
enum class TracePhase : char { Complete = 'X', Instant = 'i', Counter = 'C' };

struct TraceEvent {
  TracePhase phase = TracePhase::Complete;
  std::string track;     ///< rendered as a named thread lane
  std::string name;
  std::string category;  ///< comma-free tag, filterable in the viewer
  TimeNs ts = 0;
  TimeNs dur = 0;        ///< Complete spans only
  double value = 0.0;    ///< Counter events only
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  /// Records a [start, end] interval on `track`. Throws if end < start.
  void span(std::string track, std::string name, std::string category, TimeNs start, TimeNs end,
            std::vector<TraceArg> args = {});

  /// Records a point event.
  void instant(std::string track, std::string name, std::string category, TimeNs at,
               std::vector<TraceArg> args = {});

  /// Records a sampled value (rendered as a step plot).
  void counter(std::string track, std::string name, TimeNs at, double value);

  /// Appends every event of `other`, optionally namespacing its tracks
  /// under `track_prefix` ("scn0/" turns track "port" into "scn0/port").
  /// Appending the same tracers in the same order always yields the same
  /// event sequence — how the scenario runner merges per-scenario traces
  /// deterministically.
  void append(const Tracer& other, const std::string& track_prefix = "");

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Sum of Complete-span durations in `category`.
  TimeNs total_duration(const std::string& category) const;

  /// Number of events (any phase) in `category`.
  std::size_t count(const std::string& category) const;

  /// Serializes to Chrome trace-event JSON: an object with a
  /// "traceEvents" array plus thread_name metadata naming each track.
  /// Timestamps are microseconds (fractional, keeping ns resolution).
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; throws pdr::Error on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Process-wide default tracer for call sites without an explicit one.
Tracer& global_tracer();

}  // namespace pdr::obs
