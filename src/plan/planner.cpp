#include "plan/planner.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "fabric/config_port.hpp"
#include "lint/floorplan_rules.hpp"
#include "synth/elaborate.hpp"
#include "synth/map.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "verify/verify.hpp"

namespace pdr::plan {

namespace {

/// xorshift64: the deterministic move-order source. std::mt19937 would do,
/// but the exact stream is part of the planner's byte-stability contract
/// and this one is ours.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : static_cast<std::size_t>(next() % n); }
};

template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) std::swap(v[i - 1], v[rng.below(i)]);
}

/// Per-region demand derived from the algorithm graph: the worst variant
/// the region's duration entries can execute sizes the span, its port
/// widths size the bus macros.
struct RegionDemand {
  std::string name;  ///< operator name
  int worst_cols = fabric::kMinReconfigClbCols;
  int worst_slices = 0;
  int in_bits = 8;
  int out_bits = 8;
};

/// One candidate solution: a span per region, architecture order.
struct Span {
  int col_lo = 0;
  int width = fabric::kMinReconfigClbCols;
  int col_hi() const { return col_lo + width - 1; }
};

struct Evaluation {
  bool feasible = false;
  TimeNs makespan = 0;
  TimeNs reconfig_exposed = 0;
  Bytes total_payload = 0;
  std::vector<RegionPlacement> placements;
  std::vector<fabric::Region> fabric_regions;
  int free_cols = 0;
};

/// Strict objective order: schedule first, then exposure, then total
/// configuration payload (fewer frames = faster SEU scrubs and smaller
/// store), then the spans themselves as the deterministic tie-break.
bool better(const Evaluation& a, const Evaluation& b, const std::vector<Span>& sa,
            const std::vector<Span>& sb) {
  if (a.makespan != b.makespan) return a.makespan < b.makespan;
  if (a.reconfig_exposed != b.reconfig_exposed) return a.reconfig_exposed < b.reconfig_exposed;
  if (a.total_payload != b.total_payload) return a.total_payload < b.total_payload;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].width != sb[i].width) return sa[i].width < sb[i].width;
    if (sa[i].col_lo != sb[i].col_lo) return sa[i].col_lo < sb[i].col_lo;
  }
  return false;
}

/// Resource usage of one operator kind, empty on elaboration failure (the
/// project may name kinds the elaborator cannot build; lint already warns
/// about those with PDR017, the planner just sizes what it can).
std::optional<synth::ResourceUsage> usage_of(const std::string& kind, const synth::Params& params,
                                             bool wrap) {
  try {
    netlist::Netlist nl = synth::elaborate_operator(kind, params);
    if (wrap) nl = synth::wrap_executive(nl);
    return synth::map_netlist(nl);
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Dedup key for (kind, params) sizing work.
std::string variant_key(const std::string& kind, const synth::Params& params) {
  std::string key = kind;
  for (const auto& [k, v] : params) key += ";" + k + "=" + std::to_string(v);
  return key;
}

/// Port bit-widths of one variant kind for bus-macro sizing.
std::optional<std::pair<int, int>> port_bits_of(const std::string& kind,
                                                const synth::Params& params) {
  try {
    const netlist::Netlist nl = synth::wrap_executive(synth::elaborate_operator(kind, params));
    return std::make_pair(nl.input_bits(), nl.output_bits());
  } catch (const Error&) {
    return std::nullopt;
  }
}

class Planner {
 public:
  Planner(const aaa::Project& project, const PlanOptions& options)
      : project_(project),
        options_(options),
        adequation_(project.algorithm, project.architecture, project.durations),
        icap_(fabric::ConfigPort::default_timing(fabric::PortKind::Icap)) {
    collect_regions();
    collect_static_reserve();
  }

  const fabric::DeviceModel& device() const { return device_; }
  const std::vector<RegionDemand>& demands() const { return demands_; }
  int static_cols() const { return static_cols_; }

  /// Right-packed spans with the given widths, in architecture order:
  /// the last region hugs the right device edge, mirroring the paper's
  /// left-static / right-dynamic pipeline floorplans.
  std::vector<Span> pack_right(const std::vector<int>& widths) const {
    std::vector<Span> spans(widths.size());
    int next_hi = device_.clb_cols - 1;
    for (std::size_t i = widths.size(); i-- > 0;) {
      spans[i].width = widths[i];
      spans[i].col_lo = next_hi - widths[i] + 1;
      next_hi = spans[i].col_lo - 1;
    }
    return spans;
  }

  /// Builds + lints + prices + schedules one candidate. Infeasible
  /// candidates (fabric rejection, lint errors, missing static reserve)
  /// come back with feasible = false and are never scheduled.
  Evaluation evaluate(const std::vector<Span>& spans) {
    Evaluation ev;
    fabric::Floorplan plan(device_);
    try {
      for (std::size_t i = 0; i < spans.size(); ++i)
        plan.add_region(demands_[i].name, spans[i].col_lo, spans[i].col_hi(), true,
                        demands_[i].in_bits, demands_[i].out_bits);
    } catch (const Error&) {
      return ev;  // overlap, out of bounds, edge bus macro, too narrow
    }
    // The PDR020–025 family is the feasibility oracle proper: anything the
    // fabric accepted must also lint clean before it is worth scheduling.
    if (lint::check_floorplan(plan).errors() != 0) return ev;
    ev.free_cols = static_cast<int>(plan.free_columns().size());
    if (options_.reserve_static && ev.free_cols < static_cols_) return ev;

    std::map<std::string, TimeNs> load_ns;
    ev.placements.resize(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      RegionPlacement& p = ev.placements[i];
      p.name = demands_[i].name;
      p.col_lo = spans[i].col_lo;
      p.col_hi = spans[i].col_hi();
      p.width = fabric::ClbCols{spans[i].width};
      p.worst_variant_cols = demands_[i].worst_cols;
      p.worst_variant_slices = demands_[i].worst_slices;
      p.in_bits = demands_[i].in_bits;
      p.out_bits = demands_[i].out_bits;
      p.payload_bytes = plan.region_payload_bytes(p.name);
      p.load_ns = price(p.payload_bytes);
      ev.total_payload += p.payload_bytes;
      load_ns[p.name] = p.load_ns;
    }

    adequation_.set_reconfig_cost(
        [load_ns](const std::string& region, const std::string&) -> TimeNs {
          const auto it = load_ns.find(region);
          return it != load_ns.end() ? it->second : TimeNs{4'000'000};
        });
    try {
      const aaa::Schedule schedule = adequation_.run(options_.schedule_options);
      ev.makespan = schedule.makespan;
      ev.reconfig_exposed = schedule.reconfig_exposed;
    } catch (const Error&) {
      return ev;  // no feasible operator under this pricing
    }
    ++evaluated_;
    ev.fabric_regions = plan.regions();
    ev.feasible = true;
    return ev;
  }

  /// Width -> frames -> reconfiguration duration, the same
  /// max(store-fetch, port-stream) + manager-overhead chain
  /// mccdma::case_study_reconfig_cost prices real bitstreams with.
  TimeNs price(Bytes payload) const {
    const TimeNs fetch = options_.store_latency_ns +
                         transfer_time_ns(payload, options_.store_bandwidth_bytes_per_s);
    const double port_bps = icap_.clock_hz * icap_.width_bits / 8.0;
    const TimeNs port = icap_.setup_overhead + transfer_time_ns(payload, port_bps);
    return std::max(fetch, port) + options_.manager_overhead_ns;
  }

  PlanResult finish(const std::vector<Span>& spans, Evaluation ev, int rounds) {
    PDR_CHECK(ev.feasible, "plan_floorplan",
              strprintf("no feasible floorplan: %zu region(s) plus %d static column(s) do not "
                        "fit the %d-column %s",
                        demands_.size(), static_cols_, device_.clb_cols, device_.name.c_str()));
    PlanResult result;
    result.device = device_;
    result.regions = std::move(ev.placements);
    result.fabric_regions = std::move(ev.fabric_regions);
    result.static_cols_reserved = options_.reserve_static ? static_cols_ : 0;
    result.free_cols = ev.free_cols;
    result.makespan = ev.makespan;
    result.reconfig_exposed = ev.reconfig_exposed;
    result.rounds = rounds;
    result.evaluated = evaluated_;
    result.lint = lint::check_floorplan(device_, result.fabric_regions);

    // pdr::verify certifies the schedule the plan was optimized for.
    adequation_.set_reconfig_cost(
        [table = result.region_load_ns()](const std::string& region, const std::string&) {
          const auto it = table.find(region);
          return it != table.end() ? it->second : TimeNs{4'000'000};
        });
    const aaa::Schedule schedule = adequation_.run(options_.schedule_options);
    const verify::Certificate cert = verify::verify_schedule(
        schedule, project_.algorithm, project_.architecture,
        verify::VerifyOptions{nullptr, options_.schedule_options.preloaded});
    result.certified = cert.certified();
    result.certificate_error = cert.first_error();
    (void)spans;
    return result;
  }

  int evaluated_ = 0;

 private:
  void collect_regions() {
    const auto& arch = project_.architecture;
    std::string device_name;
    for (aaa::NodeId n : arch.operators_of_kind(aaa::OperatorKind::FpgaRegion)) {
      const aaa::OperatorNode& op = arch.op(n);
      if (!op.device.empty()) {
        PDR_CHECK(device_name.empty() || device_name == op.device, "plan_floorplan",
                  "region operators span devices '" + device_name + "' and '" + op.device +
                      "'; one floorplan covers one device");
        device_name = op.device;
      }
      RegionDemand d;
      d.name = op.name;
      size_demand(op, d);
      demands_.push_back(std::move(d));
    }
    PDR_CHECK(!demands_.empty(), "plan_floorplan",
              "the architecture has no fpga_region operator; nothing to place");
    device_ = fabric::device_by_name(device_name.empty() ? "XC2V2000" : device_name);
  }

  /// Sizes a region from the worst (widest) variant its duration entries
  /// can execute, in CLB columns on the target device.
  void size_demand(const aaa::OperatorNode& op, RegionDemand& d) {
    const fabric::DeviceModel sizing_device =
        fabric::device_by_name(op.device.empty() ? "XC2V2000" : op.device);
    std::set<std::string> seen;
    const auto consider = [&](const std::string& kind, const synth::Params& params) {
      if (!project_.durations.supports(kind, op)) return;
      if (!seen.insert(variant_key(kind, params)).second) return;
      if (const auto usage = usage_of(kind, params, /*wrap=*/true)) {
        d.worst_cols = std::max(d.worst_cols, synth::columns_needed(*usage, sizing_device));
        d.worst_slices = std::max(d.worst_slices, usage->slices);
      }
      if (const auto bits = port_bits_of(kind, params)) {
        d.in_bits = std::max(d.in_bits, bits->first);
        d.out_bits = std::max(d.out_bits, bits->second);
      }
    };
    project_.algorithm.digraph().for_each_live_node(
        [&](graph::NodeId, const aaa::Operation& node) {
          for (const auto& alt : node.alternatives) consider(alt.kind, alt.params);
          if (!node.conditioned()) consider(node.kind, node.params);
        });
  }

  /// Columns the static area needs: every distinct kind an FpgaStatic
  /// operator can execute stays resident for the whole run.
  void collect_static_reserve() {
    const auto& arch = project_.architecture;
    std::set<std::string> kinds;
    for (aaa::NodeId n : arch.operators_of_kind(aaa::OperatorKind::FpgaStatic)) {
      const aaa::OperatorNode& op = arch.op(n);
      project_.algorithm.digraph().for_each_live_node(
          [&](graph::NodeId, const aaa::Operation& node) {
            const auto consider = [&](const std::string& kind, const synth::Params& params) {
              if (!project_.durations.supports(kind, op)) return;
              if (!kinds.insert(kind).second) return;
              if (const auto usage = usage_of(kind, params, /*wrap=*/false))
                static_cols_ += synth::columns_needed(*usage, device_);
            };
            for (const auto& alt : node.alternatives) consider(alt.kind, alt.params);
            if (!node.conditioned()) consider(node.kind, node.params);
          });
    }
  }

  const aaa::Project& project_;
  const PlanOptions& options_;
  aaa::Adequation adequation_;
  fabric::PortTiming icap_;
  fabric::DeviceModel device_;
  std::vector<RegionDemand> demands_;
  int static_cols_ = 0;
};

/// The candidate moves of the local search, one region at a time.
enum class Move : std::uint8_t { Widen, Narrow, ShiftLeft, ShiftRight };

std::vector<Span> apply_move(const std::vector<Span>& spans, std::size_t region, Move move) {
  std::vector<Span> next = spans;
  Span& s = next[region];
  switch (move) {
    case Move::Widen: s.width += 1; s.col_lo -= 1; break;  // grow into the static side
    case Move::Narrow: s.width -= 1; s.col_lo += 1; break;
    case Move::ShiftLeft: s.col_lo -= 1; break;
    case Move::ShiftRight: s.col_lo += 1; break;
  }
  return next;
}

}  // namespace

std::map<std::string, TimeNs> PlanResult::region_load_ns() const {
  std::map<std::string, TimeNs> out;
  for (const auto& r : regions) out[r.name] = r.load_ns;
  return out;
}

std::string PlanResult::constraints_fragment() const {
  std::string out;
  for (const auto& r : regions) {
    out += "region " + r.name + " {\n";
    out += strprintf("  width %d          # planned: cols [%d, %d], %d slice-columns, %.3f ms "
                     "load\n",
                     r.width.value, r.col_lo, r.col_hi,
                     fabric::to_slice_cols(r.width).value,
                     static_cast<double>(r.load_ns) / 1e6);
    out += "}\n";
  }
  return out;
}

std::string PlanResult::to_string() const {
  fabric::Floorplan plan(device);
  for (const auto& r : fabric_regions)
    plan.add_region(r.name, r.col_lo, r.col_hi, r.reconfigurable);
  std::string out = "floorplan (" + device.name + ", " + std::to_string(device.clb_cols) +
                    " CLB columns, " + std::to_string(static_cols_reserved) +
                    " reserved for statics):\n";
  out += plan.render();
  for (const auto& r : regions)
    out += strprintf(
        "  %s: cols [%d, %d] (%d CLB cols = %d slice-cols, worst variant %d), %llu payload "
        "bytes, load %.3f ms\n",
        r.name.c_str(), r.col_lo, r.col_hi, r.width.value, fabric::to_slice_cols(r.width).value,
        r.worst_variant_cols, static_cast<unsigned long long>(r.payload_bytes),
        static_cast<double>(r.load_ns) / 1e6);
  out += strprintf("  makespan %.3f ms, reconfig exposed %.3f ms (%d rounds, %d schedules)\n",
                   static_cast<double>(makespan) / 1e6,
                   static_cast<double>(reconfig_exposed) / 1e6, rounds, evaluated);
  out += lint.errors() == 0 ? "  lint: PDR020-025 clean\n"
                            : "  lint: " + std::to_string(lint.errors()) + " error(s)\n";
  out += certified ? "  verify: certified race-free\n"
                   : "  verify: REJECTED: " + certificate_error + "\n";
  return out;
}

PlanResult plan_floorplan(const aaa::Project& project, const PlanOptions& options) {
  Planner planner(project, options);

  // Start from the worst-variant widths (plus margin), packed right.
  std::vector<int> widths;
  for (const auto& d : planner.demands())
    widths.push_back(std::max(d.worst_cols + options.margin_cols, fabric::kMinReconfigClbCols));
  std::vector<Span> best_spans = planner.pack_right(widths);
  Evaluation best = planner.evaluate(best_spans);

  // First-improvement hill climb over {widen, narrow, shift} moves in a
  // seeded order. Serial by construction — the determinism contract is
  // "same seed, same plan" at any --jobs.
  Rng rng(options.seed);
  int rounds = 0;
  while (rounds < options.max_rounds) {
    ++rounds;
    std::vector<std::pair<std::size_t, Move>> moves;
    for (std::size_t i = 0; i < best_spans.size(); ++i)
      for (const Move m : {Move::Widen, Move::Narrow, Move::ShiftLeft, Move::ShiftRight})
        moves.emplace_back(i, m);
    shuffle(moves, rng);
    bool improved = false;
    for (const auto& [region, move] : moves) {
      const std::vector<Span> next = apply_move(best_spans, region, move);
      const RegionDemand& d = planner.demands()[region];
      if (next[region].width <
          std::max(d.worst_cols, fabric::kMinReconfigClbCols))
        continue;  // capacity floor (the PDR024 analog) before any pricing
      if (next[region].col_lo < 0 || next[region].col_hi() >= planner.device().clb_cols)
        continue;
      Evaluation ev = planner.evaluate(next);
      if (!ev.feasible) continue;
      if (!best.feasible || better(ev, best, next, best_spans)) {
        best_spans = next;
        best = std::move(ev);
        improved = true;
      }
    }
    if (!improved && best.feasible) break;
    if (!improved && !best.feasible)
      break;  // nothing reachable from an infeasible start; finish() throws
  }
  return planner.finish(best_spans, std::move(best), rounds);
}

PlanResult plan_fixed(const aaa::Project& project, const std::map<std::string, int>& width_cols,
                      const PlanOptions& options) {
  Planner planner(project, options);
  std::vector<int> widths;
  for (const auto& d : planner.demands()) {
    const auto it = width_cols.find(d.name);
    PDR_CHECK(it != width_cols.end(), "plan_fixed",
              "no width given for region operator '" + d.name + "'");
    widths.push_back(it->second);
  }
  const std::vector<Span> spans = planner.pack_right(widths);
  return planner.finish(spans, planner.evaluate(spans), 0);
}

std::vector<aaa::FloorplanChoice> floorplan_axis(const aaa::Project& project,
                                                 const PlanOptions& options,
                                                 std::size_t max_choices) {
  std::vector<aaa::FloorplanChoice> choices;
  if (max_choices == 0) return choices;
  const PlanResult best = plan_floorplan(project, options);
  choices.push_back(aaa::FloorplanChoice{"plan", best.region_load_ns()});

  // Alternates: every region uniformly widened by k columns, re-packed and
  // re-priced; infeasible widenings are skipped. These trade schedule time
  // for slack (bigger regions host bigger future variants), which is
  // exactly the kind of choice a Pareto front should expose.
  for (std::size_t k = 1; choices.size() < max_choices; ++k) {
    std::map<std::string, int> widths;
    for (const auto& r : best.regions) widths[r.name] = r.width.value + static_cast<int>(k);
    try {
      const PlanResult alt = plan_fixed(project, widths, options);
      choices.push_back(
          aaa::FloorplanChoice{strprintf("plan+%zuc", k), alt.region_load_ns()});
    } catch (const Error&) {
      break;  // ran out of device; wider still would fail too
    }
  }
  return choices;
}

}  // namespace pdr::plan
