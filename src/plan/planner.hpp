// pdr::plan — automatic slice-column floorplanner co-optimized with the
// adequation schedule.
//
// The paper's Modular Design flow (§5) hand-places each dynamic region as
// a full-height slice-column span; this module generates that placement
// automatically. Related PDR work (Chen et al., arXiv:1803.03748; Ding et
// al., arXiv:2212.05397) shows why placement cannot be a downstream step:
// region width decides frame count, frame count decides reconfiguration
// latency, and reconfiguration latency is exactly what the scheduler
// already optimizes around. The planner therefore closes the loop:
//
//   candidate span  ->  fabric::FrameMap frames  ->  per-region load time
//        ^                                                  |
//        +---------- seeded local search <---- adequation makespan
//
// Feasibility is delegated to the existing PDR020–025 lint rules
// (lint::check_floorplan) plus the fabric placement checks — the planner
// never invents its own legality model. The search is serial and seeded,
// so results are byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/explorer.hpp"
#include "aaa/project_io.hpp"
#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "lint/diagnostic.hpp"
#include "util/units.hpp"

namespace pdr::plan {

struct PlanOptions {
  std::uint64_t seed = 17;     ///< local-search move-order seed
  int max_rounds = 64;         ///< whole-neighborhood improvement sweeps
  int margin_cols = 0;         ///< extra CLB columns beyond the worst variant
  /// Bitstream store pricing, matching the paper's external-memory path
  /// (mccdma::case_study_reconfig_cost uses the same chain).
  double store_bandwidth_bytes_per_s = 16.7e6;
  TimeNs store_latency_ns = 10'000;
  TimeNs manager_overhead_ns = 500;
  /// Scheduling options the objective runs with (default SynDEx list
  /// scheduling + prefetch, the paper's production configuration).
  aaa::AdequationOptions schedule_options;
  /// Reserve static-area columns for every kind the FpgaStatic operators
  /// can execute (the paper's static part must stay resident).
  bool reserve_static = true;
};

/// Final placement of one dynamic region.
struct RegionPlacement {
  std::string name;  ///< FpgaRegion operator name (= reconfig-cost key)
  int col_lo = 0;
  int col_hi = 0;
  fabric::ClbCols width{0};
  int worst_variant_cols = 0;    ///< widest supported variant, CLB columns
  int worst_variant_slices = 0;  ///< largest supported variant, slices
  int in_bits = 0;               ///< bus-macro demand entering the region
  int out_bits = 0;              ///< bus-macro demand leaving the region
  Bytes payload_bytes = 0;       ///< partial-bitstream frame payload
  TimeNs load_ns = 0;            ///< priced reconfiguration duration
};

struct PlanResult {
  fabric::DeviceModel device;
  std::vector<RegionPlacement> regions;       ///< architecture order
  std::vector<fabric::Region> fabric_regions; ///< with planned bus macros
  int static_cols_reserved = 0;  ///< CLB columns the static area needs
  int free_cols = 0;             ///< CLB columns left outside the regions

  TimeNs makespan = 0;          ///< adequation makespan under this plan
  TimeNs reconfig_exposed = 0;  ///< exposed reconfiguration time
  int rounds = 0;               ///< search rounds actually run
  int evaluated = 0;            ///< schedules evaluated by the search

  lint::Report lint;             ///< PDR020–025 oracle verdict on the result
  bool certified = false;        ///< pdr::verify accepted the final schedule
  std::string certificate_error; ///< first verifier error when not certified

  /// Per-region reconfiguration durations, keyed like
  /// Adequation::ReconfigCost's region argument.
  std::map<std::string, TimeNs> region_load_ns() const;

  /// Constraints-file fragment declaring the planned regions
  /// ("region D1 {\n  width 2\n}\n...") for merging into a project's
  /// constraints file.
  std::string constraints_fragment() const;

  /// Human-readable report: column map, per-region table, objective and
  /// certification lines. Deterministic (no timestamps).
  std::string to_string() const;
};

/// Plans every FpgaRegion operator of the project's architecture onto the
/// region operators' device grid (XC2V2000 when unspecified). Throws
/// pdr::Error when the project has no dynamic region or the device cannot
/// host the regions plus the static reserve.
PlanResult plan_floorplan(const aaa::Project& project, const PlanOptions& options = {});

/// Evaluates a fixed hand-written assignment of CLB-column widths
/// (region operator name -> width) without searching: regions are packed
/// against the right device edge in architecture order, priced and
/// scheduled exactly like plan_floorplan's candidates. Baseline hook for
/// "is the automatic plan at least as good as the constraints file?".
PlanResult plan_fixed(const aaa::Project& project, const std::map<std::string, int>& width_cols,
                      const PlanOptions& options = {});

/// Floorplan axis for the design-space explorer: the optimized plan plus
/// up to `max_choices - 1` feasible uniformly-widened alternates ("plan",
/// "plan+1c", ...), each priced through the same frames -> load-time
/// chain. Deterministic for a fixed (project, options).
std::vector<aaa::FloorplanChoice> floorplan_axis(const aaa::Project& project,
                                                 const PlanOptions& options = {},
                                                 std::size_t max_choices = 3);

}  // namespace pdr::plan
