#include "rtr/arbiter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pdr::rtr {

RequestArbiter::RequestArbiter(ReconfigManager& manager) : manager_(manager) {}

void RequestArbiter::submit(const std::string& region, const std::string& module, TimeNs now,
                            int priority) {
  PDR_CHECK(!region.empty() && !module.empty(), "RequestArbiter::submit",
            "region and module must be named");
  for (auto& queued : queue_) {
    if (queued.region == region && queued.module == module) {
      queued.priority = std::max(queued.priority, priority);
      ++coalesced_;
      return;
    }
  }
  queue_.push_back(ConfigRequest{region, module, priority, now});
}

std::vector<DrainedRequest> RequestArbiter::drain(TimeNs now) {
  std::vector<ConfigRequest> ordered(queue_.begin(), queue_.end());
  queue_.clear();
  std::stable_sort(ordered.begin(), ordered.end(), [](const ConfigRequest& a, const ConfigRequest& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.submitted < b.submitted;
  });

  std::vector<DrainedRequest> out;
  TimeNs t = now;
  for (const auto& req : ordered) {
    DrainedRequest drained;
    drained.request = req;
    drained.queue_wait = std::max<TimeNs>(0, t - req.submitted);
    drained.outcome = manager_.request(req.region, req.module, t);
    total_queue_wait_ += drained.queue_wait;
    t = std::max(t, drained.outcome.ready_at);
    out.push_back(std::move(drained));
  }
  return out;
}

}  // namespace pdr::rtr
