// Configuration request arbitration.
//
// "A configuration manager is in charge of the configuration bitstream
// which must be loaded on the reconfigurable part by sending
// configuration requests" (§5). With several dynamic regions (paper §7)
// requests contend for the single configuration port; the arbiter orders
// them by priority, then FIFO, and drains them through the manager.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "rtr/manager.hpp"

namespace pdr::rtr {

/// One queued configuration request.
struct ConfigRequest {
  std::string region;
  std::string module;
  int priority = 0;       ///< higher drains first
  TimeNs submitted = 0;
};

/// Outcome of one drained request.
struct DrainedRequest {
  ConfigRequest request;
  RequestOutcome outcome;
  TimeNs queue_wait = 0;  ///< time spent queued before the manager saw it
};

class RequestArbiter {
 public:
  explicit RequestArbiter(ReconfigManager& manager);

  /// Enqueues a request. Duplicate (region, module) pairs already queued
  /// are coalesced (the earlier submission wins; priority is raised to
  /// the max of both).
  void submit(const std::string& region, const std::string& module, TimeNs now, int priority = 0);

  std::size_t pending() const { return queue_.size(); }

  /// Drains every queued request in (priority desc, submission asc)
  /// order starting at `now`; each request is issued when the previous
  /// one's reconfiguration finished. Returns the per-request outcomes.
  std::vector<DrainedRequest> drain(TimeNs now);

  // Statistics across drains.
  int coalesced() const { return coalesced_; }
  TimeNs total_queue_wait() const { return total_queue_wait_; }

 private:
  ReconfigManager& manager_;
  std::deque<ConfigRequest> queue_;
  int coalesced_ = 0;
  TimeNs total_queue_wait_ = 0;
};

}  // namespace pdr::rtr
