#include "rtr/bitstream_store.hpp"

#include "util/error.hpp"

namespace pdr::rtr {

BitstreamStore::BitstreamStore(double bandwidth_bytes_per_s, TimeNs access_latency)
    : bandwidth_(bandwidth_bytes_per_s), latency_(access_latency) {
  PDR_CHECK(bandwidth_ > 0, "BitstreamStore", "bandwidth must be positive");
  PDR_CHECK(latency_ >= 0, "BitstreamStore", "latency must be non-negative");
}

void BitstreamStore::add(const std::string& module, std::vector<std::uint8_t> bitstream) {
  PDR_CHECK(!module.empty(), "BitstreamStore::add", "module name must not be empty");
  PDR_CHECK(!bitstream.empty(), "BitstreamStore::add", "empty bitstream for '" + module + "'");
  pristine_[module] = bitstream;  // golden copy: what repair() restores
  streams_[module] = std::move(bitstream);
}

void BitstreamStore::corrupt(const std::string& module, std::size_t byte_index,
                             std::uint8_t xor_mask) {
  const auto it = streams_.find(module);
  PDR_CHECK(it != streams_.end(), "BitstreamStore::corrupt",
            "no bitstream for module '" + module + "'");
  PDR_CHECK(byte_index < it->second.size(), "BitstreamStore::corrupt",
            "byte index out of range for '" + module + "'");
  PDR_CHECK(xor_mask != 0, "BitstreamStore::corrupt", "xor mask must flip at least one bit");
  it->second[byte_index] ^= xor_mask;
  ++corruptions_;
}

void BitstreamStore::repair(const std::string& module) {
  const auto it = streams_.find(module);
  PDR_CHECK(it != streams_.end(), "BitstreamStore::repair",
            "no bitstream for module '" + module + "'");
  const auto& golden = pristine_.at(module);
  if (it->second == golden) return;  // undamaged — nothing to restore
  it->second = golden;
  ++repairs_;
}

bool BitstreamStore::contains(const std::string& module) const { return streams_.count(module) > 0; }

std::span<const std::uint8_t> BitstreamStore::get(const std::string& module) const {
  const auto it = streams_.find(module);
  PDR_CHECK(it != streams_.end(), "BitstreamStore::get", "no bitstream for module '" + module + "'");
  return it->second;
}

Bytes BitstreamStore::size_of(const std::string& module) const { return get(module).size(); }

TimeNs BitstreamStore::fetch_time(const std::string& module) const {
  return latency_ + transfer_time_ns(size_of(module), bandwidth_);
}

Bytes BitstreamStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [name, s] : streams_) total += s.size();
  return total;
}

}  // namespace pdr::rtr
