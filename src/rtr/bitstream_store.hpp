// External bitstream memory.
//
// In the paper's implementation the protocol builder "address[es]
// external memory and drive[s] ICAP" — the partial bitstreams live in a
// memory next to the FPGA. This models that memory: bitstream contents by
// module name, plus the access-time model for streaming one out.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pdr::rtr {

class BitstreamStore {
 public:
  /// `bandwidth_bytes_per_s`: sustained streaming rate of the memory;
  /// `access_latency`: fixed address-setup cost per stream.
  BitstreamStore(double bandwidth_bytes_per_s, TimeNs access_latency);

  /// Registers a module's partial bitstream. Re-registering replaces it.
  void add(const std::string& module, std::vector<std::uint8_t> bitstream);

  /// Damages one byte of a stored image in place — an external-memory
  /// fault, with the CRC record as likely a victim as any payload word.
  /// Every later get()/fetch returns the damaged image until add()
  /// re-registers a clean copy. `xor_mask` must flip at least one bit.
  void corrupt(const std::string& module, std::size_t byte_index, std::uint8_t xor_mask = 0xFF);

  /// Restores a module's pristine image (the bytes originally add()ed),
  /// undoing any corrupt() damage — the model of an operator re-flashing
  /// external memory from a golden copy. No-op on an undamaged module.
  void repair(const std::string& module);

  /// Number of bytes ever damaged through corrupt().
  int corruptions() const { return corruptions_; }

  /// Number of damaged images restored through repair().
  int repairs() const { return repairs_; }

  bool contains(const std::string& module) const;
  std::span<const std::uint8_t> get(const std::string& module) const;
  Bytes size_of(const std::string& module) const;

  /// Time to stream a module's bitstream out of this memory.
  TimeNs fetch_time(const std::string& module) const;

  double bandwidth_bytes_per_s() const { return bandwidth_; }
  TimeNs access_latency() const { return latency_; }
  std::size_t count() const { return streams_.size(); }
  Bytes total_bytes() const;

 private:
  double bandwidth_;
  TimeNs latency_;
  std::map<std::string, std::vector<std::uint8_t>> streams_;
  std::map<std::string, std::vector<std::uint8_t>> pristine_;  ///< golden copies, first add() wins
  int corruptions_ = 0;
  int repairs_ = 0;
};

}  // namespace pdr::rtr
