#include "rtr/cache.hpp"

#include "util/error.hpp"

namespace pdr::rtr {

BitstreamCache::BitstreamCache(Bytes capacity_bytes) : capacity_(capacity_bytes) {}

bool BitstreamCache::lookup(const std::string& module) {
  const auto it = sizes_.find(module);
  if (it == sizes_.end()) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->counter("rtr.cache.misses").add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.first);
  ++hits_;
  if (metrics_ != nullptr) metrics_->counter("rtr.cache.hits").add();
  return true;
}

void BitstreamCache::insert(const std::string& module, Bytes bytes) {
  PDR_CHECK(bytes > 0, "BitstreamCache::insert", "zero-size bitstream");
  if (bytes > capacity_) return;  // cannot ever fit
  const auto it = sizes_.find(module);
  if (it != sizes_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.first);
    used_ -= it->second.second;
    it->second.second = bytes;
    used_ += bytes;
  } else {
    lru_.push_front(module);
    sizes_[module] = {lru_.begin(), bytes};
    used_ += bytes;
  }
  while (used_ > capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    used_ -= sizes_.at(victim).second;
    sizes_.erase(victim);
    ++evictions_;
    if (metrics_ != nullptr) metrics_->counter("rtr.cache.evictions").add();
  }
  if (metrics_ != nullptr)
    metrics_->gauge("rtr.cache.used_bytes").set(static_cast<double>(used_));
}

void BitstreamCache::invalidate(const std::string& module) {
  const auto it = sizes_.find(module);
  if (it == sizes_.end()) return;
  used_ -= it->second.second;
  lru_.erase(it->second.first);
  sizes_.erase(it);
  if (metrics_ != nullptr)
    metrics_->gauge("rtr.cache.used_bytes").set(static_cast<double>(used_));
}

}  // namespace pdr::rtr
