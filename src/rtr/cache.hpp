// On-chip bitstream cache.
//
// An LRU cache of hot partial bitstreams held in on-chip BRAM next to the
// protocol builder, removing the external-memory fetch from the critical
// path for recently used modules. The paper lists "configuration
// prefetching capabilities" among its partitioning metrics; caching is the
// natural companion optimization and is benchmarked as an ablation.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace pdr::rtr {

class BitstreamCache {
 public:
  /// `capacity_bytes` = 0 disables the cache entirely.
  explicit BitstreamCache(Bytes capacity_bytes);

  /// Looks a module up; on hit, refreshes recency and returns true.
  bool lookup(const std::string& module);

  /// Inserts (or refreshes) a module of `bytes`; evicts least-recently
  /// used entries until it fits. Streams larger than the capacity are not
  /// cached.
  void insert(const std::string& module, Bytes bytes);

  /// Removes a module if present.
  void invalidate(const std::string& module);

  /// Mirrors hit/miss/eviction counters and the occupancy gauge into
  /// `metrics` under "rtr.cache." (nullptr = off).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  std::size_t entries() const { return sizes_.size(); }

  // Statistics.
  int hits() const { return hits_; }
  int misses() const { return misses_; }
  int evictions() const { return evictions_; }
  double hit_rate() const {
    const int total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::list<std::string> lru_;  ///< front = most recent
  std::map<std::string, std::pair<std::list<std::string>::iterator, Bytes>> sizes_;
  int hits_ = 0;
  int misses_ = 0;
  int evictions_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::rtr
