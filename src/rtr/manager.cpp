#include "rtr/manager.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace pdr::rtr {

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::AlreadyLoaded: return "already_loaded";
    case RequestKind::PrefetchHit: return "prefetch_hit";
    case RequestKind::PrefetchInFlight: return "prefetch_inflight";
    case RequestKind::CacheHit: return "cache_hit";
    case RequestKind::Miss: return "miss";
  }
  return "?";
}

namespace {

// Tracer track names: port occupancy vs the off-critical-path staging
// engine render as two lanes in the exported Chrome trace.
constexpr const char* kPortTrack = "cfg_port";
constexpr const char* kStagingTrack = "staging";

}  // namespace

ManagerConfig sundance_manager_config() {
  ManagerConfig cfg;
  cfg.manager = aaa::Placement::Fpga;
  cfg.builder = aaa::Placement::Fpga;
  cfg.port_kind = fabric::PortKind::Icap;
  cfg.manager_overhead = 500;
  return cfg;
}

ReconfigManager::ReconfigManager(const synth::DesignBundle& bundle, ManagerConfig config,
                                 BitstreamStore& store, PrefetchPolicy& policy)
    : bundle_(bundle),
      config_(config),
      store_(store),
      policy_(policy),
      builder_(config.builder, config.port_kind, config.cpu_builder_bytes_per_s,
               config.fpga_builder_bytes_per_s),
      memory_(bundle.device),
      port_(config.port_kind,
            config.port_timing.value_or(fabric::ConfigPort::default_timing(config.port_kind)),
            memory_),
      cache_(config.cache_capacity) {
  // Register every dynamic variant's bitstream with the external store.
  for (const auto& [region, variants] : bundle_.dynamic_variants) {
    loaded_.emplace(region, "");
    for (const auto& v : variants)
      if (!store_.contains(v.name)) store_.add(v.name, v.bitstream);
  }
}

void ReconfigManager::set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  cache_.set_metrics(metrics);
  builder_.set_metrics(metrics);
  policy_.set_metrics(metrics);
}

void ReconfigManager::bump(const char* name, double delta) {
  if (metrics_ != nullptr) metrics_->counter(std::string("rtr.manager.") + name).add(delta);
}

void ReconfigManager::note_port_load(const std::string& region, const std::string& module,
                                     const char* category, TimeNs latency, TimeNs end) {
  if (tracer_ != nullptr)
    tracer_->span(kPortTrack, "load " + module + " -> " + region, category, end - latency, end,
                  {{"module", module}, {"region", region}});
  if (metrics_ != nullptr)
    metrics_->histogram("rtr.manager.load_latency_ns", obs::latency_buckets_ns(),
                        "end-to-end latency of port loads")
        .observe(static_cast<double>(latency));
}

const std::string& ReconfigManager::loaded(const std::string& region) const {
  const auto it = loaded_.find(region);
  PDR_CHECK(it != loaded_.end(), "ReconfigManager::loaded", "unknown region '" + region + "'");
  return it->second;
}

TimeNs ReconfigManager::staging_time(const std::string& module) const {
  const Bytes bytes = store_.size_of(module);
  const TimeNs fetch = store_.fetch_time(module);
  const TimeNs build = transfer_time_ns(bytes, builder_.throughput_bytes_per_s());
  // Fetch and build stream through each other: slowest stage dominates.
  return std::max(fetch, build);
}

TimeNs ReconfigManager::staged_load_latency(const std::string& module) const {
  TimeNs latency = config_.manager_overhead + port_.transfer_time(store_.size_of(module));
  if (config_.manager == aaa::Placement::Cpu) latency += config_.interrupt_latency;
  return latency;
}

TimeNs ReconfigManager::cold_load_latency(const std::string& module) const {
  const Bytes bytes = store_.size_of(module);
  const TimeNs fetch = store_.fetch_time(module);
  const TimeNs build = transfer_time_ns(bytes, builder_.throughput_bytes_per_s());
  const TimeNs load = port_.transfer_time(bytes);
  // The three stages are pipelined; the slowest dominates.
  TimeNs latency = config_.manager_overhead + std::max({fetch, build, load});
  if (config_.manager == aaa::Placement::Cpu) latency += config_.interrupt_latency;
  return latency;
}

void ReconfigManager::apply_load(const std::string& region, const std::string& module) {
  const BuildResult built = builder_.build(bundle_.device, store_.get(module));
  port_.load(built.stream, module);
  if (config_.verify_loads) {
    const auto frames = bundle_.floorplan.region_frames(region);
    PDR_CHECK(memory_.region_owned_by(frames, module), "ReconfigManager",
              "after loading '" + module + "', region '" + region +
                  "' frames are not all owned by it");
  }
  stats_.bytes_loaded += store_.size_of(module);
  bump("bytes_loaded", static_cast<double>(store_.size_of(module)));
}

RequestOutcome ReconfigManager::request(const std::string& region, const std::string& module,
                                        TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::request", "unknown region '" + region + "'");
  ++stats_.requests;
  policy_.observe(region, module);

  RequestOutcome out;
  if (loaded_.at(region) == module) {
    out.kind = RequestKind::AlreadyLoaded;
    out.ready_at = now;
    ++stats_.already_loaded;
    out.stall = 0;
    bump("requests");
    bump("already_loaded");
    if (tracer_ != nullptr)
      tracer_->instant(kPortTrack, "resident " + module, "resident", now,
                       {{"region", region}});
    return out;
  }

  TimeNs latency_paid = 0;
  const auto staged = staged_.find(region);
  const bool have_staged = staged != staged_.end() && staged->second.module == module;
  if (have_staged) {
    // Two ways to finish: wait out the staging and pay only the port
    // transfer, or abandon it and stream the pipelined cold path. A real
    // manager takes whichever completes first (a barely-started staging
    // must not be slower than no prefetch at all).
    const TimeNs via_staged =
        std::max({now, staged->second.ready, port_free_}) + staged_load_latency(module);
    const TimeNs via_cold = std::max(now, port_free_) + cold_load_latency(module);
    if (via_staged <= via_cold) {
      out.kind =
          staged->second.ready <= now ? RequestKind::PrefetchHit : RequestKind::PrefetchInFlight;
      out.ready_at = via_staged;
      latency_paid = staged_load_latency(module);
      if (out.kind == RequestKind::PrefetchHit)
        ++stats_.prefetch_hits;
      else
        ++stats_.prefetch_inflight;
    } else {
      out.kind = RequestKind::Miss;
      out.ready_at = via_cold;
      latency_paid = cold_load_latency(module);
      ++stats_.misses;
      ++stats_.prefetches_wasted;  // the staging never paid off
      bump("prefetches_wasted");
    }
    staged_.erase(staged);
  } else {
    if (cache_.capacity() > 0 && cache_.lookup(module)) {
      // The on-chip cache removes the external fetch, like staging does.
      // Not a plain miss: report it so cache effectiveness is visible.
      out.kind = RequestKind::CacheHit;
      latency_paid = staged_load_latency(module);
      ++stats_.cache_hits;
    } else {
      out.kind = RequestKind::Miss;
      latency_paid = cold_load_latency(module);
      ++stats_.misses;
    }
    out.ready_at = std::max(now, port_free_) + latency_paid;
  }
  stats_.total_load_time += latency_paid;
  port_free_ = out.ready_at;

  apply_load(region, module);
  if (cache_.capacity() > 0) cache_.insert(module, store_.size_of(module));
  loaded_[region] = module;

  out.stall = std::max<TimeNs>(0, out.ready_at - now);
  stats_.total_stall += out.stall;
  bump("requests");
  bump(request_kind_name(out.kind));
  if (metrics_ != nullptr)
    metrics_->histogram("rtr.manager.stall_ns", obs::latency_buckets_ns(),
                        "demand stall exposed to the application")
        .observe(static_cast<double>(out.stall));
  note_port_load(region, module, "load", latency_paid, out.ready_at);
  PDR_DEBUG("rtr") << request_kind_name(out.kind) << " " << module << " -> " << region
                   << " ready at " << to_us(out.ready_at) << " us";
  return out;
}

std::optional<TimeNs> ReconfigManager::announce(const std::string& region,
                                                const std::string& module, TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::announce",
            "unknown region '" + region + "'");
  if (dynamic_cast<NonePrefetch*>(&policy_) != nullptr) return std::nullopt;
  if (loaded_.at(region) == module) return std::nullopt;

  const auto staged = staged_.find(region);
  if (staged != staged_.end()) {
    if (staged->second.module == module) return staged->second.ready;
    // Replacing a never-demanded staged stream: the earlier prefetch was
    // wasted.
    ++stats_.prefetches_wasted;
    bump("prefetches_wasted");
    if (tracer_ != nullptr)
      tracer_->instant(kStagingTrack, "replace " + staged->second.module, "prefetch_wasted", now,
                       {{"region", region}});
  }

  const TimeNs start = std::max(now, staging_free_);
  TimeNs duration = staging_time(module);
  if (cache_.capacity() > 0 && cache_.lookup(module)) duration = 0;  // already on chip
  const TimeNs ready = start + duration;
  staging_free_ = ready;
  staged_[region] = Staged{module, ready};
  if (cache_.capacity() > 0) cache_.insert(module, store_.size_of(module));
  ++stats_.prefetches_issued;
  bump("prefetches_issued");
  if (tracer_ != nullptr)
    tracer_->span(kStagingTrack, "stage " + module + " for " + region, "staging", start, ready,
                  {{"module", module}, {"region", region}});
  PDR_DEBUG("rtr") << "staging " << module << " for " << region << ", ready at " << to_us(ready)
                   << " us";
  return ready;
}

void ReconfigManager::auto_prefetch(const std::string& region, TimeNs now) {
  const auto predicted = policy_.predict(region, loaded(region));
  if (predicted.has_value() && store_.contains(*predicted)) announce(region, *predicted, now);
}

void ReconfigManager::set_resident(const std::string& region, const std::string& module) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::set_resident",
            "unknown region '" + region + "'");
  apply_load(region, module);
  loaded_[region] = module;
}

TimeNs ReconfigManager::blank(const std::string& region, TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::blank", "unknown region '" + region + "'");
  const std::string blank_name = "__blank_" + region;
  if (!store_.contains(blank_name)) {
    // Blanking streams are MFWR-compressed: one zero frame + a 4-word
    // repeat per remaining frame, so eager unloading is cheap.
    const auto frames = bundle_.floorplan.region_frames(region);
    store_.add(blank_name, synth::generate_uniform_bitstream(bundle_.device, frames, 0));
  }
  const TimeNs latency = cold_load_latency(blank_name);
  const TimeNs done = std::max(now, port_free_) + latency;
  port_free_ = done;
  // An eager unload is a load like any other: the same build + port path,
  // the same readback verification (against the blank stream's ownership)
  // and the same byte accounting.
  apply_load(region, blank_name);
  loaded_[region] = "";
  staged_.erase(region);
  ++stats_.blanks;
  bump("blanks");
  note_port_load(region, blank_name, "blank", latency, done);
  return done;
}

int ReconfigManager::verify_resident(const std::string& region) const {
  const std::string& module = loaded(region);
  PDR_CHECK(!module.empty(), "ReconfigManager::verify_resident",
            "region '" + region + "' has no resident module");
  const auto& artifact = bundle_.variant(region, module);
  const fabric::FrameMap map(bundle_.device);
  int corrupted = 0;
  for (const auto& addr : artifact.placement.frames) {
    const auto data = memory_.read_frame(addr);
    const int linear = map.linear_index(addr);
    bool bad = false;
    for (std::size_t b = 0; b < data.size() && !bad; ++b)
      bad = data[b] !=
            synth::frame_payload_byte(artifact.netlist_hash, linear, static_cast<int>(b));
    if (bad) ++corrupted;
  }
  return corrupted;
}

TimeNs ReconfigManager::scrub(const std::string& region, TimeNs now) {
  const std::string module = loaded(region);
  PDR_CHECK(!module.empty(), "ReconfigManager::scrub",
            "region '" + region + "' has no resident module to scrub");
  const TimeNs latency = cold_load_latency(module);
  const TimeNs done = std::max(now, port_free_) + latency;
  port_free_ = done;
  apply_load(region, module);
  ++stats_.scrubs;
  bump("scrubs");
  note_port_load(region, module, "scrub", latency, done);
  return done;
}

}  // namespace pdr::rtr
