#include "rtr/manager.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pdr::rtr {

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::AlreadyLoaded: return "already_loaded";
    case RequestKind::PrefetchHit: return "prefetch_hit";
    case RequestKind::PrefetchInFlight: return "prefetch_inflight";
    case RequestKind::CacheHit: return "cache_hit";
    case RequestKind::Miss: return "miss";
  }
  return "?";
}

const char* region_health_name(RegionHealth health) {
  switch (health) {
    case RegionHealth::Healthy: return "healthy";
    case RegionHealth::Degraded: return "degraded";
    case RegionHealth::Failed: return "failed";
  }
  return "?";
}

std::string ManagerStats::to_string() const {
  std::string out;
  const auto row = [&out](const char* name, long long value) {
    out += strprintf("  %-20s %lld\n", name, value);
  };
  row("requests", requests);
  row("already_loaded", already_loaded);
  row("prefetch_hits", prefetch_hits);
  row("prefetch_inflight", prefetch_inflight);
  row("cache_hits", cache_hits);
  row("misses", misses);
  row("prefetches_issued", prefetches_issued);
  row("prefetches_wasted", prefetches_wasted);
  row("scrubs", scrubs);
  row("blanks", blanks);
  row("load_failures", load_failures);
  row("crc_rejects", crc_rejects);
  row("port_aborts", port_aborts);
  row("readback_failures", readback_failures);
  row("retries", retries);
  row("fallbacks", fallbacks);
  row("scrub_repairs", scrub_repairs);
  row("health_transitions", health_transitions);
  out += strprintf("  %-20s %.3f ms\n", "total_stall", to_ms(total_stall));
  out += strprintf("  %-20s %.3f ms\n", "total_load_time", to_ms(total_load_time));
  row("bytes_loaded", static_cast<long long>(bytes_loaded));
  for (const auto& [region, health] : region_health)
    out += strprintf("  health %-13s %s\n", region.c_str(), region_health_name(health));
  for (const auto& [region, counts] : health_transition_counts)
    for (const auto& [edge, n] : counts)
      out += strprintf("  transition %-9s %s x%d\n", region.c_str(), edge.c_str(), n);
  return out;
}

namespace {

// Tracer track names: port occupancy vs the off-critical-path staging
// engine render as two lanes in the exported Chrome trace; health
// transitions get their own sparse lane.
constexpr const char* kPortTrack = "cfg_port";
constexpr const char* kStagingTrack = "staging";
constexpr const char* kHealthTrack = "health";

}  // namespace

ManagerConfig sundance_manager_config() {
  ManagerConfig cfg;
  cfg.manager = aaa::Placement::Fpga;
  cfg.builder = aaa::Placement::Fpga;
  cfg.port_kind = fabric::PortKind::Icap;
  cfg.manager_overhead = 500;
  return cfg;
}

ReconfigManager::ReconfigManager(const synth::DesignBundle& bundle, ManagerConfig config,
                                 BitstreamStore& store, PrefetchPolicy& policy)
    : bundle_(bundle),
      config_(config),
      store_(store),
      policy_(policy),
      builder_(config.builder, config.port_kind, config.cpu_builder_bytes_per_s,
               config.fpga_builder_bytes_per_s),
      memory_(bundle.device),
      port_(config.port_kind,
            config.port_timing.value_or(fabric::ConfigPort::default_timing(config.port_kind)),
            memory_),
      cache_(config.cache_capacity),
      recovery_rng_(config.recovery.jitter_seed) {
  // Register every dynamic variant's bitstream with the external store.
  for (const auto& [region, variants] : bundle_.dynamic_variants) {
    loaded_.emplace(region, "");
    stats_.region_health.emplace(region, RegionHealth::Healthy);
    for (const auto& v : variants)
      if (!store_.contains(v.name)) store_.add(v.name, v.bitstream);
  }
}

void ReconfigManager::set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  cache_.set_metrics(metrics);
  builder_.set_metrics(metrics);
  policy_.set_metrics(metrics);
}

void ReconfigManager::bump(const char* name, double delta) {
  if (metrics_ != nullptr) metrics_->counter(std::string("rtr.manager.") + name).add(delta);
}

void ReconfigManager::note_port_load(const std::string& region, const std::string& module,
                                     const char* category, TimeNs latency, TimeNs end) {
  if (tracer_ != nullptr)
    tracer_->span(kPortTrack, "load " + module + " -> " + region, category, end - latency, end,
                  {{"module", module}, {"region", region}});
  if (metrics_ != nullptr)
    metrics_->histogram("rtr.manager.load_latency_ns", obs::latency_buckets_ns(),
                        "end-to-end latency of port loads")
        .observe(static_cast<double>(latency));
}

const std::string& ReconfigManager::loaded(const std::string& region) const {
  const auto it = loaded_.find(region);
  PDR_CHECK(it != loaded_.end(), "ReconfigManager::loaded", "unknown region '" + region + "'");
  return it->second;
}

TimeNs ReconfigManager::staging_time(const std::string& module) const {
  const Bytes bytes = store_.size_of(module);
  const TimeNs fetch = store_.fetch_time(module);
  const TimeNs build = transfer_time_ns(bytes, builder_.throughput_bytes_per_s());
  // Fetch and build stream through each other: slowest stage dominates.
  return std::max(fetch, build);
}

TimeNs ReconfigManager::staged_load_latency(const std::string& module) const {
  TimeNs latency = config_.manager_overhead + port_.transfer_time(store_.size_of(module));
  if (config_.manager == aaa::Placement::Cpu) latency += config_.interrupt_latency;
  return latency;
}

TimeNs ReconfigManager::cold_load_latency(const std::string& module) const {
  const Bytes bytes = store_.size_of(module);
  const TimeNs fetch = store_.fetch_time(module);
  const TimeNs build = transfer_time_ns(bytes, builder_.throughput_bytes_per_s());
  const TimeNs load = port_.transfer_time(bytes);
  // The three stages are pipelined; the slowest dominates.
  TimeNs latency = config_.manager_overhead + std::max({fetch, build, load});
  if (config_.manager == aaa::Placement::Cpu) latency += config_.interrupt_latency;
  return latency;
}

std::vector<std::uint8_t> ReconfigManager::fetch_stream(const std::string& module) {
  const auto stored = store_.get(module);
  std::vector<std::uint8_t> raw(stored.begin(), stored.end());
  if (fetch_fault_hook_) fetch_fault_hook_(module, raw);
  return raw;
}

void ReconfigManager::apply_load(const std::string& region, const std::string& module) {
  const std::vector<std::uint8_t> raw = fetch_stream(module);
  const BuildResult built = builder_.build(bundle_.device, raw);
  port_.load(built.stream, module);
  if (config_.verify_loads) {
    const auto frames = bundle_.floorplan.region_frames(region);
    PDR_CHECK(memory_.region_owned_by(frames, module), "ReconfigManager",
              "after loading '" + module + "', region '" + region +
                  "' frames are not all owned by it");
  }
  stats_.bytes_loaded += raw.size();
  bump("bytes_loaded", static_cast<double>(raw.size()));
}

ReconfigManager::LoadFailure ReconfigManager::attempt_load(const std::string& region,
                                                           const std::string& module) {
  const std::vector<std::uint8_t> raw = fetch_stream(module);
  // CRC / framing check before the stream ever reaches the port: a
  // corrupted image is rejected while the region still holds its previous
  // (intact) configuration.
  try {
    fabric::BitstreamReader::validate(bundle_.device, raw);
  } catch (const Error&) {
    ++stats_.crc_rejects;
    bump("crc_rejects");
    return LoadFailure::CrcReject;
  }
  const BuildResult built = builder_.build(bundle_.device, raw);
  try {
    port_.load(built.stream, module);
  } catch (const Error&) {
    // The port died mid-transfer; part of the region is now foreign.
    ++stats_.port_aborts;
    bump("port_aborts");
    return LoadFailure::PortAbort;
  }
  if (config_.verify_loads) {
    const auto frames = bundle_.floorplan.region_frames(region);
    if (!memory_.region_owned_by(frames, module)) {
      ++stats_.readback_failures;
      bump("readback_failures");
      return LoadFailure::ReadbackMismatch;
    }
  }
  stats_.bytes_loaded += raw.size();
  bump("bytes_loaded", static_cast<double>(raw.size()));
  return LoadFailure::None;
}

void ReconfigManager::set_health(const std::string& region, RegionHealth health, TimeNs now,
                                 const std::string& why) {
  auto& current = stats_.region_health.at(region);
  if (current == health) return;
  ++stats_.health_transition_counts[region][std::string(region_health_name(current)) + "->" +
                                            region_health_name(health)];
  current = health;
  ++stats_.health_transitions;
  bump("health_transitions");
  if (metrics_ != nullptr)
    metrics_->gauge("rtr.manager.health." + region)
        .set(static_cast<double>(static_cast<int>(health)));
  if (tracer_ != nullptr)
    tracer_->instant(kHealthTrack, region + " -> " + region_health_name(health), "health", now,
                     {{"region", region}, {"why", why}});
  PDR_DEBUG("rtr") << "health " << region << " -> " << region_health_name(health) << " (" << why
                   << ")";
}

RegionHealth ReconfigManager::health(const std::string& region) const {
  const auto it = stats_.region_health.find(region);
  PDR_CHECK(it != stats_.region_health.end(), "ReconfigManager::health",
            "unknown region '" + region + "'");
  return it->second;
}

void ReconfigManager::set_safe_module(const std::string& region, const std::string& module) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::set_safe_module",
            "unknown region '" + region + "'");
  config_.safe_modules[region] = module;
}

void ReconfigManager::enable_certified_replay(
    std::map<std::string, std::vector<std::string>> loads) {
  certified_loads_ = std::move(loads);
  certified_next_.clear();
}

void ReconfigManager::consume_certified_load(const std::string& region,
                                             const std::string& module, const char* via) {
  if (!certified_loads_.has_value()) return;
  const auto it = certified_loads_->find(region);
  const std::size_t have = it == certified_loads_->end() ? 0 : it->second.size();
  std::size_t& next = certified_next_[region];
  PDR_CHECK(next < have, "ReconfigManager::certified_replay",
            strprintf("%s of '%s' into region '%s' exceeds the certified schedule "
                      "(%zu load(s) certified, all consumed)",
                      via, module.c_str(), region.c_str(), have));
  const std::string& expected = it->second[next];
  PDR_CHECK(expected == module, "ReconfigManager::certified_replay",
            strprintf("%s of '%s' into region '%s' diverges from the certified schedule "
                      "(load %zu of %zu expects '%s')",
                      via, module.c_str(), region.c_str(), next + 1, have, expected.c_str()));
  ++next;
}

ReconfigManager::LoadResult ReconfigManager::perform_load(const std::string& region,
                                                          const std::string& module,
                                                          const char* category, TimeNs now,
                                                          bool allow_fallback) {
  LoadResult result;
  result.resident = module;
  if (!config_.recovery.enabled) {
    apply_load(region, module);  // throws on any failure, as it always did
    return result;
  }

  TimeNs backoff = config_.recovery.retry_backoff;
  TimeNs backoff_spent = 0;
  for (int attempt = 0;; ++attempt) {
    const LoadFailure failure = attempt_load(region, module);
    if (failure == LoadFailure::None) {
      // A clean verified load rewrote the whole region: whatever state it
      // was in (degraded readback, earlier failure), it is healthy now.
      set_health(region, RegionHealth::Healthy, now,
                 attempt > 0 ? "retry succeeded" : "load verified");
      return result;
    }
    ++stats_.load_failures;
    bump("load_failures");
    set_health(region, RegionHealth::Degraded,
               now, std::string(category) + " of '" + module + "' failed");
    if (attempt >= config_.recovery.max_retries) break;
    // Scale the wait by the jitter stream so a fleet of managers retrying
    // the same broken module spreads out instead of retrying in lockstep.
    TimeNs wait = backoff;
    if (config_.recovery.jitter_frac > 0.0) {
      const double scale =
          recovery_rng_.uniform(1.0 - config_.recovery.jitter_frac,
                                1.0 + config_.recovery.jitter_frac);
      wait = std::max<TimeNs>(1, static_cast<TimeNs>(static_cast<double>(backoff) * scale));
    }
    // A cumulative ceiling bounds how long one request may monopolize the
    // port retrying: past it, go straight to the fallback path.
    if (config_.recovery.max_total_backoff > 0 &&
        backoff_spent + wait > config_.recovery.max_total_backoff)
      break;
    backoff_spent += wait;
    // Requeue the whole fetch+build+load pipeline after the backoff.
    ++stats_.retries;
    bump("retries");
    result.extra += wait + cold_load_latency(module);
    backoff = static_cast<TimeNs>(static_cast<double>(backoff) * config_.recovery.backoff_factor);
  }

  if (!allow_fallback) {
    result.resident.clear();
    result.failed = true;
    set_health(region, RegionHealth::Failed, now, "retry budget exhausted");
    return result;
  }

  // Retry budget exhausted: clear the region, then bring up the
  // designated safe personality. Both are port loads themselves and get
  // one bounded round each.
  ++stats_.fallbacks;
  bump("fallbacks");
  result.fell_back = true;
  const std::string blank_name = ensure_blank_stream(region);
  bool blanked = false;
  for (int i = 0; i <= config_.recovery.max_retries && !blanked; ++i) {
    result.extra += cold_load_latency(blank_name);
    blanked = attempt_load(region, blank_name) == LoadFailure::None;
    if (!blanked) {
      ++stats_.load_failures;
      bump("load_failures");
    }
  }
  if (blanked) {
    ++stats_.blanks;
    bump("blanks");
  }
  const auto safe = config_.safe_modules.find(region);
  const bool have_safe =
      blanked && safe != config_.safe_modules.end() && safe->second != module;
  bool safe_loaded = false;
  if (have_safe) {
    for (int i = 0; i <= config_.recovery.max_retries && !safe_loaded; ++i) {
      result.extra += cold_load_latency(safe->second);
      safe_loaded = attempt_load(region, safe->second) == LoadFailure::None;
      if (!safe_loaded) {
        ++stats_.load_failures;
        bump("load_failures");
      }
    }
  }
  if (safe_loaded) {
    result.resident = safe->second;
    set_health(region, RegionHealth::Healthy, now, "fell back to safe module '" + safe->second + "'");
  } else {
    result.resident.clear();
    result.failed = true;
    set_health(region, RegionHealth::Failed, now,
               blanked ? "no loadable safe module" : "blank failed");
  }
  return result;
}

RequestOutcome ReconfigManager::request(const std::string& region, const std::string& module,
                                        TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::request", "unknown region '" + region + "'");
  ++stats_.requests;
  policy_.observe(region, module);

  RequestOutcome out;
  if (loaded_.at(region) == module) {
    out.kind = RequestKind::AlreadyLoaded;
    out.ready_at = now;
    ++stats_.already_loaded;
    out.stall = 0;
    bump("requests");
    bump("already_loaded");
    if (tracer_ != nullptr)
      tracer_->instant(kPortTrack, "resident " + module, "resident", now,
                       {{"region", region}});
    return out;
  }

  consume_certified_load(region, module, "demand load");

  TimeNs latency_paid = 0;
  const auto staged = staged_.find(region);
  const bool have_staged = staged != staged_.end() && staged->second.module == module;
  if (have_staged) {
    // Two ways to finish: wait out the staging and pay only the port
    // transfer, or abandon it and stream the pipelined cold path. A real
    // manager takes whichever completes first (a barely-started staging
    // must not be slower than no prefetch at all).
    const TimeNs via_staged =
        std::max({now, staged->second.ready, port_free_}) + staged_load_latency(module);
    const TimeNs via_cold = std::max(now, port_free_) + cold_load_latency(module);
    if (via_staged <= via_cold) {
      out.kind =
          staged->second.ready <= now ? RequestKind::PrefetchHit : RequestKind::PrefetchInFlight;
      out.ready_at = via_staged;
      latency_paid = staged_load_latency(module);
      if (out.kind == RequestKind::PrefetchHit)
        ++stats_.prefetch_hits;
      else
        ++stats_.prefetch_inflight;
    } else {
      out.kind = RequestKind::Miss;
      out.ready_at = via_cold;
      latency_paid = cold_load_latency(module);
      ++stats_.misses;
      ++stats_.prefetches_wasted;  // the staging never paid off
      bump("prefetches_wasted");
    }
    staged_.erase(staged);
  } else {
    if (cache_.capacity() > 0 && cache_.lookup(module)) {
      // The on-chip cache removes the external fetch, like staging does.
      // Not a plain miss: report it so cache effectiveness is visible.
      out.kind = RequestKind::CacheHit;
      latency_paid = staged_load_latency(module);
      ++stats_.cache_hits;
    } else {
      out.kind = RequestKind::Miss;
      latency_paid = cold_load_latency(module);
      ++stats_.misses;
    }
    out.ready_at = std::max(now, port_free_) + latency_paid;
  }
  const LoadResult lr = perform_load(region, module, "load", now);
  latency_paid += lr.extra;
  out.ready_at += lr.extra;
  stats_.total_load_time += latency_paid;
  port_free_ = out.ready_at;

  if (!lr.failed && !lr.fell_back && cache_.capacity() > 0)
    cache_.insert(module, store_.size_of(module));
  loaded_[region] = lr.resident;

  out.stall = std::max<TimeNs>(0, out.ready_at - now);
  stats_.total_stall += out.stall;
  bump("requests");
  bump(request_kind_name(out.kind));
  if (metrics_ != nullptr)
    metrics_->histogram("rtr.manager.stall_ns", obs::latency_buckets_ns(),
                        "demand stall exposed to the application")
        .observe(static_cast<double>(out.stall));
  note_port_load(region, module, "load", latency_paid, out.ready_at);
  PDR_DEBUG("rtr") << request_kind_name(out.kind) << " " << module << " -> " << region
                   << " ready at " << to_us(out.ready_at) << " us";
  return out;
}

std::optional<TimeNs> ReconfigManager::announce(const std::string& region,
                                                const std::string& module, TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::announce",
            "unknown region '" + region + "'");
  if (dynamic_cast<NonePrefetch*>(&policy_) != nullptr) return std::nullopt;
  if (loaded_.at(region) == module) return std::nullopt;

  const auto staged = staged_.find(region);
  if (staged != staged_.end()) {
    if (staged->second.module == module) return staged->second.ready;
    // Replacing a never-demanded staged stream: the earlier prefetch was
    // wasted.
    ++stats_.prefetches_wasted;
    bump("prefetches_wasted");
    if (tracer_ != nullptr)
      tracer_->instant(kStagingTrack, "replace " + staged->second.module, "prefetch_wasted", now,
                       {{"region", region}});
  }

  const TimeNs start = std::max(now, staging_free_);
  TimeNs duration = staging_time(module);
  if (cache_.capacity() > 0 && cache_.lookup(module)) duration = 0;  // already on chip
  const TimeNs ready = start + duration;
  staging_free_ = ready;
  staged_[region] = Staged{module, ready};
  if (cache_.capacity() > 0) cache_.insert(module, store_.size_of(module));
  ++stats_.prefetches_issued;
  bump("prefetches_issued");
  if (tracer_ != nullptr)
    tracer_->span(kStagingTrack, "stage " + module + " for " + region, "staging", start, ready,
                  {{"module", module}, {"region", region}});
  PDR_DEBUG("rtr") << "staging " << module << " for " << region << ", ready at " << to_us(ready)
                   << " us";
  return ready;
}

void ReconfigManager::preload_staged(const std::string& region, const std::string& module,
                                     TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::preload_staged",
            "unknown region '" + region + "'");
  if (loaded_.at(region) == module) return;
  // The stream is already resident in a shared off-device tier: stage it
  // as an instantly-ready entry without touching the staging engine or the
  // prefetch counters, so the next demand pays the port transfer only.
  staged_[region] = Staged{module, now};
  if (tracer_ != nullptr)
    tracer_->instant(kStagingTrack, "fleet-cache stage " + module, "staging", now,
                     {{"module", module}, {"region", region}});
}

void ReconfigManager::auto_prefetch(const std::string& region, TimeNs now) {
  const auto predicted = policy_.predict(region, loaded(region));
  if (predicted.has_value() && store_.contains(*predicted)) announce(region, *predicted, now);
}

void ReconfigManager::set_resident(const std::string& region, const std::string& module) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::set_resident",
            "unknown region '" + region + "'");
  consume_certified_load(region, module, "startup residency");
  apply_load(region, module);
  loaded_[region] = module;
}

void ReconfigManager::prepare_blank_streams() {
  for (const auto& [region, module] : loaded_) ensure_blank_stream(region);
}

std::string ReconfigManager::ensure_blank_stream(const std::string& region) {
  const std::string blank_name = "__blank_" + region;
  if (!store_.contains(blank_name)) {
    // Blanking streams are MFWR-compressed: one zero frame + a 4-word
    // repeat per remaining frame, so eager unloading is cheap.
    const auto frames = bundle_.floorplan.region_frames(region);
    store_.add(blank_name, synth::generate_uniform_bitstream(bundle_.device, frames, 0));
  }
  return blank_name;
}

TimeNs ReconfigManager::blank(const std::string& region, TimeNs now) {
  PDR_CHECK(loaded_.count(region) > 0, "ReconfigManager::blank", "unknown region '" + region + "'");
  const std::string blank_name = ensure_blank_stream(region);
  TimeNs latency = cold_load_latency(blank_name);
  // An eager unload is a load like any other: the same build + port path,
  // the same readback verification (against the blank stream's ownership)
  // and the same byte accounting — and, under recovery, the same bounded
  // retry (though a blank has nothing to fall back to).
  const LoadResult lr = perform_load(region, blank_name, "blank", now, /*allow_fallback=*/false);
  latency += lr.extra;
  const TimeNs done = std::max(now, port_free_) + latency;
  port_free_ = done;
  loaded_[region] = "";
  staged_.erase(region);
  ++stats_.blanks;
  bump("blanks");
  note_port_load(region, blank_name, "blank", latency, done);
  return done;
}

int ReconfigManager::verify_resident(const std::string& region) const {
  const std::string& module = loaded(region);
  PDR_CHECK(!module.empty(), "ReconfigManager::verify_resident",
            "region '" + region + "' has no resident module");
  const auto& artifact = bundle_.variant(region, module);
  const fabric::FrameMap map(bundle_.device);
  int corrupted = 0;
  for (const auto& addr : artifact.placement.frames) {
    const auto data = memory_.read_frame(addr);
    const int linear = map.linear_index(addr);
    bool bad = false;
    for (std::size_t b = 0; b < data.size() && !bad; ++b)
      bad = data[b] !=
            synth::frame_payload_byte(artifact.netlist_hash, linear, static_cast<int>(b));
    if (bad) ++corrupted;
  }
  return corrupted;
}

TimeNs ReconfigManager::scrub(const std::string& region, TimeNs now) {
  const std::string module = loaded(region);
  PDR_CHECK(!module.empty(), "ReconfigManager::scrub",
            "region '" + region + "' has no resident module to scrub");
  const int corrupted_before = verify_resident(region);
  TimeNs latency = cold_load_latency(module);
  const LoadResult lr = perform_load(region, module, "scrub", now);
  latency += lr.extra;
  const TimeNs done = std::max(now, port_free_) + latency;
  port_free_ = done;
  loaded_[region] = lr.resident;
  ++stats_.scrubs;
  bump("scrubs");
  if (!lr.failed && corrupted_before > 0) {
    stats_.scrub_repairs += corrupted_before;
    bump("scrub_repairs", corrupted_before);
  }
  note_port_load(region, module, "scrub", latency, done);
  return done;
}

int ReconfigManager::check_health(const std::string& region, TimeNs now) {
  const auto it = loaded_.find(region);
  PDR_CHECK(it != loaded_.end(), "ReconfigManager::check_health",
            "unknown region '" + region + "'");
  if (it->second.empty()) return 0;
  const int corrupted = verify_resident(region);
  if (corrupted > 0) {
    set_health(region, RegionHealth::Degraded,
               now, std::to_string(corrupted) + " corrupted frame(s) on readback");
  } else if (health(region) == RegionHealth::Degraded) {
    set_health(region, RegionHealth::Healthy, now, "readback clean");
  }
  return corrupted;
}

}  // namespace pdr::rtr
