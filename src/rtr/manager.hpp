// The runtime reconfiguration manager (paper §5, Figure 2).
//
// "A configuration manager is in charge of the configuration bitstream
// which must be loaded on the reconfigurable part by sending configuration
// requests" to the protocol configuration builder. This class ties
// together the bitstream store (external memory), the protocol builder,
// the configuration port, an optional on-chip cache and the prefetch
// policy, and tracks which module is physically resident in each region.
//
// Loading pipeline and the prefetch split:
//
//   external memory --fetch--> protocol builder --stream--> ICAP/SelectMAP
//
// The slow stages are the memory fetch and (for a CPU-hosted builder) the
// software framing; the port transfer itself is fast. Prefetching
// exploits exactly that:
//
//  - announce(): a *hint* that `module` will be demanded soon. The
//    manager pre-stages the built stream into an on-chip staging buffer
//    (fetch + build run off the critical path). The region is NOT
//    touched — it may still be computing.
//  - request(): a *demand*. The region is rewritten through the port:
//    from the staging buffer if the hint was right (port-transfer latency
//    only), or through the full fetch+build+load pipeline on a miss.
//
// All timing is explicit simulated time passed by the caller, so the
// manager composes with both the static schedule and the event simulator.
// Placement of the manager (M) and builder (P) — paper Figure 2 —
// determines latency contributions: a CPU-hosted manager adds the
// interrupt round trip (case b), a CPU-hosted builder throttles staging
// to software framing throughput.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aaa/constraints.hpp"
#include "fabric/config_memory.hpp"
#include "fabric/config_port.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/bitstream_store.hpp"
#include "rtr/cache.hpp"
#include "rtr/prefetch.hpp"
#include "rtr/protocol_builder.hpp"
#include "synth/flow.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdr::rtr {

/// Self-healing policy knobs (all off by default: a failed load then
/// throws exactly as before the fault framework existed).
struct RecoveryConfig {
  bool enabled = false;       ///< catch failed loads and repair instead of throwing
  int max_retries = 3;        ///< failed attempts retried before falling back
  TimeNs retry_backoff = 200'000;  ///< wait before the first retry (200 us)
  double backoff_factor = 2.0;     ///< backoff multiplier per further retry
  /// Each backoff wait is scaled by a uniform factor in
  /// [1 - jitter_frac, 1 + jitter_frac], drawn from a per-manager stream
  /// seeded by `jitter_seed` — so a fleet of devices retrying the same
  /// broken module desynchronizes instead of hammering the store in
  /// lockstep, while any single manager stays bit-reproducible.
  double jitter_frac = 0.0;
  std::uint64_t jitter_seed = 0x5eed;
  /// Cumulative backoff ceiling per request (0 = unbounded): once the
  /// total backoff a demand has accumulated would exceed this, remaining
  /// retries are abandoned and the fallback path runs immediately — a
  /// retry storm can delay one request only so long before it yields the
  /// port to the rest of the queue.
  TimeNs max_total_backoff = 0;
};

struct ManagerConfig {
  aaa::Placement manager = aaa::Placement::Fpga;  ///< 'M' placement
  aaa::Placement builder = aaa::Placement::Fpga;  ///< 'P' placement
  fabric::PortKind port_kind = fabric::PortKind::Icap;
  std::optional<fabric::PortTiming> port_timing;  ///< default: per kind
  TimeNs interrupt_latency = 5000;   ///< FPGA->CPU request signalling (case b)
  TimeNs manager_overhead = 500;     ///< request bookkeeping
  double cpu_builder_bytes_per_s = 40e6;
  double fpga_builder_bytes_per_s = 1e9;
  Bytes cache_capacity = 0;          ///< on-chip bitstream cache (0 = off)
  bool verify_loads = true;          ///< readback-verify region ownership
  RecoveryConfig recovery;           ///< retry / fallback policy
  /// Region -> module loaded (after a blank) when the retry budget for a
  /// demanded module is exhausted — the known-good fallback personality.
  std::map<std::string, std::string> safe_modules;
};

/// Case-study configuration (paper §6): self reconfiguration through
/// ICAP, manager and builder in the FPGA's fixed part, partial bitstreams
/// in external memory whose streaming rate bottlenecks a cold load at the
/// paper's observed ≈ 4 ms for the 8 % region.
ManagerConfig sundance_manager_config();

/// How a demand was satisfied.
enum class RequestKind : std::uint8_t {
  AlreadyLoaded,    ///< module resident; no reconfiguration
  PrefetchHit,      ///< staged ahead of time; only the port transfer paid
  PrefetchInFlight, ///< staging still running; partial fetch latency paid
  CacheHit,         ///< unstaged, but the on-chip cache held the stream
  Miss,             ///< full fetch+build+load latency exposed
};

const char* request_kind_name(RequestKind kind);

/// Per-region health as the self-healing manager sees it.
///  - Healthy: last load verified, no corruption detected since.
///  - Degraded: corruption detected (or a load failed) and repair is
///    still pending — retries in flight or a scrub not yet run.
///  - Failed: retry and fallback budgets exhausted; the region holds no
///    usable module until an explicit reload succeeds.
enum class RegionHealth : std::uint8_t { Healthy, Degraded, Failed };

const char* region_health_name(RegionHealth health);

struct RequestOutcome {
  RequestKind kind = RequestKind::Miss;
  TimeNs ready_at = 0;  ///< when the module is usable
  TimeNs stall = 0;     ///< ready_at - request time
};

struct ManagerStats {
  int requests = 0;
  int already_loaded = 0;
  int prefetch_hits = 0;
  int prefetch_inflight = 0;
  int cache_hits = 0;  ///< demands served from the on-chip bitstream cache
  int misses = 0;
  int prefetches_issued = 0;
  int prefetches_wasted = 0;  ///< staged streams replaced before any demand
  int scrubs = 0;
  int blanks = 0;
  // Self-healing accounting (all zero unless faults are injected).
  int load_failures = 0;      ///< failed load attempts, any cause
  int crc_rejects = 0;        ///< streams rejected by CRC before the port transfer
  int port_aborts = 0;        ///< transfers the port cut mid-stream
  int readback_failures = 0;  ///< post-load readback found foreign frames
  int retries = 0;            ///< failed attempts retried with backoff
  int fallbacks = 0;          ///< retry budget exhausted: blank + safe module
  int scrub_repairs = 0;      ///< corrupted frames repaired by scrub()
  int health_transitions = 0; ///< region health state changes
  std::map<std::string, RegionHealth> region_health;
  /// Per-region directed transition history ("healthy->degraded" -> n):
  /// service-level triage can read how often a region bounced between
  /// states straight off the stats block instead of parsing traces.
  std::map<std::string, std::map<std::string, int>> health_transition_counts;
  TimeNs total_stall = 0;
  TimeNs total_load_time = 0;
  Bytes bytes_loaded = 0;

  /// Human-readable "name  value" table of every counter plus the final
  /// per-region health (the `pdrflow simulate` stats block).
  std::string to_string() const;
};

class ReconfigManager {
 public:
  /// `bundle` supplies device, floorplan and variant bitstreams (which
  /// are registered into `store`); both must outlive the manager.
  /// `policy` decides speculative staging.
  ReconfigManager(const synth::DesignBundle& bundle, ManagerConfig config, BitstreamStore& store,
                  PrefetchPolicy& policy);

  /// Demands `module` in `region` at time `now`; returns when usable.
  /// Physically rewrites the region's configuration frames.
  RequestOutcome request(const std::string& region, const std::string& module, TimeNs now);

  /// Hints that `module` will be demanded in `region` soon: stages its
  /// built stream on chip (no effect with NonePrefetch, a resident module
  /// or an identical staged/staging entry). Returns the staging's
  /// completion time if one was started or is running.
  std::optional<TimeNs> announce(const std::string& region, const std::string& module, TimeNs now);

  /// Fleet-cache tier hint (pdr::svc): `module`'s stream is already
  /// resident in a shared off-device cache, so the external-memory fetch
  /// is paid elsewhere (once, for the whole fleet). Stages the module as
  /// if a prefetch had completed at `now` without occupying the staging
  /// engine or the prefetch accounting; the next demand pays the staged
  /// (port-transfer) latency only. No-op when the module is resident.
  void preload_staged(const std::string& region, const std::string& module, TimeNs now);

  /// Asks the policy for a predicted next module and announces it.
  void auto_prefetch(const std::string& region, TimeNs now);

  /// Eagerly registers every region's blank stream with the external
  /// store. The recovery fallback path registers them lazily; a fleet
  /// service sharing one store across device threads calls this serially
  /// at startup so no worker thread ever writes the store mid-drain.
  void prepare_blank_streams();

  /// Declares `module` resident at t = 0 without a load: the initial
  /// full-device bitstream already configured the region with it (the
  /// constraints file's `load startup` policy). Physically applies the
  /// module's frames.
  void set_resident(const std::string& region, const std::string& module);

  /// Eager unload (constraints `unload eager`): loads the region's blank
  /// bitstream, clearing its logic. Occupies the port like any load.
  /// Returns completion time.
  TimeNs blank(const std::string& region, TimeNs now);

  /// Readback verification: compares the region's configuration frames
  /// against the resident module's expected payload; returns the number
  /// of corrupted frames (0 = clean). Throws if nothing is resident.
  int verify_resident(const std::string& region) const;

  /// Scrubbing: rewrites the resident module's frames (full fetch+build+
  /// load pipeline, port-occupying), repairing any SEU corruption.
  /// Returns completion time.
  TimeNs scrub(const std::string& region, TimeNs now);

  /// Readback health check: verifies the resident payload and updates the
  /// region's health (Degraded when corruption is found, back to Healthy
  /// when a previously degraded region reads back clean). Returns the
  /// corrupted-frame count; a region with nothing resident reports 0 and
  /// keeps its current health. Does not occupy the port.
  int check_health(const std::string& region, TimeNs now);

  /// Current health of a region.
  RegionHealth health(const std::string& region) const;

  /// Designates the fallback personality loaded after the retry budget
  /// for a demanded module is exhausted (overrides config.safe_modules).
  void set_safe_module(const std::string& region, const std::string& module);

  /// Certified-replay debug assert mode (pdr::verify integration): arms
  /// the manager with the exact per-region load sequence a statically
  /// certified schedule prescribes (verify::Certificate::expected_loads()).
  /// Every demand that physically rewrites a region — request() on a
  /// non-resident module, set_resident() — must then consume the next
  /// entry of that region's sequence; a diverging module or a demand past
  /// the end of the sequence throws pdr::Error naming both. Maintenance
  /// loads (blank, scrub, recovery fallback) are exempt: they repair state
  /// rather than advance the schedule. Resident re-demands consume
  /// nothing, matching the verifier's residency analysis.
  void enable_certified_replay(std::map<std::string, std::vector<std::string>> loads);

  /// Fault hook consulted on every external-memory fetch: may mutate the
  /// fetched copy (transient bus corruption) and returns true if it did.
  /// Permanent store damage goes through BitstreamStore::corrupt instead.
  using FetchFaultHook = std::function<bool(const std::string& module,
                                            std::vector<std::uint8_t>& bytes)>;
  void set_fetch_fault_hook(FetchFaultHook hook) { fetch_fault_hook_ = std::move(hook); }

  /// Module resident in a region ("" if never configured).
  const std::string& loaded(const std::string& region) const;

  /// End-to-end latency of one cold (unstaged) load of `module`.
  TimeNs cold_load_latency(const std::string& module) const;

  /// Latency of a demand whose stream is already staged on chip (port
  /// transfer + overheads only).
  TimeNs staged_load_latency(const std::string& module) const;

  /// Time for staging a module (fetch + build, off the critical path).
  TimeNs staging_time(const std::string& module) const;

  /// Attaches an observability sink: spans for every port load and
  /// staging go to `tracer` (tracks "cfg_port" / "staging"), counters and
  /// stall/latency histograms to `metrics` (under "rtr."). Either may be
  /// nullptr; both propagate to the cache, builder and prefetch policy.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  const ManagerStats& stats() const { return stats_; }
  const fabric::ConfigMemory& memory() const { return memory_; }
  const fabric::ConfigPort& port() const { return port_; }
  /// Mutable fabric access for fault injection (SEU flips, port hooks).
  fabric::ConfigMemory& memory() { return memory_; }
  fabric::ConfigPort& port() { return port_; }
  const BitstreamCache& cache() const { return cache_; }
  TimeNs port_free_at() const { return port_free_; }

 private:
  struct Staged {
    std::string module;
    TimeNs ready = 0;  ///< when fetch+build completes
  };

  /// Why one load attempt failed.
  enum class LoadFailure : std::uint8_t { None, CrcReject, PortAbort, ReadbackMismatch };

  /// Outcome of a (possibly retried) physical load.
  struct LoadResult {
    std::string resident;   ///< module actually in the region ("" on failure)
    TimeNs extra = 0;       ///< retry/backoff/fallback time beyond the first attempt
    bool fell_back = false;
    bool failed = false;
  };

  /// Streams `module` out of the external store (the fetch fault hook may
  /// corrupt the copy in flight).
  std::vector<std::uint8_t> fetch_stream(const std::string& module);

  /// Applies the physical load through builder + port, throwing on any
  /// failure (the legacy non-recovering path).
  void apply_load(const std::string& region, const std::string& module);

  /// One recovering load attempt: CRC pre-check, port transfer, readback
  /// verification — classified instead of thrown.
  LoadFailure attempt_load(const std::string& region, const std::string& module);

  /// Full self-healing load: attempt, bounded retry with backoff, then
  /// blank + safe-module fallback. With recovery disabled, delegates to
  /// apply_load (and so throws on failure).
  LoadResult perform_load(const std::string& region, const std::string& module,
                          const char* category, TimeNs now, bool allow_fallback = true);

  /// Registers (once) and names the region's MFWR-compressed blank stream.
  std::string ensure_blank_stream(const std::string& region);

  /// Records a health transition (stats, gauge and trace instant).
  void set_health(const std::string& region, RegionHealth health, TimeNs now,
                  const std::string& why);

  /// Increments metrics counter "rtr.manager.<name>" if a sink is set.
  void bump(const char* name, double delta = 1.0);

  /// Records one port occupancy [end - latency, end] as a tracer span and
  /// a load-latency histogram sample. `category` is "load" for demand
  /// loads (so trace durations reconcile with stats().total_load_time),
  /// "blank"/"scrub" for maintenance loads.
  void note_port_load(const std::string& region, const std::string& module, const char* category,
                      TimeNs latency, TimeNs end);

  const synth::DesignBundle& bundle_;
  ManagerConfig config_;
  BitstreamStore& store_;
  PrefetchPolicy& policy_;
  ProtocolBuilder builder_;
  fabric::ConfigMemory memory_;
  fabric::ConfigPort port_;
  BitstreamCache cache_;
  /// Consumes the next certified load for `region` or throws (no-op when
  /// certified replay is off).
  void consume_certified_load(const std::string& region, const std::string& module,
                              const char* via);

  std::map<std::string, std::string> loaded_;
  std::map<std::string, Staged> staged_;  ///< one staging buffer per region
  /// Certified-replay state: expected per-region load sequences and a
  /// cursor of how many each region has consumed. Unarmed when empty opt.
  std::optional<std::map<std::string, std::vector<std::string>>> certified_loads_;
  std::map<std::string, std::size_t> certified_next_;
  TimeNs port_free_ = 0;
  TimeNs staging_free_ = 0;  ///< the staging engine handles one fetch at a time
  ManagerStats stats_;
  Rng recovery_rng_;  ///< retry-jitter stream (seeded from recovery.jitter_seed)
  FetchFaultHook fetch_fault_hook_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::rtr
