// The runtime reconfiguration manager (paper §5, Figure 2).
//
// "A configuration manager is in charge of the configuration bitstream
// which must be loaded on the reconfigurable part by sending configuration
// requests" to the protocol configuration builder. This class ties
// together the bitstream store (external memory), the protocol builder,
// the configuration port, an optional on-chip cache and the prefetch
// policy, and tracks which module is physically resident in each region.
//
// Loading pipeline and the prefetch split:
//
//   external memory --fetch--> protocol builder --stream--> ICAP/SelectMAP
//
// The slow stages are the memory fetch and (for a CPU-hosted builder) the
// software framing; the port transfer itself is fast. Prefetching
// exploits exactly that:
//
//  - announce(): a *hint* that `module` will be demanded soon. The
//    manager pre-stages the built stream into an on-chip staging buffer
//    (fetch + build run off the critical path). The region is NOT
//    touched — it may still be computing.
//  - request(): a *demand*. The region is rewritten through the port:
//    from the staging buffer if the hint was right (port-transfer latency
//    only), or through the full fetch+build+load pipeline on a miss.
//
// All timing is explicit simulated time passed by the caller, so the
// manager composes with both the static schedule and the event simulator.
// Placement of the manager (M) and builder (P) — paper Figure 2 —
// determines latency contributions: a CPU-hosted manager adds the
// interrupt round trip (case b), a CPU-hosted builder throttles staging
// to software framing throughput.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "aaa/constraints.hpp"
#include "fabric/config_memory.hpp"
#include "fabric/config_port.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/bitstream_store.hpp"
#include "rtr/cache.hpp"
#include "rtr/prefetch.hpp"
#include "rtr/protocol_builder.hpp"
#include "synth/flow.hpp"
#include "util/units.hpp"

namespace pdr::rtr {

struct ManagerConfig {
  aaa::Placement manager = aaa::Placement::Fpga;  ///< 'M' placement
  aaa::Placement builder = aaa::Placement::Fpga;  ///< 'P' placement
  fabric::PortKind port_kind = fabric::PortKind::Icap;
  std::optional<fabric::PortTiming> port_timing;  ///< default: per kind
  TimeNs interrupt_latency = 5000;   ///< FPGA->CPU request signalling (case b)
  TimeNs manager_overhead = 500;     ///< request bookkeeping
  double cpu_builder_bytes_per_s = 40e6;
  double fpga_builder_bytes_per_s = 1e9;
  Bytes cache_capacity = 0;          ///< on-chip bitstream cache (0 = off)
  bool verify_loads = true;          ///< readback-verify region ownership
};

/// Case-study configuration (paper §6): self reconfiguration through
/// ICAP, manager and builder in the FPGA's fixed part, partial bitstreams
/// in external memory whose streaming rate bottlenecks a cold load at the
/// paper's observed ≈ 4 ms for the 8 % region.
ManagerConfig sundance_manager_config();

/// How a demand was satisfied.
enum class RequestKind : std::uint8_t {
  AlreadyLoaded,    ///< module resident; no reconfiguration
  PrefetchHit,      ///< staged ahead of time; only the port transfer paid
  PrefetchInFlight, ///< staging still running; partial fetch latency paid
  CacheHit,         ///< unstaged, but the on-chip cache held the stream
  Miss,             ///< full fetch+build+load latency exposed
};

const char* request_kind_name(RequestKind kind);

struct RequestOutcome {
  RequestKind kind = RequestKind::Miss;
  TimeNs ready_at = 0;  ///< when the module is usable
  TimeNs stall = 0;     ///< ready_at - request time
};

struct ManagerStats {
  int requests = 0;
  int already_loaded = 0;
  int prefetch_hits = 0;
  int prefetch_inflight = 0;
  int cache_hits = 0;  ///< demands served from the on-chip bitstream cache
  int misses = 0;
  int prefetches_issued = 0;
  int prefetches_wasted = 0;  ///< staged streams replaced before any demand
  int scrubs = 0;
  int blanks = 0;
  TimeNs total_stall = 0;
  TimeNs total_load_time = 0;
  Bytes bytes_loaded = 0;
};

class ReconfigManager {
 public:
  /// `bundle` supplies device, floorplan and variant bitstreams (which
  /// are registered into `store`); both must outlive the manager.
  /// `policy` decides speculative staging.
  ReconfigManager(const synth::DesignBundle& bundle, ManagerConfig config, BitstreamStore& store,
                  PrefetchPolicy& policy);

  /// Demands `module` in `region` at time `now`; returns when usable.
  /// Physically rewrites the region's configuration frames.
  RequestOutcome request(const std::string& region, const std::string& module, TimeNs now);

  /// Hints that `module` will be demanded in `region` soon: stages its
  /// built stream on chip (no effect with NonePrefetch, a resident module
  /// or an identical staged/staging entry). Returns the staging's
  /// completion time if one was started or is running.
  std::optional<TimeNs> announce(const std::string& region, const std::string& module, TimeNs now);

  /// Asks the policy for a predicted next module and announces it.
  void auto_prefetch(const std::string& region, TimeNs now);

  /// Declares `module` resident at t = 0 without a load: the initial
  /// full-device bitstream already configured the region with it (the
  /// constraints file's `load startup` policy). Physically applies the
  /// module's frames.
  void set_resident(const std::string& region, const std::string& module);

  /// Eager unload (constraints `unload eager`): loads the region's blank
  /// bitstream, clearing its logic. Occupies the port like any load.
  /// Returns completion time.
  TimeNs blank(const std::string& region, TimeNs now);

  /// Readback verification: compares the region's configuration frames
  /// against the resident module's expected payload; returns the number
  /// of corrupted frames (0 = clean). Throws if nothing is resident.
  int verify_resident(const std::string& region) const;

  /// Scrubbing: rewrites the resident module's frames (full fetch+build+
  /// load pipeline, port-occupying), repairing any SEU corruption.
  /// Returns completion time.
  TimeNs scrub(const std::string& region, TimeNs now);

  /// Module resident in a region ("" if never configured).
  const std::string& loaded(const std::string& region) const;

  /// End-to-end latency of one cold (unstaged) load of `module`.
  TimeNs cold_load_latency(const std::string& module) const;

  /// Latency of a demand whose stream is already staged on chip (port
  /// transfer + overheads only).
  TimeNs staged_load_latency(const std::string& module) const;

  /// Time for staging a module (fetch + build, off the critical path).
  TimeNs staging_time(const std::string& module) const;

  /// Attaches an observability sink: spans for every port load and
  /// staging go to `tracer` (tracks "cfg_port" / "staging"), counters and
  /// stall/latency histograms to `metrics` (under "rtr."). Either may be
  /// nullptr; both propagate to the cache, builder and prefetch policy.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  const ManagerStats& stats() const { return stats_; }
  const fabric::ConfigMemory& memory() const { return memory_; }
  const fabric::ConfigPort& port() const { return port_; }
  const BitstreamCache& cache() const { return cache_; }
  TimeNs port_free_at() const { return port_free_; }

 private:
  struct Staged {
    std::string module;
    TimeNs ready = 0;  ///< when fetch+build completes
  };

  /// Applies the physical load through builder + port.
  void apply_load(const std::string& region, const std::string& module);

  /// Increments metrics counter "rtr.manager.<name>" if a sink is set.
  void bump(const char* name, double delta = 1.0);

  /// Records one port occupancy [end - latency, end] as a tracer span and
  /// a load-latency histogram sample. `category` is "load" for demand
  /// loads (so trace durations reconcile with stats().total_load_time),
  /// "blank"/"scrub" for maintenance loads.
  void note_port_load(const std::string& region, const std::string& module, const char* category,
                      TimeNs latency, TimeNs end);

  const synth::DesignBundle& bundle_;
  ManagerConfig config_;
  BitstreamStore& store_;
  PrefetchPolicy& policy_;
  ProtocolBuilder builder_;
  fabric::ConfigMemory memory_;
  fabric::ConfigPort port_;
  BitstreamCache cache_;
  std::map<std::string, std::string> loaded_;
  std::map<std::string, Staged> staged_;  ///< one staging buffer per region
  TimeNs port_free_ = 0;
  TimeNs staging_free_ = 0;  ///< the staging engine handles one fetch at a time
  ManagerStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::rtr
