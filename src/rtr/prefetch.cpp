#include "rtr/prefetch.hpp"

#include "util/error.hpp"

namespace pdr::rtr {

void ScheduleLookahead::feed(const std::string& region, const std::vector<std::string>& upcoming) {
  auto& q = queue_[region];
  q.insert(q.end(), upcoming.begin(), upcoming.end());
}

std::optional<std::string> ScheduleLookahead::predict(const std::string& region,
                                                      const std::string& current) {
  const auto it = queue_.find(region);
  if (it == queue_.end()) return std::nullopt;
  std::size_t h = head_[region];
  // Skip entries equal to what is already resident; the next *different*
  // module is the one worth prefetching.
  while (h < it->second.size() && it->second[h] == current) ++h;
  if (h >= it->second.size()) return std::nullopt;
  count_event("predictions");
  return it->second[h];
}

void ScheduleLookahead::observe(const std::string& region, const std::string& module) {
  count_event("observations");
  const auto it = queue_.find(region);
  if (it == queue_.end()) return;
  std::size_t& h = head_[region];
  // Advance past this demand if it matches the known sequence.
  if (h < it->second.size() && it->second[h] == module) ++h;
}

std::size_t ScheduleLookahead::pending(const std::string& region) const {
  const auto it = queue_.find(region);
  if (it == queue_.end()) return 0;
  const auto hit = head_.find(region);
  const std::size_t h = hit == head_.end() ? 0 : hit->second;
  return it->second.size() - h;
}

HistoryPredictor::HistoryPredictor(const aaa::ConstraintSet& constraints) {
  for (const auto& [a, b] : constraints.relations) counts_[{a, b}] += 1;
}

std::optional<std::string> HistoryPredictor::predict(const std::string& region,
                                                     const std::string& current) {
  (void)region;
  std::optional<std::string> best;
  int best_count = 0;
  for (const auto& [key, count] : counts_) {
    if (key.first != current) continue;
    if (count > best_count) {
      best_count = count;
      best = key.second;
    }
  }
  if (best.has_value()) count_event("predictions");
  return best;
}

void HistoryPredictor::observe(const std::string& region, const std::string& module) {
  count_event("observations");
  const auto it = last_.find(region);
  if (it != last_.end() && it->second != module) counts_[{it->second, module}] += 1;
  last_[region] = module;
}

int HistoryPredictor::transition_count(const std::string& from, const std::string& to) const {
  const auto it = counts_.find({from, to});
  return it == counts_.end() ? 0 : it->second;
}

std::unique_ptr<PrefetchPolicy> make_prefetch_policy(const aaa::ConstraintSet& constraints) {
  switch (constraints.prefetch) {
    case aaa::PrefetchChoice::None: return std::make_unique<NonePrefetch>();
    case aaa::PrefetchChoice::Schedule: return std::make_unique<ScheduleLookahead>();
    case aaa::PrefetchChoice::History: return std::make_unique<HistoryPredictor>(constraints);
  }
  raise("make_prefetch_policy", "unknown prefetch choice");
}

}  // namespace pdr::rtr
