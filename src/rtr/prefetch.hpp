// Configuration prefetch policies.
//
// "The run-time reconfiguration manager ... uses prefetching technic to
// minimize reconfiguration latency of runtime reconfiguration."
// (abstract). Three policies are provided and benchmarked:
//
//  - NonePrefetch: on-demand loading only (the baseline).
//  - ScheduleLookahead: the adequation schedule (or any known request
//    sequence) tells the manager which module each region needs next;
//    prefetch it the moment the port and region are free.
//  - HistoryPredictor: first-order Markov predictor over the observed
//    module sequence per region, optionally seeded by the constraints
//    file's `relation a then b` hints.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aaa/constraints.hpp"
#include "obs/metrics.hpp"

namespace pdr::rtr {

class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;

  /// Module to speculatively load into `region` after `current` finished
  /// being the active module; nullopt = do not prefetch.
  virtual std::optional<std::string> predict(const std::string& region,
                                             const std::string& current) = 0;

  /// Observes an actual (demanded) module activation.
  virtual void observe(const std::string& region, const std::string& module) = 0;

  virtual const char* name() const = 0;

  /// Mirrors observation/prediction counts into `metrics` under
  /// "rtr.prefetch." (nullptr = off).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  /// Increments "rtr.prefetch.<event>" when a metrics sink is attached.
  void count_event(const char* event) const {
    if (metrics_ != nullptr) metrics_->counter(std::string("rtr.prefetch.") + event).add();
  }

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Baseline: never prefetch.
class NonePrefetch final : public PrefetchPolicy {
 public:
  std::optional<std::string> predict(const std::string&, const std::string&) override {
    return std::nullopt;
  }
  void observe(const std::string&, const std::string&) override {}
  const char* name() const override { return "none"; }
};

/// Follows a known future request sequence per region (fed by the static
/// schedule or by the application driver).
class ScheduleLookahead final : public PrefetchPolicy {
 public:
  /// Appends the known upcoming demands of a region, in order.
  void feed(const std::string& region, const std::vector<std::string>& upcoming);

  std::optional<std::string> predict(const std::string& region, const std::string& current) override;
  void observe(const std::string& region, const std::string& module) override;
  const char* name() const override { return "schedule"; }

  std::size_t pending(const std::string& region) const;

 private:
  std::map<std::string, std::vector<std::string>> queue_;
  std::map<std::string, std::size_t> head_;
};

/// First-order Markov predictor: counts module -> next-module transitions
/// per region; predicts the argmax successor of the current module.
class HistoryPredictor final : public PrefetchPolicy {
 public:
  HistoryPredictor() = default;

  /// Seeds transition counts from `relation a then b` constraint hints.
  explicit HistoryPredictor(const aaa::ConstraintSet& constraints);

  std::optional<std::string> predict(const std::string& region, const std::string& current) override;
  void observe(const std::string& region, const std::string& module) override;
  const char* name() const override { return "history"; }

  int transition_count(const std::string& from, const std::string& to) const;

 private:
  std::map<std::string, std::string> last_;                    ///< region -> last module
  std::map<std::pair<std::string, std::string>, int> counts_;  ///< (from, to) -> count
};

/// Factory from the constraints file's `prefetch` directive.
std::unique_ptr<PrefetchPolicy> make_prefetch_policy(const aaa::ConstraintSet& constraints);

}  // namespace pdr::rtr
