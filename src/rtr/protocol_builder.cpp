#include "rtr/protocol_builder.hpp"

#include "util/error.hpp"

namespace pdr::rtr {

ProtocolBuilder::ProtocolBuilder(aaa::Placement placement, fabric::PortKind mode,
                                 double cpu_bytes_per_s, double fpga_bytes_per_s)
    : placement_(placement),
      mode_(mode),
      cpu_bytes_per_s_(cpu_bytes_per_s),
      fpga_bytes_per_s_(fpga_bytes_per_s) {
  PDR_CHECK(cpu_bytes_per_s_ > 0 && fpga_bytes_per_s_ > 0, "ProtocolBuilder",
            "builder throughputs must be positive");
}

double ProtocolBuilder::throughput_bytes_per_s() const {
  return placement_ == aaa::Placement::Cpu ? cpu_bytes_per_s_ : fpga_bytes_per_s_;
}

BuildResult ProtocolBuilder::build(const fabric::DeviceModel& device,
                                   std::span<const std::uint8_t> raw) const {
  // Structural validation IS the builder's job: framing, addresses, CRC.
  const fabric::ParseResult parsed = fabric::BitstreamReader::validate(device, raw);

  BuildResult result;
  result.frames = parsed.frames_written;
  result.stream.assign(raw.begin(), raw.end());
  result.build_time = transfer_time_ns(raw.size(), throughput_bytes_per_s());
  if (metrics_ != nullptr) {
    metrics_->counter("rtr.builder.builds").add();
    metrics_->counter("rtr.builder.bytes").add(static_cast<double>(raw.size()));
    metrics_
        ->histogram("rtr.builder.build_time_ns", obs::latency_buckets_ns(),
                    "protocol builder framing time per stream")
        .observe(static_cast<double>(result.build_time));
  }
  return result;
}

}  // namespace pdr::rtr
