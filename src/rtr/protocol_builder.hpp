// The protocol configuration builder.
//
// "Configuration requests are sent to the protocol configuration builder
// which is in charge to construct a valid reconfiguration stream in
// agreement with the used protocol mode (e.g selectmap)." (§5)
//
// The builder consumes a raw partial bitstream from the store, validates
// its structure against the target device (sync word, IDCODE, packet
// framing, CRC) and emits the port-mode stream. Where it runs (paper's
// 'P' label: FPGA or CPU) determines its throughput and therefore how
// much it contributes to reconfiguration latency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aaa/constraints.hpp"
#include "fabric/bitstream.hpp"
#include "fabric/config_port.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace pdr::rtr {

struct BuildResult {
  std::vector<std::uint8_t> stream;  ///< port-ready stream
  TimeNs build_time = 0;             ///< time the builder itself needs
  int frames = 0;
};

class ProtocolBuilder {
 public:
  /// `cpu_bytes_per_s`: software framing throughput when placed on the
  /// CPU; `fpga_bytes_per_s`: hardware builder throughput (usually above
  /// the port rate, i.e. transparent).
  ProtocolBuilder(aaa::Placement placement, fabric::PortKind mode, double cpu_bytes_per_s,
                  double fpga_bytes_per_s);

  aaa::Placement placement() const { return placement_; }
  fabric::PortKind mode() const { return mode_; }
  double throughput_bytes_per_s() const;

  /// Validates `raw` against `device` and produces the port stream.
  /// Throws pdr::Error (with the precise packet defect) on malformed
  /// streams — a corrupted external memory must never reach the fabric.
  BuildResult build(const fabric::DeviceModel& device, std::span<const std::uint8_t> raw) const;

  /// Mirrors build counts/bytes and a build-time histogram into `metrics`
  /// under "rtr.builder." (nullptr = off).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  aaa::Placement placement_;
  fabric::PortKind mode_;
  double cpu_bytes_per_s_;
  double fpga_bytes_per_s_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::rtr
