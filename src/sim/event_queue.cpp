#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace pdr::sim {

void EventQueue::schedule(TimeNs at, Action action) {
  schedule(at, std::string(), std::move(action));
}

void EventQueue::schedule(TimeNs at, std::string label, Action action) {
  PDR_CHECK(at >= now_, "EventQueue::schedule", "cannot schedule into the past");
  queue_.push(Event{at, seq_++, std::move(label), std::move(action)});
}

std::size_t EventQueue::run(TimeNs until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out before pop; the action may schedule further events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    if (tracer_ != nullptr)
      tracer_->instant("events", ev.label.empty() ? "event" : ev.label, "sim_event", now_);
    ev.action(now_);
    ++executed;
    if (metrics_ != nullptr) metrics_->counter("sim.events_executed").add();
  }
  return executed;
}

}  // namespace pdr::sim
