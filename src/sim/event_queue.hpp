// Discrete-event core: a time-ordered event queue with stable FIFO
// ordering of simultaneous events.
//
// ## Tie-breaking invariant (load-bearing, do not weaken)
//
// Events scheduled for the same timestamp pop in *insertion order*: every
// schedule() call takes a monotonically increasing sequence number, and
// the queue orders by (timestamp, sequence). This also covers events an
// executing action schedules at the current timestamp — they run after
// everything already queued for that instant, in the order they were
// scheduled.
//
// This is not a convenience: it is the foundation of the repo-wide
// determinism guarantee. Every seeded simulation (fault campaigns, the
// MC-CDMA transmitter, scrub scheduling) promises bit-identical output
// for the same seed, and flow::ScenarioRunner promises that a parallel
// sweep is byte-identical to a serial one — both reduce to "a simulation
// is a pure function of its inputs", which an unstable same-timestamp
// order would silently break. The invariant is pinned by the
// EventQueue.SameTimestamp* tests in tests/sim_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace pdr::sim {

class EventQueue {
 public:
  using Action = std::function<void(TimeNs now)>;

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule(TimeNs at, Action action);

  /// Schedules a named `action` at `at`; the label shows up as an instant
  /// event on the tracer's "events" track when one is attached.
  void schedule(TimeNs at, std::string label, Action action);

  /// Schedules `action` `delay` after now().
  void schedule_in(TimeNs delay, Action action) { schedule(now_ + delay, std::move(action)); }

  /// Schedules a named `action` `delay` after now().
  void schedule_in(TimeNs delay, std::string label, Action action) {
    schedule(now_ + delay, std::move(label), std::move(action));
  }

  /// Attaches an observability sink: every executed event emits an
  /// instant trace event (simulated time) and bumps
  /// "sim.events_executed". Either pointer may be nullptr.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Runs events until the queue drains or `until` is passed; returns the
  /// number of events executed.
  std::size_t run(TimeNs until = INT64_MAX);

  TimeNs now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    std::string label;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::sim
