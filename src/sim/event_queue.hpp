// Discrete-event core: a time-ordered event queue with stable FIFO
// ordering of simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace pdr::sim {

class EventQueue {
 public:
  using Action = std::function<void(TimeNs now)>;

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule(TimeNs at, Action action);

  /// Schedules `action` `delay` after now().
  void schedule_in(TimeNs delay, Action action) { schedule(now_ + delay, std::move(action)); }

  /// Runs events until the queue drains or `until` is passed; returns the
  /// number of events executed.
  std::size_t run(TimeNs until = INT64_MAX);

  TimeNs now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace pdr::sim
