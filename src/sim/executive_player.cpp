#include "sim/executive_player.hpp"

#include <deque>
#include <map>
#include <vector>

#include "util/error.hpp"
#include "util/interner.hpp"
#include "util/strings.hpp"

namespace pdr::sim {

using namespace pdr::literals;
using aaa::MacroInstr;
using aaa::MacroOp;
using aaa::MacroProgram;

ExecutivePlayer::ExecutivePlayer(const aaa::Executive& executive,
                                 const aaa::ArchitectureGraph& architecture)
    : executive_(executive), architecture_(architecture) {
  reconfig_cost_ = [](const std::string&, const std::string&) { return 4_ms; };
}

void ExecutivePlayer::set_reconfig_cost(ReconfigCost cost) { reconfig_cost_ = std::move(cost); }

void ExecutivePlayer::set_variant_selector(VariantSelector selector) {
  selector_ = std::move(selector);
}

void ExecutivePlayer::set_initial_residency(std::map<std::string, std::string> residency) {
  initial_residency_ = std::move(residency);
}

namespace {

/// Variant carried by a Compute instruction's name — macro-code renders
/// conditioned computations as "op(variant)". "" when unconditioned.
std::string compute_variant(const std::string& what) {
  const auto open = what.rfind('(');
  if (open == std::string::npos || what.empty() || what.back() != ')') return "";
  return what.substr(open + 1, what.size() - open - 2);
}

}  // namespace

void ExecutivePlayer::set_survive_reconfig_failures(bool survive) {
  survive_reconfig_failures_ = survive;
}

PlayResult ExecutivePlayer::run(int iterations) {
  PDR_CHECK(iterations > 0, "ExecutivePlayer::run", "iterations must be positive");

  struct ProgState {
    const MacroProgram* prog = nullptr;
    std::size_t pc = 0;       ///< index into prog->body
    int iteration = 0;        ///< completed loop passes
    TimeNs time = 0;          ///< local completion time of last instruction
    bool done = false;
  };
  // Buffer and resource names are interned once; the token channels and
  // residency table below are dense vectors indexed by SymbolId, so the
  // per-instruction hot path never builds a key string.
  util::Interner syms;

  std::vector<ProgState> progs;
  std::vector<bool> is_region(executive_.programs.size(), false);
  std::vector<util::SymbolId> prog_resource(executive_.programs.size(), util::kNoSymbol);
  for (const auto& p : executive_.programs) {
    ProgState st;
    st.prog = &p;
    st.done = p.body.empty();
    const auto node = architecture_.find(p.resource);
    is_region[progs.size()] = node.has_value() && architecture_.is_operator(*node) &&
                              architecture_.op(*node).kind == aaa::OperatorKind::FpgaRegion;
    prog_resource[progs.size()] = syms.intern(p.resource);
    progs.push_back(st);
  }

  // Token channels per buffer symbol: snd = producer -> medium,
  // dlv = medium -> consumer. Values are availability times.
  std::vector<std::deque<TimeNs>> snd_channels;
  std::vector<std::deque<TimeNs>> dlv_channels;
  const auto channel = [](std::vector<std::deque<TimeNs>>& channels,
                          util::SymbolId buffer) -> std::deque<TimeNs>& {
    if (channels.size() <= buffer) channels.resize(buffer + 1);
    return channels[buffer];
  };
  TimeNs port_free = 0;
  // Resident module per region symbol (kNoSymbol = never configured).
  std::vector<util::SymbolId> region_loaded;
  const auto loaded_in = [&region_loaded](util::SymbolId region) -> util::SymbolId& {
    if (region_loaded.size() <= region) region_loaded.resize(region + 1, util::kNoSymbol);
    return region_loaded[region];
  };
  for (const auto& [region, module] : initial_residency_)
    loaded_in(syms.intern(region)) = syms.intern(module);

  PlayResult result;
  result.iterations = iterations;
  std::vector<TimeNs> first_iter_end(progs.size(), 0);

  // Cooperative fixpoint: keep advancing any program whose next
  // instruction's inputs are available.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& st : progs) {
      while (!st.done) {
        const MacroInstr& instr = st.prog->body[st.pc];
        bool advanced = false;
        switch (instr.op) {
          case MacroOp::Send: {
            channel(snd_channels, syms.intern(instr.what)).push_back(st.time);
            advanced = true;
            break;
          }
          case MacroOp::Move: {
            auto& q = channel(snd_channels, syms.intern(instr.what));
            if (!q.empty()) {
              const TimeNs token = q.front();
              q.pop_front();
              const TimeNs start = std::max(st.time, token);
              const auto m = architecture_.find(st.prog->resource);
              TimeNs duration = 0;
              if (m.has_value() && !architecture_.is_operator(*m))
                duration = architecture_.medium(*m).transfer_time(instr.bytes);
              const TimeNs end = start + duration;
              result.timeline.add(st.prog->resource, instr.what, SpanKind::Transfer, start, end);
              channel(dlv_channels, syms.intern(instr.what)).push_back(end);
              st.time = end;
              advanced = true;
            }
            break;
          }
          case MacroOp::Recv: {
            auto& q = channel(dlv_channels, syms.intern(instr.what));
            if (!q.empty()) {
              const TimeNs token = q.front();
              q.pop_front();
              st.time = std::max(st.time, token);
              advanced = true;
            }
            break;
          }
          case MacroOp::Compute: {
            const TimeNs end = st.time + instr.duration;
            // Hazard monitor: a conditioned computation in a dynamic
            // region must find its variant physically resident.
            const std::size_t prog_index = static_cast<std::size_t>(&st - progs.data());
            if (is_region[prog_index]) {
              const std::string variant = compute_variant(instr.what);
              if (!variant.empty()) {
                const util::SymbolId resident = loaded_in(prog_resource[prog_index]);
                if (resident == util::kNoSymbol || syms.name(resident) != variant) {
                  const std::string resident_name =
                      resident == util::kNoSymbol ? "" : std::string(syms.name(resident));
                  ++result.hazard_faults;
                  result.hazards.push_back(strprintf(
                      "iteration %d: '%s' at %lld ns in region '%s' needs variant '%s' but %s",
                      st.iteration, instr.what.c_str(), static_cast<long long>(st.time),
                      st.prog->resource.c_str(), variant.c_str(),
                      resident_name.empty()
                          ? "the region was never configured"
                          : ("module '" + resident_name + "' is resident").c_str()));
                }
              }
            }
            result.timeline.add(st.prog->resource, instr.what, SpanKind::Compute, st.time, end);
            st.time = end;
            advanced = true;
            break;
          }
          case MacroOp::Reconfig: {
            std::string module = instr.what;
            if (selector_) module = selector_(st.iteration, st.prog->resource, instr.what);
            const util::SymbolId resource_sym =
                prog_resource[static_cast<std::size_t>(&st - progs.data())];
            // With runtime selection, regions are sticky: reloading the
            // resident module costs nothing.
            if (selector_ && loaded_in(resource_sym) == syms.intern(module)) {
              ++result.reconfigs_skipped;
              advanced = true;
              break;
            }
            TimeNs cost = 0;
            if (survive_reconfig_failures_) {
              try {
                cost = reconfig_cost_(st.prog->resource, module);
              } catch (const Error&) {
                // The load failed past recovery; keep the previous
                // resident module and let the program continue.
                ++result.reconfigs_failed;
                advanced = true;
                break;
              }
            } else {
              cost = reconfig_cost_(st.prog->resource, module);
            }
            const TimeNs start = std::max(st.time, port_free);
            const TimeNs end = start + cost;
            port_free = end;
            loaded_in(resource_sym) = syms.intern(module);
            result.timeline.add(st.prog->resource, "load " + module, SpanKind::Reconfig, start,
                                end);
            st.time = end;
            ++result.reconfigs;
            advanced = true;
            break;
          }
        }
        if (!advanced) break;  // blocked; try other programs
        progress = true;
        if (++st.pc == st.prog->body.size()) {
          st.pc = 0;
          ++st.iteration;
          if (st.iteration == 1) first_iter_end[static_cast<std::size_t>(&st - progs.data())] = st.time;
          if (st.iteration >= iterations) st.done = true;
        }
      }
    }
  }

  // Deadlock check: every program must have completed all iterations.
  for (const auto& st : progs) {
    if (!st.done) {
      const MacroInstr& instr = st.prog->body[st.pc];
      raise("ExecutivePlayer",
            strprintf("deadlock: program '%s' blocked at iteration %d on '%s %s'",
                      st.prog->resource.c_str(), st.iteration, macro_op_name(instr.op),
                      instr.what.c_str()));
    }
    result.makespan = std::max(result.makespan, st.time);
  }
  if (iterations > 1) {
    TimeNs first = 0;
    for (std::size_t i = 0; i < progs.size(); ++i) first = std::max(first, first_iter_end[i]);
    result.iteration_period = (result.makespan - first) / (iterations - 1);
  } else {
    result.iteration_period = result.makespan;
  }
  if (tracer_ != nullptr) result.timeline.export_to(*tracer_, "exec_");
  if (metrics_ != nullptr) {
    metrics_->counter("sim.player.runs").add();
    metrics_->counter("sim.player.reconfigs").add(result.reconfigs);
    metrics_->counter("sim.player.reconfigs_skipped").add(result.reconfigs_skipped);
    metrics_->counter("sim.player.reconfigs_failed").add(result.reconfigs_failed);
    metrics_->counter("sim.player.hazard_faults").add(result.hazard_faults);
    metrics_->gauge("sim.player.makespan_ns").set(static_cast<double>(result.makespan));
    metrics_->gauge("sim.player.iteration_period_ns")
        .set(static_cast<double>(result.iteration_period));
  }
  return result;
}

}  // namespace pdr::sim
