// Executive player: executes generated macro-code.
//
// The synchronized executive (aaa::Executive) is a set of sequential loop
// programs, one per architecture vertex, synchronizing through buffer
// tokens: a producer's `send` deposits a token that the medium's `move`
// carries and the consumer's `recv` blocks on. The player runs all
// programs for N iterations of the infinitely-repeated data-flow graph,
// verifying the executive is deadlock-free and measuring the achieved
// iteration period (throughput) — which a correct pipelined executive
// makes shorter than the single-iteration makespan.
//
// Reconfig instructions contend for the single configuration port and
// take `reconfig_cost(region, module)`.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "aaa/architecture_graph.hpp"
#include "aaa/macrocode.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"

namespace pdr::sim {

struct PlayResult {
  TimeNs makespan = 0;          ///< completion time of the last program
  TimeNs iteration_period = 0;  ///< steady-state time per graph iteration
  int iterations = 0;
  Timeline timeline;
  int reconfigs = 0;
  int reconfigs_skipped = 0;  ///< region already held the selected module
  int reconfigs_failed = 0;   ///< cost callback threw and the player survived
  /// Hazard monitor (the runtime half of pdr::verify's differential
  /// oracle): a Compute executing a variant in a dynamic region whose
  /// resident module differs — or that was never configured — is counted
  /// here with a description. A schedule the static verifier certified
  /// must replay with hazard_faults == 0.
  int hazard_faults = 0;
  std::vector<std::string> hazards;  ///< one description per fault
};

class ExecutivePlayer {
 public:
  using ReconfigCost = std::function<TimeNs(const std::string& region, const std::string& module)>;

  ExecutivePlayer(const aaa::Executive& executive, const aaa::ArchitectureGraph& architecture);

  /// Cost of a Reconfig macro instruction (default 4 ms flat).
  void set_reconfig_cost(ReconfigCost cost);

  /// Runtime variant selection: called once per (iteration, region) when
  /// the program reaches a Reconfig instruction; the returned module
  /// replaces the statically scheduled one (return the instruction's own
  /// module to keep it). With a selector installed, regions become
  /// sticky: a Reconfig whose module is already resident from the
  /// previous iteration is skipped at zero cost — the runtime semantics
  /// of the paper's conditioned vertices.
  using VariantSelector = std::function<std::string(int iteration, const std::string& region,
                                                    const std::string& scheduled)>;
  void set_variant_selector(VariantSelector selector);

  /// Declares modules resident per region at t = 0 (the schedule's
  /// preload assumptions): the hazard monitor treats them as configured
  /// before the first Reconfig instruction, exactly as the static
  /// verifier's VerifyOptions::preloaded does.
  void set_initial_residency(std::map<std::string, std::string> residency);

  /// With survival on, a reconfig-cost callback that throws pdr::Error
  /// (e.g. a ReconfigManager load that exhausted its retry budget) no
  /// longer aborts the run: the instruction is counted in
  /// `PlayResult::reconfigs_failed`, the region keeps its previous
  /// module, and the program continues — the degraded-mode semantics of
  /// a self-healing executive. Off (the default) the error propagates.
  void set_survive_reconfig_failures(bool survive);

  /// Attaches an observability sink: every executed instruction's span is
  /// exported to `tracer` (categories "exec_compute" / "exec_transfer" /
  /// "exec_reconfig") and run totals land in `metrics` under "sim.player.".
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Runs `iterations` loop passes of every program. Throws pdr::Error
  /// with the blocked instruction set if the executive deadlocks.
  PlayResult run(int iterations);

 private:
  const aaa::Executive& executive_;
  const aaa::ArchitectureGraph& architecture_;
  ReconfigCost reconfig_cost_;
  VariantSelector selector_;
  std::map<std::string, std::string> initial_residency_;
  bool survive_reconfig_failures_ = false;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace pdr::sim
