#include "sim/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::sim {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::Transfer: return "transfer";
    case SpanKind::Reconfig: return "reconfig";
    case SpanKind::Stall: return "stall";
  }
  return "?";
}

void Timeline::add(std::string resource, std::string label, SpanKind kind, TimeNs start,
                   TimeNs end) {
  PDR_CHECK(end >= start, "Timeline::add", "span ends before it starts");
  horizon_ = std::max(horizon_, end);
  spans_.push_back(Span{std::move(resource), std::move(label), kind, start, end});
}

std::map<std::string, TimeNs> Timeline::busy() const {
  std::map<std::string, TimeNs> out;
  for (const auto& s : spans_)
    if (s.kind != SpanKind::Stall) out[s.resource] += s.end - s.start;
  return out;
}

TimeNs Timeline::total(SpanKind kind) const {
  TimeNs t = 0;
  for (const auto& s : spans_)
    if (s.kind == kind) t += s.end - s.start;
  return t;
}

std::string Timeline::gantt(int width) const {
  if (spans_.empty() || horizon_ == 0) return "(empty timeline)\n";
  std::vector<std::string> resources;
  for (const auto& s : spans_)
    if (std::find(resources.begin(), resources.end(), s.resource) == resources.end())
      resources.push_back(s.resource);

  std::string out;
  for (const auto& res : resources) {
    std::string bar(static_cast<std::size_t>(width), '.');
    for (const auto& s : spans_) {
      if (s.resource != res) continue;
      auto pos = [&](TimeNs t) {
        return std::min<std::size_t>(static_cast<std::size_t>(width) - 1,
                                     static_cast<std::size_t>(t * width / horizon_));
      };
      const char mark = s.kind == SpanKind::Compute    ? '#'
                        : s.kind == SpanKind::Transfer ? '='
                        : s.kind == SpanKind::Reconfig ? 'R'
                                                       : 'x';
      for (std::size_t i = pos(s.start); i <= pos(s.end > 0 ? s.end - 1 : 0); ++i) bar[i] = mark;
    }
    out += strprintf("%-10s |%s|\n", res.c_str(), bar.c_str());
  }
  out += strprintf("%-10s  0%*s%.1f us   (#=compute ==transfer R=reconfig x=stall)\n", "",
                   width - 10, "", to_us(horizon_));
  return out;
}

std::string Timeline::to_svg(int width_px) const {
  PDR_CHECK(width_px >= 100, "Timeline::to_svg", "width too small");
  std::vector<std::string> resources;
  for (const auto& s : spans_)
    if (std::find(resources.begin(), resources.end(), s.resource) == resources.end())
      resources.push_back(s.resource);

  constexpr int kLane = 28;
  constexpr int kLabelWidth = 110;
  constexpr int kHeader = 24;
  const int height = kHeader + kLane * static_cast<int>(resources.size()) + 8;
  const double horizon = std::max<TimeNs>(horizon_, 1);
  const double plot_w = static_cast<double>(width_px - kLabelWidth - 10);

  auto color_of = [](SpanKind kind) {
    switch (kind) {
      case SpanKind::Compute: return "#4c9f70";
      case SpanKind::Transfer: return "#4878a8";
      case SpanKind::Reconfig: return "#c05a3a";
      case SpanKind::Stall: return "#b8b8b8";
    }
    return "#000000";
  };

  std::string svg = strprintf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"monospace\" font-size=\"11\">\n",
      width_px, height);
  svg += strprintf("  <text x=\"4\" y=\"14\">timeline, horizon %.3f ms</text>\n", to_ms(horizon_));
  for (std::size_t r = 0; r < resources.size(); ++r) {
    const int y = kHeader + static_cast<int>(r) * kLane;
    svg += strprintf("  <text x=\"4\" y=\"%d\">%s</text>\n", y + 17, resources[r].c_str());
    svg += strprintf(
        "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#dddddd\"/>\n", kLabelWidth,
        y + kLane - 2, width_px - 10, y + kLane - 2);
  }
  for (const auto& s : spans_) {
    const auto lane = static_cast<std::size_t>(
        std::find(resources.begin(), resources.end(), s.resource) - resources.begin());
    const double x = kLabelWidth + plot_w * static_cast<double>(s.start) / horizon;
    const double w =
        std::max(1.0, plot_w * static_cast<double>(s.end - s.start) / horizon);
    const int y = kHeader + static_cast<int>(lane) * kLane + 3;
    svg += strprintf(
        "  <rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\">"
        "<title>%s [%s] %.3f-%.3f ms</title></rect>\n",
        x, y, w, kLane - 8, color_of(s.kind), s.label.c_str(), span_kind_name(s.kind),
        to_ms(s.start), to_ms(s.end));
  }
  svg += "</svg>\n";
  return svg;
}

void Timeline::export_to(obs::Tracer& tracer, const std::string& category_prefix) const {
  for (const auto& s : spans_)
    tracer.span(s.resource, s.label, category_prefix + span_kind_name(s.kind), s.start, s.end);
}

std::string Timeline::to_csv() const {
  std::string out = "resource,label,kind,start_ns,end_ns\n";
  for (const auto& s : spans_)
    out += strprintf("%s,%s,%s,%lld,%lld\n", s.resource.c_str(), s.label.c_str(),
                     span_kind_name(s.kind), static_cast<long long>(s.start),
                     static_cast<long long>(s.end));
  return out;
}

}  // namespace pdr::sim
