// Execution timeline (Gantt) recording.
//
// Both the executive player and the transmitter simulation record spans
// here; examples render the ASCII Gantt, benches read the busy statistics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/units.hpp"

namespace pdr::sim {

enum class SpanKind : std::uint8_t { Compute, Transfer, Reconfig, Stall };

const char* span_kind_name(SpanKind kind);

struct Span {
  std::string resource;
  std::string label;
  SpanKind kind = SpanKind::Compute;
  TimeNs start = 0;
  TimeNs end = 0;
};

class Timeline {
 public:
  void add(std::string resource, std::string label, SpanKind kind, TimeNs start, TimeNs end);

  const std::vector<Span>& spans() const { return spans_; }
  TimeNs horizon() const { return horizon_; }

  /// Busy time per resource (sum of span lengths, stalls excluded).
  std::map<std::string, TimeNs> busy() const;

  /// Total time in spans of one kind.
  TimeNs total(SpanKind kind) const;

  /// ASCII Gantt, one row per resource.
  std::string gantt(int width = 72) const;

  /// CSV dump: resource,label,kind,start_ns,end_ns.
  std::string to_csv() const;

  /// Replays every span into `tracer` (track = resource, category =
  /// `category_prefix` + span kind name), merging this timeline into a
  /// process-wide Chrome trace.
  void export_to(obs::Tracer& tracer, const std::string& category_prefix = "") const;

  /// Standalone SVG Gantt rendering (one lane per resource, spans colored
  /// by kind, hover titles with label and times) — viewable in any
  /// browser, the artifact a schedule review passes around.
  std::string to_svg(int width_px = 900) const;

 private:
  std::vector<Span> spans_;
  TimeNs horizon_ = 0;
};

}  // namespace pdr::sim
