#include "svc/breaker.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::svc {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  PDR_CHECK(config_.failure_threshold >= 1, "CircuitBreaker", "failure_threshold must be >= 1");
  PDR_CHECK(config_.cooldown_ticks >= 1, "CircuitBreaker", "cooldown_ticks must be >= 1");
  PDR_CHECK(config_.probe_budget >= 1, "CircuitBreaker", "probe_budget must be >= 1");
}

void CircuitBreaker::transition(BreakerState next) {
  transitions_.push_back(strprintf("%s->%s@t%d", breaker_state_name(state_),
                                   breaker_state_name(next), ticks_));
  state_ = next;
  if (next == BreakerState::Open) {
    ++opens_;
    cooldown_left_ = config_.cooldown_ticks;
  } else if (next == BreakerState::HalfOpen) {
    probes_left_ = config_.probe_budget;
    probe_successes_ = 0;
  } else {
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::tick() {
  ++ticks_;
  if (state_ == BreakerState::Open && --cooldown_left_ <= 0) transition(BreakerState::HalfOpen);
}

bool CircuitBreaker::would_allow() const {
  switch (state_) {
    case BreakerState::Closed: return true;
    case BreakerState::Open: return false;
    case BreakerState::HalfOpen: return probes_left_ > 0;
  }
  return false;
}

bool CircuitBreaker::allow_request() {
  switch (state_) {
    case BreakerState::Closed: return true;
    case BreakerState::Open: return false;
    case BreakerState::HalfOpen:
      if (probes_left_ <= 0) return false;
      --probes_left_;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  if (state_ == BreakerState::HalfOpen) {
    if (++probe_successes_ >= config_.probe_budget) transition(BreakerState::Closed);
  } else if (state_ == BreakerState::Closed) {
    consecutive_failures_ = 0;
  }
}

void CircuitBreaker::record_failure() {
  if (state_ == BreakerState::HalfOpen) {
    transition(BreakerState::Open);
  } else if (state_ == BreakerState::Closed &&
             ++consecutive_failures_ >= config_.failure_threshold) {
    transition(BreakerState::Open);
  }
}

}  // namespace pdr::svc
