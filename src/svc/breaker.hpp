// Per-device circuit breaker for the fleet service.
//
// Driven by the self-healing manager's outcome signals (PR 3): a request
// whose region ends up Failed, or that only completed by falling back to
// the safe module, counts as a failure. The classic three-state machine:
//
//   Closed ──(K consecutive failures)──> Open
//   Open ──(cooldown ticks elapse)──> HalfOpen
//   HalfOpen ──(probe succeeds)──> Closed
//   HalfOpen ──(probe fails)──> Open (cooldown restarts)
//
// While Open, the service routes around the device (or serves pinned
// requests degraded via the safe module); those degraded servings do NOT
// feed the breaker — only real attempts at the demanded module do, so a
// device cannot "heal" the breaker by answering with its fallback
// personality.
//
// All state advances on the service's serial tick or on per-device
// outcome records — each breaker is touched by exactly one thread at a
// time, so there is no internal locking, and the transition history is
// deterministic for a deterministic request stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdr::svc {

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 3;  ///< consecutive failures tripping Closed -> Open
  int cooldown_ticks = 4;     ///< service ticks Open before probing resumes
  int probe_budget = 1;       ///< HalfOpen requests allowed per cooldown
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  BreakerState state() const { return state_; }

  /// Serial phase, once per service tick: advances the Open cooldown.
  void tick();

  /// Non-consuming admission check (for routing: would this device take
  /// the request?). Closed: yes; Open: no; HalfOpen: yes while probe
  /// slots remain.
  bool would_allow() const;

  /// HalfOpen admission: consumes one probe slot if available. In Closed
  /// the answer is always yes; in Open always no.
  bool allow_request();

  /// Outcome of a real attempt at the demanded module (degraded-route
  /// servings never call these).
  void record_success();
  void record_failure();

  int opens() const { return opens_; }

  /// Deterministic transition history: "closed->open@t3"-style entries
  /// stamped with the tick counter.
  const std::vector<std::string>& transitions() const { return transitions_; }

 private:
  void transition(BreakerState next);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int cooldown_left_ = 0;
  int probes_left_ = 0;
  int probe_successes_ = 0;
  int ticks_ = 0;
  int opens_ = 0;
  std::vector<std::string> transitions_;
};

}  // namespace pdr::svc
