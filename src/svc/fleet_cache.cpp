#include "svc/fleet_cache.hpp"

#include <algorithm>
#include <utility>

namespace pdr::svc {

FleetCache::FleetCache(Bytes capacity) : capacity_(capacity) {}

std::shared_ptr<const std::vector<std::uint8_t>> FleetCache::get_or_fetch(
    const std::string& module, std::uint64_t stamp,
    const std::function<std::vector<std::uint8_t>()>& fetch) {
  std::promise<std::shared_ptr<const std::vector<std::uint8_t>>> promise;
  std::shared_future<std::shared_ptr<const std::vector<std::uint8_t>>> future;
  bool is_fetcher = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(module);
    if (it != entries_.end()) {
      it->second.stamp = std::max(it->second.stamp, stamp);
      ++stats_.served;
      if (!it->second.ready) ++stats_.coalesced;
      future = it->second.future;
    } else {
      future = promise.get_future().share();
      Entry entry;
      entry.future = future;
      entry.stamp = stamp;
      entries_.emplace(module, std::move(entry));
      ++stats_.fetches;
      is_fetcher = true;
    }
  }
  if (is_fetcher) {
    try {
      auto stream = std::make_shared<const std::vector<std::uint8_t>>(fetch());
      const Bytes bytes = stream->size();
      promise.set_value(std::move(stream));
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(module);
      if (it != entries_.end()) {  // invalidate() may have raced us out
        it->second.bytes = bytes;
        it->second.ready = true;
        stats_.resident_bytes += bytes;
        ++stats_.resident_modules;
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(module);  // let the next caller retry
    }
  }
  return future.get();
}

bool FleetCache::resident(const std::string& module) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(module);
  return it != entries_.end() && it->second.ready;
}

void FleetCache::invalidate(const std::string& module) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(module);
  if (it == entries_.end()) return;
  if (it->second.ready) {
    stats_.resident_bytes -= it->second.bytes;
    --stats_.resident_modules;
  }
  entries_.erase(it);
  ++stats_.invalidations;
}

std::vector<std::string> FleetCache::sweep() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> evicted;
  if (capacity_ == 0) return evicted;
  while (stats_.resident_bytes > capacity_) {
    // Victim: the ready entry with the lowest stamp (oldest last touch in
    // request-log order — a deterministic LRU).
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;
      if (victim == entries_.end() || it->second.stamp < victim->second.stamp) victim = it;
    }
    if (victim == entries_.end()) break;
    stats_.resident_bytes -= victim->second.bytes;
    --stats_.resident_modules;
    ++stats_.evictions;
    evicted.push_back(victim->first);
    entries_.erase(victim);
  }
  return evicted;
}

FleetCache::Stats FleetCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pdr::svc
