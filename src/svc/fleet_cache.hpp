// Shared fleet bitstream cache: the single-flight tier between N devices
// and the external bitstream store.
//
// flow::ArtifactStore proved the pattern for pipeline artifacts — a
// promise/shared_future per key under one mutex, so N concurrent
// requests for a missing entry run the builder exactly once. This is
// that pattern generalized for the fleet service: keyed by module name,
// size-bounded, with deterministic eviction.
//
// Concurrency/determinism split:
//  - get_or_fetch() is thread-safe and single-flight: device workers call
//    it concurrently during the parallel drain phase; exactly one runs
//    `fetch` per missing module, the rest share the result.
//  - sweep() and invalidate() are serial-phase operations (the service
//    coordinator calls them between parallel phases). Eviction order is
//    by ascending stamp — the caller supplies the request-log index as
//    the stamp and entry stamps take the max over callers, so which
//    worker touched an entry first never changes what sweep() evicts.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pdr::svc {

class FleetCache {
 public:
  struct Stats {
    std::uint64_t fetches = 0;    ///< fetch invocations (one per missing module)
    std::uint64_t served = 0;     ///< requests satisfied without running fetch
    std::uint64_t coalesced = 0;  ///< of `served`: waited on an in-flight fetch
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    Bytes resident_bytes = 0;
    std::size_t resident_modules = 0;
  };

  /// `capacity` bounds resident bytes (0 = unbounded). The bound is
  /// enforced by sweep(), not mid-fetch, so one oversized module still
  /// caches (and is evicted on the next sweep).
  explicit FleetCache(Bytes capacity);

  /// Returns `module`'s stream, running `fetch` only when it is not
  /// resident. Single-flight: concurrent callers for one missing module
  /// run `fetch` once and share the result. A fetch that throws does not
  /// poison the key — the exception propagates to every waiter and the
  /// next call retries. `stamp` (the caller's request-log index) feeds
  /// eviction ordering; an entry keeps the max stamp seen.
  std::shared_ptr<const std::vector<std::uint8_t>> get_or_fetch(
      const std::string& module, std::uint64_t stamp,
      const std::function<std::vector<std::uint8_t>()>& fetch);

  /// True when `module` is resident (fetch completed, not evicted).
  bool resident(const std::string& module) const;

  /// Serial phase: drops `module` (e.g. after permanent store damage the
  /// cached copy is stale). No-op when absent.
  void invalidate(const std::string& module);

  /// Serial phase: evicts lowest-stamp entries until resident bytes fit
  /// the capacity. Returns the evicted names in eviction order.
  std::vector<std::string> sweep();

  Bytes capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const std::vector<std::uint8_t>>> future;
    std::uint64_t stamp = 0;
    Bytes bytes = 0;     ///< filled in when the fetch completes
    bool ready = false;  ///< future resolved successfully
  };

  Bytes capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace pdr::svc
