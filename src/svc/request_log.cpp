#include "svc/request_log.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pdr::svc {

const char* request_class_name(RequestClass klass) {
  switch (klass) {
    case RequestClass::Demand: return "demand";
    case RequestClass::Maintenance: return "maintenance";
  }
  return "?";
}

namespace {

/// Same token-stream shape as the constraints and fault-spec parsers:
/// '#' comments, whitespace-separated words, errors carrying the line.
class Parser {
 public:
  explicit Parser(const std::string& text) { tokenize(text); }

  RequestLog parse() {
    bool saw_fleet = false;
    while (!at_end()) {
      const std::string head = next("directive");
      if (head == "fleet") {
        fail_unless(!saw_fleet, "duplicate 'fleet' directive");
        fail_unless(next("fleet devices <n>") == "devices", "expected 'devices' in fleet");
        log_.devices = static_cast<int>(parse_u64(next("fleet devices <n>")));
        fail_unless(log_.devices >= 1, "fleet needs at least one device");
        saw_fleet = true;
      } else if (head == "request") {
        log_.requests.push_back(parse_request());
      } else {
        fail("unknown directive '" + head + "'");
      }
    }
    fail_unless(saw_fleet, "missing 'fleet devices <n>' directive");
    // The stream replays in arrival order; ties keep file order so the
    // log, not map iteration, decides who is admitted first.
    std::stable_sort(log_.requests.begin(), log_.requests.end(),
                     [](const ServiceRequest& a, const ServiceRequest& b) { return a.at < b.at; });
    return std::move(log_);
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };

  ServiceRequest parse_request() {
    ServiceRequest req;
    bool have_at = false;
    bool have_region = false;
    bool have_module = false;
    while (!at_end() && peek() != "request" && peek() != "fleet") {
      const std::string key = next("request field");
      if (key == "at_us") {
        req.at = parse_us(next("at_us <t>"));
        fail_unless(req.at >= 0, "request time must be non-negative");
        have_at = true;
      } else if (key == "device") {
        const std::string v = next("device <n>|any");
        req.device = v == "any" ? kAnyDevice : static_cast<int>(parse_u64(v));
      } else if (key == "region") {
        req.region = next("region <name>");
        have_region = true;
      } else if (key == "module") {
        req.module = next("module <name>");
        have_module = true;
      } else if (key == "class") {
        const std::string v = next("class demand|maintenance");
        fail_unless(v == "demand" || v == "maintenance",
                    "class must be demand|maintenance, got '" + v + "'");
        req.klass = v == "demand" ? RequestClass::Demand : RequestClass::Maintenance;
      } else if (key == "priority") {
        req.priority = static_cast<int>(parse_u64(next("priority <n>")));
      } else if (key == "deadline_us") {
        req.deadline = parse_us(next("deadline_us <t>"));
        fail_unless(req.deadline > 0, "deadline must be positive");
      } else {
        fail("unknown request field '" + key + "'");
      }
    }
    fail_unless(have_at, "request is missing 'at_us'");
    fail_unless(have_region, "request is missing 'region'");
    fail_unless(have_module, "request is missing 'module'");
    return req;
  }

  void tokenize(const std::string& text) {
    const auto lines = split(text, '\n');
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string raw = lines[i];
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      for (const std::string& word : split_ws(raw)) tokens_.push_back(Token{word, i + 1});
    }
  }

  bool at_end() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const { return tokens_[pos_].text; }

  [[noreturn]] void fail(const std::string& msg) const {
    const std::size_t line = pos_ > 0 && pos_ <= tokens_.size()
                                 ? tokens_[pos_ - 1].line
                                 : (tokens_.empty() ? 0 : tokens_.back().line);
    raise("request_log", "line " + std::to_string(line) + ": " + msg);
  }
  void fail_unless(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  std::string next(const std::string& usage) {
    if (at_end()) fail("missing token; usage: " + usage);
    return tokens_[pos_++].text;
  }

  double parse_double(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const double v = std::stod(s, &idx);
      if (idx != s.size()) fail("trailing characters in number '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected a number, got '" + s + "'");
    }
  }

  TimeNs parse_us(const std::string& s) const {
    return static_cast<TimeNs>(parse_double(s) * 1e3);
  }

  std::uint64_t parse_u64(const std::string& s) const {
    try {
      std::size_t idx = 0;
      const unsigned long long v = std::stoull(s, &idx);
      if (idx != s.size()) fail("trailing characters in integer '" + s + "'");
      return v;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      fail("expected an unsigned integer, got '" + s + "'");
    }
  }

  RequestLog log_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

RequestLog parse_request_log(const std::string& text) { return Parser(text).parse(); }

namespace {

/// Microsecond rendering that round-trips: whole microseconds print as
/// integers (no %g significant-digit truncation on long horizons).
std::string fmt_us(TimeNs t) {
  if (t % 1000 == 0) return strprintf("%lld", static_cast<long long>(t / 1000));
  return strprintf("%.3f", to_us(t));
}

}  // namespace

std::string write_request_log(const RequestLog& log) {
  std::string out;
  out += strprintf("fleet devices %d\n", log.devices);
  for (const ServiceRequest& r : log.requests) {
    out += "request at_us " + fmt_us(r.at);
    if (r.device == kAnyDevice)
      out += " device any";
    else
      out += strprintf(" device %d", r.device);
    out += strprintf(" region %s module %s class %s", r.region.c_str(), r.module.c_str(),
                     request_class_name(r.klass));
    if (r.priority != 0) out += strprintf(" priority %d", r.priority);
    if (r.deadline > 0) out += " deadline_us " + fmt_us(r.deadline);
    out += "\n";
  }
  return out;
}

bool looks_like_request_log(const std::string& text) {
  for (const std::string& line : split(text, '\n')) {
    std::string raw = line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const auto words = split_ws(raw);
    if (words.empty()) continue;
    return words.front() == "fleet";
  }
  return false;
}

RequestLog generate_request_log(
    const TrafficOptions& options,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& catalog) {
  PDR_CHECK(!catalog.empty(), "generate_request_log", "catalog has no regions");
  PDR_CHECK(options.devices >= 1, "generate_request_log", "need at least one device");
  RequestLog log;
  log.devices = options.devices;
  Rng rng(options.seed);
  const std::int64_t horizon_us = options.horizon > 1000 ? options.horizon / 1000 - 1 : 0;
  for (int i = 0; i < options.requests; ++i) {
    ServiceRequest req;
    // Arrivals are quantized to whole microseconds so a generated log
    // round-trips its file form exactly.
    req.at = rng.uniform_int(0, horizon_us) * 1000;
    const auto& [region, variants] = catalog[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1))];
    req.region = region;
    req.module = variants[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(variants.size()) - 1))];
    req.device = rng.chance(options.any_device_frac)
                     ? kAnyDevice
                     : static_cast<int>(rng.uniform_int(0, options.devices - 1));
    if (rng.chance(options.maintenance_frac)) {
      req.klass = RequestClass::Maintenance;
      req.priority = 0;  // maintenance never outranks demand traffic
    } else {
      req.klass = RequestClass::Demand;
      req.priority = static_cast<int>(rng.uniform_int(1, options.max_priority));
      if (options.deadline > 0) req.deadline = options.deadline;
    }
    log.requests.push_back(std::move(req));
  }
  std::stable_sort(log.requests.begin(), log.requests.end(),
                   [](const ServiceRequest& a, const ServiceRequest& b) { return a.at < b.at; });
  return log;
}

}  // namespace pdr::svc
