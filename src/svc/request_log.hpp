// Recorded reconfiguration-request streams for the fleet service.
//
// A request log is the replayable input of `pdrflow serve`: a fleet size
// plus a time-ordered stream of reconfiguration requests, in the same
// token DSL the constraints and fault-spec files use ('#' comments,
// line-numbered parse errors):
//
//   fleet devices 4
//   request at_us 100 device 0 region D1 module qpsk class demand
//           priority 5 deadline_us 8000
//   request at_us 250 device any region D1 module qam16 class maintenance
//
// Per-request fields after `request` are keyword/value pairs in any
// order; `at_us`, `region` and `module` are mandatory. `device` is a
// shard index or `any` (the service routes it); `class` is `demand`
// (a load the application is waiting on) or `maintenance` (scrub
// traffic that yields under pressure); `priority` orders a shard's
// queue (higher first); `deadline_us` is the relative completion
// deadline (omitted = none).
//
// Replaying the same log through the service is byte-identical for any
// worker-thread count — the log, not wall-clock arrival, is the single
// source of request order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace pdr::svc {

/// Traffic class of one request.
enum class RequestClass : std::uint8_t {
  Demand,       ///< application-blocking reconfiguration
  Maintenance,  ///< scrub traffic; sheds under pressure
};

const char* request_class_name(RequestClass klass);

/// Routing target of a request that names no device.
inline constexpr int kAnyDevice = -1;

struct ServiceRequest {
  TimeNs at = 0;            ///< arrival time in the recorded stream
  int device = kAnyDevice;  ///< shard index, or kAnyDevice to route
  std::string region;
  std::string module;
  RequestClass klass = RequestClass::Demand;
  int priority = 0;    ///< higher drains first within a shard queue
  TimeNs deadline = 0; ///< relative completion deadline; 0 = none
};

struct RequestLog {
  int devices = 1;
  std::vector<ServiceRequest> requests;  ///< sorted by (at, file order)
};

/// Parses a request log; throws pdr::Error with the offending line.
RequestLog parse_request_log(const std::string& text);

/// Writes a log back to its file form (round-trips through the parser).
std::string write_request_log(const RequestLog& log);

/// Cheap sniff for `pdrflow check`/`serve` dispatch: the first directive
/// of a request log is `fleet`.
bool looks_like_request_log(const std::string& text);

/// Knobs of the deterministic synthetic-traffic generator benches and
/// soak tests use. Everything derives from `seed`.
struct TrafficOptions {
  int devices = 10;
  int requests = 100;
  std::uint64_t seed = 1;
  TimeNs horizon = 100'000'000;       ///< arrivals uniform over [0, horizon)
  double maintenance_frac = 0.2;      ///< fraction of maintenance requests
  double any_device_frac = 0.25;      ///< fraction routed (device `any`)
  int max_priority = 4;               ///< demand priorities in [1, max]
  TimeNs deadline = 0;                ///< relative deadline stamped on demands; 0 = none
};

/// Generates a synthetic request log over the given (region -> variants)
/// catalog. Deterministic per options; output round-trips the parser.
RequestLog generate_request_log(
    const TrafficOptions& options,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& catalog);

}  // namespace pdr::svc
