#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "fault/injector.hpp"
#include "rtr/prefetch.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::svc {

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::Completed: return "completed";
    case Disposition::Degraded: return "degraded";
    case Disposition::Failed: return "failed";
    case Disposition::TimedOut: return "timed_out";
    case Disposition::RejectedQueueFull: return "rejected_queue_full";
    case Disposition::RejectedBreakerOpen: return "rejected_breaker_open";
    case Disposition::Shed: return "shed";
  }
  return "?";
}

rtr::ManagerStats ServiceReport::fleet_stats() const {
  rtr::ManagerStats total;
  for (const auto& dev : device_summaries) {
    const auto& s = dev.stats;
    total.requests += s.requests;
    total.already_loaded += s.already_loaded;
    total.prefetch_hits += s.prefetch_hits;
    total.prefetch_inflight += s.prefetch_inflight;
    total.cache_hits += s.cache_hits;
    total.misses += s.misses;
    total.prefetches_issued += s.prefetches_issued;
    total.prefetches_wasted += s.prefetches_wasted;
    total.scrubs += s.scrubs;
    total.blanks += s.blanks;
    total.load_failures += s.load_failures;
    total.crc_rejects += s.crc_rejects;
    total.port_aborts += s.port_aborts;
    total.readback_failures += s.readback_failures;
    total.retries += s.retries;
    total.fallbacks += s.fallbacks;
    total.scrub_repairs += s.scrub_repairs;
    total.health_transitions += s.health_transitions;
    total.total_stall += s.total_stall;
    total.total_load_time += s.total_load_time;
    total.bytes_loaded += s.bytes_loaded;
    for (const auto& [region, counts] : s.health_transition_counts)
      for (const auto& [edge, n] : counts) total.health_transition_counts[region][edge] += n;
  }
  return total;
}

std::string ServiceReport::to_string() const {
  std::string out;
  out += strprintf("fleet service: %d device(s), %zu request(s), %d tick(s) x %.3f ms\n", devices,
                   records.size(), ticks, to_ms(tick_length));
  const auto row = [&out](const char* name, int value) {
    out += strprintf("  %-22s %d\n", name, value);
  };
  row("completed", completed);
  row("degraded", degraded);
  row("failed", failed);
  row("timed_out", timed_out);
  row("rejected_queue_full", rejected_queue_full);
  row("rejected_breaker_open", rejected_breaker_open);
  row("shed", shed);
  row("admitted", admitted);
  row("rerouted", rerouted);
  row("planned_cold_fetches", cache_planned_fetches);
  row("planned_cache_hits", cache_planned_hits);
  // The fetch / served / eviction counts are deterministic (single-flight
  // insertions, serial-phase removals); the served split between "was
  // ready" and "coalesced onto an in-flight fetch" is wall-clock timing
  // and deliberately not reported here.
  out += strprintf(
      "fleet cache: fetches %llu, served %llu, evictions %llu, invalidations %llu, "
      "resident %zu module(s) / %llu bytes\n",
      static_cast<unsigned long long>(cache.fetches), static_cast<unsigned long long>(cache.served),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.invalidations), cache.resident_modules,
      static_cast<unsigned long long>(cache.resident_bytes));
  if (seus_injected > 0 || store_damages > 0 || store_repairs > 0)
    out += strprintf("faults: seus %d, store damages %d, store repairs %d\n", seus_injected,
                     store_damages, store_repairs);
  const auto total = fleet_stats();
  out += "fleet totals:\n";
  out += strprintf("  loads: requests %d (already_loaded %d, staged_hits %d, cache_hits %d, misses %d)\n",
                   total.requests, total.already_loaded, total.prefetch_hits, total.cache_hits,
                   total.misses);
  out += strprintf("  recovery: retries %d, fallbacks %d, load_failures %d (crc %d, port %d, readback %d)\n",
                   total.retries, total.fallbacks, total.load_failures, total.crc_rejects,
                   total.port_aborts, total.readback_failures);
  out += strprintf("  maintenance: scrubs %d, blanks %d, scrub_repairs %d, health_transitions %d\n",
                   total.scrubs, total.blanks, total.scrub_repairs, total.health_transitions);
  out += strprintf("  time: stall %.3f ms, load %.3f ms, bytes loaded %llu\n",
                   to_ms(total.total_stall), to_ms(total.total_load_time),
                   static_cast<unsigned long long>(total.bytes_loaded));
  for (std::size_t d = 0; d < device_summaries.size(); ++d) {
    const auto& dev = device_summaries[d];
    out += strprintf("device %zu: served %d, breaker %s, opens %d", d, dev.served,
                     breaker_state_name(dev.breaker), dev.breaker_opens);
    if (!dev.breaker_transitions.empty()) {
      out += " [";
      for (std::size_t i = 0; i < dev.breaker_transitions.size(); ++i) {
        if (i > 0) out += " ";
        out += dev.breaker_transitions[i];
      }
      out += "]";
    }
    out += "\n";
    for (const auto& [region, health] : dev.health) {
      const auto res = dev.resident.find(region);
      out += strprintf("  region %-10s %s, resident '%s'\n", region.c_str(),
                       rtr::region_health_name(health),
                       res != dev.resident.end() ? res->second.c_str() : "");
    }
  }
  out += "requests:\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out += strprintf("  #%-4zu at %9.1f us  %-11s %s/%s prio %d", i, to_us(r.at),
                     request_class_name(r.klass), r.region.c_str(), r.module.c_str(), r.priority);
    if (r.deadline > 0) out += strprintf(" deadline %.1f us", to_us(r.deadline));
    out += strprintf("  -> %s", disposition_name(r.disposition));
    if (r.device >= 0) {
      out += strprintf(" dev%d%s", r.device, r.rerouted ? "*" : "");
      out += strprintf(" %s ready %9.1f us stall %9.1f us",
                       r.klass == RequestClass::Maintenance ? "scrub"
                                                            : rtr::request_kind_name(r.kind),
                       to_us(r.ready_at), to_us(r.stall));
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------

struct FleetService::Work {
  std::size_t index = 0;
  TimeNs at = 0;
  std::string region;
  std::string module;     ///< actual load target (the safe module on a degraded route)
  std::string requested;  ///< module the log demanded
  RequestClass klass = RequestClass::Demand;
  int priority = 0;
  TimeNs deadline = 0;
  std::uint64_t seq = 0;  ///< admission order, FIFO tie-break within a priority
  bool degraded_route = false;
  bool planned_hit = false;
  bool rerouted = false;
};

struct FleetService::Device {
  explicit Device(const BreakerConfig& breaker_config) : breaker(breaker_config) {}

  int index = 0;
  rtr::NonePrefetch policy;
  std::unique_ptr<rtr::ReconfigManager> manager;
  CircuitBreaker breaker;
  std::optional<fault::FaultInjector> injector;
  std::vector<Work> queue;
  int served = 0;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  struct SeuCursor {
    std::vector<fault::SeuEvent> timeline;
    std::size_t next = 0;
  };
  std::map<std::string, SeuCursor> seus;
};

FleetService::FleetService(const synth::DesignBundle& bundle, ServiceConfig config)
    : bundle_(bundle),
      config_(config),
      store_(std::make_unique<rtr::BitstreamStore>(config.store_bandwidth_bytes_per_s,
                                                   config.store_latency)),
      cache_(config.fleet_cache_capacity) {
  PDR_CHECK(!bundle.dynamic_variants.empty(), "FleetService", "bundle has no dynamic regions");
  PDR_CHECK(config_.jobs >= 1, "FleetService", "jobs must be >= 1");
  PDR_CHECK(config_.queue_capacity >= 1, "FleetService", "queue_capacity must be >= 1");
  PDR_CHECK(config_.tick >= 1, "FleetService", "tick must be positive");
}

FleetService::~FleetService() = default;

void FleetService::arm_faults(const fault::FaultSpec& spec) {
  PDR_CHECK(!ran_, "FleetService::arm_faults", "service already ran");
  std::set<std::string> known_modules;
  for (const auto& [region, variants] : bundle_.dynamic_variants)
    for (const auto& v : variants) known_modules.insert(v.name);
  for (const auto& s : spec.seus)
    PDR_CHECK(bundle_.dynamic_variants.count(s.region) > 0, "FleetService::arm_faults",
              "fault spec names unknown region '" + s.region + "'");
  for (const auto& f : spec.fetch_faults)
    PDR_CHECK(known_modules.count(f.module) > 0, "FleetService::arm_faults",
              "fault spec names unknown module '" + f.module + "'");
  for (const auto& d : spec.store_damages)
    PDR_CHECK(known_modules.count(d.module) > 0, "FleetService::arm_faults",
              "fault spec names unknown module '" + d.module + "'");
  for (const auto& r : spec.store_repairs)
    PDR_CHECK(known_modules.count(r.module) > 0, "FleetService::arm_faults",
              "fault spec names unknown module '" + r.module + "'");
  spec_ = spec;
}

void FleetService::set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  PDR_CHECK(!ran_, "FleetService::set_observability", "service already ran");
  tracer_ = tracer;
  metrics_ = metrics;
}

const std::string& FleetService::safe_module_of(const std::string& region) const {
  static const std::string kNone;
  const auto it = safe_of_.find(region);
  return it != safe_of_.end() ? it->second : kNone;
}

void FleetService::build_fleet(int devices) {
  for (const auto& [region, variants] : bundle_.dynamic_variants) {
    frames_of_[region] = bundle_.floorplan.region_frames(region);
    // Safe module: the first variant the armed spec never targets with a
    // permanent store damage or a fetch fault (campaign idiom).
    const auto names = bundle_.variant_names(region);
    std::string safe = names.front();
    for (const auto& name : names) {
      bool targeted = false;
      if (spec_.has_value()) {
        targeted = spec_->find_fetch_fault(name) != nullptr;
        for (const auto& d : spec_->store_damages) targeted = targeted || d.module == name;
      }
      if (!targeted) {
        safe = name;
        break;
      }
    }
    safe_of_[region] = safe;
  }

  const std::uint64_t base_seed =
      spec_.has_value() ? (config_.fault_seed != 0 ? config_.fault_seed : spec_->seed) : 0;
  const int frame_bytes = bundle_.device.frame_bytes();

  for (int d = 0; d < devices; ++d) {
    auto dev = std::make_unique<Device>(config_.breaker);
    dev->index = d;
    rtr::ManagerConfig mc = config_.manager;
    // Per-device jitter stream: a fleet retrying one broken module must
    // not back off in lockstep.
    mc.recovery.jitter_seed += static_cast<std::uint64_t>(d);
    dev->manager = std::make_unique<rtr::ReconfigManager>(bundle_, mc, *store_, dev->policy);
    if (tracer_ != nullptr || metrics_ != nullptr)
      dev->manager->set_observability(tracer_ != nullptr ? &dev->tracer : nullptr,
                                      metrics_ != nullptr ? &dev->metrics : nullptr);
    for (const auto& [region, safe] : safe_of_) {
      dev->manager->set_safe_module(region, safe);
      // Initial bring-up before any fault hook arms: the full-device
      // bitstream configured the fabric on the bench, not in the field.
      dev->manager->set_resident(region, safe);
    }
    // Register blank streams now, serially: no worker thread may write
    // the shared store mid-drain.
    dev->manager->prepare_blank_streams();
    if (spec_.has_value()) {
      dev->injector.emplace(*spec_, base_seed + 7919ull * static_cast<std::uint64_t>(d));
      fault::FaultInjector* inj = &*dev->injector;
      dev->manager->port().set_fault_hook(
          [inj](Bytes, const std::string&) { return inj->next_port_abort(); });
      dev->manager->set_fetch_fault_hook(
          [inj](const std::string& module, std::vector<std::uint8_t>& bytes) {
            return inj->maybe_corrupt_fetch(module, bytes);
          });
      for (const auto& [region, frames] : frames_of_) {
        Device::SeuCursor cursor;
        cursor.timeline = inj->seu_timeline(region, frames.size(), frame_bytes);
        dev->seus[region] = std::move(cursor);
      }
    }
    devices_.push_back(std::move(dev));
  }

  if (spec_.has_value()) {
    store_injector_.emplace(*spec_, base_seed);
    for (const auto& dmg : spec_->store_damages)
      store_events_.push_back(StoreEvent{dmg.at, false, dmg.module});
    for (const auto& rep : spec_->store_repairs)
      store_events_.push_back(StoreEvent{rep.at, true, rep.module});
    // Damage sorts before repair at one instant: a same-tick repair still
    // closes the window it opened.
    std::sort(store_events_.begin(), store_events_.end(),
              [](const StoreEvent& a, const StoreEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.repair != b.repair) return !a.repair;
                return a.module < b.module;
              });
  }
}

void FleetService::apply_fault_events(TimeNs now) {
  while (store_cursor_ < store_events_.size() && store_events_[store_cursor_].at <= now) {
    const StoreEvent& ev = store_events_[store_cursor_++];
    if (ev.repair) {
      store_->repair(ev.module);
      ++report_.store_repairs;
    } else {
      store_->corrupt(ev.module,
                      store_injector_->damage_byte(ev.module, store_->size_of(ev.module)));
      ++report_.store_damages;
      // The fleet cache holds a now-stale copy; a clean fetch must wait
      // for the repair, so drop it rather than serve damaged bytes.
      cache_.invalidate(ev.module);
      planned_resident_.erase(ev.module);
    }
  }
  for (auto& dev : devices_) {
    for (auto& [region, cursor] : dev->seus) {
      const auto& frames = frames_of_.at(region);
      while (cursor.next < cursor.timeline.size() && cursor.timeline[cursor.next].at <= now) {
        const fault::SeuEvent& ev = cursor.timeline[cursor.next++];
        dev->manager->memory().flip_bit(frames[ev.frame_offset], ev.byte_index, ev.bit);
        ++report_.seus_injected;
      }
    }
  }
}

bool FleetService::enqueue(int device, Work work, bool rerouted) {
  auto& dev = *devices_[device];
  RequestRecord& rec = records_[work.index];
  if (dev.queue.size() >= config_.queue_capacity) {
    if (work.klass == RequestClass::Demand) {
      // Load-shedding priority: evict the lowest-priority, youngest
      // maintenance entry to make room for demand traffic.
      auto victim = dev.queue.end();
      for (auto it = dev.queue.begin(); it != dev.queue.end(); ++it) {
        if (it->klass != RequestClass::Maintenance) continue;
        if (victim == dev.queue.end() || it->priority < victim->priority ||
            (it->priority == victim->priority && it->seq > victim->seq))
          victim = it;
      }
      if (victim != dev.queue.end()) {
        records_[victim->index].disposition = Disposition::Shed;
        dev.queue.erase(victim);
      } else {
        // Explicit backpressure — never a silent drop.
        rec.disposition = Disposition::RejectedQueueFull;
        return false;
      }
    } else {
      // Maintenance yields to demand under pressure.
      rec.disposition = Disposition::Shed;
      return false;
    }
  }
  work.rerouted = rerouted;
  if (work.klass == RequestClass::Demand) {
    // Fleet-cache planning happens here, in the serial phase, so the
    // latency tier a request rides never depends on worker timing.
    if (planned_resident_.count(work.module) > 0) {
      work.planned_hit = true;
      ++report_.cache_planned_hits;
    } else {
      planned_resident_.insert(work.module);
      ++report_.cache_planned_fetches;
    }
  }
  ++report_.admitted;
  dev.queue.push_back(std::move(work));
  return true;
}

void FleetService::admit(const ServiceRequest& req, std::size_t index) {
  RequestRecord& rec = records_[index];
  Work work;
  work.index = index;
  work.at = req.at;
  work.region = req.region;
  work.module = req.module;
  work.requested = req.module;
  work.klass = req.klass;
  work.priority = req.priority;
  work.deadline = req.deadline;
  work.seq = admit_seq_++;

  const int n = static_cast<int>(devices_.size());
  const auto degrade_onto = [&](int device) {
    const std::string& safe = safe_module_of(req.region);
    if (req.klass != RequestClass::Demand || safe.empty() || !config_.degraded_routes) {
      rec.disposition = req.klass == RequestClass::Maintenance
                            ? Disposition::Shed
                            : Disposition::RejectedBreakerOpen;
      return;
    }
    work.module = safe;
    work.degraded_route = true;
    enqueue(device, std::move(work), false);
  };

  if (req.device != kAnyDevice) {
    PDR_CHECK(req.device >= 0 && req.device < n, "FleetService::admit",
              strprintf("request pins device %d but the fleet has %d", req.device, n));
    auto& breaker = devices_[req.device]->breaker;
    if (breaker.would_allow()) {
      breaker.allow_request();
      enqueue(req.device, std::move(work), false);
    } else {
      degrade_onto(req.device);
    }
    return;
  }

  // Any-device routing: least-loaded shard (by queue depth, then index)
  // among those whose breaker admits; record a reroute when the breaker
  // steered us away from the unconstrained choice.
  const auto depth_less = [this](int a, int b) {
    const auto da = devices_[a]->queue.size();
    const auto db = devices_[b]->queue.size();
    if (da != db) return da < db;
    return a < b;
  };
  int first_choice = 0;
  for (int d = 1; d < n; ++d)
    if (depth_less(d, first_choice)) first_choice = d;
  int chosen = -1;
  for (int d = 0; d < n; ++d) {
    if (!devices_[d]->breaker.would_allow()) continue;
    if (chosen < 0 || depth_less(d, chosen)) chosen = d;
  }
  if (chosen >= 0) {
    devices_[chosen]->breaker.allow_request();
    enqueue(chosen, std::move(work), chosen != first_choice);
  } else {
    // Every breaker is open: serve degraded on the least-loaded shard.
    degrade_onto(first_choice);
  }
}

void FleetService::execute(Device& dev, const Work& work, TimeNs now) {
  RequestRecord& rec = records_[work.index];
  rec.device = dev.index;
  rec.rerouted = work.rerouted;
  ++dev.served;
  bool failure = false;
  try {
    if (work.klass == RequestClass::Maintenance) {
      const std::string& resident = dev.manager->loaded(work.region);
      rec.ready_at = resident.empty() ? now : dev.manager->scrub(work.region, now);
      // Deadline tie-break: a scrub that finishes exactly when the
      // deadline expires (ready_at - at == deadline) is Completed, not
      // TimedOut — the comparison is strictly '>', matching the serial
      // reference drain. Pinned by svc_test DeadlineTieBreak tests.
      rec.disposition = (work.deadline > 0 && rec.ready_at - work.at > work.deadline)
                            ? Disposition::TimedOut
                            : Disposition::Completed;
    } else {
      // Fleet tier first: whoever arrives at a missing module fetches it
      // once for everyone (single-flight); the rest share the copy.
      (void)cache_.get_or_fetch(work.module, work.index, [this, &work] {
        const auto span = store_->get(work.module);
        return std::vector<std::uint8_t>(span.begin(), span.end());
      });
      if (work.planned_hit) dev.manager->preload_staged(work.region, work.module, now);
      const auto out = dev.manager->request(work.region, work.module, now);
      rec.kind = out.kind;
      rec.ready_at = out.ready_at;
      const std::string& resident = dev.manager->loaded(work.region);
      if (resident.empty()) {
        rec.disposition = Disposition::Failed;
        failure = true;
      } else if (work.degraded_route) {
        rec.disposition = Disposition::Degraded;
      } else if (resident != work.requested) {
        // Recovery fell back to the safe module: served, but not what the
        // log demanded — and a real failure as the breaker counts them.
        rec.disposition = Disposition::Degraded;
        failure = true;
      } else if (work.deadline > 0 && rec.ready_at - work.at > work.deadline) {
        rec.disposition = Disposition::TimedOut;
      } else {
        // Deadline tie-break: a load completing exactly on the deadline
        // tick (ready_at - at == deadline) wins — strict '>' above, the
        // same precedence the serial reference drain applies. Pinned by
        // svc_test DeadlineTieBreak tests.
        rec.disposition = Disposition::Completed;
      }
    }
  } catch (const Error&) {
    rec.disposition = Disposition::Failed;
    rec.ready_at = now;
    failure = true;
  }
  rec.stall = rec.ready_at - work.at;
  // Degraded-route servings never feed the breaker: a device cannot heal
  // its breaker by answering with the fallback personality.
  if (!work.degraded_route) {
    if (failure)
      dev.breaker.record_failure();
    else
      dev.breaker.record_success();
  }
}

void FleetService::drain_device(Device& dev, TimeNs now, TimeNs tick_end) {
  // Drain in (priority desc, admission order) until the config port is
  // busy past this tick — a cold-load storm leaves backlog behind and the
  // admission queue pushes back.
  while (!dev.queue.empty() && dev.manager->port_free_at() <= tick_end) {
    auto best = dev.queue.begin();
    for (auto it = std::next(dev.queue.begin()); it != dev.queue.end(); ++it) {
      if (it->priority > best->priority ||
          (it->priority == best->priority && it->seq < best->seq))
        best = it;
    }
    const Work work = std::move(*best);
    dev.queue.erase(best);
    execute(dev, work, now);
  }
}

ServiceReport FleetService::run(const RequestLog& log) {
  PDR_CHECK(!ran_, "FleetService::run", "service instances run once");
  ran_ = true;
  PDR_CHECK(log.devices >= 1, "FleetService::run", "log declares no devices");
  build_fleet(log.devices);

  const std::size_t n = log.requests.size();
  records_.assign(n, RequestRecord{});
  for (std::size_t i = 0; i < n; ++i) {
    const ServiceRequest& req = log.requests[i];
    RequestRecord& rec = records_[i];
    rec.at = req.at;
    rec.requested_device = req.device;
    rec.region = req.region;
    rec.module = req.module;
    rec.klass = req.klass;
    rec.priority = req.priority;
    rec.deadline = req.deadline;
  }
  report_.devices = log.devices;
  report_.tick_length = config_.tick;

  const auto queues_empty = [this] {
    for (const auto& dev : devices_)
      if (!dev->queue.empty()) return false;
    return true;
  };

  std::size_t next_arrival = 0;
  int tick_index = 0;
  while (next_arrival < n || !queues_empty()) {
    const TimeNs now = static_cast<TimeNs>(tick_index) * config_.tick;
    const TimeNs tick_end = now + config_.tick;

    // Serial coordinator phase.
    apply_fault_events(now);
    for (auto& dev : devices_) dev->breaker.tick();
    while (next_arrival < n && log.requests[next_arrival].at <= now)
      admit(log.requests[next_arrival], next_arrival), ++next_arrival;

    // Parallel drain phase: workers touch only device-owned state plus
    // the thread-safe fleet cache.
    if (!queues_empty()) {
      const int workers =
          std::min(config_.jobs, static_cast<int>(devices_.size()));
      if (workers <= 1) {
        for (auto& dev : devices_) drain_device(*dev, now, tick_end);
      } else {
        std::atomic<std::size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
          pool.emplace_back([this, &cursor, now, tick_end] {
            while (true) {
              const std::size_t i = cursor.fetch_add(1);
              if (i >= devices_.size()) return;
              drain_device(*devices_[i], now, tick_end);
            }
          });
        }
        for (auto& t : pool) t.join();
      }
    }

    // Serial collection phase: enforce the cache bound; eviction order is
    // stamp-based, so it never depends on worker timing.
    for (const auto& name : cache_.sweep()) planned_resident_.erase(name);
    ++tick_index;
  }
  report_.ticks = tick_index;

  for (const RequestRecord& rec : records_) {
    switch (rec.disposition) {
      case Disposition::Completed: ++report_.completed; break;
      case Disposition::Degraded: ++report_.degraded; break;
      case Disposition::Failed: ++report_.failed; break;
      case Disposition::TimedOut: ++report_.timed_out; break;
      case Disposition::RejectedQueueFull: ++report_.rejected_queue_full; break;
      case Disposition::RejectedBreakerOpen: ++report_.rejected_breaker_open; break;
      case Disposition::Shed: ++report_.shed; break;
    }
    if (rec.rerouted) ++report_.rerouted;
  }
  report_.cache = cache_.stats();
  for (const auto& dev : devices_) {
    DeviceSummary summary;
    summary.served = dev->served;
    summary.breaker = dev->breaker.state();
    summary.breaker_opens = dev->breaker.opens();
    summary.breaker_transitions = dev->breaker.transitions();
    summary.stats = dev->manager->stats();
    summary.health = summary.stats.region_health;
    for (const auto& [region, frames] : frames_of_)
      summary.resident[region] = dev->manager->loaded(region);
    report_.device_summaries.push_back(std::move(summary));
  }
  report_.records = records_;

  // Deterministic observability merge, in device order (the
  // flow::ScenarioRunner discipline).
  if (tracer_ != nullptr)
    for (const auto& dev : devices_)
      tracer_->append(dev->tracer, strprintf("dev%d/", dev->index));
  if (metrics_ != nullptr) {
    for (const auto& dev : devices_) metrics_->merge(dev->metrics);
    const auto bump = [this](const char* name, double value) {
      metrics_->counter(std::string("svc.") + name).add(value);
    };
    bump("admitted", report_.admitted);
    bump("completed", report_.completed);
    bump("degraded", report_.degraded);
    bump("failed", report_.failed);
    bump("timed_out", report_.timed_out);
    bump("rejected_queue_full", report_.rejected_queue_full);
    bump("rejected_breaker_open", report_.rejected_breaker_open);
    bump("shed", report_.shed);
    bump("rerouted", report_.rerouted);
    bump("cache.fetches", static_cast<double>(report_.cache.fetches));
    bump("cache.served", static_cast<double>(report_.cache.served));
    bump("cache.evictions", static_cast<double>(report_.cache.evictions));
    bump("seus_injected", report_.seus_injected);
    bump("store_damages", report_.store_damages);
    bump("store_repairs", report_.store_repairs);
  }
  return report_;
}

}  // namespace pdr::svc
