// pdr::svc::FleetService — a deterministic fleet of reconfigurable
// devices behind admission control.
//
// The service owns N modeled devices (one pdr::fabric +
// rtr::ReconfigManager shard each) and drains a recorded request stream
// (svc::RequestLog) through them. Robustness machinery on the way in:
//
//  - bounded per-shard admission queues with explicit backpressure: a
//    demand arriving at a full queue is Rejected{QueueFull} (never a
//    silent drop), after maintenance traffic in the queue was shed to
//    make room;
//  - load-shedding priorities: maintenance yields to demand under
//    pressure (a maintenance arrival at a saturated shard is Shed);
//  - per-request deadlines with timeout classification;
//  - retry-with-backoff riding rtr::RecoveryConfig (jitter seeded per
//    device so a fleet never retries in lockstep);
//  - a per-device circuit breaker fed by the manager's health/fallback
//    signals: Open reroutes any-device traffic to healthy shards and
//    serves pinned requests degraded via the safe module;
//  - a shared single-flight fleet bitstream cache (svc::FleetCache): N
//    devices demanding one module fetch it from external memory once.
//
// Determinism contract: run() is byte-identical for any `jobs` value.
// The drain alternates serial coordinator phases (fault events, breaker
// ticks, admission, routing, cache planning, eviction sweeps) with
// parallel per-device phases in which worker threads touch only
// device-owned state plus the thread-safe fleet cache; per-device
// observability sinks merge in device order after the drain — the same
// discipline flow::ScenarioRunner pins for sweeps.
//
// Virtual time advances in fixed ticks: each tick admits every arrival
// up to `now`, then each device drains its queue (priority order) until
// its config port is busy past the tick boundary — so cold-load storms
// build real backlog and exercise the backpressure path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/manager.hpp"
#include "svc/breaker.hpp"
#include "svc/fleet_cache.hpp"
#include "svc/request_log.hpp"
#include "synth/flow.hpp"
#include "util/units.hpp"

namespace pdr::svc {

struct ServiceConfig {
  int jobs = 1;                      ///< worker threads for the parallel phases
  std::size_t queue_capacity = 8;    ///< per-shard admission queue bound
  TimeNs tick = 1'000'000;           ///< scheduling quantum (1 ms)
  Bytes fleet_cache_capacity = 8ull << 20;  ///< shared cache bound (0 = unbounded)
  BreakerConfig breaker;
  /// When a pinned device's breaker is open (or every breaker is, for
  /// routed traffic), serve demands degraded via the region's safe module
  /// instead of rejecting. Strict fleets (wrong personality worse than no
  /// service) turn this off and get RejectedBreakerOpen.
  bool degraded_routes = true;
  rtr::ManagerConfig manager;        ///< per-device template
  /// External-store timing model shared by the fleet.
  double store_bandwidth_bytes_per_s = 16.7e6;
  TimeNs store_latency = 10'000;
  std::uint64_t fault_seed = 0;      ///< campaign seed override (0 = the spec's)
};

/// Final classification of one request — every entry of the log gets
/// exactly one; nothing is ever silently dropped.
enum class Disposition : std::uint8_t {
  Completed,           ///< demanded module loaded (or scrub done) in time
  Degraded,            ///< served by the safe module, not the demanded one
  Failed,              ///< region unusable after retries and fallback
  TimedOut,            ///< served, but past the request's deadline
  RejectedQueueFull,   ///< admission backpressure: shard queue full
  RejectedBreakerOpen, ///< device breaker open, no degraded route available
  Shed,                ///< maintenance dropped under demand pressure
};

const char* disposition_name(Disposition d);

struct RequestRecord {
  // Echo of the request (records are self-contained for the report).
  TimeNs at = 0;
  int requested_device = kAnyDevice;
  std::string region;
  std::string module;
  RequestClass klass = RequestClass::Demand;
  int priority = 0;
  TimeNs deadline = 0;
  // Outcome.
  int device = -1;  ///< shard that served it (-1 = never admitted)
  Disposition disposition = Disposition::Failed;
  rtr::RequestKind kind = rtr::RequestKind::Miss;
  bool rerouted = false;  ///< any-device request steered around a breaker
  TimeNs ready_at = 0;
  TimeNs stall = 0;  ///< ready_at - arrival (queue wait + load)
};

struct DeviceSummary {
  int served = 0;  ///< work items executed on this shard
  BreakerState breaker = BreakerState::Closed;
  int breaker_opens = 0;
  std::vector<std::string> breaker_transitions;
  std::map<std::string, rtr::RegionHealth> health;
  std::map<std::string, std::string> resident;
  rtr::ManagerStats stats;
};

struct ServiceReport {
  int devices = 0;
  int ticks = 0;
  TimeNs tick_length = 0;
  // Dispositions (sum == log size).
  int completed = 0;
  int degraded = 0;
  int failed = 0;
  int timed_out = 0;
  int rejected_queue_full = 0;
  int rejected_breaker_open = 0;
  int shed = 0;
  // Flow accounting.
  int admitted = 0;  ///< requests that reached a shard queue
  int rerouted = 0;
  int cache_planned_fetches = 0;  ///< demands planned to pay the cold path
  int cache_planned_hits = 0;     ///< demands planned to ride the cache tier
  FleetCache::Stats cache;
  // Fault-campaign accounting (zero when no spec is armed).
  int seus_injected = 0;
  int store_damages = 0;
  int store_repairs = 0;
  std::vector<DeviceSummary> device_summaries;
  std::vector<RequestRecord> records;

  /// Sum of every shard's manager counters.
  rtr::ManagerStats fleet_stats() const;

  /// Deterministic text report — byte-identical across jobs values and
  /// across runs of the same (bundle, log, config, spec) tuple.
  std::string to_string() const;
};

class FleetService {
 public:
  /// `bundle` must outlive the service; every device shards it.
  FleetService(const synth::DesignBundle& bundle, ServiceConfig config);
  ~FleetService();

  /// Arms a fault campaign: per-device injectors (port aborts, fetch
  /// corruption, SEUs; independent streams per device) plus shared-store
  /// damage/repair windows. Validates spec names against the bundle.
  void arm_faults(const fault::FaultSpec& spec);

  /// Observability sinks for run(): per-device traces merge under
  /// "dev<i>/" prefixes, counters export under "svc.". Either may be
  /// null.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Drains the log (devices sized by log.devices) and returns the
  /// report. One run per service instance.
  ServiceReport run(const RequestLog& log);

 private:
  struct Device;
  struct Work;

  void build_fleet(int devices);
  void admit(const ServiceRequest& req, std::size_t index);
  bool enqueue(int device, Work work, bool rerouted);
  void drain_device(Device& dev, TimeNs now, TimeNs tick_end);
  void execute(Device& dev, const Work& work, TimeNs now);
  void apply_fault_events(TimeNs now);
  const std::string& safe_module_of(const std::string& region) const;

  const synth::DesignBundle& bundle_;
  ServiceConfig config_;
  std::optional<fault::FaultSpec> spec_;
  std::unique_ptr<rtr::BitstreamStore> store_;
  FleetCache cache_;
  std::map<std::string, std::vector<fabric::FrameAddress>> frames_of_;
  /// Seed source for store-damage byte positions (serial phase only).
  std::optional<fault::FaultInjector> store_injector_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::string, std::string> safe_of_;
  std::set<std::string> planned_resident_;  ///< cache contents as admission plans them
  std::vector<RequestRecord> records_;
  ServiceReport report_;
  std::uint64_t admit_seq_ = 0;
  /// Shared-store damage/repair events, sorted by time; cursor advances
  /// in the serial phase only.
  struct StoreEvent {
    TimeNs at = 0;
    bool repair = false;
    std::string module;
  };
  std::vector<StoreEvent> store_events_;
  std::size_t store_cursor_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool ran_ = false;
};

}  // namespace pdr::svc
