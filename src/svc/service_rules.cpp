#include "svc/service_rules.hpp"

#include <limits>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::svc {

using lint::Report;
using lint::Rule;
using lint::Severity;

Report check_request_log(const RequestLog& log, const synth::DesignBundle& bundle,
                         const rtr::ReconfigManager& manager) {
  Report report;

  std::map<std::string, std::set<std::string>> variants_of;
  for (const auto& [region, variants] : bundle.dynamic_variants)
    for (const auto& v : variants) variants_of[region].insert(v.name);

  // PDR123 needs the weakest demand per region to compare against.
  std::map<std::string, int> min_demand_priority;
  for (const auto& req : log.requests) {
    if (req.klass != RequestClass::Demand) continue;
    const auto it = min_demand_priority.find(req.region);
    if (it == min_demand_priority.end() || req.priority < it->second)
      min_demand_priority[req.region] = req.priority;
  }

  for (std::size_t i = 0; i < log.requests.size(); ++i) {
    const ServiceRequest& req = log.requests[i];
    const std::string where = strprintf("request %zu (at %.1f us)", i + 1, to_us(req.at));

    const auto region_it = variants_of.find(req.region);
    if (region_it == variants_of.end()) {
      report.add(Rule::UnknownServiceRegion, Severity::Error, where,
                 "names region '" + req.region + "' which the design does not declare",
                 "declare the region in the constraints file or fix the log");
      continue;  // downstream rules would only echo the same root cause
    }
    if (region_it->second.count(req.module) == 0) {
      report.add(Rule::UnknownServiceModule, Severity::Error, where,
                 "demands module '" + req.module + "' but region '" + req.region +
                     "' has no such variant",
                 "variants of a region are its interchangeable dynamic modules");
      continue;
    }
    if (req.device != kAnyDevice && (req.device < 0 || req.device >= log.devices)) {
      report.add(Rule::ServiceDeviceOutOfRange, Severity::Error, where,
                 strprintf("pins device %d but the log declares `fleet devices %d`", req.device,
                           log.devices),
                 "device indices run 0.." + std::to_string(log.devices - 1) + ", or use `any`");
    }
    if (req.deadline > 0) {
      // Best case is a perfect fleet-cache hit: staged (port-transfer)
      // latency only. A deadline under that cannot be met by any fleet.
      const TimeNs floor = manager.staged_load_latency(req.module);
      if (req.deadline < floor)
        report.add(Rule::ServiceDeadlineTooTight, Severity::Warning, where,
                   strprintf("deadline %.1f us is below the %.1f us best-case (staged) load "
                             "latency of '%s'",
                             to_us(req.deadline), to_us(floor), req.module.c_str()),
                   "the request will be classified timed_out even on an idle device");
    }
    if (req.klass == RequestClass::Maintenance) {
      const auto demand_it = min_demand_priority.find(req.region);
      if (demand_it != min_demand_priority.end() && req.priority > demand_it->second)
        report.add(Rule::ServicePriorityInversion, Severity::Warning, where,
                   strprintf("maintenance priority %d outranks demand traffic on region '%s' "
                             "(weakest demand priority %d)",
                             req.priority, req.region.c_str(), demand_it->second),
                   "maintenance should yield to demand; lower its priority");
    }
  }
  return report;
}

Report check_request_log_text(const std::string& text, const synth::DesignBundle& bundle,
                              const rtr::ReconfigManager& manager) {
  RequestLog log;
  try {
    log = parse_request_log(text);
  } catch (const Error& e) {
    Report report;
    report.add(Rule::ParseError, Severity::Error, "request log", e.what(),
               "fix the syntax error; nothing else was checked");
    return report;
  }
  return check_request_log(log, bundle, manager);
}

}  // namespace pdr::svc
