// Static pre-flight checks over fleet-service request logs (the PDR12x
// lint family).
//
// `pdrflow check <log.requests>` runs these before a log ever reaches
// the fleet, catching the classes of operational mistake the service
// would otherwise surface at replay time:
//
//   PDR120  request names a region the design does not declare
//   PDR121  request names a module its region has no variant for
//   PDR122  deadline below the best-case (staged) load latency — the
//           request times out even with a perfect fleet-cache hit
//   PDR123  maintenance traffic outranks same-region demand traffic
//           (priority inversion: scrubs would starve demand loads)
//   PDR124  request pins a device index outside the declared fleet
//
// The rule codes live in lint/rule_codes.hpp (append-only); the
// implementations live here so the lint library itself stays free of
// rtr/svc dependencies.
#pragma once

#include <string>

#include "lint/diagnostic.hpp"
#include "rtr/manager.hpp"
#include "svc/request_log.hpp"
#include "synth/flow.hpp"

namespace pdr::svc {

/// Checks a parsed log against the design. `manager` supplies the timing
/// model for PDR122 (any manager over the same bundle/store works; it is
/// not mutated).
lint::Report check_request_log(const RequestLog& log, const synth::DesignBundle& bundle,
                               const rtr::ReconfigManager& manager);

/// Parses then checks; a parse failure becomes a single PDR000 error.
lint::Report check_request_log_text(const std::string& text, const synth::DesignBundle& bundle,
                                    const rtr::ReconfigManager& manager);

}  // namespace pdr::svc
