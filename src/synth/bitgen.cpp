#include "synth/bitgen.hpp"

#include "util/error.hpp"

namespace pdr::synth {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<std::uint8_t> frame_payload(const fabric::DeviceModel& device, std::uint64_t hash,
                                        int frame_linear) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(device.frame_bytes()));
  for (std::size_t b = 0; b < data.size(); ++b)
    data[b] = frame_payload_byte(hash, frame_linear, static_cast<int>(b));
  return data;
}

}  // namespace

std::uint8_t frame_payload_byte(std::uint64_t module_hash, int frame_linear, int byte_index) {
  // One mix per 8-byte lane, sliced per byte: cheap and deterministic.
  const std::uint64_t lane =
      mix64(module_hash ^ (static_cast<std::uint64_t>(frame_linear) << 20) ^
            static_cast<std::uint64_t>(byte_index / 8));
  return static_cast<std::uint8_t>(lane >> ((byte_index % 8) * 8));
}

std::vector<std::uint8_t> generate_partial_bitstream(const fabric::DeviceModel& device,
                                                     const std::vector<fabric::FrameAddress>& frames,
                                                     std::uint64_t module_hash) {
  PDR_CHECK(!frames.empty(), "generate_partial_bitstream", "no frames to write");
  const fabric::FrameMap map(device);

  fabric::BitstreamWriter writer(device);
  writer.begin();
  writer.write_idcode();

  // Coalesce linearly consecutive frames into single FAR + FDRI bursts.
  std::size_t i = 0;
  while (i < frames.size()) {
    std::size_t j = i;
    while (j + 1 < frames.size() &&
           map.linear_index(frames[j + 1]) == map.linear_index(frames[j]) + 1)
      ++j;
    writer.write_far(frames[i]);
    std::vector<std::uint8_t> burst;
    burst.reserve((j - i + 1) * static_cast<std::size_t>(device.frame_bytes()));
    for (std::size_t k = i; k <= j; ++k) {
      const auto data = frame_payload(device, module_hash, map.linear_index(frames[k]));
      burst.insert(burst.end(), data.begin(), data.end());
    }
    writer.write_fdri(burst);
    i = j + 1;
  }

  writer.end();
  return writer.take();
}

std::vector<std::uint8_t> generate_uniform_bitstream(const fabric::DeviceModel& device,
                                                     const std::vector<fabric::FrameAddress>& frames,
                                                     std::uint8_t fill) {
  PDR_CHECK(!frames.empty(), "generate_uniform_bitstream", "no frames to write");
  fabric::BitstreamWriter writer(device);
  writer.begin();
  writer.write_idcode();
  writer.write_far(frames.front());
  writer.write_fdri(std::vector<std::uint8_t>(static_cast<std::size_t>(device.frame_bytes()), fill));
  for (std::size_t i = 1; i < frames.size(); ++i) writer.write_mfwr(frames[i]);
  writer.end();
  return writer.take();
}

std::vector<std::uint8_t> generate_full_bitstream(const fabric::DeviceModel& device,
                                                  std::uint64_t design_hash) {
  const fabric::FrameMap map(device);
  std::vector<fabric::FrameAddress> all;
  all.reserve(static_cast<std::size_t>(map.total_frames()));
  for (int f = 0; f < map.total_frames(); ++f) all.push_back(map.from_linear(f));
  return generate_partial_bitstream(device, all, design_hash);
}

}  // namespace pdr::synth
