// Partial and full bitstream generation.
//
// Frame payloads are derived deterministically from the module netlist's
// content hash, so (a) two syntheses of the same module produce identical
// bitstreams, (b) different modules produce different configuration data,
// and (c) the simulation can verify after a load that a region "physically"
// holds the module it believes it loaded.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/bitstream.hpp"
#include "fabric/device.hpp"
#include "fabric/frames.hpp"

namespace pdr::synth {

/// The synthetic payload byte for (module hash, frame linear index, byte).
std::uint8_t frame_payload_byte(std::uint64_t module_hash, int frame_linear, int byte_index);

/// Builds a partial bitstream covering exactly `frames` (any order; runs
/// of linearly consecutive frames share one FDRI burst).
std::vector<std::uint8_t> generate_partial_bitstream(const fabric::DeviceModel& device,
                                                     const std::vector<fabric::FrameAddress>& frames,
                                                     std::uint64_t module_hash);

/// Builds a full-device bitstream (every frame) for initial configuration.
std::vector<std::uint8_t> generate_full_bitstream(const fabric::DeviceModel& device,
                                                  std::uint64_t design_hash);

/// Builds a compressed uniform-fill bitstream over `frames` using
/// multi-frame writes: one real frame of `fill` bytes, then a 4-word MFWR
/// packet pair per remaining frame. This is how blanking bitstreams stay
/// small (and load fast) on real devices.
std::vector<std::uint8_t> generate_uniform_bitstream(const fabric::DeviceModel& device,
                                                     const std::vector<fabric::FrameAddress>& frames,
                                                     std::uint8_t fill);

}  // namespace pdr::synth
